//! Correlation and lag analysis between measurement channels.
//!
//! Fig. 3's qualitative story — "the inside temperature follows the outside
//! temperature, damped and delayed by the tent" — becomes quantitative
//! here: Pearson correlation between the aligned channels, and the lag at
//! which the cross-correlation peaks (the tent's effective thermal delay).

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns `None` for fewer than two points or zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson needs aligned samples");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Cross-correlation of `ys` against `xs` shifted by `lag` samples
/// (positive lag: `ys` lags behind `xs`).
pub fn correlation_at_lag(xs: &[f64], ys: &[f64], lag: usize) -> Option<f64> {
    if lag >= xs.len() || lag >= ys.len() {
        return None;
    }
    pearson(&xs[..xs.len() - lag], &ys[lag..])
}

/// The lag (in samples, 0..=`max_lag`) at which `ys` best correlates with
/// `xs`, and the correlation there. `ys` is the *response* channel (inside
/// temperature), `xs` the driver (outside).
pub fn best_lag(xs: &[f64], ys: &[f64], max_lag: usize) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for lag in 0..=max_lag {
        if let Some(r) = correlation_at_lag(xs, ys, lag) {
            if best.map(|(_, b)| r > b).unwrap_or(true) {
                best = Some((lag, r));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_noise_near_zero() {
        // Deterministic pseudo-noise pair.
        let xs: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 997) as f64).collect();
        let ys: Vec<f64> = (0..2000).map(|i| ((i * 104729) % 1009) as f64).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.1, "r = {r}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
        assert_eq!(correlation_at_lag(&[1.0, 2.0], &[1.0, 2.0], 5), None);
    }

    #[test]
    fn lag_detection() {
        // ys is xs delayed by 7 samples (a sine so the overlap correlates).
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 / 20.0).sin()).collect();
        let ys: Vec<f64> = (0..500)
            .map(|i| {
                if i >= 7 {
                    ((i - 7) as f64 / 20.0).sin()
                } else {
                    0.0
                }
            })
            .collect();
        let (lag, r) = best_lag(&xs, &ys, 30).unwrap();
        assert_eq!(lag, 7);
        assert!(r > 0.99);
    }

    #[test]
    fn zero_lag_beats_wrong_lag_for_aligned_signals() {
        let xs: Vec<f64> = (0..300).map(|i| (i as f64 / 11.0).cos()).collect();
        let (lag, r) = best_lag(&xs, &xs, 20).unwrap();
        assert_eq!(lag, 0);
        assert!((r - 1.0).abs() < 1e-12);
    }
}
