//! T1: the failure-rate comparison.
//!
//! §4: "Of the eighteen hosts installed initially, one has encountered two
//! transient system failures … A failure rate of 5.6 % may seem harsh
//! initially, but Intel has reported a comparable rate of 4.46 % during
//! their experiment." This module derives that comparison from fleet
//! results, with a Wilson interval standing in for the paper's informal
//! "comparable".

use crate::stats::wilson_interval;

/// Intel's reported failure rate in the air-economizer PoC \[1\].
pub const INTEL_ECONOMIZER_RATE: f64 = 0.0446;

/// A host-level failure-rate estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRate {
    /// Hosts that experienced at least one system failure.
    pub failed_hosts: u64,
    /// Hosts at risk.
    pub total_hosts: u64,
    /// Point estimate.
    pub rate: f64,
    /// 95 % Wilson interval.
    pub interval: (f64, f64),
}

impl FailureRate {
    /// Compute from counts.
    pub fn from_counts(failed_hosts: u64, total_hosts: u64) -> FailureRate {
        let rate = if total_hosts == 0 {
            0.0
        } else {
            failed_hosts as f64 / total_hosts as f64
        };
        FailureRate {
            failed_hosts,
            total_hosts,
            rate,
            interval: wilson_interval(failed_hosts, total_hosts),
        }
    }

    /// Is `reference` (e.g. Intel's 4.46 %) inside our interval — the
    /// quantitative version of the paper's "comparable rate"?
    pub fn comparable_to(&self, reference: f64) -> bool {
        let (lo, hi) = self.interval;
        reference >= lo && reference <= hi
    }
}

/// The full T1 comparison: tent group vs. control group vs. Intel.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureComparison {
    /// Failure rate of the tent (outside) group.
    pub outside: FailureRate,
    /// Failure rate of the basement control group.
    pub control: FailureRate,
    /// Intel's published rate.
    pub intel_rate: f64,
}

impl FailureComparison {
    /// Build from per-group counts.
    pub fn new(
        outside_failed: u64,
        outside_total: u64,
        control_failed: u64,
        control_total: u64,
    ) -> FailureComparison {
        FailureComparison {
            outside: FailureRate::from_counts(outside_failed, outside_total),
            control: FailureRate::from_counts(control_failed, control_total),
            intel_rate: INTEL_ECONOMIZER_RATE,
        }
    }

    /// Whole-fleet rate (the paper's headline 5.6 % counts both groups).
    pub fn fleet(&self) -> FailureRate {
        FailureRate::from_counts(
            self.outside.failed_hosts + self.control.failed_hosts,
            self.outside.total_hosts + self.control.total_hosts,
        )
    }

    /// The paper's verdict: rates comparable with Intel's PoC?
    pub fn comparable_with_intel(&self) -> bool {
        self.fleet().comparable_to(self.intel_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        // 1 failing host (tent), 18 hosts total, none in the control group.
        let cmp = FailureComparison::new(1, 9, 0, 9);
        let fleet = cmp.fleet();
        assert!((fleet.rate - 1.0 / 18.0).abs() < 1e-12);
        assert!((fleet.rate - 0.0556).abs() < 0.001, "5.6 % headline");
        assert!(cmp.comparable_with_intel(), "interval must cover 4.46 %");
    }

    #[test]
    fn control_group_clean() {
        let cmp = FailureComparison::new(1, 9, 0, 9);
        assert_eq!(cmp.control.rate, 0.0);
        assert_eq!(cmp.control.failed_hosts, 0);
        assert!(cmp.outside.rate > cmp.control.rate);
    }

    #[test]
    fn a_catastrophic_rate_is_not_comparable() {
        let cmp = FailureComparison::new(8, 9, 0, 9);
        assert!(!cmp.comparable_with_intel());
        assert!(cmp.fleet().rate > 0.4);
    }

    #[test]
    fn zero_hosts_degenerate() {
        let r = FailureRate::from_counts(0, 0);
        assert_eq!(r.rate, 0.0);
        assert_eq!(r.interval, (0.0, 1.0));
    }
}
