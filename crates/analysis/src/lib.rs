//! # frostlab-analysis
//!
//! Statistics and reporting: the numbers the paper actually states, derived
//! honestly from simulation output.
//!
//! * [`stats`] — descriptive statistics, percentiles, histograms, and the
//!   Wilson score interval (the right tool for "1 failing host out of 18":
//!   tiny-n proportions where the normal approximation lies);
//! * [`failure`] — the T1 comparison: this experiment's failure rate vs.
//!   Intel's 4.46 % economizer result, with interval overlap as the
//!   "comparable rate" criterion;
//! * [`memory_est`] — the T3 derivation: page-operation exposure → the
//!   "one in 570 million" fault ratio;
//! * [`survival`] — Kaplan–Meier curves and MTBF over fleet histories
//!   (what the stochastic re-runs make possible);
//! * [`correlation`] — Pearson and lagged cross-correlation (how closely,
//!   and how late, the tent follows the sky);
//! * [`report`] — plain-text tables for the reproduction binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod failure;
pub mod memory_est;
pub mod report;
pub mod stats;
pub mod survival;

pub use report::Table;
pub use stats::{mean, percentile, std_dev, wilson_interval, Histogram, MinMax, Welford};
