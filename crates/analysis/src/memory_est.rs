//! T3: the memory-fault exposure estimate.
//!
//! §4.2.2: "By calculating the size of the source directory to be
//! compressed, the average block size of the compressed tarball, and the
//! amount of cycles we have estimated the amount of memory pages read and
//! written to lie in the ballpark of 3.2 billion. If the estimate is
//! correct, and the six faulty archives are caused by a single memory page
//! fault each, the failure ratio is around one in 570 million."
//!
//! This module reproduces that back-of-envelope *as computation*, so the
//! simulated campaign can report its own version of both numbers.

/// The estimate's inputs, mirroring the paper's wording.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureInputs {
    /// Size of the source directory, bytes.
    pub source_dir_bytes: u64,
    /// Total pack-verify cycles executed across the fleet.
    pub total_cycles: u64,
    /// Page size, bytes.
    pub page_bytes: u64,
    /// Effective passes over the data per cycle (read + write amplification
    /// through tar, compressor and hash).
    pub passes: f64,
}

impl ExposureInputs {
    /// The paper-shaped inputs: a ~450 MB kernel tree, 27 627 cycles,
    /// 4 KiB pages, ≈ 1 effective pass — chosen to land at the paper's
    /// own "ballpark of 3.2 billion".
    pub fn paper_ballpark() -> ExposureInputs {
        ExposureInputs {
            source_dir_bytes: 450 * 1024 * 1024,
            total_cycles: 27_627,
            page_bytes: 4096,
            passes: 1.0,
        }
    }

    /// Estimated page operations across the campaign.
    pub fn page_ops(&self) -> u64 {
        ((self.source_dir_bytes as f64 / self.page_bytes as f64)
            * self.passes
            * self.total_cycles as f64) as u64
    }
}

/// The T3 result: exposure and implied fault ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryFaultEstimate {
    /// Page operations over the campaign.
    pub page_ops: u64,
    /// Number of faulty archives attributed to single page faults.
    pub faulty_archives: u64,
    /// One fault per this many page operations.
    pub ops_per_fault: f64,
}

/// Derive the estimate.
pub fn estimate(inputs: &ExposureInputs, faulty_archives: u64) -> MemoryFaultEstimate {
    let page_ops = inputs.page_ops();
    let ops_per_fault = if faulty_archives == 0 {
        f64::INFINITY
    } else {
        page_ops as f64 / faulty_archives as f64
    };
    MemoryFaultEstimate {
        page_ops,
        faulty_archives,
        ops_per_fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ballpark_reproduced() {
        let inputs = ExposureInputs::paper_ballpark();
        let ops = inputs.page_ops();
        // "ballpark of 3.2 billion"
        assert!((2.8e9..3.6e9).contains(&(ops as f64)), "page ops {ops}");
        // The paper divides by *six* faulty archives (5 observed + 1 from
        // the prototype's bookkeeping; its §4.2.2 says "six faulty
        // archives" while reporting 5 wrong hashes — we follow the text).
        let est = estimate(&inputs, 6);
        assert!(
            (4.0e8..7.0e8).contains(&est.ops_per_fault),
            "one in {} (paper: one in 570 million)",
            est.ops_per_fault
        );
    }

    #[test]
    fn five_archives_variant() {
        // Using the 5 observed wrong hashes instead of 6 stays in the same
        // order of magnitude.
        let est = estimate(&ExposureInputs::paper_ballpark(), 5);
        assert!((5.0e8..8.0e8).contains(&est.ops_per_fault));
    }

    #[test]
    fn zero_faults_infinite_interval() {
        let est = estimate(&ExposureInputs::paper_ballpark(), 0);
        assert!(est.ops_per_fault.is_infinite());
    }

    #[test]
    fn scaling_linearity() {
        let mut inputs = ExposureInputs::paper_ballpark();
        let base = inputs.page_ops();
        inputs.total_cycles *= 2;
        assert_eq!(inputs.page_ops(), base * 2);
    }
}
