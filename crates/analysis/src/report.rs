//! Plain-text tables for the reproduction binaries.
//!
//! Every `table_*`/`fig*` binary prints through this renderer so the
//! EXPERIMENTS.md evidence has one consistent format.

use std::fmt;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers'.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                write!(
                    f,
                    " {:<w$} |",
                    cells.get(i).map(String::as_str).unwrap_or(""),
                    w = w
                )?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a fraction as a percent string, e.g. `5.6 %`.
pub fn pct(x: f64) -> String {
    format!("{:.1} %", 100.0 * x)
}

/// Format a count of the form "one in N million".
pub fn one_in(x: f64) -> String {
    if x.is_infinite() {
        "none observed".to_string()
    } else if x >= 1e9 {
        format!("one in {:.2} billion", x / 1e9)
    } else if x >= 1e6 {
        format!("one in {:.0} million", x / 1e6)
    } else {
        format!("one in {x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["host", "state"]);
        t.row_str(&["#15", "taken indoors"]);
        t.row_str(&["#19 (spare)", "running"]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| host        | state         |"), "{s}");
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", &["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.0556), "5.6 %");
        assert_eq!(pct(0.0446), "4.5 %");
    }

    #[test]
    fn one_in_format() {
        assert_eq!(one_in(5.7e8), "one in 570 million");
        assert_eq!(one_in(3.2e9), "one in 3.20 billion");
        assert_eq!(one_in(1234.0), "one in 1234");
        assert_eq!(one_in(f64::INFINITY), "none observed");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["col"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_string().contains("col"));
    }
}
