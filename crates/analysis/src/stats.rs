//! Descriptive statistics and small-sample interval estimates.

/// Arithmetic mean. Returns `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n − 1). `None` with fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs).expect("non-empty");
    Some(
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt(),
    )
}

/// Percentile by linear interpolation, `p ∈ [0, 100]`.
///
/// # Panics
/// Panics on empty input or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Wilson score interval for a binomial proportion at ~95 % confidence.
/// Returns `(low, high)`. Well-behaved at the tiny n of this study
/// (1 failure / 18 hosts), unlike the Wald interval.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985; // 97.5th percentile of the standard normal
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// A fixed-width histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Counts per bin.
    pub counts: Vec<u64>,
    /// Samples below `min` / at-or-above the last edge.
    pub underflow: u64,
    /// See `underflow`.
    pub overflow: u64,
}

impl Histogram {
    /// Build a histogram over `[min, min + width·bins)`.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0`.
    pub fn build(xs: &[f64], min: f64, width: f64, bins: usize) -> Histogram {
        assert!(width > 0.0 && bins > 0, "bad histogram geometry");
        let mut h = Histogram {
            min,
            width,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        };
        for &x in xs {
            if x < min {
                h.underflow += 1;
            } else {
                let b = ((x - min) / width) as usize;
                if b >= bins {
                    h.overflow += 1;
                } else {
                    h.counts[b] += 1;
                }
            }
        }
        h
    }

    /// Total samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Index of the fullest bin (first one on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        let sd = std_dev(&xs).unwrap();
        assert!((sd - 2.138).abs() < 1e-3, "{sd}");
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert!((percentile(&xs, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&xs, 95.0) - 95.05).abs() < 1e-9);
    }

    #[test]
    fn wilson_paper_case() {
        // 1 failing host of 18 → point estimate 5.6 %; the Wilson interval
        // must cover Intel's 4.46 % (the paper calls the rates comparable).
        let (lo, hi) = wilson_interval(1, 18);
        assert!(lo < 0.0446 && 0.0446 < hi, "[{lo}, {hi}] must cover 4.46 %");
        assert!(lo > 0.0, "lower bound should be positive-ish but small");
        assert!(hi < 0.30, "upper bound {hi}");
    }

    #[test]
    fn wilson_edge_cases() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 20);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25);
        let (lo2, hi2) = wilson_interval(20, 20);
        assert!(lo2 > 0.75);
        assert_eq!(hi2, 1.0);
    }

    #[test]
    fn wilson_shrinks_with_n() {
        let (lo1, hi1) = wilson_interval(5, 100);
        let (lo2, hi2) = wilson_interval(50, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn histogram_binning() {
        let xs = [-5.0, 0.1, 0.9, 1.5, 2.5, 2.6, 99.0];
        let h = Histogram::build(&xs, 0.0, 1.0, 3);
        assert_eq!(h.counts, vec![2, 1, 2]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.mode_bin(), 0);
    }
}
