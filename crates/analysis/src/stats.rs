//! Descriptive statistics and small-sample interval estimates.

/// Arithmetic mean. Returns `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n − 1). `None` with fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt())
}

/// Percentile by linear interpolation, `p ∈ [0, 100]`.
///
/// Returns `None` on empty input or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let w = rank - lo as f64;
        Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// Wilson score interval for a binomial proportion at ~95 % confidence.
/// Returns `(low, high)`. Well-behaved at the tiny n of this study
/// (1 failure / 18 hosts), unlike the Wald interval.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985; // 97.5th percentile of the standard normal
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Streaming (Welford) mean/variance accumulator.
///
/// Numerically stable one-pass statistics with an exact-count `merge`
/// (Chan et al.'s parallel formula), so ensemble workers can each fold
/// their share and combine. **Merging is associative only up to floating
/// point** — different merge trees differ in the last ulps — which is why
/// the ensemble engine always folds summaries in seed order: a fixed fold
/// order makes the result bit-reproducible across thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Absorb another accumulator (parallel merge).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean. `None` on an empty accumulator.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n − 1). `None` with fewer than two samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation. `None` with fewer than two samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// Streaming min/max tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinMax {
    n: u64,
    min: f64,
    max: f64,
}

impl MinMax {
    /// Empty tracker.
    pub fn new() -> MinMax {
        MinMax::default()
    }

    /// Absorb one sample (NaNs are ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
    }

    /// Absorb another tracker.
    pub fn merge(&mut self, other: &MinMax) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n += other.n;
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest sample seen. `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen. `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A fixed-width histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Counts per bin.
    pub counts: Vec<u64>,
    /// Samples below `min` / at-or-above the last edge.
    pub underflow: u64,
    /// See `underflow`.
    pub overflow: u64,
}

impl Histogram {
    /// Empty histogram over `[min, min + width·bins)` for streaming use.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0`.
    pub fn new(min: f64, width: f64, bins: usize) -> Histogram {
        assert!(width > 0.0 && bins > 0, "bad histogram geometry");
        Histogram {
            min,
            width,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build a histogram over `[min, min + width·bins)`.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0`.
    pub fn build(xs: &[f64], min: f64, width: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(min, width, bins);
        for &x in xs {
            h.push(x);
        }
        h
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        if x < self.min {
            self.underflow += 1;
        } else {
            let b = ((x - self.min) / self.width) as usize;
            if b >= self.counts.len() {
                self.overflow += 1;
            } else {
                self.counts[b] += 1;
            }
        }
    }

    /// Absorb another histogram of identical geometry.
    ///
    /// # Panics
    /// Panics if the geometries (min, width, bin count) differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min == other.min
                && self.width == other.width
                && self.counts.len() == other.counts.len(),
            "histogram geometry mismatch"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Percentile estimate from the binned counts, `p ∈ [0, 100]`,
    /// mirroring [`percentile`]'s scheme: linear interpolation between
    /// the samples at the floor and ceiling of the target rank, with
    /// each sample located at the centroid of its share of its bin.
    ///
    /// Both anchor estimates land inside the bin their sample fell in,
    /// so the result is within **one bin width** of what [`percentile`]
    /// would compute on the raw samples. Underflow samples clamp to
    /// `min`, overflow to the top edge. Returns `None` on an empty
    /// histogram or out-of-range `p`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if !(0.0..=100.0).contains(&p) {
            return None;
        }
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = p / 100.0 * (total - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let vlo = self.value_at_rank(lo);
        if lo == hi {
            return Some(vlo);
        }
        let w = rank - lo as f64;
        Some(vlo * (1.0 - w) + self.value_at_rank(hi) * w)
    }

    /// Binned estimate of the `k`-th (0-based) sorted sample: the point
    /// `(k + ½ − samples before its bin) / bin count` of the way through
    /// the bin that holds it.
    fn value_at_rank(&self, k: u64) -> f64 {
        let mut seen = self.underflow;
        if k < seen {
            return self.min;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && k < seen + c {
                let frac = ((k - seen) as f64 + 0.5) / c as f64;
                return self.min + self.width * (i as f64 + frac);
            }
            seen += c;
        }
        self.min + self.width * self.counts.len() as f64
    }

    /// Total samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Index of the fullest bin (first one on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        let sd = std_dev(&xs).unwrap();
        assert!((sd - 2.138).abs() < 1e-3, "{sd}");
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        assert!((percentile(&xs, 50.0).unwrap() - 50.5).abs() < 1e-9);
        assert!((percentile(&xs, 95.0).unwrap() - 95.05).abs() < 1e-9);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&xs, 100.5), None);
        assert_eq!(percentile(&xs, -1.0), None);
    }

    #[test]
    fn wilson_paper_case() {
        // 1 failing host of 18 → point estimate 5.6 %; the Wilson interval
        // must cover Intel's 4.46 % (the paper calls the rates comparable).
        let (lo, hi) = wilson_interval(1, 18);
        assert!(lo < 0.0446 && 0.0446 < hi, "[{lo}, {hi}] must cover 4.46 %");
        assert!(lo > 0.0, "lower bound should be positive-ish but small");
        assert!(hi < 0.30, "upper bound {hi}");
    }

    #[test]
    fn wilson_edge_cases() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 20);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25);
        let (lo2, hi2) = wilson_interval(20, 20);
        assert!(lo2 > 0.75);
        assert_eq!(hi2, 1.0);
    }

    #[test]
    fn wilson_shrinks_with_n() {
        let (lo1, hi1) = wilson_interval(5, 100);
        let (lo2, hi2) = wilson_interval(50, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn welford_matches_offline() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((w.std_dev().unwrap() - std_dev(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(Welford::new().mean(), None);
        let mut one = Welford::new();
        one.push(3.0);
        assert_eq!(one.variance(), None);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        // Merging an empty accumulator is the identity in both directions.
        let mut e = Welford::new();
        e.merge(&whole);
        assert_eq!(e, whole);
        let before = whole;
        whole.merge(&Welford::new());
        assert_eq!(whole, before);
    }

    #[test]
    fn minmax_tracks_and_merges() {
        let mut m = MinMax::new();
        assert_eq!(m.min(), None);
        m.push(3.0);
        m.push(-1.5);
        m.push(f64::NAN); // ignored
        m.push(7.0);
        assert_eq!(m.min(), Some(-1.5));
        assert_eq!(m.max(), Some(7.0));
        assert_eq!(m.count(), 3);
        let mut other = MinMax::new();
        other.push(-9.0);
        m.merge(&other);
        assert_eq!(m.min(), Some(-9.0));
        assert_eq!(m.max(), Some(7.0));
    }

    #[test]
    fn histogram_streaming_merge_equals_build() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.13).fract() * 10.0 - 1.0)
            .collect();
        let whole = Histogram::build(&xs, 0.0, 0.5, 16);
        let mut a = Histogram::new(0.0, 0.5, 16);
        let mut b = Histogram::new(0.0, 0.5, 16);
        for &x in &xs[..200] {
            a.push(x);
        }
        for &x in &xs[200..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn histogram_percentile_within_bin_width() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = Histogram::build(&xs, 0.0, 1.0, 110);
        assert!(h.percentile(50.0).is_some());
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            let exact = percentile(&xs, p).unwrap();
            let est = h.percentile(p).unwrap();
            assert!(
                (est - exact).abs() <= h.width,
                "p{p}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(Histogram::new(0.0, 1.0, 4).percentile(50.0), None);
    }

    #[test]
    fn histogram_binning() {
        let xs = [-5.0, 0.1, 0.9, 1.5, 2.5, 2.6, 99.0];
        let h = Histogram::build(&xs, 0.0, 1.0, 3);
        assert_eq!(h.counts, vec![2, 1, 2]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.mode_bin(), 0);
    }
}
