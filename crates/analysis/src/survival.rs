//! Survival analysis over fleet histories.
//!
//! The paper runs three months and reports a single proportion; with the
//! stochastic simulator we can ask the question reliability engineers would:
//! what does the *time-to-first-failure* distribution look like? This
//! module provides the Kaplan–Meier estimator (right-censored observations:
//! most machines never fail before the campaign ends) and MTBF summaries.

/// One machine's observation: time observed, and whether a failure ended it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Hours observed (to failure, or to campaign end if censored).
    pub hours: f64,
    /// True if the observation ended in a failure; false = censored.
    pub failed: bool,
}

/// A step of the Kaplan–Meier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmStep {
    /// Event time, hours.
    pub hours: f64,
    /// Survival probability just after this time.
    pub survival: f64,
    /// Machines still at risk just before this time.
    pub at_risk: usize,
}

/// Kaplan–Meier product-limit estimator.
///
/// Returns the survival curve as steps at each distinct failure time.
/// Censored observations reduce the risk set without stepping the curve.
pub fn kaplan_meier(observations: &[Observation]) -> Vec<KmStep> {
    let mut obs: Vec<Observation> = observations.to_vec();
    obs.sort_by(|a, b| a.hours.total_cmp(&b.hours));
    let mut steps = Vec::new();
    let mut survival = 1.0f64;
    let mut i = 0usize;
    let n = obs.len();
    while i < n {
        let t = obs[i].hours;
        // Count deaths and censorings at this exact time.
        let mut deaths = 0usize;
        let mut j = i;
        while j < n && obs[j].hours == t {
            if obs[j].failed {
                deaths += 1;
            }
            j += 1;
        }
        let at_risk = n - i;
        if deaths > 0 {
            survival *= 1.0 - deaths as f64 / at_risk as f64;
            steps.push(KmStep {
                hours: t,
                survival,
                at_risk,
            });
        }
        i = j;
    }
    steps
}

/// Survival probability at `hours` from a KM curve (1.0 before the first
/// failure).
pub fn survival_at(curve: &[KmStep], hours: f64) -> f64 {
    curve
        .iter()
        .take_while(|s| s.hours <= hours)
        .last()
        .map(|s| s.survival)
        .unwrap_or(1.0)
}

/// Crude MTBF estimate: total observed machine-hours per failure.
/// `None` when no failures were observed (the estimate is unbounded —
/// exactly the paper's situation for most components).
pub fn mtbf_hours(observations: &[Observation]) -> Option<f64> {
    let total: f64 = observations.iter().map(|o| o.hours).sum();
    let failures = observations.iter().filter(|o| o.failed).count();
    if failures == 0 {
        None
    } else {
        Some(total / failures as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(hours: f64, failed: bool) -> Observation {
        Observation { hours, failed }
    }

    #[test]
    fn textbook_example() {
        // Classic: failures at 1, 3; censored at 2, 4.
        let data = [
            obs(1.0, true),
            obs(2.0, false),
            obs(3.0, true),
            obs(4.0, false),
        ];
        let curve = kaplan_meier(&data);
        assert_eq!(curve.len(), 2);
        // At t=1: 4 at risk, S = 3/4.
        assert!((curve[0].survival - 0.75).abs() < 1e-12);
        assert_eq!(curve[0].at_risk, 4);
        // At t=3: 2 at risk, S = 0.75 * 1/2.
        assert!((curve[1].survival - 0.375).abs() < 1e-12);
        assert_eq!(curve[1].at_risk, 2);
    }

    #[test]
    fn all_censored_flat_curve() {
        let data = [obs(100.0, false), obs(200.0, false)];
        let curve = kaplan_meier(&data);
        assert!(curve.is_empty());
        assert_eq!(survival_at(&curve, 500.0), 1.0);
        assert_eq!(mtbf_hours(&data), None);
    }

    #[test]
    fn paper_fleet_shape() {
        // 18 machines, ~2000 h each, one failure at ~380 h (host #15).
        let mut data = vec![obs(2000.0, false); 17];
        data.push(obs(380.0, true));
        let curve = kaplan_meier(&data);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].survival - 17.0 / 18.0).abs() < 1e-12);
        assert_eq!(survival_at(&curve, 2000.0), 17.0 / 18.0);
        let mtbf = mtbf_hours(&data).expect("one failure");
        assert!((mtbf - (17.0 * 2000.0 + 380.0)).abs() < 1e-9);
    }

    #[test]
    fn survival_lookup_between_steps() {
        let data = [obs(10.0, true), obs(20.0, true), obs(30.0, false)];
        let curve = kaplan_meier(&data);
        assert_eq!(survival_at(&curve, 5.0), 1.0);
        assert!((survival_at(&curve, 15.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((survival_at(&curve, 25.0) - (2.0 / 3.0) * 0.5).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_failures() {
        let data = [
            obs(10.0, true),
            obs(10.0, true),
            obs(10.0, false),
            obs(50.0, false),
        ];
        let curve = kaplan_meier(&data);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].survival - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let data: Vec<Observation> = (1..40)
            .map(|i| obs(f64::from(i) * 7.0, i % 3 == 0))
            .collect();
        let curve = kaplan_meier(&data);
        let mut prev = 1.0;
        for s in &curve {
            assert!(s.survival <= prev + 1e-12);
            prev = s.survival;
        }
    }
}
