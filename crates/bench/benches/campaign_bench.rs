//! Campaign-scale benchmarks: how fast does a simulated experiment run?
//!
//! `campaign_week` is the end-to-end number — one week of the full
//! orchestrated experiment (weather, thermal, 19 hosts, workload, faults,
//! collection, metering). The full three-month scripted reproduction is
//! ~13× this.

use criterion::{criterion_group, criterion_main, Criterion};
use frostlab_core::config::ExperimentConfig;
use frostlab_core::prototype::run_prototype;
use frostlab_core::ScenarioBuilder;

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(20));
    g.bench_function("campaign_week", |b| {
        b.iter(|| {
            let results = ScenarioBuilder::paper(ExperimentConfig::short(1, 7))
                .build()
                .run();
            std::hint::black_box(results.workload.total_runs())
        })
    });
    g.bench_function("prototype_weekend", |b| {
        b.iter(|| {
            let report = run_prototype(&ExperimentConfig::paper_scripted(1));
            std::hint::black_box(report.cpu_min_c)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
