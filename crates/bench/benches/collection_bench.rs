//! Collection-pipeline benchmarks: one monitoring round against the fleet,
//! and the adaptive-RTO transport pushing a round's worth of log deltas
//! across a link dropping 5 % of frames (the regime the retry machinery is
//! tuned for).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use frostlab_netsim::collector::{Collector, MonitoredHost};
use frostlab_netsim::transport::{drive_until_idle, Endpoint};
use frostlab_netsim::{MacAddr, Network};
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

const FLEET: u32 = 19;
/// One 20-minute round's worth of fresh log bytes per host (md5sum lines
/// plus sensor samples) — matches the experiment's appender.
const ROUND_BYTES: usize = 160;

fn fleet(rng: &mut Rng, collector: &Collector) -> Vec<MonitoredHost> {
    (1..=FLEET)
        .map(|id| {
            let mut h = MonitoredHost::new(id, rng, vec![collector.key.public]);
            // A mirror history to delta against: a week of prior rounds.
            for round in 0..500u32 {
                h.append("md5sums.log", format!("{round:08} {id:02} ok\n").as_bytes());
            }
            h
        })
        .collect()
}

fn bench_collection_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("collection");
    g.throughput(Throughput::Elements(FLEET as u64));
    g.bench_function("round_19_hosts", |b| {
        let mut rng = Rng::new(7);
        let mut collector = Collector::new(&mut rng);
        let mut hosts = fleet(&mut rng, &collector);
        // Warm the mirrors so the measured round is the steady state:
        // authenticate + signature exchange + a small delta per host.
        let mut t = SimTime::from_secs(0);
        for h in &mut hosts {
            collector.collect(h, true, t);
        }
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            t += SimDuration::minutes(20);
            for h in &mut hosts {
                h.append("md5sums.log", format!("round {round:010}\n").as_bytes());
                criterion::black_box(collector.collect(h, true, t));
            }
        })
    });
    g.finish();
}

fn bench_lossy_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport");
    // A round's worth of deltas for the whole fleet, as one payload stream.
    let payload: Vec<u8> = (0..ROUND_BYTES).map(|i| (i % 251) as u8).collect();
    g.throughput(Throughput::Bytes((FLEET as usize * ROUND_BYTES) as u64));
    g.bench_function("fleet_round_5pct_loss", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut net = Network::new(&Rng::new(seed));
            let sw = net.add_switch();
            let (ma, mb) = (MacAddr::from_id(1), MacAddr::from_id(2));
            net.add_host(ma);
            net.add_host(mb);
            net.attach_host(ma, sw, 0).expect("free port");
            net.attach_host(mb, sw, 1).expect("free port");
            net.loss_prob = 0.05;

            let mut a = Endpoint::new(ma, mb);
            let mut b_ep = Endpoint::new(mb, ma);
            for _ in 0..FLEET {
                a.send(bytes::Bytes::from(payload.clone()));
            }
            let start = SimTime::from_secs(0);
            let deadline = start + SimDuration::days(1);
            drive_until_idle(
                &mut net,
                &mut a,
                &mut b_ep,
                start,
                SimDuration::secs(1),
                deadline,
            );
            assert!(!a.peer_dead(), "5% loss must never kill the session");
            criterion::black_box(b_ep.take_delivered().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_collection_round, bench_lossy_transport);
criterion_main!(benches);
