//! Criterion benchmarks for the data-path substrate: MD5, CRC32, the
//! bzip2-style block pipeline, BWT and the rsync checksums. These are the
//! per-run costs behind T2/T3 — the pipeline every host executed 144 times
//! a day.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use frostlab_compress::block::{compress, decompress};
use frostlab_compress::bwt::bwt_forward;
use frostlab_compress::crc32::crc32;
use frostlab_compress::md5::md5;
use frostlab_compress::recover::recover;
use frostlab_workload::source_tree::{generate, TreeConfig};

fn kernel_tar(total: usize) -> Vec<u8> {
    let tree = generate(
        &TreeConfig {
            total_bytes: total,
            ..TreeConfig::default()
        },
        1,
    );
    frostlab_compress::archive::archive(&tree)
}

fn bench_hashes(c: &mut Criterion) {
    let data = kernel_tar(256 * 1024);
    let mut g = c.benchmark_group("hashes");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("md5_256k", |b| b.iter(|| md5(std::hint::black_box(&data))));
    g.bench_function("crc32_256k", |b| {
        b.iter(|| crc32(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_pipeline");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5));
    for size in [16 * 1024usize, 64 * 1024, 192 * 1024] {
        let data = kernel_tar(size);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("compress_bs512", size), &data, |b, d| {
            b.iter(|| compress(std::hint::black_box(d), 512))
        });
        let packed = compress(&data, 512);
        g.bench_with_input(
            BenchmarkId::new("decompress_bs512", size),
            &packed,
            |b, p| b.iter(|| decompress(std::hint::black_box(p)).expect("clean stream")),
        );
    }
    g.finish();
}

fn bench_bwt(c: &mut Criterion) {
    let data = kernel_tar(64 * 1024);
    let mut g = c.benchmark_group("bwt");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("forward_64k", |b| {
        b.iter(|| bwt_forward(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_recover(c: &mut Criterion) {
    // The T2 forensic path: scan a ~400-block archive with one bad block.
    let data = kernel_tar(200 * 1024);
    let mut packed = compress(&data, 512);
    let mid = packed.len() / 2;
    packed[mid] ^= 0x10;
    let mut g = c.benchmark_group("recover");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Bytes(packed.len() as u64));
    g.bench_function("scan_damaged_archive", |b| {
        b.iter(|| recover(std::hint::black_box(&packed)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashes,
    bench_pipeline,
    bench_bwt,
    bench_recover
);
criterion_main!(benches);
