//! Criterion benchmarks for the simulation substrates: event queue, PRNG,
//! weather generation, thermal stepping, transport and rsync. These bound
//! how much campaign a wall-clock second buys.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use frostlab_climate::presets;
use frostlab_climate::weather::WeatherModel;
use frostlab_netsim::rsyncp;
use frostlab_simkern::event::EventQueue;
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_thermal::enclosure::Enclosure;
use frostlab_thermal::server_case::{ServerCaseThermal, ServerThermalParams};
use frostlab_thermal::tent::{Tent, TentConfig, TentParams};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkern");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-shuffled times exercise heap reordering.
                q.schedule(SimTime::from_secs(((i * 7919) % 10_000) as i64 + 1), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 10_000);
        })
    });
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("rng_normal_100k", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.normal(0.0, 1.0);
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

fn bench_weather(c: &mut Criterion) {
    let mut g = c.benchmark_group("climate");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    // One simulated day at the model's native 60 s step.
    g.bench_function("weather_one_day_minutely", |b| {
        b.iter_with_setup(
            || WeatherModel::new(presets::helsinki_winter_2010(), 3),
            |mut wx| {
                wx.series(
                    SimTime::from_date(2010, 2, 20),
                    SimTime::from_date(2010, 2, 21),
                    SimDuration::minutes(1),
                )
            },
        )
    });
    g.finish();
}

fn bench_thermal(c: &mut Criterion) {
    let mut g = c.benchmark_group("thermal");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("tent_one_day_minutely", |b| {
        let wx = frostlab_climate::weather::WeatherSample {
            t: SimTime::ZERO,
            temp_c: -10.0,
            rh_pct: 85.0,
            wind_ms: 4.0,
            solar_w_m2: 100.0,
            cloud: 0.6,
        };
        b.iter(|| {
            let mut tent = Tent::new(TentParams::default(), TentConfig::initial(), &wx);
            for _ in 0..1440 {
                tent.step(60.0, &wx, 1000.0);
            }
            std::hint::black_box(tent.state())
        })
    });
    g.bench_function("chassis_one_day_minutely", |b| {
        b.iter(|| {
            let mut s = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), -5.0);
            for i in 0..1440 {
                let load = if i % 10 < 3 { 65.0 } else { 15.0 };
                s.step(60.0, -5.0, load, load + 60.0);
            }
            std::hint::black_box(s.cpu_temp_c())
        })
    });
    g.finish();
}

fn bench_rsync(c: &mut Criterion) {
    let old: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut new = old.clone();
    new.extend_from_slice(b"one appended collection line\n");
    let mut g = c.benchmark_group("netsim");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Bytes(new.len() as u64));
    g.bench_function("rsync_append_64k", |b| {
        b.iter(|| rsyncp::sync(std::hint::black_box(&old), std::hint::black_box(&new), 512))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_weather,
    bench_thermal,
    bench_rsync
);
criterion_main!(benches);
