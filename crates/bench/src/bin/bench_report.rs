//! Machine-readable performance report — the repo's perf trajectory.
//!
//! Times three things and writes `BENCH_ensemble.json`:
//!
//! 1. `campaign_week_ms` — one week of the full scripted campaign (the
//!    same workload as the `campaign_week` criterion bench);
//! 2. `ensemble_serial_ms` — N one-week stochastic campaigns on 1 thread;
//! 3. `ensemble_parallel_ms` — the same seed range on all cores (or
//!    `--threads`), plus the resulting `speedup`.
//!
//! While it's at it, it asserts the serial and parallel sweeps produced
//! byte-identical invariant summaries — a free determinism check on every
//! benchmark run.
//!
//! `--check BASELINE.json` compares wall-clock against a committed
//! baseline with a ±`--tolerance` band (default 0.25) and exits 1 on
//! regression — the CI `bench-regression` gate.
//!
//! ```sh
//! bench_report [--jobs N] [--days D] [--threads T] [--out PATH]
//!              [--check BASELINE.json] [--tolerance 0.25]
//! ```

use std::time::Instant;

use frostlab_core::config::{ExperimentConfig, FaultMode};
use frostlab_core::phases::PhaseTiming;
use frostlab_core::ScenarioBuilder;
use frostlab_ensemble::run_summary_sweep;

/// Schema tag for the benchmark JSON.
const SCHEMA: &str = "frostlab-bench-ensemble/v1";

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    schema: String,
    /// Campaigns in the ensemble.
    jobs: u64,
    /// Simulated days per campaign.
    days: i64,
    /// Worker threads the parallel sweep used.
    threads: usize,
    /// One week of the full scripted campaign, ms.
    campaign_week_ms: f64,
    /// Serial (1-thread) ensemble wall-clock, ms.
    ensemble_serial_ms: f64,
    /// Parallel ensemble wall-clock, ms.
    ensemble_parallel_ms: f64,
    /// Serial ms per campaign.
    per_campaign_ms: f64,
    /// ensemble_serial_ms / ensemble_parallel_ms.
    speedup: f64,
    /// Per-phase wall-clock breakdown of the instrumented campaign-week
    /// run (pipeline order). Informational — not checked against the
    /// baseline.
    phase_breakdown: Vec<PhaseTiming>,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1000.0
}

/// Pull one wall-clock metric out of a baseline parsed as a plain JSON
/// value. Field-by-field extraction tolerates older baseline shapes —
/// e.g. a `BENCH_baseline.json` written before `phase_breakdown` existed
/// — which a typed parse would reject for the missing field.
fn baseline_metric(baseline: &serde::Value, name: &str) -> Option<f64> {
    baseline.get(name).and_then(|v| v.as_f64())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [--jobs N] [--days D] [--threads T] [--out PATH] \
         [--check BASELINE.json] [--tolerance F]"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs: u64 = 32;
    let mut days: i64 = 7;
    let mut threads: usize = 0;
    let mut out = String::from("BENCH_ensemble.json");
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 0.25;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => jobs = val("--jobs").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--out" => out = val("--out"),
            "--check" => check = Some(val("--check")),
            "--tolerance" => tolerance = val("--tolerance").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let stochastic_week = |seed: u64| ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        ..ExperimentConfig::short(seed, days)
    };

    eprintln!("bench_report: campaign_week (1 instrumented warmup + 1 timed) …");
    // The warmup doubles as the instrumented run: every phase wrapped in a
    // timing probe yields the per-phase breakdown, while the timed run
    // below stays probe-free so `campaign_week_ms` is comparable with
    // pre-pipeline baselines.
    let (warmup, phase_breakdown) = ScenarioBuilder::paper(ExperimentConfig::short(1, 7))
        .with_timing()
        .build()
        .run_with_timings();
    std::hint::black_box(warmup.workload.total_runs());
    let t = Instant::now();
    let results = ScenarioBuilder::paper(ExperimentConfig::short(1, 7))
        .build()
        .run();
    std::hint::black_box(results.workload.total_runs());
    let campaign_week_ms = ms(t);

    eprintln!("bench_report: serial ensemble ({jobs} × {days}-day campaigns) …");
    let t = Instant::now();
    let serial = run_summary_sweep(0, jobs, 1, stochastic_week);
    let ensemble_serial_ms = ms(t);

    let used = frostlab_ensemble::Ensemble::new(jobs)
        .threads(threads)
        .effective_threads();
    eprintln!("bench_report: parallel ensemble ({used} threads) …");
    let t = Instant::now();
    let parallel = run_summary_sweep(0, jobs, threads, stochastic_week);
    let ensemble_parallel_ms = ms(t);

    assert_eq!(
        serial.invariant_json().expect("serial summary serializes"),
        parallel
            .invariant_json()
            .expect("parallel summary serializes"),
        "thread-count invariance violated: serial and parallel sweeps disagree"
    );

    let report = BenchReport {
        schema: SCHEMA.to_string(),
        jobs,
        days,
        threads: used,
        campaign_week_ms,
        ensemble_serial_ms,
        ensemble_parallel_ms,
        per_campaign_ms: ensemble_serial_ms / jobs.max(1) as f64,
        speedup: ensemble_serial_ms / ensemble_parallel_ms.max(1e-9),
        phase_breakdown,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("bench_report: wrote {out}");

    if let Some(baseline_path) = check {
        let baseline_json = std::fs::read_to_string(&baseline_path).expect("read baseline JSON");
        let baseline: serde::Value =
            serde_json::from_str(&baseline_json).expect("parse baseline JSON");
        let metric_or_die = |name: &str| {
            baseline_metric(&baseline, name)
                .unwrap_or_else(|| panic!("baseline {baseline_path} has no numeric {name:?}"))
        };
        // A baseline recorded at a different thread count measures a
        // different machine shape: its parallel wall-clock (and therefore
        // speedup) is not comparable with this run's. Warn loudly rather
        // than fail — the serial metrics are still meaningful — but any
        // parallel-metric verdict below should be read with suspicion.
        match baseline_metric(&baseline, "threads") {
            Some(base_threads) if base_threads as usize != report.threads => {
                eprintln!(
                    "bench_report: WARNING: baseline {baseline_path} was recorded with \
                     {base_threads:.0} thread(s) but this run used {}; \
                     ensemble_parallel_ms and speedup are not comparable — \
                     re-record the baseline at the current thread count",
                    report.threads
                );
            }
            None => {
                eprintln!(
                    "bench_report: WARNING: baseline {baseline_path} records no thread \
                     count; cannot verify parallel metrics are comparable"
                );
            }
            _ => {}
        }
        let mut regressed = false;
        for (metric, fresh, base) in [
            (
                "campaign_week_ms",
                report.campaign_week_ms,
                metric_or_die("campaign_week_ms"),
            ),
            (
                "ensemble_serial_ms",
                report.ensemble_serial_ms,
                metric_or_die("ensemble_serial_ms"),
            ),
            (
                "ensemble_parallel_ms",
                report.ensemble_parallel_ms,
                metric_or_die("ensemble_parallel_ms"),
            ),
        ] {
            let ratio = fresh / base.max(1e-9);
            let verdict = if ratio > 1.0 + tolerance {
                regressed = true;
                "REGRESSION"
            } else if ratio < 1.0 - tolerance {
                "improved (consider refreshing the baseline)"
            } else {
                "ok"
            };
            eprintln!(
                "bench_report: {metric}: {fresh:.1} ms vs baseline {base:.1} ms \
                 ({ratio:.2}×) — {verdict}"
            );
        }
        if regressed {
            eprintln!(
                "bench_report: wall-clock regressed beyond ±{:.0}% of {baseline_path}",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_report: within ±{:.0}% of {baseline_path}",
            tolerance * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_metrics_survive_a_pre_phase_breakdown_shape() {
        // The exact shape bench_report wrote before phase_breakdown (and
        // any later field) existed; a typed parse would reject it.
        let old = r#"{
            "schema": "frostlab-bench-ensemble/v1",
            "jobs": 32,
            "days": 7,
            "threads": 8,
            "campaign_week_ms": 1200.5,
            "ensemble_serial_ms": 9000,
            "ensemble_parallel_ms": 1500.25,
            "per_campaign_ms": 281.3,
            "speedup": 6.0
        }"#;
        let v: serde::Value = serde_json::from_str(old).expect("valid JSON");
        assert_eq!(baseline_metric(&v, "campaign_week_ms"), Some(1200.5));
        // Integer-shaped numbers widen to f64.
        assert_eq!(baseline_metric(&v, "ensemble_serial_ms"), Some(9000.0));
        assert_eq!(baseline_metric(&v, "ensemble_parallel_ms"), Some(1500.25));
        assert_eq!(baseline_metric(&v, "phase_breakdown"), None);
        assert_eq!(
            baseline_metric(&v, "schema"),
            None,
            "strings are not metrics"
        );
    }
}
