//! Machine-readable performance report — the repo's perf trajectory.
//!
//! Times three things and writes `BENCH_ensemble.json`:
//!
//! 1. `campaign_week_ms` — one week of the full scripted campaign (the
//!    same workload as the `campaign_week` criterion bench);
//! 2. `ensemble_serial_ms` — N one-week stochastic campaigns on 1 thread;
//! 3. `ensemble_parallel_ms` — the same seed range on all cores (or
//!    `--threads`), plus the resulting `speedup`;
//! 4. `hosts_scaling` — one-day stochastic campaigns at 19, 1,000 and
//!    10,000 hosts (informational: reported, never checked against the
//!    baseline — fleet-size scaling is a trajectory to watch, not a gate).
//!
//! While it's at it, it asserts the serial and parallel sweeps produced
//! byte-identical invariant summaries — a free determinism check on every
//! benchmark run.
//!
//! The campaign-week numbers are trustworthy, not just fast to produce:
//! `--warmup` probe-free runs (default 1) absorb cold-start effects (page
//! faults, lazy relocation, branch-predictor training — the first run of a
//! week campaign measures 50–100 % high on this workload), then the
//! per-phase breakdown and `campaign_week_ms` are each the **median of
//! `--reps` runs** (default 3). The ensemble sweeps stay single-pass: at 32
//! campaigns apiece they are already self-averaging.
//!
//! `--check BASELINE.json` compares wall-clock against a committed
//! baseline with a ±`--tolerance` band (default 0.25) and exits 1 on
//! regression — the CI `bench-regression` and `perf-budget` gates. When
//! the baseline carries a `phase_budget_ms` object (hand-maintained, e.g.
//! `"phase_budget_ms": {"weather": 4.8}`), each named phase's median
//! wall-clock is additionally checked against its budget with the same
//! ±tolerance mechanics and a per-phase diff line; a budgeted phase
//! missing from the run is itself a failure.
//!
//! ```sh
//! bench_report [--jobs N] [--days D] [--threads T] [--out PATH]
//!              [--reps N] [--warmup N]
//!              [--check BASELINE.json] [--tolerance 0.25]
//! ```

use std::time::Instant;

use frostlab_core::config::{ExperimentConfig, FaultMode};
use frostlab_core::fleet::FleetSpec;
use frostlab_core::phases::PhaseTiming;
use frostlab_core::ScenarioBuilder;
use frostlab_ensemble::run_summary_sweep;
use frostlab_obs::ObsConfig;

/// Schema tag for the benchmark JSON.
const SCHEMA: &str = "frostlab-bench-ensemble/v1";

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct BenchReport {
    schema: String,
    /// Campaigns in the ensemble.
    jobs: u64,
    /// Simulated days per campaign.
    days: i64,
    /// Worker threads the parallel sweep used.
    threads: usize,
    /// One week of the full scripted campaign, ms.
    campaign_week_ms: f64,
    /// Serial (1-thread) ensemble wall-clock, ms.
    ensemble_serial_ms: f64,
    /// Parallel ensemble wall-clock, ms.
    ensemble_parallel_ms: f64,
    /// Serial ms per campaign.
    per_campaign_ms: f64,
    /// ensemble_serial_ms / ensemble_parallel_ms.
    speedup: f64,
    /// Per-phase wall-clock breakdown of the instrumented campaign-week
    /// runs: per phase, the median `total_ms` across `--reps` warm runs
    /// (pipeline order). Checked against the baseline's `phase_budget_ms`
    /// map when one is present.
    phase_breakdown: Vec<PhaseTiming>,
    /// One-day stochastic campaigns at growing fleet sizes (informational;
    /// never compared against the baseline).
    hosts_scaling: Vec<HostsScaling>,
}

/// One row of the fleet-size scaling sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct HostsScaling {
    /// Fleet size (19 = the paper's own fleet).
    hosts: u32,
    /// Wall-clock of one simulated day, ms (single run — at 10,000 hosts
    /// a rep loop would dominate the whole report's runtime). The run is
    /// instrumented (per-phase probes + the observatory armed), so this
    /// is the *observed* campaign's wall-clock.
    campaign_day_ms: f64,
    /// The observe phase's share of that day, ms. At 10,000 hosts this is
    /// checked against the baseline's `observe_budget_10k_ms` — the
    /// observatory must stay a footnote of the fleet scan, not a second
    /// host-step.
    observe_ms: f64,
    /// Pack-verify runs the fleet completed in that day.
    total_runs: u64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1000.0
}

/// Median with a total order on floats (NaN sorts last and cannot win
/// unless every sample is NaN).
fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of no samples");
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Per-phase median across several instrumented runs. Phase order and call
/// counts come from the first run (every run executes the same pipeline).
fn median_breakdown(runs: &[Vec<PhaseTiming>]) -> Vec<PhaseTiming> {
    let first = match runs.first() {
        Some(first) => first,
        None => return Vec::new(),
    };
    first
        .iter()
        .map(|p| PhaseTiming {
            phase: p.phase.clone(),
            total_ms: median(
                runs.iter()
                    .flat_map(|run| run.iter().filter(|q| q.phase == p.phase))
                    .map(|q| q.total_ms)
                    .collect(),
            ),
            calls: p.calls,
        })
        .collect()
}

/// The baseline's hand-maintained `phase_budget_ms` object, as
/// `(phase, budget_ms)` pairs in file order. Absent or malformed ⇒ empty
/// (old baselines predate per-phase budgets).
fn phase_budgets(baseline: &serde::Value) -> Vec<(String, f64)> {
    match baseline.get("phase_budget_ms") {
        Some(serde::Value::Object(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|b| (k.clone(), b)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Evaluate each phase budget against the measured breakdown: one
/// human-readable diff line per budget, plus whether anything regressed.
/// Same ±tolerance mechanics as the top-level wall-clock metrics; a
/// budgeted phase missing from the breakdown is a regression (a renamed or
/// dropped phase must be re-budgeted deliberately, not silently pass).
fn phase_budget_verdicts(
    budgets: &[(String, f64)],
    breakdown: &[PhaseTiming],
    tolerance: f64,
) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut regressed = false;
    for (phase, budget) in budgets {
        let Some(timing) = breakdown.iter().find(|p| &p.phase == phase) else {
            regressed = true;
            lines.push(format!(
                "phase {phase}: budgeted at {budget:.1} ms but missing from this \
                 run's phase breakdown — REGRESSION"
            ));
            continue;
        };
        let ratio = timing.total_ms / budget.max(1e-9);
        let verdict = if ratio > 1.0 + tolerance {
            regressed = true;
            "REGRESSION"
        } else if ratio < 1.0 - tolerance {
            "improved (consider tightening the budget)"
        } else {
            "ok"
        };
        lines.push(format!(
            "phase {phase}: {:.2} ms vs budget {budget:.2} ms ({ratio:.2}×) — {verdict}",
            timing.total_ms
        ));
    }
    (lines, regressed)
}

/// Pull one wall-clock metric out of a baseline parsed as a plain JSON
/// value. Field-by-field extraction tolerates older baseline shapes —
/// e.g. a `BENCH_baseline.json` written before `phase_breakdown` existed
/// — which a typed parse would reject for the missing field.
fn baseline_metric(baseline: &serde::Value, name: &str) -> Option<f64> {
    baseline.get(name).and_then(|v| v.as_f64())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [--jobs N] [--days D] [--threads T] [--out PATH] \
         [--reps N] [--warmup N] [--check BASELINE.json] [--tolerance F]"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs: u64 = 32;
    let mut days: i64 = 7;
    let mut threads: usize = 0;
    let mut out = String::from("BENCH_ensemble.json");
    let mut reps: usize = 3;
    let mut warmup: usize = 1;
    let mut check: Option<String> = None;
    let mut tolerance: f64 = 0.25;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => jobs = val("--jobs").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--out" => out = val("--out"),
            "--reps" => reps = val("--reps").parse().unwrap_or_else(|_| usage()),
            "--warmup" => warmup = val("--warmup").parse().unwrap_or_else(|_| usage()),
            "--check" => check = Some(val("--check")),
            "--tolerance" => tolerance = val("--tolerance").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let stochastic_week = |seed: u64| ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        ..ExperimentConfig::short(seed, days)
    };

    let reps = reps.max(1);
    eprintln!(
        "bench_report: campaign_week ({warmup} warmup + {reps} instrumented + {reps} timed, \
         medians) …"
    );
    // Cold-start effects (page faults, lazy relocation, predictor training)
    // inflate the first week campaign by 50–100 %, so warm up probe-free
    // first; an early version of this tool let the instrumented run double
    // as the warmup and its breakdown read roughly 2× high.
    for _ in 0..warmup {
        let results = ScenarioBuilder::paper(ExperimentConfig::short(1, 7))
            .build()
            .run();
        std::hint::black_box(results.workload.total_runs());
    }
    // Instrumented reps: every phase wrapped in a timing probe yields the
    // per-phase breakdown (median per phase). The timed reps below stay
    // probe-free so `campaign_week_ms` is comparable with pre-pipeline
    // baselines.
    // The observatory is armed for the instrumented reps (only), so the
    // `observe` phase shows up in the breakdown and can carry its own
    // `phase_budget_ms` entry; the timed reps stay bare.
    let mut breakdown_runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (results, timings) = ScenarioBuilder::paper(ExperimentConfig::short(1, 7))
            .with_observability(ObsConfig::default())
            .with_timing()
            .build()
            .run_with_timings();
        std::hint::black_box(results.workload.total_runs());
        breakdown_runs.push(timings);
    }
    let phase_breakdown = median_breakdown(&breakdown_runs);
    let mut week_runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let results = ScenarioBuilder::paper(ExperimentConfig::short(1, 7))
            .build()
            .run();
        std::hint::black_box(results.workload.total_runs());
        week_runs.push(ms(t));
    }
    let campaign_week_ms = median(week_runs);

    eprintln!("bench_report: serial ensemble ({jobs} × {days}-day campaigns) …");
    let t = Instant::now();
    let serial = run_summary_sweep(0, jobs, 1, stochastic_week);
    let ensemble_serial_ms = ms(t);

    let used = frostlab_ensemble::Ensemble::new(jobs)
        .threads(threads)
        .effective_threads();
    eprintln!("bench_report: parallel ensemble ({used} threads) …");
    let t = Instant::now();
    let parallel = run_summary_sweep(0, jobs, threads, stochastic_week);
    let ensemble_parallel_ms = ms(t);

    assert_eq!(
        serial.invariant_json().expect("serial summary serializes"),
        parallel
            .invariant_json()
            .expect("parallel summary serializes"),
        "thread-count invariance violated: serial and parallel sweeps disagree"
    );

    eprintln!("bench_report: hosts_scaling (one-day campaigns at 19 / 1,000 / 10,000 hosts) …");
    let hosts_scaling = [0u32, 1_000, 10_000]
        .iter()
        .map(|&hosts| {
            let fleet = match hosts {
                0 => FleetSpec::Paper,
                n => FleetSpec::VendorMix { hosts: n },
            };
            let cfg = ExperimentConfig {
                fault_mode: FaultMode::Stochastic,
                fleet,
                ..ExperimentConfig::short(42, 1)
            };
            let t = Instant::now();
            let (results, timings) = ScenarioBuilder::paper(cfg)
                .with_observability(ObsConfig::default())
                .with_timing()
                .build()
                .run_with_timings();
            HostsScaling {
                hosts: if hosts == 0 { 19 } else { hosts },
                campaign_day_ms: ms(t),
                observe_ms: timings
                    .iter()
                    .find(|p| p.phase == "observe")
                    .map_or(f64::NAN, |p| p.total_ms),
                total_runs: results.workload.total_runs(),
            }
        })
        .collect();

    let report = BenchReport {
        schema: SCHEMA.to_string(),
        jobs,
        days,
        threads: used,
        campaign_week_ms,
        ensemble_serial_ms,
        ensemble_parallel_ms,
        per_campaign_ms: ensemble_serial_ms / jobs.max(1) as f64,
        speedup: ensemble_serial_ms / ensemble_parallel_ms.max(1e-9),
        phase_breakdown,
        hosts_scaling,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("bench_report: wrote {out}");

    if let Some(baseline_path) = check {
        let baseline_json = std::fs::read_to_string(&baseline_path).expect("read baseline JSON");
        let baseline: serde::Value =
            serde_json::from_str(&baseline_json).expect("parse baseline JSON");
        let metric_or_die = |name: &str| {
            baseline_metric(&baseline, name)
                .unwrap_or_else(|| panic!("baseline {baseline_path} has no numeric {name:?}"))
        };
        // A baseline recorded at a different thread count measures a
        // different machine shape: its parallel wall-clock (and therefore
        // speedup) is not comparable with this run's. Warn loudly rather
        // than fail — the serial metrics are still meaningful — but any
        // parallel-metric verdict below should be read with suspicion.
        match baseline_metric(&baseline, "threads") {
            Some(base_threads) if base_threads as usize != report.threads => {
                eprintln!(
                    "bench_report: WARNING: baseline {baseline_path} was recorded with \
                     {base_threads:.0} thread(s) but this run used {}; \
                     ensemble_parallel_ms and speedup are not comparable — \
                     re-record the baseline at the current thread count",
                    report.threads
                );
            }
            None => {
                eprintln!(
                    "bench_report: WARNING: baseline {baseline_path} records no thread \
                     count; cannot verify parallel metrics are comparable"
                );
            }
            _ => {}
        }
        let mut regressed = false;
        for (metric, fresh, base) in [
            (
                "campaign_week_ms",
                report.campaign_week_ms,
                metric_or_die("campaign_week_ms"),
            ),
            (
                "ensemble_serial_ms",
                report.ensemble_serial_ms,
                metric_or_die("ensemble_serial_ms"),
            ),
            (
                "ensemble_parallel_ms",
                report.ensemble_parallel_ms,
                metric_or_die("ensemble_parallel_ms"),
            ),
        ] {
            let ratio = fresh / base.max(1e-9);
            let verdict = if ratio > 1.0 + tolerance {
                regressed = true;
                "REGRESSION"
            } else if ratio < 1.0 - tolerance {
                "improved (consider refreshing the baseline)"
            } else {
                "ok"
            };
            eprintln!(
                "bench_report: {metric}: {fresh:.1} ms vs baseline {base:.1} ms \
                 ({ratio:.2}×) — {verdict}"
            );
        }
        // Per-phase budgets: the committed baseline may carry a
        // hand-maintained `phase_budget_ms` object gating individual
        // phases (the `perf-budget` CI job leans on the `weather` entry).
        let budgets = phase_budgets(&baseline);
        let (lines, phases_regressed) =
            phase_budget_verdicts(&budgets, &report.phase_breakdown, tolerance);
        for line in &lines {
            eprintln!("bench_report: {line}");
        }
        // The observatory's scaling gate: at 10,000 hosts the observe
        // phase must stay within its own committed budget. Baselines
        // predating the observatory carry no `observe_budget_10k_ms` and
        // skip the check.
        let mut observe_regressed = false;
        if let Some(budget) = baseline_metric(&baseline, "observe_budget_10k_ms") {
            let measured = report
                .hosts_scaling
                .iter()
                .find(|row| row.hosts == 10_000)
                .map_or(f64::NAN, |row| row.observe_ms);
            let ratio = measured / budget.max(1e-9);
            let verdict = if !ratio.is_finite() || ratio > 1.0 + tolerance {
                observe_regressed = true;
                "REGRESSION"
            } else if ratio < 1.0 - tolerance {
                "improved (consider tightening the budget)"
            } else {
                "ok"
            };
            eprintln!(
                "bench_report: observe@10k hosts: {measured:.2} ms vs budget \
                 {budget:.2} ms ({ratio:.2}×) — {verdict}"
            );
        }
        if regressed || phases_regressed || observe_regressed {
            eprintln!(
                "bench_report: wall-clock regressed beyond ±{:.0}% of {baseline_path}",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_report: within ±{:.0}% of {baseline_path}",
            tolerance * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_metrics_survive_a_pre_phase_breakdown_shape() {
        // The exact shape bench_report wrote before phase_breakdown (and
        // any later field) existed; a typed parse would reject it.
        let old = r#"{
            "schema": "frostlab-bench-ensemble/v1",
            "jobs": 32,
            "days": 7,
            "threads": 8,
            "campaign_week_ms": 1200.5,
            "ensemble_serial_ms": 9000,
            "ensemble_parallel_ms": 1500.25,
            "per_campaign_ms": 281.3,
            "speedup": 6.0
        }"#;
        let v: serde::Value = serde_json::from_str(old).expect("valid JSON");
        assert_eq!(baseline_metric(&v, "campaign_week_ms"), Some(1200.5));
        // Integer-shaped numbers widen to f64.
        assert_eq!(baseline_metric(&v, "ensemble_serial_ms"), Some(9000.0));
        assert_eq!(baseline_metric(&v, "ensemble_parallel_ms"), Some(1500.25));
        assert_eq!(baseline_metric(&v, "phase_breakdown"), None);
        assert_eq!(
            baseline_metric(&v, "schema"),
            None,
            "strings are not metrics"
        );
    }

    #[test]
    fn median_is_order_insensitive_and_interpolates() {
        assert_eq!(median(vec![3.0]), 3.0);
        assert_eq!(median(vec![9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(vec![4.0, 1.0]), 2.5);
        // NaN sorts last under total_cmp and cannot displace a real median.
        assert_eq!(median(vec![f64::NAN, 2.0, 1.0]), 2.0);
    }

    #[test]
    fn median_breakdown_takes_per_phase_medians() {
        let run = |w: f64, t: f64| {
            vec![
                PhaseTiming {
                    phase: "weather".into(),
                    total_ms: w,
                    calls: 10081,
                },
                PhaseTiming {
                    phase: "enclosure-thermal".into(),
                    total_ms: t,
                    calls: 10081,
                },
            ]
        };
        let merged = median_breakdown(&[run(9.0, 2.0), run(4.0, 1.0), run(5.0, 3.0)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].phase, "weather");
        assert_eq!(merged[0].total_ms, 5.0);
        assert_eq!(merged[0].calls, 10081);
        assert_eq!(merged[1].total_ms, 2.0);
        assert!(median_breakdown(&[]).is_empty());
    }

    #[test]
    fn phase_budgets_parse_from_baseline_and_tolerate_absence() {
        let with = r#"{"phase_budget_ms": {"weather": 4.8, "collection": 1.0}}"#;
        let v: serde::Value = serde_json::from_str(with).expect("valid JSON");
        assert_eq!(
            phase_budgets(&v),
            vec![
                ("weather".to_string(), 4.8),
                ("collection".to_string(), 1.0)
            ]
        );
        let without = r#"{"campaign_week_ms": 50.0}"#;
        let v: serde::Value = serde_json::from_str(without).expect("valid JSON");
        assert!(phase_budgets(&v).is_empty());
    }

    #[test]
    fn phase_budget_verdicts_flag_overruns_and_missing_phases() {
        let breakdown = vec![
            PhaseTiming {
                phase: "weather".into(),
                total_ms: 4.5,
                calls: 10081,
            },
            PhaseTiming {
                phase: "script".into(),
                total_ms: 2.0,
                calls: 10081,
            },
        ];
        // Within band: ok.
        let (lines, bad) = phase_budget_verdicts(&[("weather".into(), 4.8)], &breakdown, 0.25);
        assert!(!bad, "{lines:?}");
        assert!(lines[0].contains("ok"), "{lines:?}");
        // Over budget beyond tolerance: regression.
        let (lines, bad) = phase_budget_verdicts(&[("script".into(), 1.0)], &breakdown, 0.25);
        assert!(bad);
        assert!(lines[0].contains("REGRESSION"), "{lines:?}");
        // Well under budget: improvement hint, not a failure.
        let (lines, bad) = phase_budget_verdicts(&[("weather".into(), 30.0)], &breakdown, 0.25);
        assert!(!bad);
        assert!(lines[0].contains("improved"), "{lines:?}");
        // Budgeted phase absent from the run: fails loudly.
        let (lines, bad) = phase_budget_verdicts(&[("ghost".into(), 1.0)], &breakdown, 0.25);
        assert!(bad);
        assert!(lines[0].contains("missing"), "{lines:?}");
        // No budgets: nothing to report.
        let (lines, bad) = phase_budget_verdicts(&[], &breakdown, 0.25);
        assert!(lines.is_empty() && !bad);
    }
}
