//! Ensemble sweep CLI — the determinism gate's workhorse.
//!
//! Runs a contiguous seed range of stochastic campaigns on the parallel
//! ensemble engine and prints the streaming [`EnsembleSummary`](frostlab_ensemble::EnsembleSummary) as JSON.
//! Because the engine merges in seed order regardless of completion
//! order, the `--invariant` output is byte-identical for any `--threads`
//! value — CI runs it at 1 and 4 threads and `diff`s the files.
//!
//! `--traced` arms every campaign's tracer in metrics-only mode and
//! prints the [`EnsembleMetrics`](frostlab_ensemble::EnsembleMetrics) report instead of the summary. That
//! report carries no execution metadata, so it too must be byte-identical
//! across `--threads` values — the `trace-determinism` CI job diffs it.
//!
//! `--matrix FILE` switches to matrix mode: FILE is a `MatrixSpec` JSON
//! manifest (the same format `farm submit` writes) and the sweep runs
//! every job of the matrix in its canonical scenario-major, seed-minor
//! order — the single-process reference a farm run of the same matrix is
//! byte-compared against in the crash-resume CI gate.
//!
//! ```sh
//! ensemble [--seeds N] [--start-seed S] [--threads T] [--days D]
//!          [--hosts H] [--matrix FILE] [--invariant] [--traced]
//! ```
//!
//! `--days 0` (default 7) runs the full Feb 12 – May 13 campaign.
//! `--hosts 0` (default) runs the paper's 19 machines; any other value
//! runs a generated vendor-mix fleet of that size (the CI `fleet-scale`
//! job sweeps a 1,000-host campaign at 1 and 4 threads and diffs the
//! invariant output).

use frostlab_core::config::{ExperimentConfig, FaultMode};
use frostlab_core::fleet::FleetSpec;
use frostlab_core::MatrixSpec;
use frostlab_ensemble::{run_matrix_sweep, run_summary_sweep, run_traced_sweep};
use frostlab_trace::TraceConfig;

fn usage() -> ! {
    eprintln!(
        "usage: ensemble [--seeds N] [--start-seed S] [--threads T] [--days D] \
         [--hosts H] [--matrix FILE] [--invariant] [--traced]"
    );
    std::process::exit(2);
}

fn main() {
    let mut seeds: u64 = 32;
    let mut start_seed: u64 = 0;
    let mut threads: usize = 0;
    let mut days: i64 = 7;
    let mut hosts: u32 = 0;
    let mut matrix_file: Option<String> = None;
    let mut invariant = false;
    let mut traced = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--start-seed" => start_seed = val("--start-seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--hosts" => hosts = val("--hosts").parse().unwrap_or_else(|_| usage()),
            "--matrix" => matrix_file = Some(val("--matrix")),
            "--invariant" => invariant = true,
            "--traced" => traced = true,
            _ => usage(),
        }
    }

    if let Some(path) = matrix_file {
        if traced {
            eprintln!("--matrix and --traced are mutually exclusive");
            std::process::exit(2);
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read matrix manifest {path}: {e}"));
        let matrix = MatrixSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("invalid matrix manifest {path}: {e}"));
        let summary = run_matrix_sweep(&matrix, threads)
            .unwrap_or_else(|e| panic!("invalid matrix {path}: {e}"));
        let json = if invariant {
            summary.invariant_json()
        } else {
            summary.to_json()
        };
        println!("{}", json.expect("summary serializes"));
        return;
    }

    let fleet = match hosts {
        0 => FleetSpec::Paper,
        n => FleetSpec::VendorMix { hosts: n },
    };
    let make_config = move |seed: u64| {
        if days > 0 {
            ExperimentConfig {
                fault_mode: FaultMode::Stochastic,
                fleet,
                ..ExperimentConfig::short(seed, days)
            }
        } else {
            ExperimentConfig {
                fleet,
                ..ExperimentConfig::paper_stochastic(seed)
            }
        }
    };

    if traced {
        let (_, metrics) = run_traced_sweep(
            start_seed,
            seeds,
            threads,
            TraceConfig::metrics_only(),
            make_config,
        );
        println!("{}", metrics.to_json().expect("metrics serialize"));
        return;
    }

    let summary = run_summary_sweep(start_seed, seeds, threads, make_config);

    let json = if invariant {
        summary.invariant_json()
    } else {
        summary.to_json()
    };
    println!("{}", json.expect("summary serializes"));
}
