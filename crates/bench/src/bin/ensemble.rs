//! Ensemble sweep CLI — the determinism gate's workhorse.
//!
//! Runs a contiguous seed range of stochastic campaigns on the parallel
//! ensemble engine and prints the streaming [`EnsembleSummary`] as JSON.
//! Because the engine merges in seed order regardless of completion
//! order, the `--invariant` output is byte-identical for any `--threads`
//! value — CI runs it at 1 and 4 threads and `diff`s the files.
//!
//! ```sh
//! ensemble [--seeds N] [--start-seed S] [--threads T] [--days D] [--invariant]
//! ```
//!
//! `--days 0` (default 7) runs the full Feb 12 – May 13 campaign.

use frostlab_core::config::{ExperimentConfig, FaultMode};
use frostlab_ensemble::run_summary_sweep;

fn usage() -> ! {
    eprintln!(
        "usage: ensemble [--seeds N] [--start-seed S] [--threads T] [--days D] [--invariant]"
    );
    std::process::exit(2);
}

fn main() {
    let mut seeds: u64 = 32;
    let mut start_seed: u64 = 0;
    let mut threads: usize = 0;
    let mut days: i64 = 7;
    let mut invariant = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--start-seed" => start_seed = val("--start-seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--invariant" => invariant = true,
            _ => usage(),
        }
    }

    let summary = run_summary_sweep(start_seed, seeds, threads, |seed| {
        if days > 0 {
            ExperimentConfig {
                fault_mode: FaultMode::Stochastic,
                ..ExperimentConfig::short(seed, days)
            }
        } else {
            ExperimentConfig::paper_stochastic(seed)
        }
    });

    let json = if invariant {
        summary.invariant_json()
    } else {
        summary.to_json()
    };
    println!("{}", json.expect("summary serializes"));
}
