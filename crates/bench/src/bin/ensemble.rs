//! Ensemble sweep CLI — the determinism gate's workhorse.
//!
//! Runs a contiguous seed range of stochastic campaigns on the parallel
//! ensemble engine and prints the streaming [`EnsembleSummary`] as JSON.
//! Because the engine merges in seed order regardless of completion
//! order, the `--invariant` output is byte-identical for any `--threads`
//! value — CI runs it at 1 and 4 threads and `diff`s the files.
//!
//! `--traced` arms every campaign's tracer in metrics-only mode and
//! prints the [`EnsembleMetrics`] report instead of the summary. That
//! report carries no execution metadata, so it too must be byte-identical
//! across `--threads` values — the `trace-determinism` CI job diffs it.
//!
//! ```sh
//! ensemble [--seeds N] [--start-seed S] [--threads T] [--days D]
//!          [--invariant] [--traced]
//! ```
//!
//! `--days 0` (default 7) runs the full Feb 12 – May 13 campaign.

use frostlab_core::config::{ExperimentConfig, FaultMode};
use frostlab_ensemble::{run_summary_sweep, run_traced_sweep};
use frostlab_trace::TraceConfig;

fn usage() -> ! {
    eprintln!(
        "usage: ensemble [--seeds N] [--start-seed S] [--threads T] [--days D] \
         [--invariant] [--traced]"
    );
    std::process::exit(2);
}

fn main() {
    let mut seeds: u64 = 32;
    let mut start_seed: u64 = 0;
    let mut threads: usize = 0;
    let mut days: i64 = 7;
    let mut invariant = false;
    let mut traced = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--start-seed" => start_seed = val("--start-seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--invariant" => invariant = true,
            "--traced" => traced = true,
            _ => usage(),
        }
    }

    let make_config = |seed: u64| {
        if days > 0 {
            ExperimentConfig {
                fault_mode: FaultMode::Stochastic,
                ..ExperimentConfig::short(seed, days)
            }
        } else {
            ExperimentConfig::paper_stochastic(seed)
        }
    };

    if traced {
        let (_, metrics) = run_traced_sweep(
            start_seed,
            seeds,
            threads,
            TraceConfig::metrics_only(),
            make_config,
        );
        println!("{}", metrics.to_json().expect("metrics serialize"));
        return;
    }

    let summary = run_summary_sweep(start_seed, seeds, threads, make_config);

    let json = if invariant {
        summary.invariant_json()
    } else {
        summary.to_json()
    };
    println!("{}", json.expect("summary serializes"));
}
