//! Campaign farm CLI — submit, run, resume, and inspect a durable,
//! crash-resumable sweep.
//!
//! ```sh
//! # Expand a climate × chaos × seed matrix into a farm directory:
//! farm submit --dir sweep --climates helsinki,new-mexico --days 7 \
//!      --seeds 8 [--start-seed 0] [--chaos both] [--poison N]
//!
//! # Work the queue (safe to kill -9 at any instant):
//! farm run --dir sweep --workers 4
//!
//! # Pick up where a killed run left off (completed jobs become cache
//! # hits; orphaned leases are requeued; output bytes are unchanged):
//! farm resume --dir sweep --workers 2
//!
//! # Queue census:
//! farm status --dir sweep
//! ```
//!
//! `--chaos` takes `off` (default), `on`, or `both` (each climate twice,
//! with and without §4.2.1-grade chaos injection). `--poison N` appends N
//! deliberately panicking scenarios to exercise retry + quarantine.
//!
//! Once every job is terminal, the farm writes `merged.json` — the
//! invariant-form ensemble summary, byte-identical to
//! `ensemble --matrix manifest.json --invariant` at any worker count and
//! across any number of kill/resume cycles.

use frostlab_core::spec::CLIMATE_PRESETS;
use frostlab_core::{MatrixSpec, ScenarioSpec};
use frostlab_farm::{Farm, FarmError, RunOptions};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: farm <submit|run|resume|status> --dir DIR [options]\n\
         \n\
         submit: --climates a,b,.. [--days D] [--seeds N] [--start-seed S]\n\
         \x20       [--chaos off|on|both] [--force-ecc] [--poison N]\n\
         \x20       (climates: {})\n\
         run/resume: [--workers N] [--max-attempts N]\n\
         status: no extra options",
        CLIMATE_PRESETS.join(", ")
    );
    std::process::exit(2);
}

struct Cli {
    dir: PathBuf,
    climates: Vec<String>,
    days: i64,
    seeds: u64,
    start_seed: u64,
    chaos: String,
    force_ecc: bool,
    poison: u64,
    workers: usize,
    max_attempts: u64,
}

fn parse_cli(mut args: std::env::Args) -> (String, Cli) {
    let Some(command) = args.next() else { usage() };
    let mut cli = Cli {
        dir: PathBuf::new(),
        climates: Vec::new(),
        days: 7,
        seeds: 8,
        start_seed: 0,
        chaos: "off".to_string(),
        force_ecc: false,
        poison: 0,
        workers: 0,
        max_attempts: 3,
    };
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => cli.dir = PathBuf::from(val("--dir")),
            "--climates" => {
                cli.climates = val("--climates").split(',').map(str::to_string).collect();
            }
            "--days" => cli.days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--seeds" => cli.seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--start-seed" => {
                cli.start_seed = val("--start-seed").parse().unwrap_or_else(|_| usage())
            }
            "--chaos" => cli.chaos = val("--chaos"),
            "--force-ecc" => cli.force_ecc = true,
            "--poison" => cli.poison = val("--poison").parse().unwrap_or_else(|_| usage()),
            "--workers" => cli.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--max-attempts" => {
                cli.max_attempts = val("--max-attempts").parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    if cli.dir.as_os_str().is_empty() {
        usage();
    }
    (command, cli)
}

/// Expand the CLI axes into a matrix: climate-major, chaos variants
/// after their plain siblings, poison scenarios last.
fn build_matrix(cli: &Cli) -> MatrixSpec {
    let chaos_variants: &[bool] = match cli.chaos.as_str() {
        "off" => &[false],
        "on" => &[true],
        "both" => &[false, true],
        other => {
            eprintln!("unknown --chaos value {other:?} (want off|on|both)");
            std::process::exit(2);
        }
    };
    let mut scenarios = Vec::new();
    for climate in &cli.climates {
        for &chaos in chaos_variants {
            let name = if chaos {
                format!("{climate}+chaos")
            } else {
                climate.clone()
            };
            let mut spec = ScenarioSpec::new(&name, cli.days, climate);
            spec.chaos = chaos;
            spec.force_ecc = cli.force_ecc;
            scenarios.push(spec);
        }
    }
    for i in 0..cli.poison {
        let climate = cli
            .climates
            .first()
            .map(String::as_str)
            .unwrap_or("helsinki");
        let mut spec = ScenarioSpec::new(&format!("poison-{i}"), cli.days, climate);
        spec.poison = true;
        scenarios.push(spec);
    }
    MatrixSpec {
        scenarios,
        seed_start: cli.start_seed,
        seeds: cli.seeds,
    }
}

fn run(resume: bool, cli: &Cli) -> Result<(), FarmError> {
    let mut farm = Farm::open(&cli.dir)?;
    let before = farm.status();
    if resume && before.torn_tail_recovered {
        eprintln!(
            "recovered torn WAL tail ({} intact records)",
            before.wal_records
        );
    }
    let outcome = farm.run(RunOptions {
        workers: cli.workers,
        max_attempts: cli.max_attempts,
        handle_sigint: true,
        ..RunOptions::default()
    })?;
    eprintln!(
        "workers={} ran={} cached={} quarantined={} orphans-requeued={} drained={} settled={}",
        outcome.workers,
        outcome.jobs_run,
        outcome.jobs_cached,
        outcome.jobs_quarantined,
        outcome.orphans_requeued,
        outcome.drained,
        outcome.settled,
    );
    print!("{}", outcome.prometheus);
    if outcome.settled {
        eprintln!("merged summary: {}", cli.dir.join("merged.json").display());
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args();
    args.next(); // binary name
    let (command, cli) = parse_cli(args);

    let result = match command.as_str() {
        "submit" => {
            if cli.climates.is_empty() {
                usage();
            }
            let matrix = build_matrix(&cli);
            Farm::submit(&cli.dir, &matrix).map(|farm| {
                eprintln!(
                    "submitted {} jobs ({} scenarios x {} seeds) to {}",
                    matrix.jobs(),
                    matrix.scenarios.len(),
                    matrix.seeds,
                    farm.dir().display()
                );
            })
        }
        "run" => run(false, &cli),
        "resume" => run(true, &cli),
        "status" => Farm::open(&cli.dir).map(|farm| {
            let s = farm.status();
            println!(
                "total={} pending={} leased={} done={} cached={} quarantined={} \
                 epoch={} wal-records={} torn-tail-recovered={}",
                s.total,
                s.pending,
                s.leased,
                s.done,
                s.cached,
                s.quarantined,
                s.epoch,
                s.wal_records,
                s.torn_tail_recovered,
            );
        }),
        _ => usage(),
    };

    if let Err(err) = result {
        eprintln!("farm {command}: {err}");
        std::process::exit(1);
    }
}
