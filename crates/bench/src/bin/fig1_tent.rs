//! Fig. 1 reproduction: the tent schematic, parameterized.
fn main() {
    println!(
        "{}",
        frostlab_core::figures::fig1_tent_schematic(&frostlab_thermal::tent::TentParams::default())
    );
}
