//! Fig. 2 reproduction: dates when servers were installed.
use frostlab_simkern::time::SimTime;
fn main() {
    println!(
        "{}",
        frostlab_core::figures::fig2_render(SimTime::from_date(2010, 5, 13))
    );
    for row in frostlab_core::figures::fig2_timeline() {
        println!("  host #{:02}: {} {}", row.id, row.at.date(), row.note);
    }
}
