//! Fig. 3 reproduction: temperatures outside and inside the tent.
//! Prints the full CSV on stdout; summary and marks on stderr.
fn main() {
    let seed = frostlab_bench::seed_from_args();
    let results = frostlab_bench::scripted_campaign(seed);
    let fig = frostlab_core::figures::fig3_temperature(&results);
    eprintln!("Fig. 3 (seed {seed}) — {}", fig.summary);
    for (mark, t) in &fig.marks {
        eprintln!("  mark {mark}: {}", t.datetime());
    }
    for (a, b) in &fig.inside_gaps {
        eprintln!("  inside-channel gap: {} → {}", a.datetime(), b.datetime());
    }
    print!("{}", fig.csv);
}
