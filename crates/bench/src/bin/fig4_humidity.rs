//! Fig. 4 reproduction: relative humidities inside and outside the tent.
fn main() {
    let seed = frostlab_bench::seed_from_args();
    let results = frostlab_bench::scripted_campaign(seed);
    let fig = frostlab_core::figures::fig4_humidity(&results);
    eprintln!("Fig. 4 (seed {seed}) — {}", fig.summary);
    for (mark, t) in &fig.marks {
        eprintln!("  mark {mark}: {}", t.datetime());
    }
    print!("{}", fig.csv);
}
