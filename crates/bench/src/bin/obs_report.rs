//! Fleet health digest CLI — observed campaigns, operator-facing output.
//!
//! Runs one or more campaigns with the observatory (and tracer) armed
//! and writes the health artifacts next to each other:
//!
//! * `digest.json` — per-campaign [`HealthDigest`]s, in seed order;
//! * `alerts.json` — the folded [`EnsembleAlerts`] report;
//! * `alerts.jsonl` — the sweep's alert timeline, one tagged JSON
//!   object per line (the unit CI byte-diffs across thread counts);
//! * `flightrec/seed-<S>/<fnv1a>.jsonl` — content-named flight-recorder
//!   dumps snapshotted when alerts fired or incidents opened.
//!
//! Every byte of every artifact is a pure function of the flags: no
//! wall-clock, no thread IDs, no map iteration order leaks in. The
//! `obs-determinism` CI job runs this binary at `--threads 1` and
//! `--threads 4` and `diff`s the output directories.
//!
//! ```sh
//! obs_report [--seed S] [--seeds N] [--threads T] [--days D]
//!            [--hosts H] [--out-dir DIR] [--top-k K]
//! ```
//!
//! `--days 0` runs the full scripted Feb 12 – May 13 paper campaign; at
//! seed 42 (the golden seed) the binary then additionally gates on the
//! paper's corruption tally — the `corruption-rate` SLO must report
//! exactly the paper's 5 bad hashes and stay within its 5/27,627
//! budget (the paper's runs count is a snapshot at writing time; the
//! full campaign accumulates more runs, so the *ratio* is the
//! invariant), or the exit code is 1.

use frostlab_core::config::ExperimentConfig;
use frostlab_core::fleet::FleetSpec;
use frostlab_core::ScenarioBuilder;
use frostlab_ensemble::{Ensemble, EnsembleAlerts, SeedAlerts};
use frostlab_obs::{CampaignObs, HealthDigest, ObsConfig};
use frostlab_trace::TraceConfig;

/// The paper's corruption tally: 5 wrong md5sums, budgeted against the
/// 27,627 runs the paper had counted at writing time.
const PAPER_BAD_HASHES: u64 = 5;
const PAPER_BUDGET: f64 = 5.0 / 27_627.0;

fn usage() -> ! {
    eprintln!(
        "usage: obs_report [--seed S] [--seeds N] [--threads T] [--days D] \
         [--hosts H] [--out-dir DIR] [--top-k K]"
    );
    std::process::exit(2);
}

fn main() {
    let mut seed: u64 = 42;
    let mut seeds: u64 = 1;
    let mut threads: usize = 0;
    let mut days: i64 = 7;
    let mut hosts: u32 = 0;
    let mut out_dir = String::from("obs-out");
    let mut top_k: usize = 5;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--seeds" => seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--hosts" => hosts = val("--hosts").parse().unwrap_or_else(|_| usage()),
            "--out-dir" => out_dir = val("--out-dir"),
            "--top-k" => top_k = val("--top-k").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if seeds == 0 {
        usage();
    }

    let campaign_name = match (days > 0, hosts) {
        (true, 0) => format!("short-{days}d"),
        (true, n) => format!("short-{days}d-{n}h"),
        (false, 0) => "paper-scripted".to_string(),
        (false, n) => format!("paper-scripted-{n}h"),
    };
    let make_config = |s: u64| {
        let mut cfg = if days > 0 {
            ExperimentConfig::short(s, days)
        } else {
            ExperimentConfig::paper_scripted(s)
        };
        if hosts > 0 {
            cfg.fleet = FleetSpec::VendorMix { hosts };
        }
        cfg
    };

    eprintln!("obs_report: observing {seeds} campaign(s) of {campaign_name:?} from seed {seed} …");
    // The engine's ordered sink folds per-seed records in seed order on
    // this thread, so every artifact below is thread-count invariant.
    let mut observed: Vec<(u64, CampaignObs)> = Vec::with_capacity(seeds as usize);
    Ensemble::new(seeds).threads(threads).run_scenarios(
        |i| {
            ScenarioBuilder::paper(make_config(seed + i))
                .with_tracing(TraceConfig::default())
                .with_observability(ObsConfig::default())
                .build()
        },
        |r| {
            (
                r.seed,
                r.obs
                    .clone()
                    .expect("with_observability arms the observatory"),
            )
        },
        |_, rec| observed.push(rec),
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut alerts = EnsembleAlerts::new(seed);
    let mut digests: Vec<HealthDigest> = Vec::with_capacity(observed.len());
    let mut flight_files = 0usize;
    for (s, obs) in &observed {
        alerts.absorb(SeedAlerts::from_obs(*s, obs));
        let digest = HealthDigest::from_obs(&campaign_name, *s, obs, top_k);
        println!("{}", digest.render());
        digests.push(digest);
        if !obs.flights.is_empty() {
            let dir = format!("{out_dir}/flightrec/seed-{s}");
            std::fs::create_dir_all(&dir).expect("create flightrec directory");
            for dump in &obs.flights {
                std::fs::write(format!("{}/{}", dir, dump.file_name()), dump.to_jsonl())
                    .expect("write flight dump");
                flight_files += 1;
            }
        }
    }

    let write = |name: &str, body: String| {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, body).expect("write artifact");
        eprintln!("obs_report: wrote {path}");
    };
    write(
        "digest.json",
        format!(
            "{}\n",
            serde_json::to_string_pretty(&digests).expect("digests serialize")
        ),
    );
    write(
        "alerts.json",
        format!("{}\n", alerts.to_json().expect("report serializes")),
    );
    write("alerts.jsonl", alerts.timeline_jsonl());
    eprintln!(
        "obs_report: {} alert event(s), {} flight dump(s) across {} campaign(s)",
        alerts.total_alerts(),
        flight_files,
        observed.len()
    );

    // The paper gate: the scripted campaign at the golden seed must
    // reproduce the published corruption tally — exactly 5 bad hashes,
    // and a campaign ratio inside the paper's 5/27,627 budget (the SLO
    // spec's own target).
    if days <= 0 && hosts == 0 {
        for (s, obs) in &observed {
            if *s != 42 {
                continue;
            }
            let slo = obs
                .slos
                .iter()
                .find(|a| a.slo == "corruption-rate")
                .expect("paper defaults carry the corruption-rate SLO");
            let target_ok = (slo.target - PAPER_BUDGET).abs() < 1e-12;
            if slo.bad != PAPER_BAD_HASHES || !slo.attained || !target_ok {
                eprintln!(
                    "obs_report: PAPER GATE FAILED: corruption-rate saw {}/{} \
                     against target {:.6e}, attained={} (expected exactly \
                     {PAPER_BAD_HASHES} bad hashes within the 5/27,627 budget)",
                    slo.bad, slo.total, slo.target, slo.attained
                );
                std::process::exit(1);
            }
            eprintln!(
                "obs_report: paper gate ok — corruption-rate {}/{} (ratio {:.3e}) \
                 within the paper's 5/27,627 budget",
                slo.bad, slo.total, slo.ratio
            );
        }
    }
}
