//! Reproduce every figure and table in one run — the EXPERIMENTS.md
//! evidence generator. Figure CSVs are summarized (run the fig3/fig4
//! binaries for the full series).
use frostlab_core::config::ExperimentConfig;
fn main() {
    let seed = frostlab_bench::seed_from_args();
    println!("frostlab repro_all — seed {seed}\n");

    println!(
        "{}",
        frostlab_core::figures::fig1_tent_schematic(&frostlab_thermal::tent::TentParams::default())
    );
    println!(
        "{}",
        frostlab_core::figures::fig2_render(frostlab_simkern::time::SimTime::from_date(
            2010, 5, 13
        ))
    );

    let proto = frostlab_core::prototype::run_prototype(&ExperimentConfig::paper_scripted(seed));
    println!("{}", frostlab_core::tables::t5_prototype(&proto));

    eprintln!("running the scripted campaign…");
    let results = frostlab_bench::scripted_campaign(seed);

    let f3 = frostlab_core::figures::fig3_temperature(&results);
    println!("Fig. 3 — {}", f3.summary);
    for (mark, t) in &f3.marks {
        println!("  mark {mark}: {}", t.datetime());
    }
    let f4 = frostlab_core::figures::fig4_humidity(&results);
    println!("Fig. 4 — {}\n", f4.summary);

    println!("{}", frostlab_core::tables::t1_failures(&results));
    println!("{}", frostlab_core::tables::t2_hashes(&results));
    println!("{}", frostlab_core::tables::t3_memory(&results));
    println!("{}", frostlab_core::tables::t4_pue());
    println!("{}", frostlab_core::tables::t6_savings(seed));

    println!(
        "collection availability {:.1} % | tent energy {:.0} kWh | lascar outliers removed {}",
        100.0 * results.collection_availability(),
        results.tent_energy_metered_kwh,
        results.lascar_outliers_removed
    );

    match results.summary().to_json() {
        Ok(json) => println!("\nmachine-readable summary:\n{json}"),
        Err(e) => eprintln!("summary serialization failed: {e}"),
    }
}
