//! T1 reproduction: the failure-rate comparison.
fn main() {
    let seed = frostlab_bench::seed_from_args();
    let results = frostlab_bench::scripted_campaign(seed);
    println!("{}", frostlab_core::tables::t1_failures(&results));
}
