//! T2 reproduction: wrong md5sums and the recover forensics.
fn main() {
    let seed = frostlab_bench::seed_from_args();
    let results = frostlab_bench::scripted_campaign(seed);
    println!("{}", frostlab_core::tables::t2_hashes(&results));
}
