//! T3 reproduction: the memory-fault exposure estimate.
fn main() {
    let seed = frostlab_bench::seed_from_args();
    let results = frostlab_bench::scripted_campaign(seed);
    println!("{}", frostlab_core::tables::t3_memory(&results));
}
