//! T5 reproduction: the plastic-box prototype weekend.
use frostlab_core::config::ExperimentConfig;
fn main() {
    let seed = frostlab_bench::seed_from_args();
    let report = frostlab_core::prototype::run_prototype(&ExperimentConfig::paper_scripted(seed));
    println!("{}", frostlab_core::tables::t5_prototype(&report));
}
