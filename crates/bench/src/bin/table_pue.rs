//! T4 reproduction: the §5 PUE arithmetic (no simulation needed).
fn main() {
    println!("{}", frostlab_core::tables::t4_pue());
}
