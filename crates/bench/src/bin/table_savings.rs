//! T6 reproduction: economizer savings across the three study climates.
fn main() {
    let seed = frostlab_bench::seed_from_args();
    println!("{}", frostlab_core::tables::t6_savings(seed));
}
