//! Trace exporter CLI — one traced campaign, three export formats.
//!
//! Runs a single campaign with the tracer armed and writes the exports
//! next to each other:
//!
//! * `trace.jsonl` — the line-delimited event log ([`to_jsonl`]);
//! * `trace_perfetto.json` — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing` ([`to_chrome_trace`]);
//! * `metrics.prom` — final metric values in Prometheus text exposition
//!   format ([`to_prometheus`]).
//!
//! Every byte of every export is a pure function of `(--seed, --days,
//! --metrics-only)`: no wall-clock, no thread IDs, no map iteration
//! order leaks in. The `trace-determinism` CI job runs this binary twice
//! and `diff`s the output directories.
//!
//! ```sh
//! trace_report [--seed S] [--days D] [--out-dir DIR] [--metrics-only]
//! ```
//!
//! `--days 0` (default 7) runs the full Feb 12 – May 13 campaign;
//! `--metrics-only` skips event buffering (empty jsonl/perfetto event
//! lists, full metrics).

use frostlab_core::config::ExperimentConfig;
use frostlab_core::ScenarioBuilder;
use frostlab_trace::export::{to_chrome_trace, to_jsonl, to_prometheus};
use frostlab_trace::TraceConfig;

fn usage() -> ! {
    eprintln!("usage: trace_report [--seed S] [--days D] [--out-dir DIR] [--metrics-only]");
    std::process::exit(2);
}

fn main() {
    let mut seed: u64 = 42;
    let mut days: i64 = 7;
    let mut out_dir = String::from("trace-out");
    let mut metrics_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--days" => days = val("--days").parse().unwrap_or_else(|_| usage()),
            "--out-dir" => out_dir = val("--out-dir"),
            "--metrics-only" => metrics_only = true,
            _ => usage(),
        }
    }

    let cfg = if days > 0 {
        ExperimentConfig::short(seed, days)
    } else {
        ExperimentConfig::paper_scripted(seed)
    };
    let trace_cfg = if metrics_only {
        TraceConfig::metrics_only()
    } else {
        TraceConfig::default()
    };

    eprintln!("trace_report: tracing seed {seed} for {days} day(s) …");
    let results = ScenarioBuilder::paper(cfg)
        .with_tracing(trace_cfg)
        .build()
        .run();
    let trace = results
        .trace
        .as_ref()
        .expect("with_tracing arms the tracer");
    eprintln!(
        "trace_report: {} events recorded ({} dropped), {} runs simulated",
        trace.events.len(),
        trace.dropped_events,
        results.workload.total_runs()
    );
    if trace.dropped_events > 0 {
        eprintln!(
            "trace_report: WARNING: {} event(s) were dropped at the ring \
             capacity — the jsonl/perfetto exports are incomplete (the \
             `trace.dropped_events` counter in metrics.prom records the \
             same tally); raise TraceConfig::max_events or pass \
             --metrics-only if only the metrics matter",
            trace.dropped_events
        );
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let write = |name: &str, body: String| {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, body).expect("write export");
        eprintln!("trace_report: wrote {path}");
    };
    write("trace.jsonl", to_jsonl(trace).expect("trace serializes"));
    write(
        "trace_perfetto.json",
        to_chrome_trace(trace).expect("trace serializes"),
    );
    write("metrics.prom", to_prometheus(&trace.metrics));
}
