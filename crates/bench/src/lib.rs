//! # frostlab-bench
//!
//! The reproduction harness: **one binary per figure/table in the paper**
//! plus criterion benchmarks over the hot paths.
//!
//! | binary | paper item |
//! |---|---|
//! | `fig1_tent` | Fig. 1 — tent schematic (parameterized) |
//! | `fig2_timeline` | Fig. 2 — server install dates |
//! | `fig3_temperature` | Fig. 3 — temperatures in/outside the tent (CSV + marks) |
//! | `fig4_humidity` | Fig. 4 — relative humidities (CSV + marks) |
//! | `table_failures` | T1 — 5.6 % vs Intel's 4.46 % |
//! | `table_hashes` | T2 — 5 wrong md5sums / 27 627 runs, 1 bad block of 396 |
//! | `table_memory` | T3 — 3.2·10⁹ page ops, one in 570 million |
//! | `table_pue` | T4 — the §5 PUE 1.74 calculation |
//! | `table_prototype` | T5 — the plastic-box weekend |
//! | `table_savings` | T6 — 40–67 % economizer savings across climates |
//! | `repro_all` | everything above, in order (the EXPERIMENTS.md evidence) |
//!
//! Run with `cargo run -p frostlab-bench --release --bin <name> [seed]`.

#![forbid(unsafe_code)]

use frostlab_core::{ExperimentConfig, ExperimentResults, ScenarioBuilder};

/// Parse the optional seed argument (default 42 — the published runs).
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Run the scripted campaign for the given seed.
pub fn scripted_campaign(seed: u64) -> ExperimentResults {
    ScenarioBuilder::paper(ExperimentConfig::paper_scripted(seed))
        .build()
        .run()
}
