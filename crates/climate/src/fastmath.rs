//! Bounded-error fast transcendentals for the weather hot path.
//!
//! The stochastic weather kernel evaluates a handful of transcendentals per
//! sample (Magnus `exp` for the RH path, `erf` for the wind
//! probability-integral transform, `ln`/`powf` for the Weibull quantile,
//! `powf` for the cloud attenuation). `std`'s libm calls are both slower
//! than the simulation needs and — worse for a determinism-first codebase —
//! not bit-specified across platforms. The routines here are plain IEEE-754
//! arithmetic (range reduction + fixed polynomial), so they are exactly
//! reproducible everywhere *and* cheap enough for the per-tick path.
//!
//! Error budgets (enforced by the property tests at the bottom of this
//! file, dense-grid sweeps over the domains the weather model actually
//! uses):
//!
//! | function | domain used by the model | bound vs `std` reference |
//! |---|---|---|
//! | [`exp`] | `[-60, 30]` (Magnus, OU decay) | rel ≤ 1e-11 over `[-60, 60]` |
//! | [`ln`] | `[1e-10, 40]` (Weibull, Magnus⁻¹) | rel ≤ 5e-12 over `[1e-12, 1e6]` |
//! | [`powf`] | cloud `c^3.4`, Weibull `x^(1/k)` | rel ≤ 1e-10 |
//! | [`cos`] | `[-10π, 10π]` (seasonal/diurnal phase) | abs ≤ 1e-10 |
//! | [`sin`] | `[0, π/2]` (solar horizontal projection) | abs ≤ 1e-10 over `[-10π, 10π]` |
//! | [`erf`] | `[-7, 7]` (wind PIT) | abs ≤ 5e-9 vs A&S/`std` reference |
//! | [`norm_cdf`] | `[-7, 7]` | abs ≤ 4e-9, monotone on grids |
//! | [`weibull_quantile`] | `u ∈ [1e-9, 1−1e-9]` | rel ≤ 1e-9, monotone in `u` |
//!
//! `erf` keeps the Abramowitz & Stegun 7.1.26 rational form the simulation
//! has always used (|ε| ≤ 1.5e-7 vs the true function); only its interior
//! `exp` changes, so the drift against the previous implementation is
//! ~1e-9 — far below the A&S error that was already accepted.

/// ln(2) split hi/lo so `x − k·ln2` stays exact during range reduction.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// π/2 split hi/lo for the cosine quadrant reduction. The hi part is the
/// nearest f64 to π/2 — i.e. `FRAC_PI_2` itself — and lo carries the tail.
const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
const PIO2_LO: f64 = 6.123_233_995_736_766e-17;

/// e^x. Range-reduced `2^k · e^r` with `|r| ≤ ln2/2` and a degree-9
/// Taylor kernel (truncation ≤ 8e-12 relative).
#[inline]
pub fn exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.0 {
        return f64::INFINITY;
    }
    if x < -708.0 {
        return 0.0;
    }
    let k = (x * std::f64::consts::LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // e^r = Σ rⁿ/n!, n ≤ 9.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0
                            + r * (1.0 / 720.0
                                + r * (1.0 / 5040.0
                                    + r * (1.0 / 40320.0 + r * (1.0 / 362880.0)))))))));
    // 2^k by exponent-field construction; k ∈ [-1022, 1023] after the
    // clamps above.
    let scale = f64::from_bits(((1023 + k as i64) as u64) << 52);
    p * scale
}

/// Natural logarithm. Mantissa reduced to `[√½, √2)`, then
/// `ln m = 2·atanh((m−1)/(m+1))` by odd polynomial (truncation ≤ 5e-13).
#[inline]
pub fn ln(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    // Normalize subnormals so the exponent field is meaningful.
    let (x, sub_adjust) = if x < f64::MIN_POSITIVE {
        (x * 18_014_398_509_481_984.0, 54.0) // × 2⁵⁴, subtract 54·ln2 later
    } else {
        (x, 0.0)
    };
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let ln_m = 2.0
        * t
        * (1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0
                    + t2 * (1.0 / 7.0
                        + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0)))))));
    let e = e as f64 - sub_adjust;
    e * LN2_HI + (e * LN2_LO + ln_m)
}

/// `x^y` for `x ≥ 0` (the only case the weather model needs): computed as
/// `exp(y·ln x)`, with the `x = 0` edge handled explicitly.
#[inline]
pub fn powf(x: f64, y: f64) -> f64 {
    if x == 0.0 {
        return if y > 0.0 {
            0.0
        } else if y == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    exp(y * ln(x))
}

#[inline]
fn cos_kernel(r: f64) -> f64 {
    // |r| ≤ π/4 + ε; Taylor through r¹²/12! (truncation ≤ 4e-13).
    let r2 = r * r;
    1.0 + r2
        * (-0.5
            + r2 * (1.0 / 24.0
                + r2 * (-1.0 / 720.0
                    + r2 * (1.0 / 40320.0 + r2 * (-1.0 / 3628800.0 + r2 * (1.0 / 479001600.0))))))
}

#[inline]
fn sin_kernel(r: f64) -> f64 {
    // |r| ≤ π/4 + ε; Taylor through r¹¹/11! (truncation ≤ 7e-12).
    let r2 = r * r;
    r * (1.0
        + r2 * (-1.0 / 6.0
            + r2 * (1.0 / 120.0
                + r2 * (-1.0 / 5040.0 + r2 * (1.0 / 362880.0 + r2 * (-1.0 / 39916800.0))))))
}

/// cos(x) by quadrant reduction. Accurate (abs ≤ 1e-10) for the |x| ≲ 10⁶
/// arguments the seasonal/diurnal phases produce; not intended for huge
/// arguments where the two-term π/2 reduction itself loses bits.
#[inline]
pub fn cos(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    let q = (x * std::f64::consts::FRAC_2_PI).round();
    let r = (x - q * PIO2_HI) - q * PIO2_LO;
    match (q as i64).rem_euclid(4) {
        0 => cos_kernel(r),
        1 => -sin_kernel(r),
        2 => -cos_kernel(r),
        _ => sin_kernel(r),
    }
}

/// sin(x), by the same π/2 quadrant reduction as [`cos`].
pub fn sin(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    let q = (x * std::f64::consts::FRAC_2_PI).round();
    let r = (x - q * PIO2_HI) - q * PIO2_LO;
    match (q as i64).rem_euclid(4) {
        0 => sin_kernel(r),
        1 => cos_kernel(r),
        2 => -sin_kernel(r),
        _ => -cos_kernel(r),
    }
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7 vs the true
/// function) over the fast [`exp`].
#[inline]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * exp(-x * x);
    sign * y
}

/// Standard normal CDF over the fast [`erf`].
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x * std::f64::consts::FRAC_1_SQRT_2))
}

/// Weibull quantile (inverse CDF): `scale · (−ln(1−u))^(1/shape)` for
/// `u ∈ [0, 1)` — the probability-integral transform that gives the wind
/// process its Weibull marginal.
#[inline]
pub fn weibull_quantile(u: f64, scale: f64, shape: f64) -> f64 {
    scale * powf(-ln(1.0 - u), 1.0 / shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference A&S 7.1.26 erf over `std` exp — the implementation the
    /// simulation used before this module existed.
    fn erf_reference(x: f64) -> f64 {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.327_591_1 * x);
        let y = 1.0
            - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
                * t
                + 0.254_829_592)
                * t
                * (-x * x).exp();
        sign * y
    }

    fn rel_err(got: f64, want: f64) -> f64 {
        if want == 0.0 {
            got.abs()
        } else {
            ((got - want) / want).abs()
        }
    }

    // --- dense-grid max-error sweeps over the model's real domains ---

    #[test]
    fn exp_matches_std_over_model_domain() {
        // Magnus arguments span ≈[-8, 5]; OU decays ≈[-1, 0); psychro is
        // exercised down to −60 °C. Sweep far wider.
        let mut worst = 0.0f64;
        let mut x = -60.0;
        while x <= 60.0 {
            worst = worst.max(rel_err(exp(x), x.exp()));
            x += 0.001;
        }
        assert!(worst < 1e-11, "max rel err {worst:e}");
    }

    #[test]
    fn exp_edges() {
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp(-1000.0), 0.0);
        assert_eq!(exp(1000.0), f64::INFINITY);
        assert!(exp(f64::NAN).is_nan());
        assert_eq!(exp(0.0), 1.0);
    }

    #[test]
    fn ln_matches_std_over_model_domain() {
        // Weibull sees −ln(1−u) arguments down to 1e-9; Magnus inversion
        // sees vapor pressures ~1e-2..1e3 hPa. Sweep a multiplicative grid.
        let mut worst = 0.0f64;
        let mut x = 1e-12f64;
        while x <= 1e6 {
            let want = x.ln();
            let got = ln(x);
            let err = if want == 0.0 {
                got.abs()
            } else {
                ((got - want) / want).abs()
            };
            worst = worst.max(err);
            x *= 1.0008;
        }
        // ln(x) near x=1 crosses zero; also check abs error on [0.9, 1.1].
        let mut x = 0.9;
        while x <= 1.1 {
            worst = worst.max((ln(x) - x.ln()).abs());
            x += 1e-5;
        }
        // The relative bound is dominated by arguments near 1, where the
        // reference crosses zero and relative error loses meaning; the abs
        // sweep above pins that region directly.
        assert!(worst < 5e-12, "max err {worst:e}");
    }

    #[test]
    fn ln_edges() {
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert!(ln(f64::NAN).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        assert_eq!(ln(1.0), 0.0);
        // Subnormal inputs stay finite and accurate.
        let sub = 1e-310;
        assert!(rel_err(ln(sub), sub.ln()) < 1e-12);
    }

    #[test]
    fn powf_matches_std_over_model_domain() {
        // The two uses: cloud attenuation c^3.4 (c ∈ [0,1]) and Weibull
        // x^(1/shape) with shape ∈ [1.5, 2.5], x ∈ (0, ~21].
        let mut worst = 0.0f64;
        let mut c = 0.0;
        while c <= 1.0 {
            worst = worst.max(rel_err(powf(c, 3.4), c.powf(3.4)));
            c += 0.0001;
        }
        for shape in [1.5, 1.8, 1.9, 2.0, 2.5] {
            let mut x = 1e-9;
            while x <= 21.0 {
                worst = worst.max(rel_err(powf(x, 1.0 / shape), x.powf(1.0 / shape)));
                x *= 1.01;
            }
        }
        assert!(worst < 1e-10, "max rel err {worst:e}");
        assert_eq!(powf(0.0, 3.4), 0.0);
        assert_eq!(powf(0.0, 0.0), 1.0);
    }

    #[test]
    fn cos_matches_std_over_model_domain() {
        // Seasonal phase spans a few ×2π; diurnal phase ±π. Sweep ±10π.
        let mut worst = 0.0f64;
        let mut x = -10.0 * std::f64::consts::PI;
        while x <= 10.0 * std::f64::consts::PI {
            worst = worst.max((cos(x) - x.cos()).abs());
            x += 0.0005;
        }
        assert!(worst < 1e-10, "max abs err {worst:e}");
    }

    #[test]
    fn sin_matches_std_over_model_domain() {
        // Solar geometry uses sin over [0, π/2]; sweep ±10π like cos.
        let mut worst = 0.0f64;
        let mut x = -10.0 * std::f64::consts::PI;
        while x <= 10.0 * std::f64::consts::PI {
            worst = worst.max((sin(x) - x.sin()).abs());
            x += 0.0005;
        }
        assert!(worst < 1e-10, "max abs err {worst:e}");
    }

    #[test]
    fn erf_matches_reference_over_model_domain() {
        // The wind PIT clamps u to [1e-9, 1−1e-9] ⇒ |z| ≲ 6; sweep ±7.
        let mut worst = 0.0f64;
        let mut x = -7.0;
        while x <= 7.0 {
            worst = worst.max((erf(x) - erf_reference(x)).abs());
            x += 0.0005;
        }
        assert!(worst < 5e-9, "max abs err vs std-exp reference {worst:e}");
    }

    #[test]
    fn erf_true_reference_points() {
        // Table values of the true error function: the A&S form must stay
        // within its documented 1.5e-7.
        for (x, want) in [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (-1.5, -0.966_105_146_5),
        ] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn norm_cdf_matches_reference_and_is_monotone() {
        let reference = |x: f64| 0.5 * (1.0 + erf_reference(x * std::f64::consts::FRAC_1_SQRT_2));
        let mut worst = 0.0f64;
        let mut prev = f64::NEG_INFINITY;
        let mut x = -7.0;
        while x <= 7.0 {
            let c = norm_cdf(x);
            worst = worst.max((c - reference(x)).abs());
            assert!(c >= prev - 1e-12, "norm_cdf non-monotone at {x}");
            prev = c;
            x += 0.001;
        }
        assert!(worst < 4e-9, "max abs err {worst:e}");
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weibull_quantile_matches_std_and_is_monotone() {
        // Preset wind climates: scale ∈ [3.6, 5.5], shape ∈ [1.8, 2.0].
        for (scale, shape) in [(3.6, 1.8), (4.2, 1.9), (5.5, 2.0)] {
            let mut prev = f64::NEG_INFINITY;
            let mut worst = 0.0f64;
            let mut u = 1e-9f64;
            while u < 1.0 - 1e-9 {
                let want = scale * (-(1.0 - u).ln()).powf(1.0 / shape);
                let got = weibull_quantile(u, scale, shape);
                worst = worst.max(rel_err(got, want));
                assert!(got >= prev, "quantile non-monotone at u={u}");
                prev = got;
                u += 0.0005;
            }
            assert!(
                worst < 1e-9,
                "scale {scale} shape {shape}: rel err {worst:e}"
            );
        }
    }

    #[test]
    fn exp_is_monotone_on_model_grid() {
        // The reference is strictly monotone; the approximation must be
        // monotone at any resolution coarser than its error floor.
        let mut prev = 0.0f64;
        let mut x = -40.0;
        while x <= 40.0 {
            let e = exp(x);
            assert!(e >= prev, "exp non-monotone at {x}");
            prev = e;
            x += 0.001;
        }
    }

    #[test]
    fn ln_is_monotone_on_model_grid() {
        let mut prev = f64::NEG_INFINITY;
        let mut x = 1e-9;
        while x <= 1e3 {
            let l = ln(x);
            assert!(l >= prev, "ln non-monotone at {x}");
            prev = l;
            x *= 1.001;
        }
    }

    // --- proptest: randomized domain coverage on top of the grids ---

    proptest! {
        #[test]
        fn prop_exp_rel_error(x in -60.0f64..60.0) {
            let (got, want) = (exp(x), x.exp());
            prop_assert!(rel_err(got, want) < 1e-11, "exp({x}) = {got} want {want}");
        }

        #[test]
        fn prop_ln_roundtrips_exp(x in -40.0f64..40.0) {
            // ln is exp's inverse to within the combined error budget.
            prop_assert!((ln(x.exp()) - x).abs() < 1e-10);
        }

        #[test]
        fn prop_cos_abs_error(x in -40.0f64..40.0) {
            prop_assert!((cos(x) - x.cos()).abs() < 1e-10);
        }

        #[test]
        fn prop_norm_cdf_bounds_and_symmetry(x in -8.0f64..8.0) {
            let c = norm_cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!((c + norm_cdf(-x) - 1.0).abs() < 1e-8);
        }

        #[test]
        fn prop_weibull_quantile_nonnegative(
            u in 1e-9f64..0.999_999_999,
            scale in 1.0f64..10.0,
            shape in 1.2f64..3.0,
        ) {
            let q = weibull_quantile(u, scale, shape);
            prop_assert!(q.is_finite() && q >= 0.0);
        }
    }
}
