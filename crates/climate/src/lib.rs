//! # frostlab-climate
//!
//! Synthetic weather substrate for the zero-degrees experiment.
//!
//! The original study consumed real meteorology: the SMEAR III station next
//! to the Kumpula campus (co-operated with the Finnish Meteorological
//! Institute) supplied outside temperature, humidity, wind and radiation.
//! That archive is not available here, so this crate implements a calibrated
//! stochastic generator that reproduces the *distributional* features the
//! experiment depends on:
//!
//! * Helsinki winter 2009–2010 temperature statistics — February means around
//!   −8 °C, a season minimum near the paper's reported −22 °C, the prototype
//!   weekend (Feb 12–15) averaging ≈ −9.2 °C with a −10.2 °C minimum;
//! * the strong winter humidity regime (RH mostly 75–95 %) and its
//!   anticorrelation with cold snaps;
//! * realistic temporal structure: a seasonal cycle, multi-day synoptic
//!   excursions (Ornstein–Uhlenbeck), a solar-driven diurnal cycle and
//!   high-frequency noise;
//! * wind with a Weibull marginal but OU temporal correlation;
//! * solar elevation/irradiance for 60.2 °N (drives tent solar gain).
//!
//! Everything is deterministic given a seed: the model is a pure function of
//! `(params, seed, t)` thanks to fixed-step state advancement.
//!
//! ```
//! use frostlab_climate::{presets, WeatherModel};
//! use frostlab_simkern::time::{SimTime, SimDuration};
//!
//! let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 42);
//! let t = SimTime::from_date(2010, 2, 12);
//! let s = wx.sample_at(t);
//! assert!(s.temp_c < 10.0 && s.temp_c > -40.0);
//! assert!((0.0..=100.0).contains(&s.rh_pct));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fastmath;
pub mod math;
pub mod precip;
pub mod presets;
pub mod psychro;
pub mod solar;
pub mod station;
pub mod weather;

pub use psychro::{
    absolute_humidity_g_m3, dew_point_c, rel_humidity_from_dew_point, saturation_vapor_pressure_hpa,
};
pub use station::{StationConfig, WeatherObservation, WeatherStation};
pub use weather::{ClimateParams, WeatherModel, WeatherSample};
