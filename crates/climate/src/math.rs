//! Small special-function toolbox used by the weather generator.
//!
//! Implemented locally (Abramowitz & Stegun approximations) to keep the
//! dependency set minimal; accuracies are far beyond what the simulation
//! needs (|ε| < 1.5·10⁻⁷ for `erf`).

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error 1.5e-7).
///
/// Delegates to [`crate::fastmath::erf`] — same rational approximation over
/// the platform-independent fast `exp`.
pub fn erf(x: f64) -> f64 {
    crate::fastmath::erf(x)
}

/// Standard normal cumulative distribution function.
pub fn norm_cdf(x: f64) -> f64 {
    crate::fastmath::norm_cdf(x)
}

/// Clamp helper that also guards against NaN by returning `lo`.
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    if x.is_nan() {
        lo
    } else {
        x.max(lo).min(hi)
    }
}

/// Linear interpolation between `a` and `b` with weight `w ∈ [0,1]`.
pub fn lerp(a: f64, b: f64, w: f64) -> f64 {
    a + (b - a) * w
}

/// Smoothstep: cubic ease between 0 and 1 on `[e0, e1]`.
pub fn smoothstep(e0: f64, e1: f64, x: f64) -> f64 {
    let t = clamp((x - e0) / (e1 - e0), 0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_points() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_88),
            (1.0, 0.842_700_79),
            (2.0, 0.995_322_27),
            (-1.0, -0.842_700_79),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn norm_cdf_symmetry_and_tails() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        for x in [0.3, 1.0, 2.5] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-7);
        }
        assert!(norm_cdf(6.0) > 0.999_999);
        assert!(norm_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn norm_cdf_monotone() {
        let mut prev = norm_cdf(-5.0);
        let mut x = -5.0;
        while x < 5.0 {
            x += 0.05;
            let c = norm_cdf(x);
            assert!(c >= prev - 1e-12, "non-monotone at {x}");
            prev = c;
        }
    }

    #[test]
    fn clamp_handles_nan() {
        assert_eq!(clamp(f64::NAN, -1.0, 1.0), -1.0);
        assert_eq!(clamp(5.0, -1.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, -1.0, 1.0), -1.0);
        assert_eq!(clamp(0.3, -1.0, 1.0), 0.3);
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(0.0, 1.0, -1.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 2.0), 1.0);
        assert!((smoothstep(0.0, 1.0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lerp_basics() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}
