//! Precipitation: the reason the tent exists.
//!
//! §3.1: the prototype's plastic boxes "served to protect against snow
//! reaching the computer internals and melting into water", and the whole
//! §3.2 tent design is a rain/snow shield that fights its own heat
//! retention. To let the platform ask "what if there were no tent?" the
//! climate substrate needs precipitation:
//!
//! * an **occurrence** process driven by cloud cover and humidity (fronts
//!   precipitate; clear cold spells do not);
//! * an **intensity** process (mm/h water-equivalent, lognormal bursts);
//! * a **phase** rule (snow below ~+1 °C, rain above — Helsinki winter is
//!   snow, the spring tail is rain);
//! * **snowpack accounting** on an exposed horizontal surface: accumulation
//!   in cold weather, degree-day melt above freezing.
//!
//! Like everything else in the crate, deterministic per seed.

use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::weather::{WeatherModel, WeatherSample};

/// Phase of falling precipitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecipPhase {
    /// Nothing falling.
    None,
    /// Snow (accumulates).
    Snow,
    /// Rain (wets immediately).
    Rain,
}

/// One precipitation sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecipSample {
    /// Timestamp.
    pub t: SimTime,
    /// Phase.
    pub phase: PrecipPhase,
    /// Water-equivalent rate, mm/h.
    pub rate_mm_h: f64,
}

/// Precipitation generator layered over a [`WeatherModel`]'s samples.
///
/// Precipitation is *conditionally* generated from the weather state —
/// cloud and humidity gate it — plus its own persistence process, so
/// showers last tens of minutes to hours rather than flickering.
#[derive(Debug, Clone)]
pub struct PrecipModel {
    rng: Rng,
    /// Wet/dry persistence state.
    wet: bool,
    /// Current burst intensity while wet, mm/h.
    intensity_mm_h: f64,
    /// Snowpack on an exposed horizontal surface, mm water equivalent.
    snowpack_mm_we: f64,
    /// Accumulated rain + melt water this run, mm.
    liquid_total_mm: f64,
    last_t: Option<SimTime>,
}

impl PrecipModel {
    /// New generator from a seed stream.
    pub fn new(seed_rng: &Rng) -> Self {
        PrecipModel {
            rng: seed_rng.derive("precip"),
            wet: false,
            intensity_mm_h: 0.0,
            snowpack_mm_we: 0.0,
            liquid_total_mm: 0.0,
            last_t: None,
        }
    }

    /// Probability per hour of a dry→wet transition given the sky state.
    fn onset_rate_per_hour(w: &WeatherSample) -> f64 {
        // Need thick cloud and high humidity; scales up with both.
        if w.cloud < 0.5 || w.rh_pct < 75.0 {
            0.0
        } else {
            0.25 * (w.cloud - 0.5) * 2.0 * ((w.rh_pct - 75.0) / 25.0)
        }
    }

    /// Advance to the next weather sample and produce the precip state.
    /// Call with *consecutive* samples (any monotone cadence).
    pub fn step(&mut self, w: &WeatherSample) -> PrecipSample {
        let dt_h = match self.last_t {
            Some(prev) => (w.t - prev).as_hours_f64().max(0.0),
            None => 0.0,
        };
        self.last_t = Some(w.t);

        // Wet/dry two-state process.
        if self.wet {
            // Mean event duration ≈ 3 h; also ends if the sky clears.
            let off = 1.0 / 3.0 * dt_h;
            if w.cloud < 0.4 || self.rng.chance(off) {
                self.wet = false;
            }
        } else {
            let on = Self::onset_rate_per_hour(w) * dt_h;
            if self.rng.chance(on) {
                self.wet = true;
                // Lognormal burst intensity: median ≈ 0.8 mm/h, fat tail.
                self.intensity_mm_h = 0.8 * self.rng.lognormal(0.0, 0.8);
            }
        }

        let phase = if !self.wet || w.solar_w_m2 > 450.0 {
            PrecipPhase::None
        } else if w.temp_c <= 1.0 {
            PrecipPhase::Snow
        } else {
            PrecipPhase::Rain
        };
        let rate = if phase == PrecipPhase::None {
            0.0
        } else {
            self.intensity_mm_h
        };

        // Snowpack bookkeeping on an exposed surface.
        match phase {
            PrecipPhase::Snow => self.snowpack_mm_we += rate * dt_h,
            PrecipPhase::Rain => self.liquid_total_mm += rate * dt_h,
            PrecipPhase::None => {}
        }
        // Degree-day melt: ~0.2 mm w.e. per degree-hour above 0 °C.
        if w.temp_c > 0.0 && self.snowpack_mm_we > 0.0 {
            let melt = 0.2 * w.temp_c * dt_h;
            let melted = melt.min(self.snowpack_mm_we);
            self.snowpack_mm_we -= melted;
            self.liquid_total_mm += melted;
        }

        PrecipSample {
            t: w.t,
            phase,
            rate_mm_h: rate,
        }
    }

    /// Snow currently lying on an exposed surface, mm water equivalent
    /// (≈ ×10 for fresh-snow depth).
    pub fn snowpack_mm_we(&self) -> f64 {
        self.snowpack_mm_we
    }

    /// Total liquid water (rain + melt) an exposed surface has received, mm.
    pub fn liquid_total_mm(&self) -> f64 {
        self.liquid_total_mm
    }

    /// Is precipitation falling right now?
    pub fn is_wet(&self) -> bool {
        self.wet
    }
}

/// Convenience: run precipitation over a window and return the samples
/// (advances the supplied weather model).
pub fn precip_series(
    wx: &mut WeatherModel,
    precip: &mut PrecipModel,
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> Vec<PrecipSample> {
    let mut out = Vec::new();
    let mut t = start;
    while t <= end {
        let w = wx.sample_at(t);
        out.push(precip.step(&w));
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn winter_run(seed: u64, days: i64) -> (PrecipModel, Vec<PrecipSample>) {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
        let mut pm = PrecipModel::new(&Rng::new(seed));
        let start = SimTime::from_date(2010, 2, 1);
        let samples = precip_series(
            &mut wx,
            &mut pm,
            start,
            start + SimDuration::days(days),
            SimDuration::minutes(10),
        );
        (pm, samples)
    }

    #[test]
    fn winter_produces_snow_not_rain() {
        let (_, samples) = winter_run(1, 21);
        let snow = samples
            .iter()
            .filter(|s| s.phase == PrecipPhase::Snow)
            .count();
        let rain = samples
            .iter()
            .filter(|s| s.phase == PrecipPhase::Rain)
            .count();
        assert!(snow > 0, "three February weeks must snow at least once");
        assert!(
            rain < snow / 4 + 5,
            "February rain should be rare: {rain} rain vs {snow} snow samples"
        );
    }

    #[test]
    fn snowpack_accumulates_in_winter() {
        for seed in [1, 2, 3] {
            let (pm, _) = winter_run(seed, 28);
            assert!(
                pm.snowpack_mm_we() > 1.0,
                "seed {seed}: a February should build snowpack, got {}",
                pm.snowpack_mm_we()
            );
        }
    }

    #[test]
    fn spring_melts_the_pack() {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 4);
        let mut pm = PrecipModel::new(&Rng::new(4));
        // Build pack through Feb–Mar…
        let start = SimTime::from_date(2010, 2, 1);
        precip_series(
            &mut wx,
            &mut pm,
            start,
            SimTime::from_date(2010, 3, 25),
            SimDuration::minutes(10),
        );
        let late_winter = pm.snowpack_mm_we();
        // …then run to late May.
        precip_series(
            &mut wx,
            &mut pm,
            SimTime::from_date(2010, 3, 25) + SimDuration::minutes(10),
            SimTime::from_date(2010, 5, 25),
            SimDuration::minutes(10),
        );
        assert!(
            pm.snowpack_mm_we() < late_winter.max(1.0) * 0.25,
            "spring must melt the pack: {} → {}",
            late_winter,
            pm.snowpack_mm_we()
        );
        assert!(pm.liquid_total_mm() > 0.0, "melt water must appear");
    }

    #[test]
    fn events_persist_rather_than_flicker() {
        let (_, samples) = winter_run(5, 28);
        // Count wet→dry transitions; with ~3 h mean events at 10-min
        // sampling, transitions should be far rarer than wet samples.
        let wet: Vec<bool> = samples
            .iter()
            .map(|s| s.phase != PrecipPhase::None)
            .collect();
        let wet_count = wet.iter().filter(|&&w| w).count();
        let transitions = wet.windows(2).filter(|w| w[0] != w[1]).count();
        if wet_count > 20 {
            assert!(
                transitions * 4 < wet_count,
                "flickering precip: {transitions} transitions for {wet_count} wet samples"
            );
        }
    }

    #[test]
    fn deterministic() {
        let (_, a) = winter_run(7, 10);
        let (_, b) = winter_run(7, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn no_precip_from_clear_skies() {
        let mut pm = PrecipModel::new(&Rng::new(9));
        let clear = WeatherSample {
            t: SimTime::ZERO,
            temp_c: -15.0,
            rh_pct: 60.0,
            wind_ms: 2.0,
            solar_w_m2: 0.0,
            cloud: 0.1,
        };
        for i in 0..1000 {
            let mut w = clear;
            w.t = SimTime::from_secs(i * 600);
            let s = pm.step(&w);
            assert_eq!(s.phase, PrecipPhase::None);
        }
        assert_eq!(pm.snowpack_mm_we(), 0.0);
    }
}
