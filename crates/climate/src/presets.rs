//! Calibrated climate presets.
//!
//! * [`helsinki_winter_2010`] — the experiment site. Calibrated against the
//!   figures the paper states: FMI-measured −22 °C during winter 2009–2010
//!   in Southern Finland, the prototype weekend (Feb 12–15) with a −10.2 °C
//!   minimum and −9.2 °C mean, and high winter humidities (80–90 %+).
//!   Two historical anchors pin those documented episodes.
//! * [`new_mexico`] — Intel's air-economizer proof-of-concept site
//!   (high desert: hot days, cold nights, very dry).
//! * [`north_east_england`] — HP's Wynyard data centre (mild maritime,
//!   sea-breeze cooled).
//!
//! The latter two exist for the T6 economizer comparison: the paper argues
//! that if servers survive Finnish winter, the Intel/HP results generalize
//! to most of the globe.

use frostlab_simkern::time::SimTime;

use crate::weather::{Anchor, ClimateParams};

/// Helsinki (Kumpula campus), winter/spring 2010. See module docs.
pub fn helsinki_winter_2010() -> ClimateParams {
    ClimateParams {
        name: "Helsinki",
        latitude_deg: 60.2,
        // 2009–2010 was markedly colder than the 1981–2010 normals; the
        // annual-mean/amplitude pair below puts February around −9 °C.
        t_annual_mean_c: 4.0,
        t_seasonal_amplitude_k: 13.5,
        coldest_day_of_year: 28.0,
        synoptic_sd_k: 5.0,
        synoptic_tau_hours: 72.0,
        meso_sd_k: 1.2,
        meso_tau_hours: 6.0,
        diurnal_amp_winter_k: 2.0,
        diurnal_amp_summer_k: 5.5,
        rh_mean_winter: 87.0,
        rh_mean_summer: 70.0,
        rh_sd: 7.0,
        rh_tau_hours: 24.0,
        // Maritime winter: warm advection from the Atlantic is moist,
        // Arctic outbreaks are dry in absolute terms but RH stays high;
        // net coupling mildly positive.
        rh_temp_coupling: 0.6,
        wind_weibull_scale: 4.2,
        wind_weibull_shape: 1.9,
        wind_tau_hours: 12.0,
        cloud_mean_winter: 0.75,
        cloud_mean_summer: 0.55,
        cloud_tau_hours: 18.0,
        anchors: vec![
            // Prototype weekend, Fri Feb 12 – Mon Feb 15: mean −9.2 °C,
            // minimum −10.2 °C (paper §3.1).
            Anchor {
                start: SimTime::from_date(2010, 2, 12),
                end: SimTime::from_date(2010, 2, 15),
                target_mean_c: -9.2,
                weight: 0.85,
            },
            // The deep cold snap that took the longest-running host to
            // −22 °C outside air (paper §4.2.1); placed in late February,
            // just after the normal phase started.
            Anchor {
                start: SimTime::from_date(2010, 2, 24),
                end: SimTime::from_date(2010, 2, 26),
                target_mean_c: -18.5,
                weight: 0.9,
            },
        ],
    }
}

/// High-desert New Mexico (Intel air-economizer PoC site).
pub fn new_mexico() -> ClimateParams {
    ClimateParams {
        name: "New Mexico",
        latitude_deg: 35.0,
        t_annual_mean_c: 13.5,
        t_seasonal_amplitude_k: 10.5,
        coldest_day_of_year: 10.0,
        synoptic_sd_k: 3.5,
        synoptic_tau_hours: 96.0,
        meso_sd_k: 1.0,
        meso_tau_hours: 6.0,
        diurnal_amp_winter_k: 7.0,
        diurnal_amp_summer_k: 8.5,
        rh_mean_winter: 45.0,
        rh_mean_summer: 35.0,
        rh_sd: 10.0,
        rh_tau_hours: 24.0,
        rh_temp_coupling: -1.2,
        wind_weibull_scale: 3.6,
        wind_weibull_shape: 1.8,
        wind_tau_hours: 10.0,
        cloud_mean_winter: 0.35,
        cloud_mean_summer: 0.3,
        cloud_tau_hours: 12.0,
        anchors: vec![],
    }
}

/// North-East England, maritime (HP Wynyard data centre).
pub fn north_east_england() -> ClimateParams {
    ClimateParams {
        name: "NE England",
        latitude_deg: 54.6,
        t_annual_mean_c: 9.5,
        t_seasonal_amplitude_k: 6.0,
        coldest_day_of_year: 35.0,
        synoptic_sd_k: 3.0,
        synoptic_tau_hours: 60.0,
        meso_sd_k: 1.0,
        meso_tau_hours: 6.0,
        diurnal_amp_winter_k: 2.5,
        diurnal_amp_summer_k: 4.0,
        rh_mean_winter: 85.0,
        rh_mean_summer: 75.0,
        rh_sd: 7.0,
        rh_tau_hours: 24.0,
        rh_temp_coupling: 0.4,
        wind_weibull_scale: 5.5,
        wind_weibull_shape: 2.0,
        wind_tau_hours: 12.0,
        cloud_mean_winter: 0.7,
        cloud_mean_summer: 0.6,
        cloud_tau_hours: 18.0,
        anchors: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weather::WeatherModel;
    use frostlab_simkern::time::{SimDuration, SimTime};

    fn annual_mean(params: ClimateParams, seed: u64) -> f64 {
        let mut wx = WeatherModel::new(params, seed);
        let s = wx.series(
            SimTime::from_date(2010, 1, 1),
            SimTime::from_date(2010, 12, 31),
            SimDuration::hours(3),
        );
        s.iter().map(|x| x.temp_c).sum::<f64>() / s.len() as f64
    }

    #[test]
    fn annual_means_ranked_sensibly() {
        let hel = annual_mean(helsinki_winter_2010(), 11);
        let nm = annual_mean(new_mexico(), 11);
        let ne = annual_mean(north_east_england(), 11);
        assert!(hel < ne && ne < nm, "hel {hel}, ne {ne}, nm {nm}");
        assert!((2.0..7.0).contains(&hel), "hel {hel}");
        assert!((11.0..16.5).contains(&nm), "nm {nm}");
        assert!((7.5..12.0).contains(&ne), "ne {ne}");
    }

    #[test]
    fn new_mexico_is_dry() {
        let mut wx = WeatherModel::new(new_mexico(), 4);
        let s = wx.series(
            SimTime::from_date(2010, 6, 1),
            SimTime::from_date(2010, 6, 20),
            SimDuration::hours(2),
        );
        let rh = s.iter().map(|x| x.rh_pct).sum::<f64>() / s.len() as f64;
        assert!(rh < 55.0, "mean RH {rh}");
    }

    #[test]
    fn england_winter_is_mild() {
        let mut wx = WeatherModel::new(north_east_england(), 4);
        let s = wx.series(
            SimTime::from_date(2010, 1, 10),
            SimTime::from_date(2010, 2, 20),
            SimDuration::hours(2),
        );
        let mean = s.iter().map(|x| x.temp_c).sum::<f64>() / s.len() as f64;
        assert!((0.0..8.0).contains(&mean), "winter mean {mean}");
    }

    #[test]
    fn helsinki_cold_snap_anchor_produces_deep_minimum() {
        for seed in [1, 5, 23] {
            let mut wx = WeatherModel::new(helsinki_winter_2010(), seed);
            let s = wx.series(
                SimTime::from_date(2010, 2, 23),
                SimTime::from_date(2010, 2, 27),
                SimDuration::minutes(10),
            );
            let min = s.iter().map(|x| x.temp_c).fold(f64::INFINITY, f64::min);
            assert!(min < -15.0, "seed {seed}: snap min {min}");
        }
    }
}
