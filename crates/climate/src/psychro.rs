//! Psychrometrics: the moist-air relations the paper's §5 discussion leans on.
//!
//! The central question the authors raise is *"can water condense in the
//! hardware?"* — condensation occurs when a surface is colder than the dew
//! point of the surrounding air. This module provides saturation vapor
//! pressure (Magnus form, with a separate branch over ice for sub-zero
//! temperatures), dew point, relative-humidity conversions, absolute
//! humidity, and a condensation-risk predicate used by the thermal and
//! analysis layers.
//!
//! Conventions: temperatures in °C, pressures in hPa, relative humidity in
//! percent (0–100), absolute humidity in g/m³.

use crate::math::clamp;

/// Magnus coefficients over liquid water (Alduchov & Eskridge 1996).
const MAGNUS_WATER: (f64, f64, f64) = (6.1094, 17.625, 243.04);
/// Magnus coefficients over ice.
const MAGNUS_ICE: (f64, f64, f64) = (6.1121, 22.587, 273.86);

/// Saturation vapor pressure in hPa at temperature `t_c` (°C).
///
/// Uses the over-water branch above 0 °C and the over-ice branch below, which
/// matters in this study: at −20 °C the two differ by ~20 %.
pub fn saturation_vapor_pressure_hpa(t_c: f64) -> f64 {
    let (a, b, c) = if t_c >= 0.0 { MAGNUS_WATER } else { MAGNUS_ICE };
    a * ((b * t_c) / (c + t_c)).exp()
}

/// Actual vapor pressure in hPa given temperature and relative humidity.
pub fn vapor_pressure_hpa(t_c: f64, rh_pct: f64) -> f64 {
    saturation_vapor_pressure_hpa(t_c) * clamp(rh_pct, 0.0, 100.0) / 100.0
}

/// Dew point in °C given temperature and relative humidity.
///
/// Inverts the Magnus formula on the over-water branch when the result is
/// ≥ 0 °C and the over-ice branch otherwise (strictly this is then a frost
/// point, which is the quantity of interest for frost formation on cases).
pub fn dew_point_c(t_c: f64, rh_pct: f64) -> f64 {
    let rh = clamp(rh_pct, 0.1, 100.0);
    let e = vapor_pressure_hpa(t_c, rh);
    // Try water branch first.
    let inv = |coef: (f64, f64, f64)| {
        let (a, b, c) = coef;
        let ln = (e / a).ln();
        c * ln / (b - ln)
    };
    let dp_water = inv(MAGNUS_WATER);
    if dp_water >= 0.0 {
        dp_water
    } else {
        inv(MAGNUS_ICE)
    }
}

/// Relative humidity (%) of air with dew point `dp_c` at temperature `t_c`.
pub fn rel_humidity_from_dew_point(t_c: f64, dp_c: f64) -> f64 {
    let e = saturation_vapor_pressure_hpa(dp_c);
    let es = saturation_vapor_pressure_hpa(t_c);
    clamp(100.0 * e / es, 0.0, 100.0)
}

/// Absolute humidity in g/m³ (mass of water vapor per volume of moist air).
///
/// Ideal-gas form: `AH = e / (R_v · T)` with `R_v` = 461.5 J/(kg·K).
pub fn absolute_humidity_g_m3(t_c: f64, rh_pct: f64) -> f64 {
    let e_pa = vapor_pressure_hpa(t_c, rh_pct) * 100.0;
    let t_k = t_c + 273.15;
    e_pa / (461.5 * t_k) * 1000.0
}

/// Mixing ratio in g of water vapor per kg of dry air at pressure `p_hpa`.
pub fn mixing_ratio_g_kg(t_c: f64, rh_pct: f64, p_hpa: f64) -> f64 {
    let e = vapor_pressure_hpa(t_c, rh_pct);
    622.0 * e / (p_hpa - e)
}

/// Relative humidity of an air parcel after it is heated from `t_out` to
/// `t_in` at constant moisture content (the tent/case situation: outside air
/// is drawn in and warmed by the equipment, which *lowers* its RH).
pub fn rh_after_heating(t_out_c: f64, rh_out_pct: f64, t_in_c: f64) -> f64 {
    let e = vapor_pressure_hpa(t_out_c, rh_out_pct);
    clamp(
        100.0 * e / saturation_vapor_pressure_hpa(t_in_c),
        0.0,
        100.0,
    )
}

/// Outcome of a condensation-risk assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondensationRisk {
    /// Dew point of the ambient air, °C.
    pub dew_point_c: f64,
    /// Margin between the surface temperature and the dew point, K.
    /// Negative ⇒ condensation forms.
    pub margin_k: f64,
    /// True if condensation (or frost, below 0 °C) would form.
    pub condenses: bool,
}

/// Assess condensation risk on a surface at `surface_c` exposed to air at
/// `air_c` with relative humidity `rh_pct`.
///
/// The paper's argument is that server cases stay *warmer* than the ambient
/// air because of their internal power draw, so the margin is positive and
/// condensation is unlikely; the dangerous scenario is a rapid warm-humid
/// front arriving while the equipment is still cold (e.g. powered off).
pub fn condensation_risk(air_c: f64, rh_pct: f64, surface_c: f64) -> CondensationRisk {
    let dp = dew_point_c(air_c, rh_pct);
    let margin = surface_c - dp;
    CondensationRisk {
        dew_point_c: dp,
        margin_k: margin,
        condenses: margin < 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_pressure_reference_points() {
        // Classic reference values (hPa).
        assert!((saturation_vapor_pressure_hpa(0.0) - 6.11).abs() < 0.05);
        assert!((saturation_vapor_pressure_hpa(20.0) - 23.4).abs() < 0.3);
        assert!((saturation_vapor_pressure_hpa(-20.0) - 1.03).abs() < 0.05);
        assert!((saturation_vapor_pressure_hpa(100.0) - 1013.0).abs() < 30.0);
    }

    #[test]
    fn saturation_pressure_monotone_in_temperature() {
        let mut prev = saturation_vapor_pressure_hpa(-40.0);
        let mut t = -40.0;
        while t < 40.0 {
            t += 0.5;
            let e = saturation_vapor_pressure_hpa(t);
            assert!(e > prev, "not monotone at {t}");
            prev = e;
        }
    }

    #[test]
    fn dew_point_at_saturation_equals_temperature() {
        for t in [-25.0, -10.0, 0.0, 5.0, 20.0] {
            let dp = dew_point_c(t, 100.0);
            assert!((dp - t).abs() < 0.25, "t={t} dp={dp}");
        }
    }

    #[test]
    fn dew_point_below_temperature_when_unsaturated() {
        for t in [-20.0, -5.0, 10.0, 25.0] {
            for rh in [20.0, 50.0, 80.0, 99.0] {
                assert!(dew_point_c(t, rh) <= t + 0.25, "t={t} rh={rh}");
            }
        }
    }

    #[test]
    fn rh_dew_point_roundtrip() {
        for t in [-15.0, 0.0, 18.0] {
            for rh in [30.0, 60.0, 90.0] {
                let dp = dew_point_c(t, rh);
                let rh2 = rel_humidity_from_dew_point(t, dp);
                assert!((rh2 - rh).abs() < 1.5, "t={t} rh={rh} roundtrip {rh2}");
            }
        }
    }

    #[test]
    fn absolute_humidity_reference() {
        // Saturated air at 20 °C holds ≈ 17.3 g/m³.
        let ah = absolute_humidity_g_m3(20.0, 100.0);
        assert!((ah - 17.3).abs() < 0.5, "{ah}");
        // At −20 °C it is tiny, ≈ 0.9 g/m³ (over ice).
        let ah_cold = absolute_humidity_g_m3(-20.0, 100.0);
        assert!((0.5..1.4).contains(&ah_cold), "{ah_cold}");
    }

    #[test]
    fn heating_lowers_rh() {
        // Outside −10 °C, RH 90 %; warmed to +5 °C inside a case.
        let rh_in = rh_after_heating(-10.0, 90.0, 5.0);
        assert!(rh_in < 40.0, "{rh_in}");
        // Heating never increases RH.
        for t_out in [-20.0, -5.0, 5.0] {
            for dt in [1.0, 5.0, 15.0] {
                assert!(rh_after_heating(t_out, 85.0, t_out + dt) <= 85.0);
            }
        }
    }

    #[test]
    fn condensation_on_cold_surface() {
        // Warm humid front (+4 °C, 95 % RH) meets a case still at −10 °C.
        let risk = condensation_risk(4.0, 95.0, -10.0);
        assert!(risk.condenses);
        assert!(risk.margin_k < 0.0);
        // Normal operation: case warmer than ambient → safe.
        let safe = condensation_risk(-10.0, 90.0, 2.0);
        assert!(!safe.condenses);
        assert!(safe.margin_k > 5.0);
    }

    #[test]
    fn mixing_ratio_sane() {
        let w = mixing_ratio_g_kg(20.0, 50.0, 1013.25);
        assert!((7.0..8.0).contains(&w), "{w}"); // ≈ 7.3 g/kg
    }

    #[test]
    fn rh_clamped() {
        assert_eq!(rel_humidity_from_dew_point(-5.0, 10.0), 100.0);
        assert!(vapor_pressure_hpa(10.0, 150.0) <= saturation_vapor_pressure_hpa(10.0) + 1e-9);
    }
}
