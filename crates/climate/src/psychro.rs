//! Psychrometrics: the moist-air relations the paper's §5 discussion leans on.
//!
//! The central question the authors raise is *"can water condense in the
//! hardware?"* — condensation occurs when a surface is colder than the dew
//! point of the surrounding air. This module provides saturation vapor
//! pressure (Magnus form, with a separate branch over ice for sub-zero
//! temperatures), dew point, relative-humidity conversions, absolute
//! humidity, and a condensation-risk predicate used by the thermal and
//! analysis layers.
//!
//! Conventions: temperatures in °C, pressures in hPa, relative humidity in
//! percent (0–100), absolute humidity in g/m³.

use crate::math::clamp;

/// Magnus coefficients over liquid water (Alduchov & Eskridge 1996).
const MAGNUS_WATER: (f64, f64, f64) = (6.1094, 17.625, 243.04);
/// Magnus coefficients over ice.
const MAGNUS_ICE: (f64, f64, f64) = (6.1121, 22.587, 273.86);

/// Saturation vapor pressure in hPa at temperature `t_c` (°C).
///
/// Uses the over-water branch above 0 °C and the over-ice branch below, which
/// matters in this study: at −20 °C the two differ by ~20 %.
///
/// The Magnus exponential runs on [`crate::fastmath::exp`] (relative error
/// ≤ 1e-11): this function sits on the weather generator's per-sample hot
/// path and on the tent/condensation paths of every tick.
pub fn saturation_vapor_pressure_hpa(t_c: f64) -> f64 {
    let (a, b, c) = if t_c >= 0.0 { MAGNUS_WATER } else { MAGNUS_ICE };
    a * crate::fastmath::exp((b * t_c) / (c + t_c))
}

/// Actual vapor pressure in hPa given temperature and relative humidity.
pub fn vapor_pressure_hpa(t_c: f64, rh_pct: f64) -> f64 {
    saturation_vapor_pressure_hpa(t_c) * clamp(rh_pct, 0.0, 100.0) / 100.0
}

/// Dew point in °C given temperature and relative humidity.
///
/// Inverts the Magnus formula on the over-water branch when the result is
/// ≥ 0 °C and the over-ice branch otherwise (strictly this is then a frost
/// point, which is the quantity of interest for frost formation on cases).
pub fn dew_point_c(t_c: f64, rh_pct: f64) -> f64 {
    let rh = clamp(rh_pct, 0.1, 100.0);
    let e = vapor_pressure_hpa(t_c, rh);
    // Try water branch first.
    let inv = |coef: (f64, f64, f64)| {
        let (a, b, c) = coef;
        let ln = crate::fastmath::ln(e / a);
        c * ln / (b - ln)
    };
    let dp_water = inv(MAGNUS_WATER);
    if dp_water >= 0.0 {
        dp_water
    } else {
        inv(MAGNUS_ICE)
    }
}

/// `ln(a_water / a_ice)`: re-bases a Magnus log term from one branch's `a`
/// to the other's without a second logarithm.
const LN_A_WATER_OVER_ICE: f64 = -4.418_442_979_873_290_3e-4;

/// [`dew_point_c`] with the vapor-pressure round trip fused into log space:
/// `ln(e/a_dst) = ln(rh/100) + ln(a_src/a_dst) + b·t/(c+t)`, so the whole
/// inversion costs a single logarithm instead of an exponential plus up to
/// two logarithms. The branch choice matches [`dew_point_c`] (water when
/// the water-branch dew point lands ≥ 0 °C, ice otherwise): the water dew
/// point has the sign of its log term, so no trial inversion is needed.
/// Agrees with [`dew_point_c`] to ~1e-11 K away from the 0 °C branch
/// boundary; the weather kernel's skeleton build calls this per tick.
pub fn dew_point_fast_c(t_c: f64, rh_pct: f64) -> f64 {
    let rh = clamp(rh_pct, 0.1, 100.0);
    let (_, b_src, c_src) = if t_c >= 0.0 { MAGNUS_WATER } else { MAGNUS_ICE };
    let g_src = crate::fastmath::ln(rh / 100.0) + (b_src * t_c) / (c_src + t_c);
    let g_water = if t_c >= 0.0 {
        g_src
    } else {
        g_src - LN_A_WATER_OVER_ICE
    };
    if g_water >= 0.0 {
        let (_, b, c) = MAGNUS_WATER;
        c * g_water / (b - g_water)
    } else {
        let g_ice = if t_c >= 0.0 {
            g_src + LN_A_WATER_OVER_ICE
        } else {
            g_src
        };
        let (_, b, c) = MAGNUS_ICE;
        c * g_ice / (b - g_ice)
    }
}

/// Relative humidity (%) of air with dew point `dp_c` at temperature `t_c`.
///
/// The ratio of the two Magnus exponentials is taken inside a single
/// [`crate::fastmath::exp`] (the weather generator calls this per tick):
/// `100·(a₁/a₂)·exp(b₁·dp/(c₁+dp) − b₂·t/(c₂+t))`, with each branch's
/// coefficients picked by the sign of its own temperature as in
/// [`saturation_vapor_pressure_hpa`].
pub fn rel_humidity_from_dew_point(t_c: f64, dp_c: f64) -> f64 {
    let (a1, b1, c1) = if dp_c >= 0.0 {
        MAGNUS_WATER
    } else {
        MAGNUS_ICE
    };
    let (a2, b2, c2) = if t_c >= 0.0 { MAGNUS_WATER } else { MAGNUS_ICE };
    let ratio =
        (a1 / a2) * crate::fastmath::exp((b1 * dp_c) / (c1 + dp_c) - (b2 * t_c) / (c2 + t_c));
    clamp(100.0 * ratio, 0.0, 100.0)
}

/// Absolute humidity in g/m³ (mass of water vapor per volume of moist air).
///
/// Ideal-gas form: `AH = e / (R_v · T)` with `R_v` = 461.5 J/(kg·K).
pub fn absolute_humidity_g_m3(t_c: f64, rh_pct: f64) -> f64 {
    let e_pa = vapor_pressure_hpa(t_c, rh_pct) * 100.0;
    let t_k = t_c + 273.15;
    e_pa / (461.5 * t_k) * 1000.0
}

/// Mixing ratio in g of water vapor per kg of dry air at pressure `p_hpa`.
pub fn mixing_ratio_g_kg(t_c: f64, rh_pct: f64, p_hpa: f64) -> f64 {
    let e = vapor_pressure_hpa(t_c, rh_pct);
    622.0 * e / (p_hpa - e)
}

/// Relative humidity of an air parcel after it is heated from `t_out` to
/// `t_in` at constant moisture content (the tent/case situation: outside air
/// is drawn in and warmed by the equipment, which *lowers* its RH).
pub fn rh_after_heating(t_out_c: f64, rh_out_pct: f64, t_in_c: f64) -> f64 {
    let e = vapor_pressure_hpa(t_out_c, rh_out_pct);
    clamp(
        100.0 * e / saturation_vapor_pressure_hpa(t_in_c),
        0.0,
        100.0,
    )
}

/// Outcome of a condensation-risk assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondensationRisk {
    /// Dew point of the ambient air, °C.
    pub dew_point_c: f64,
    /// Margin between the surface temperature and the dew point, K.
    /// Negative ⇒ condensation forms.
    pub margin_k: f64,
    /// True if condensation (or frost, below 0 °C) would form.
    pub condenses: bool,
}

/// Assess condensation risk on a surface at `surface_c` exposed to air at
/// `air_c` with relative humidity `rh_pct`.
///
/// The paper's argument is that server cases stay *warmer* than the ambient
/// air because of their internal power draw, so the margin is positive and
/// condensation is unlikely; the dangerous scenario is a rapid warm-humid
/// front arriving while the equipment is still cold (e.g. powered off).
pub fn condensation_risk(air_c: f64, rh_pct: f64, surface_c: f64) -> CondensationRisk {
    let dp = dew_point_c(air_c, rh_pct);
    let margin = surface_c - dp;
    CondensationRisk {
        dew_point_c: dp,
        margin_k: margin,
        condenses: margin < 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_pressure_reference_points() {
        // Classic reference values (hPa).
        assert!((saturation_vapor_pressure_hpa(0.0) - 6.11).abs() < 0.05);
        assert!((saturation_vapor_pressure_hpa(20.0) - 23.4).abs() < 0.3);
        assert!((saturation_vapor_pressure_hpa(-20.0) - 1.03).abs() < 0.05);
        assert!((saturation_vapor_pressure_hpa(100.0) - 1013.0).abs() < 30.0);
    }

    #[test]
    fn saturation_pressure_monotone_in_temperature() {
        let mut prev = saturation_vapor_pressure_hpa(-40.0);
        let mut t = -40.0;
        while t < 40.0 {
            t += 0.5;
            let e = saturation_vapor_pressure_hpa(t);
            assert!(e > prev, "not monotone at {t}");
            prev = e;
        }
    }

    #[test]
    fn dew_point_at_saturation_equals_temperature() {
        for t in [-25.0, -10.0, 0.0, 5.0, 20.0] {
            let dp = dew_point_c(t, 100.0);
            assert!((dp - t).abs() < 0.25, "t={t} dp={dp}");
        }
    }

    #[test]
    fn dew_point_below_temperature_when_unsaturated() {
        for t in [-20.0, -5.0, 10.0, 25.0] {
            for rh in [20.0, 50.0, 80.0, 99.0] {
                assert!(dew_point_c(t, rh) <= t + 0.25, "t={t} rh={rh}");
            }
        }
    }

    #[test]
    fn rh_dew_point_roundtrip() {
        for t in [-15.0, 0.0, 18.0] {
            for rh in [30.0, 60.0, 90.0] {
                let dp = dew_point_c(t, rh);
                let rh2 = rel_humidity_from_dew_point(t, dp);
                assert!((rh2 - rh).abs() < 1.5, "t={t} rh={rh} roundtrip {rh2}");
            }
        }
    }

    #[test]
    fn absolute_humidity_reference() {
        // Saturated air at 20 °C holds ≈ 17.3 g/m³.
        let ah = absolute_humidity_g_m3(20.0, 100.0);
        assert!((ah - 17.3).abs() < 0.5, "{ah}");
        // At −20 °C it is tiny, ≈ 0.9 g/m³ (over ice).
        let ah_cold = absolute_humidity_g_m3(-20.0, 100.0);
        assert!((0.5..1.4).contains(&ah_cold), "{ah_cold}");
    }

    #[test]
    fn heating_lowers_rh() {
        // Outside −10 °C, RH 90 %; warmed to +5 °C inside a case.
        let rh_in = rh_after_heating(-10.0, 90.0, 5.0);
        assert!(rh_in < 40.0, "{rh_in}");
        // Heating never increases RH.
        for t_out in [-20.0, -5.0, 5.0] {
            for dt in [1.0, 5.0, 15.0] {
                assert!(rh_after_heating(t_out, 85.0, t_out + dt) <= 85.0);
            }
        }
    }

    #[test]
    fn condensation_on_cold_surface() {
        // Warm humid front (+4 °C, 95 % RH) meets a case still at −10 °C.
        let risk = condensation_risk(4.0, 95.0, -10.0);
        assert!(risk.condenses);
        assert!(risk.margin_k < 0.0);
        // Normal operation: case warmer than ambient → safe.
        let safe = condensation_risk(-10.0, 90.0, 2.0);
        assert!(!safe.condenses);
        assert!(safe.margin_k > 5.0);
    }

    #[test]
    fn mixing_ratio_sane() {
        let w = mixing_ratio_g_kg(20.0, 50.0, 1013.25);
        assert!((7.0..8.0).contains(&w), "{w}"); // ≈ 7.3 g/kg
    }

    #[test]
    fn saturation_pressure_tracks_std_exp_reference() {
        // The fast-exp Magnus must stay within 1e-10 relative of the same
        // formula over `std::f64::exp`, across every temperature the model
        // can produce.
        let mut t = -60.0;
        while t <= 60.0 {
            let (a, b, c) = if t >= 0.0 { MAGNUS_WATER } else { MAGNUS_ICE };
            let want = a * ((b * t) / (c + t)).exp();
            let got = saturation_vapor_pressure_hpa(t);
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "t={t}: {got} vs {want}"
            );
            t += 0.01;
        }
    }

    #[test]
    fn dew_point_fast_matches_dew_point() {
        // The fused log-space inversion must agree with the two-step
        // exp-then-ln form everywhere the model samples. Near the 0 °C
        // branch boundary the two may legitimately pick different Magnus
        // branches (a ~5 mK discontinuity both share), so allow that zone.
        let mut t = -40.0;
        while t <= 30.0 {
            let mut rh = 5.0;
            while rh <= 100.0 {
                let fast = dew_point_fast_c(t, rh);
                let slow = dew_point_c(t, rh);
                assert!(
                    (fast - slow).abs() < 1e-9 || slow.abs() < 0.01,
                    "t={t} rh={rh}: {fast} vs {slow}"
                );
                rh += 0.5;
            }
            t += 0.25;
        }
    }

    #[test]
    fn rh_clamped() {
        assert_eq!(rel_humidity_from_dew_point(-5.0, 10.0), 100.0);
        assert!(vapor_pressure_hpa(10.0, 150.0) <= saturation_vapor_pressure_hpa(10.0) + 1e-9);
    }
}
