//! Solar geometry and clear-sky irradiance.
//!
//! The tent's biggest uncontrolled heat input was direct sunlight on the
//! fabric — the paper's "R" intervention (reflective rescue-foil cover)
//! exists precisely because of it. To reproduce Fig. 3's daytime bumps the
//! thermal model needs a solar forcing term, which this module supplies from
//! first principles: solar declination (Cooper's formula), hour angle,
//! elevation for an arbitrary latitude, and a simple clear-sky global
//! horizontal irradiance with an atmospheric-transmission term.
//!
//! Helsinki (60.2 °N) in February: the sun rises ~8 h, peaks at ~14–17°
//! elevation — weak, but a dark tent fabric still absorbs a few hundred W.

use frostlab_simkern::time::SimTime;

/// Latitude of the Kumpula campus roof terrace, degrees north.
pub const HELSINKI_LAT_DEG: f64 = 60.2;

/// Solar constant, W/m².
pub const SOLAR_CONSTANT: f64 = 1361.0;

/// Solar declination in degrees for a given day of year (Cooper 1969).
pub fn declination_deg(day_of_year: u32) -> f64 {
    23.45
        * ((360.0 / 365.0) * (284.0 + day_of_year as f64))
            .to_radians()
            .sin()
}

/// Hour angle in degrees at local solar hour `h` (0–24, 12 = solar noon).
pub fn hour_angle_deg(hour_of_day: f64) -> f64 {
    15.0 * (hour_of_day - 12.0)
}

/// The pieces of [`elevation_deg`] that depend only on latitude and day of
/// year, hoisted into a per-day value so the weather kernel's skeleton
/// build pays one cosine and one arcsine per tick instead of five
/// trigonometric calls.
#[derive(Debug, Clone, Copy)]
pub struct SolarDayGeom {
    /// `sin(lat)·sin(dec)`.
    sin_lat_sin_dec: f64,
    /// `cos(lat)·cos(dec)`.
    cos_lat_cos_dec: f64,
}

impl SolarDayGeom {
    /// Geometry at `latitude_deg` for the given day of year.
    pub fn new(latitude_deg: f64, day_of_year: u32) -> Self {
        let lat = latitude_deg.to_radians();
        let dec = declination_deg(day_of_year).to_radians();
        SolarDayGeom {
            sin_lat_sin_dec: lat.sin() * dec.sin(),
            cos_lat_cos_dec: lat.cos() * dec.cos(),
        }
    }

    /// Solar elevation in degrees at local solar hour `hour_of_day`.
    pub fn elevation_deg(&self, hour_of_day: f64) -> f64 {
        let ha = hour_angle_deg(hour_of_day).to_radians();
        (self.sin_lat_sin_dec + self.cos_lat_cos_dec * crate::fastmath::cos(ha))
            .asin()
            .to_degrees()
    }

    /// Clear-sky GHI in W/m² at local solar hour `hour_of_day`.
    ///
    /// The sine of the elevation comes straight out of the hour-angle
    /// formula, so night (the common case at 60 °N in winter) costs one
    /// cosine and a compare; only daylight entries pay the `asin` and the
    /// air-mass attenuation.
    pub fn clear_sky_w_m2(&self, hour_of_day: f64) -> f64 {
        let ha = hour_angle_deg(hour_of_day).to_radians();
        let sin_elev = self.sin_lat_sin_dec + self.cos_lat_cos_dec * crate::fastmath::cos(ha);
        if sin_elev <= 0.0 {
            return 0.0;
        }
        clear_sky_from_sin_elevation(sin_elev, sin_elev.asin().to_degrees())
    }
}

/// Solar elevation angle in degrees at `latitude_deg` for the given day of
/// year and local solar hour. Negative when the sun is below the horizon.
pub fn elevation_deg(latitude_deg: f64, day_of_year: u32, hour_of_day: f64) -> f64 {
    SolarDayGeom::new(latitude_deg, day_of_year).elevation_deg(hour_of_day)
}

/// Clear-sky global horizontal irradiance in W/m².
///
/// Uses a simple air-mass attenuation (Kasten–Young air mass, bulk
/// transmittance 0.7) — adequate for forcing a lumped thermal model.
pub fn clear_sky_ghi_w_m2(elevation_deg: f64) -> f64 {
    if elevation_deg <= 0.0 {
        return 0.0;
    }
    clear_sky_from_sin_elevation(
        crate::fastmath::sin(elevation_deg.to_radians()),
        elevation_deg,
    )
}

/// `ln 0.7` — the bulk-transmittance attenuation exponent, precomputed.
const LN_0_7: f64 = -0.356_674_943_938_732_45;

/// Core of [`clear_sky_ghi_w_m2`] with `sin(elevation)` already in hand:
/// it doubles as `cos(zenith)` in the Kasten–Young air-mass denominator
/// and as the horizontal projection, and the `0.7^(am^0.678)` attenuation
/// runs fused in log space (one `ln`, two `exp` instead of two `powf`).
fn clear_sky_from_sin_elevation(sin_elev: f64, elevation_deg: f64) -> f64 {
    let zen = 90.0 - elevation_deg;
    // Kasten & Young (1989) relative air mass.
    let am = 1.0
        / (sin_elev
            + 0.50572 * crate::fastmath::exp(-1.6364 * crate::fastmath::ln(96.07995 - zen)));
    let direct = SOLAR_CONSTANT
        * crate::fastmath::exp(LN_0_7 * crate::fastmath::exp(0.678 * crate::fastmath::ln(am)));
    // Horizontal projection plus a small diffuse fraction.
    let ghi = direct * sin_elev + 0.1 * direct;
    ghi.max(0.0)
}

/// Clear-sky irradiance at a [`SimTime`] — the deterministic part of
/// [`irradiance_at`], tabulated per tick by the weather kernel's skeleton.
pub fn clear_sky_at(latitude_deg: f64, t: SimTime) -> f64 {
    SolarDayGeom::new(latitude_deg, t.day_of_year()).clear_sky_w_m2(t.hour_of_day_f64())
}

/// Cloud attenuation factor for fractional cover `cloud ∈ [0, 1]`
/// (0 = clear). Follows the common `1 − 0.75·c³·⁴` fit (Kasten & Czeplak
/// 1980). This is the stochastic per-sample half of [`irradiance_at`].
pub fn cloud_attenuation(cloud: f64) -> f64 {
    let c = cloud.clamp(0.0, 1.0);
    1.0 - 0.75 * crate::fastmath::powf(c, 3.4)
}

/// Irradiance at a [`SimTime`], attenuated by fractional cloud cover
/// `cloud ∈ [0, 1]` (0 = clear).
pub fn irradiance_at(latitude_deg: f64, t: SimTime, cloud: f64) -> f64 {
    clear_sky_at(latitude_deg, t) * cloud_attenuation(cloud)
}

/// Day length in hours (sunrise to sunset) at the given latitude and day.
pub fn day_length_hours(latitude_deg: f64, day_of_year: u32) -> f64 {
    let lat = latitude_deg.to_radians();
    let dec = declination_deg(day_of_year).to_radians();
    let cos_ha = -lat.tan() * dec.tan();
    if cos_ha >= 1.0 {
        0.0 // polar night
    } else if cos_ha <= -1.0 {
        24.0 // midnight sun
    } else {
        2.0 * cos_ha.acos().to_degrees() / 15.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimTime;

    #[test]
    fn declination_extremes() {
        // Summer solstice ≈ +23.45°, winter ≈ −23.45°, equinox ≈ 0.
        assert!((declination_deg(172) - 23.45).abs() < 0.5);
        assert!((declination_deg(355) + 23.45).abs() < 0.5);
        assert!(declination_deg(81).abs() < 1.5);
    }

    #[test]
    fn helsinki_february_sun_is_low() {
        // Feb 15 (day 46), solar noon: elevation should be ~15–19°.
        let e = elevation_deg(HELSINKI_LAT_DEG, 46, 12.0);
        assert!((12.0..22.0).contains(&e), "{e}");
        // Midnight: far below horizon.
        assert!(elevation_deg(HELSINKI_LAT_DEG, 46, 0.0) < -30.0);
    }

    #[test]
    fn day_length_winter_vs_summer() {
        let feb = day_length_hours(HELSINKI_LAT_DEG, 46);
        let jun = day_length_hours(HELSINKI_LAT_DEG, 172);
        assert!((8.0..11.0).contains(&feb), "feb {feb}");
        assert!((17.0..20.5).contains(&jun), "jun {jun}");
        assert!(jun > feb);
    }

    #[test]
    fn polar_night_and_midnight_sun() {
        // 80 °N mid-winter: no day; mid-summer: 24 h.
        assert_eq!(day_length_hours(80.0, 355), 0.0);
        assert_eq!(day_length_hours(80.0, 172), 24.0);
    }

    #[test]
    fn irradiance_zero_at_night_positive_at_noon() {
        let night = SimTime::from_ymd_hms(2010, 2, 15, 1, 0, 0);
        let noon = SimTime::from_ymd_hms(2010, 2, 15, 12, 0, 0);
        assert_eq!(irradiance_at(HELSINKI_LAT_DEG, night, 0.0), 0.0);
        let g = irradiance_at(HELSINKI_LAT_DEG, noon, 0.0);
        assert!((100.0..500.0).contains(&g), "{g}");
    }

    #[test]
    fn clouds_attenuate() {
        let noon = SimTime::from_ymd_hms(2010, 3, 15, 12, 0, 0);
        let clear = irradiance_at(HELSINKI_LAT_DEG, noon, 0.0);
        let overcast = irradiance_at(HELSINKI_LAT_DEG, noon, 1.0);
        assert!(overcast < 0.35 * clear);
        assert!(overcast > 0.0);
    }

    #[test]
    fn clear_sky_monotone_in_elevation() {
        let mut prev = 0.0;
        for e in 1..=90 {
            let g = clear_sky_ghi_w_m2(f64::from(e));
            assert!(g >= prev, "elevation {e}");
            prev = g;
        }
        assert!(prev < SOLAR_CONSTANT);
    }

    #[test]
    fn spring_noon_brighter_than_winter_noon() {
        let feb = irradiance_at(
            HELSINKI_LAT_DEG,
            SimTime::from_ymd_hms(2010, 2, 15, 12, 0, 0),
            0.0,
        );
        let may = irradiance_at(
            HELSINKI_LAT_DEG,
            SimTime::from_ymd_hms(2010, 5, 10, 12, 0, 0),
            0.0,
        );
        assert!(may > 1.5 * feb, "feb {feb} may {may}");
    }
}
