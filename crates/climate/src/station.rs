//! Weather-station sampling: the SMEAR III surrogate.
//!
//! The paper's *outside* series (Fig. 3/4) comes from the SMEAR III station
//! operated by the Department of Physics together with the Finnish
//! Meteorological Institute. A station is not the atmosphere: it samples on
//! a fixed cadence and through imperfect instruments. [`WeatherStation`]
//! wraps a [`WeatherModel`] with exactly that — a sampling interval and
//! per-channel Gaussian instrument noise — and produces the observation
//! stream the rest of the platform consumes as the "outside" reference.

use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::math::clamp;
use crate::weather::{WeatherModel, WeatherSample};

/// Configuration of a station's sampling behaviour.
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// Station name for reports.
    pub name: &'static str,
    /// Sampling interval (SMEAR III publishes minutely means; we default to
    /// 10 minutes, matching the resolution the paper's figures use).
    pub interval: SimDuration,
    /// 1-σ temperature instrument error, K.
    pub temp_noise_k: f64,
    /// 1-σ relative-humidity instrument error, percentage points.
    pub rh_noise_pct: f64,
    /// 1-σ wind-speed instrument error, m/s.
    pub wind_noise_ms: f64,
}

impl Default for StationConfig {
    fn default() -> Self {
        StationConfig {
            name: "SMEAR III",
            interval: SimDuration::minutes(10),
            temp_noise_k: 0.1,
            rh_noise_pct: 1.0,
            wind_noise_ms: 0.2,
        }
    }
}

/// A single station observation (what gets logged and plotted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherObservation {
    /// Observation timestamp.
    pub t: SimTime,
    /// Observed air temperature, °C.
    pub temp_c: f64,
    /// Observed relative humidity, %.
    pub rh_pct: f64,
    /// Observed wind speed, m/s.
    pub wind_ms: f64,
    /// Observed global irradiance, W/m².
    pub solar_w_m2: f64,
}

/// A weather station: samples a [`WeatherModel`] on a fixed cadence with
/// instrument noise.
pub struct WeatherStation {
    config: StationConfig,
    rng: Rng,
    next_due: SimTime,
}

impl WeatherStation {
    /// Create a station that starts observing at `start`.
    pub fn new(config: StationConfig, start: SimTime, seed_rng: &Rng) -> Self {
        WeatherStation {
            rng: seed_rng.derive("station"),
            next_due: start,
            config,
        }
    }

    /// The station's configuration.
    pub fn config(&self) -> &StationConfig {
        &self.config
    }

    /// Time of the next scheduled observation.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Take one observation of `truth` (does not advance the schedule —
    /// useful for ad-hoc reads).
    pub fn observe(&mut self, truth: &WeatherSample) -> WeatherObservation {
        WeatherObservation {
            t: truth.t,
            temp_c: truth.temp_c + self.rng.normal(0.0, self.config.temp_noise_k),
            rh_pct: clamp(
                truth.rh_pct + self.rng.normal(0.0, self.config.rh_noise_pct),
                0.0,
                100.0,
            ),
            wind_ms: (truth.wind_ms + self.rng.normal(0.0, self.config.wind_noise_ms)).max(0.0),
            solar_w_m2: truth.solar_w_m2,
        }
    }

    /// If an observation is due at or before `t`, take it from the model and
    /// advance the schedule. Returns `None` when not yet due.
    pub fn poll(&mut self, model: &mut WeatherModel, t: SimTime) -> Option<WeatherObservation> {
        if t < self.next_due {
            return None;
        }
        let truth = model.sample_at(self.next_due);
        let obs = self.observe(&truth);
        self.next_due += self.config.interval;
        Some(obs)
    }

    /// If an observation is due exactly at `truth.t`, observe the given
    /// sample and advance the schedule. The campaign tick grid aligns with
    /// the station cadence, so the weather phase can hand the station the
    /// sample it just produced instead of paying for a second identical
    /// model sample (same RNG draws, same observation as [`Self::poll`]).
    pub fn poll_at(&mut self, truth: &WeatherSample) -> Option<WeatherObservation> {
        if truth.t != self.next_due {
            return None;
        }
        let obs = self.observe(truth);
        self.next_due += self.config.interval;
        Some(obs)
    }

    /// Convenience: observe the model over a whole window.
    pub fn record_window(
        &mut self,
        model: &mut WeatherModel,
        end: SimTime,
    ) -> Vec<WeatherObservation> {
        let mut out = Vec::new();
        while self.next_due <= end {
            let truth = model.sample_at(self.next_due);
            out.push(self.observe(&truth));
            self.next_due += self.config.interval;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn setup() -> (WeatherModel, WeatherStation) {
        let model = WeatherModel::new(presets::helsinki_winter_2010(), 31);
        let station = WeatherStation::new(
            StationConfig::default(),
            SimTime::from_date(2010, 2, 1),
            &Rng::new(31),
        );
        (model, station)
    }

    #[test]
    fn poll_respects_cadence() {
        let (mut model, mut st) = setup();
        let t0 = SimTime::from_date(2010, 2, 1);
        assert!(st.poll(&mut model, t0 - SimDuration::secs(1)).is_none());
        let o1 = st.poll(&mut model, t0).unwrap();
        assert_eq!(o1.t, t0);
        // Not due again until +10 min.
        assert!(st.poll(&mut model, t0 + SimDuration::minutes(9)).is_none());
        let o2 = st.poll(&mut model, t0 + SimDuration::minutes(10)).unwrap();
        assert_eq!(o2.t, t0 + SimDuration::minutes(10));
    }

    #[test]
    fn record_window_counts() {
        let (mut model, mut st) = setup();
        let end = SimTime::from_date(2010, 2, 1) + SimDuration::hours(2);
        let obs = st.record_window(&mut model, end);
        assert_eq!(obs.len(), 13); // 0..=120 min every 10 min
    }

    #[test]
    fn observations_track_truth() {
        let (mut model, mut st) = setup();
        let end = SimTime::from_date(2010, 2, 3);
        let obs = st.record_window(&mut model, end);
        // Instrument noise is small: successive obs shouldn't stray far from
        // a fresh model's truth at the same instants (same seed ⇒ same truth).
        let mut model2 = WeatherModel::new(presets::helsinki_winter_2010(), 31);
        for o in &obs {
            let truth = model2.sample_at(o.t);
            assert!((o.temp_c - truth.temp_c).abs() < 0.6, "noise too large");
            assert!((0.0..=100.0).contains(&o.rh_pct));
            assert!(o.wind_ms >= 0.0);
        }
    }

    #[test]
    fn deterministic_observations() {
        let run = || {
            let (mut model, mut st) = setup();
            st.record_window(&mut model, SimTime::from_date(2010, 2, 2))
        };
        assert_eq!(run(), run());
    }
}
