//! Stochastic multi-timescale weather generator.
//!
//! The generator composes four processes, mirroring how mid-latitude weather
//! actually decomposes:
//!
//! * a deterministic **seasonal** sinusoid (annual mean, amplitude, phase);
//! * a **synoptic** Ornstein–Uhlenbeck anomaly (high/low-pressure systems,
//!   relaxation time ≈ 3 days) — this is what produces multi-day cold snaps;
//! * a faster **mesoscale** OU anomaly (hours);
//! * a solar-locked **diurnal** cycle whose amplitude grows from winter to
//!   summer and is damped by cloud cover.
//!
//! Cloud cover, relative humidity and wind are correlated companion
//! processes: humidity rides on its own OU anomaly but is pushed *up* by
//! synoptic warming in winter (warm Atlantic air is moist air in Helsinki)
//! and *down* during the afternoon temperature peak; wind has a Weibull
//! marginal distribution obtained by probability-integral transform of an OU
//! Gaussian, so it keeps realistic gust persistence.
//!
//! **Historical anchors** let a scenario pin windows of the trace to the
//! statistics the paper reports (e.g. the prototype weekend mean of −9.2 °C)
//! while the texture stays stochastic. Anchors blend the synoptic state
//! toward a target mean with a smooth ramp, so the trace stays continuous.
//!
//! The model is advanced on a fixed internal step (60 s) and sampled
//! monotonically; identical `(params, seed)` always yields the identical
//! trace.
//!
//! # The two-part kernel
//!
//! Sampling splits into a **deterministic skeleton** and a **stochastic
//! residual**, because nothing in the deterministic part depends on the
//! seed:
//!
//! * The skeleton — seasonal mean, diurnal amplitude and phase cosine,
//!   RH/cloud seasonal means, the dew-point spread target, clear-sky solar
//!   irradiance, and the anchor blend — is a pure function of `(params, t)`.
//!   It is tabulated once per simulated day on the 60-s tick grid
//!   (`SkeletonEntry`, built lazily in day chunks with a small rolling
//!   cache so year-long campaigns stay O(1) in memory), so the per-sample
//!   cost collapses to one table lookup. Off-grid sample times fall back to
//!   computing the same entry directly — identical values, just not cached.
//! * The residual advances all five OU processes for a tick in one batched
//!   pass with the per-tick `exp(−Δt/τ)` decay and `√(1−a²)` noise gain
//!   precomputed at construction (the internal step is fixed), then
//!   assembles the sample with [`crate::fastmath`] bounded-error
//!   approximations for the few remaining per-sample transcendentals
//!   (Magnus `exp`, `erf`, Weibull `ln`/`powf`, cloud `powf`).
//!
//! The split is exact for the OU batching (same arithmetic, same RNG
//! streams); the fast-math approximations shift low-order bits, which is
//! why the golden hashes were re-pinned in the same change (cutover
//! documented in DESIGN.md §“Weather kernel”).

use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::math::{clamp, lerp, smoothstep};
use crate::{fastmath, solar};

/// Internal state-advancement step for the OU processes.
const STEP: SimDuration = SimDuration::secs(60);
/// [`STEP`] in seconds, as the float the OU arithmetic uses.
const STEP_SECS_F: f64 = 60.0;

/// A window during which the temperature trace is blended toward a target
/// mean — used to reproduce documented episodes (prototype weekend, the
/// −22 °C cold snap) without giving up stochastic texture.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Target mean temperature during the window, °C.
    pub target_mean_c: f64,
    /// Blend weight in `(0, 1]`; 1 pins the synoptic mean exactly.
    pub weight: f64,
}

/// Parameters describing one climate. Constructors for the three climates
/// used in the study live in [`crate::presets`].
#[derive(Debug, Clone)]
pub struct ClimateParams {
    /// Human-readable name ("Helsinki", …).
    pub name: &'static str,
    /// Site latitude (degrees north) — drives solar geometry.
    pub latitude_deg: f64,
    /// Annual mean temperature, °C.
    pub t_annual_mean_c: f64,
    /// Half peak-to-trough seasonal swing, K.
    pub t_seasonal_amplitude_k: f64,
    /// Day of year of the climatological temperature minimum.
    pub coldest_day_of_year: f64,
    /// Standard deviation of the synoptic anomaly, K.
    pub synoptic_sd_k: f64,
    /// Relaxation time of the synoptic anomaly, hours.
    pub synoptic_tau_hours: f64,
    /// Standard deviation of the mesoscale anomaly, K.
    pub meso_sd_k: f64,
    /// Relaxation time of the mesoscale anomaly, hours.
    pub meso_tau_hours: f64,
    /// Diurnal half-swing in mid-winter, K.
    pub diurnal_amp_winter_k: f64,
    /// Diurnal half-swing in mid-summer, K.
    pub diurnal_amp_summer_k: f64,
    /// Mean relative humidity in mid-winter, %.
    pub rh_mean_winter: f64,
    /// Mean relative humidity in mid-summer, %.
    pub rh_mean_summer: f64,
    /// Standard deviation of the RH anomaly, percentage points.
    pub rh_sd: f64,
    /// Relaxation time of the RH anomaly, hours.
    pub rh_tau_hours: f64,
    /// RH response to synoptic temperature anomaly, %-points per K
    /// (positive in maritime winter climates: warm advection is moist).
    pub rh_temp_coupling: f64,
    /// Weibull scale of the wind-speed marginal, m/s.
    pub wind_weibull_scale: f64,
    /// Weibull shape of the wind-speed marginal.
    pub wind_weibull_shape: f64,
    /// Relaxation time of the wind process, hours.
    pub wind_tau_hours: f64,
    /// Mean fractional cloud cover in mid-winter.
    pub cloud_mean_winter: f64,
    /// Mean fractional cloud cover in mid-summer.
    pub cloud_mean_summer: f64,
    /// Relaxation time of the cloud process, hours.
    pub cloud_tau_hours: f64,
    /// Historical anchors (may be empty).
    pub anchors: Vec<Anchor>,
}

impl ClimateParams {
    /// Seasonal-mean temperature on day `doy` (fractional days allowed).
    pub fn seasonal_mean_c(&self, doy: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (doy - self.coldest_day_of_year) / 365.25;
        self.t_annual_mean_c - self.t_seasonal_amplitude_k * phase.cos()
    }

    /// All deterministic per-tick quantities in one pass — the unit of the
    /// precomputed skeleton. One seasonal-phase cosine serves the seasonal
    /// mean and every `summerness`-interpolated field, and the dew-point
    /// spread target is inverted analytically from the Magnus relation
    /// instead of bisected.
    fn skeleton_entry(&self, t: SimTime) -> SkeletonEntry {
        let day = t.day_of_year();
        let geom = solar::SolarDayGeom::new(self.latitude_deg, day);
        self.skeleton_entry_in_day(t, day, &geom)
    }

    /// [`Self::skeleton_entry`] with the per-day pieces (integer day of
    /// year, solar geometry) hoisted: a skeleton chunk spans exactly one
    /// UTC day, so the chunk builder computes them once per 1440 entries.
    fn skeleton_entry_in_day(
        &self,
        t: SimTime,
        day_of_year: u32,
        geom: &solar::SolarDayGeom,
    ) -> SkeletonEntry {
        let h = t.hour_of_day_f64();
        let doy = day_of_year as f64 + h / 24.0;
        let phase = 2.0 * std::f64::consts::PI * (doy - self.coldest_day_of_year) / 365.25;
        let cphase = fastmath::cos(phase);
        let seasonal_c = self.t_annual_mean_c - self.t_seasonal_amplitude_k * cphase;
        let summerness = 0.5 * (1.0 - cphase);
        let rh_mean = lerp(self.rh_mean_winter, self.rh_mean_summer, summerness);
        // Dew-point spread (K) that yields the seasonal-mean RH at the
        // seasonal-mean temperature: the exact inverse of
        // `rel_humidity_from_dew_point(t, t − spread) = rh`, replacing the
        // 40-step bisection the pre-kernel generator ran per sample.
        let rh_target = clamp(rh_mean, 5.0, 100.0);
        let spread_target_k =
            (seasonal_c - crate::psychro::dew_point_fast_c(seasonal_c, rh_target)).clamp(0.0, 40.0);
        let (anchor_target_c, anchor_weight) = self.anchor_at(t).unwrap_or((0.0, 0.0));
        SkeletonEntry {
            seasonal_c,
            diurnal_amp_k: lerp(
                self.diurnal_amp_winter_k,
                self.diurnal_amp_summer_k,
                summerness,
            ),
            cloud_mean: lerp(self.cloud_mean_winter, self.cloud_mean_summer, summerness),
            spread_target_k,
            diurnal_cos: fastmath::cos(2.0 * std::f64::consts::PI * (h - 15.0) / 24.0),
            clear_sky_w_m2: geom.clear_sky_w_m2(h),
            anchor_target_c,
            anchor_weight,
        }
    }

    /// Anchor adjustment at `t`: `(target_offset, weight)` where weight
    /// ramps smoothly over 6 h at the window edges.
    fn anchor_at(&self, t: SimTime) -> Option<(f64, f64)> {
        let ramp = 6.0 * 3600.0;
        for a in &self.anchors {
            if t >= a.start - SimDuration::hours(6) && t <= a.end + SimDuration::hours(6) {
                let ts = t.as_secs() as f64;
                let up = smoothstep(
                    a.start.as_secs() as f64 - ramp,
                    a.start.as_secs() as f64,
                    ts,
                );
                let down =
                    1.0 - smoothstep(a.end.as_secs() as f64, a.end.as_secs() as f64 + ramp, ts);
                let w = a.weight * up.min(down);
                if w > 0.0 {
                    return Some((a.target_mean_c, w));
                }
            }
        }
        None
    }
}

/// One instantaneous weather state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherSample {
    /// Timestamp of the sample.
    pub t: SimTime,
    /// 2-m air temperature, °C.
    pub temp_c: f64,
    /// Relative humidity, %.
    pub rh_pct: f64,
    /// 10-min mean wind speed, m/s.
    pub wind_ms: f64,
    /// Global horizontal irradiance, W/m².
    pub solar_w_m2: f64,
    /// Fractional cloud cover, 0–1.
    pub cloud: f64,
}

/// One row of the precomputed deterministic skeleton: everything about a
/// sample instant that does not depend on the seed.
#[derive(Debug, Clone, Copy)]
struct SkeletonEntry {
    /// Seasonal-mean temperature, °C.
    seasonal_c: f64,
    /// Diurnal half-swing before cloud damping, K.
    diurnal_amp_k: f64,
    /// Seasonal-mean fractional cloud cover.
    cloud_mean: f64,
    /// Dew-point spread matching the seasonal RH target, K.
    spread_target_k: f64,
    /// `cos(2π(h − 15)/24)` — the diurnal phase factor.
    diurnal_cos: f64,
    /// Clear-sky global horizontal irradiance, W/m².
    clear_sky_w_m2: f64,
    /// Anchor target mean, °C (meaningful when `anchor_weight > 0`).
    anchor_target_c: f64,
    /// Anchor blend weight; 0 ⇒ no anchor active at this instant.
    anchor_weight: f64,
}

/// Ticks per skeleton chunk: one simulated day on the 60-s grid.
const CHUNK_TICKS: i64 = 1440;
/// Chunks kept resident when building lazily. Sampling is monotone, so a
/// small rolling window keeps even year-long campaigns at O(1) skeleton
/// memory.
const MIN_CHUNKS: usize = 4;
/// Upper bound on chunks built eagerly by [`Skeleton::prewarm`] (~3 MB);
/// campaigns longer than this fall back to rolling lazy builds past the
/// prewarmed window.
const PREWARM_MAX_CHUNKS: usize = 32;

/// Day-chunked table of [`SkeletonEntry`] on the tick grid: prewarmed for
/// the campaign window at construction, built lazily past it.
#[derive(Debug, Clone)]
struct Skeleton {
    /// `(chunk index, entries)` in build order; oldest evicted first.
    chunks: Vec<(i64, Box<[SkeletonEntry]>)>,
    /// Resident-chunk cap; [`Skeleton::prewarm`] raises it so an eagerly
    /// built campaign window is not evicted by its own construction.
    capacity: usize,
}

impl Default for Skeleton {
    fn default() -> Self {
        Skeleton {
            chunks: Vec::new(),
            capacity: MIN_CHUNKS,
        }
    }
}

impl Skeleton {
    /// Build one day chunk. A chunk spans exactly one UTC day (1440
    /// one-minute ticks from midnight), so the day of year and solar
    /// geometry are loop invariants of the build.
    fn build_chunk(params: &ClimateParams, chunk_idx: i64) -> Box<[SkeletonEntry]> {
        let base_tick = chunk_idx * CHUNK_TICKS;
        let day = SimTime::from_secs(base_tick * 60).day_of_year();
        let geom = solar::SolarDayGeom::new(params.latitude_deg, day);
        (0..CHUNK_TICKS)
            .map(|i| {
                params.skeleton_entry_in_day(SimTime::from_secs((base_tick + i) * 60), day, &geom)
            })
            .collect()
    }

    /// Insert a chunk, evicting the oldest beyond capacity.
    fn insert(&mut self, chunk_idx: i64, entries: Box<[SkeletonEntry]>) {
        if self.chunks.len() >= self.capacity {
            self.chunks.remove(0);
        }
        self.chunks.push((chunk_idx, entries));
    }

    /// Eagerly tabulate every chunk covering `[start, end]` (bounded by
    /// [`PREWARM_MAX_CHUNKS`]) so the sampling hot loop pays table lookups
    /// only. Idempotent; already-resident chunks are kept.
    fn prewarm(&mut self, params: &ClimateParams, start: SimTime, end: SimTime) {
        if end < start {
            return;
        }
        let first = start.as_secs().div_euclid(60 * CHUNK_TICKS);
        let last = end.as_secs().div_euclid(60 * CHUNK_TICKS);
        let count = ((last - first + 1) as usize).min(PREWARM_MAX_CHUNKS);
        self.capacity = self.capacity.max(count);
        for chunk_idx in first..first + count as i64 {
            if self.chunks.iter().any(|(idx, _)| *idx == chunk_idx) {
                continue;
            }
            let entries = Skeleton::build_chunk(params, chunk_idx);
            self.insert(chunk_idx, entries);
        }
    }

    /// Entry for `t`: cached when `t` lies on the 60-s tick grid, computed
    /// directly (same arithmetic) otherwise.
    fn entry(&mut self, params: &ClimateParams, t: SimTime) -> SkeletonEntry {
        let secs = t.as_secs();
        if secs % 60 != 0 {
            return params.skeleton_entry(t);
        }
        let tick = secs / 60;
        let chunk_idx = tick.div_euclid(CHUNK_TICKS);
        let offset = tick.rem_euclid(CHUNK_TICKS) as usize;
        if let Some((_, entries)) = self.chunks.iter().find(|(idx, _)| *idx == chunk_idx) {
            return entries[offset];
        }
        let entries = Skeleton::build_chunk(params, chunk_idx);
        let entry = entries[offset];
        self.insert(chunk_idx, entries);
        entry
    }
}

/// Ornstein–Uhlenbeck state in standard-normal units, with the whole-step
/// decay/noise coefficients precomputed (the internal step is fixed at
/// [`STEP`], so `exp(−Δt/τ)` is a per-process constant).
#[derive(Debug, Clone, Copy)]
struct Ou {
    z: f64,
    tau_secs: f64,
    /// `exp(−STEP/τ)`.
    step_decay: f64,
    /// `√(1 − step_decay²)`.
    step_noise: f64,
}

impl Ou {
    fn new(tau_hours: f64) -> Self {
        let tau_secs = tau_hours * 3600.0;
        let step_decay = (-STEP_SECS_F / tau_secs).exp();
        Ou {
            z: 0.0,
            tau_secs,
            step_decay,
            step_noise: (1.0 - step_decay * step_decay).sqrt(),
        }
    }

    /// Advance `n` whole internal steps in one batched pass.
    fn advance(&mut self, n: i64, rng: &mut Rng) {
        let (a, b) = (self.step_decay, self.step_noise);
        let mut z = self.z;
        for _ in 0..n {
            z = a * z + b * rng.standard_normal();
        }
        self.z = z;
    }

    /// Advance one partial step of `dt_secs < STEP` (grid-unaligned sample
    /// times only).
    fn step_partial(&mut self, dt_secs: f64, rng: &mut Rng) {
        let a = (-dt_secs / self.tau_secs).exp();
        self.z = a * self.z + (1.0 - a * a).sqrt() * rng.standard_normal();
    }
}

/// The stochastic weather generator. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct WeatherModel {
    params: ClimateParams,
    now: SimTime,
    skeleton: Skeleton,
    synoptic: Ou,
    meso: Ou,
    rh: Ou,
    wind: Ou,
    cloud: Ou,
    rng_synoptic: Rng,
    rng_meso: Rng,
    rng_rh: Rng,
    rng_wind: Rng,
    rng_cloud: Rng,
}

impl WeatherModel {
    /// Create a model; the internal state is spun up for 30 simulated days
    /// before the epoch so the OU processes start in their stationary
    /// distribution.
    pub fn new(params: ClimateParams, seed: u64) -> Self {
        let root = Rng::new(seed).derive("climate");
        let mut m = WeatherModel {
            skeleton: Skeleton::default(),
            synoptic: Ou::new(params.synoptic_tau_hours),
            meso: Ou::new(params.meso_tau_hours),
            rh: Ou::new(params.rh_tau_hours),
            wind: Ou::new(params.wind_tau_hours),
            cloud: Ou::new(params.cloud_tau_hours),
            rng_synoptic: root.derive("synoptic"),
            rng_meso: root.derive("meso"),
            rng_rh: root.derive("rh"),
            rng_wind: root.derive("wind"),
            rng_cloud: root.derive("cloud"),
            now: SimTime::ZERO - SimDuration::days(30),
            params,
        };
        // Spin-up: advance the OU states to stationarity before the epoch.
        m.advance_to(SimTime::ZERO);
        m
    }

    /// The climate parameters this model was built with.
    pub fn params(&self) -> &ClimateParams {
        &self.params
    }

    /// Precompute the per-campaign state so the sampling hot loop runs pure
    /// table lookups plus one OU tick: tabulates the deterministic skeleton
    /// for `[start, end]` and advances the OU residuals from the epoch to
    /// `start` (otherwise the first sample pays the whole epoch→start
    /// catch-up). Draw-for-draw identical to sampling without it — the
    /// catch-up consumes exactly the draws the first sample would have —
    /// just not charged to the hot phase. Optional and idempotent.
    pub fn prewarm(&mut self, start: SimTime, end: SimTime) {
        self.skeleton.prewarm(&self.params, start, end);
        self.advance_to(start);
    }

    /// Internal-state clock (last advanced instant).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the OU residuals to `t`: all whole internal steps for each
    /// process in one batched pass (precomputed decay, no per-step
    /// transcendentals), then at most one partial step. Each process owns
    /// its RNG stream, so batching per process draws the exact sequence the
    /// old per-substep interleaving did.
    fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        let total_secs = (t - self.now).as_secs();
        let whole = total_secs / STEP.as_secs();
        let rem = (total_secs % STEP.as_secs()) as f64;
        self.synoptic.advance(whole, &mut self.rng_synoptic);
        self.meso.advance(whole, &mut self.rng_meso);
        self.rh.advance(whole, &mut self.rng_rh);
        self.wind.advance(whole, &mut self.rng_wind);
        self.cloud.advance(whole, &mut self.rng_cloud);
        if rem > 0.0 {
            self.synoptic.step_partial(rem, &mut self.rng_synoptic);
            self.meso.step_partial(rem, &mut self.rng_meso);
            self.rh.step_partial(rem, &mut self.rng_rh);
            self.wind.step_partial(rem, &mut self.rng_wind);
            self.cloud.step_partial(rem, &mut self.rng_cloud);
        }
        self.now = t;
    }

    /// Sample the weather at `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than a previously sampled instant (the model
    /// is a forward-only stochastic process).
    pub fn sample_at(&mut self, t: SimTime) -> WeatherSample {
        assert!(
            t >= self.now,
            "weather sampled backwards: {t:?} < {:?}",
            self.now
        );
        self.advance_to(t);
        self.assemble(t)
    }

    /// Batched equivalent of `n` successive [`Self::sample_at`] calls at
    /// `start, start + 60 s, …` — draw-for-draw and bit-for-bit identical
    /// (it runs the same advance and assembly per tick). The point is
    /// locality: one call per simulated day keeps the whole weather working
    /// set (skeleton chunk, OU and RNG state) hot instead of re-faulting it
    /// from cache every campaign tick.
    ///
    /// # Panics
    /// Panics if `start` is earlier than a previously sampled instant.
    pub fn sample_ticks(&mut self, start: SimTime, n: usize) -> Vec<WeatherSample> {
        assert!(
            start >= self.now,
            "weather sampled backwards: {start:?} < {:?}",
            self.now
        );
        let mut out = Vec::with_capacity(n);
        for i in 0..n as i64 {
            let t = start + SimDuration::secs(i * STEP.as_secs());
            self.advance_to(t);
            out.push(self.assemble(t));
        }
        out
    }

    /// Assemble the sample at `t` from the skeleton entry and the current
    /// OU residual states. Caller must have advanced the residuals to `t`.
    fn assemble(&mut self, t: SimTime) -> WeatherSample {
        let p = &self.params;
        // All deterministic per-instant quantities come from the skeleton
        // table (one lookup on the tick grid); only the OU residual
        // assembly below runs per sample.
        let e = self.skeleton.entry(&self.params, t);

        // --- cloud ---
        let cloud = clamp(e.cloud_mean + 0.35 * self.cloud.z, 0.0, 1.0);

        // --- temperature ---
        let synoptic_k = p.synoptic_sd_k * self.synoptic.z;
        let meso_k = p.meso_sd_k * self.meso.z;
        let mut base = e.seasonal_c + synoptic_k;
        if e.anchor_weight > 0.0 {
            base = lerp(base, e.anchor_target_c, e.anchor_weight);
        }
        // Diurnal cycle peaks mid-afternoon (≈ 15:00 local); clear skies
        // amplify it, overcast damps it.
        let diurnal = e.diurnal_amp_k * (1.0 - 0.6 * cloud) * e.diurnal_cos;
        let temp_c = base + meso_k + diurnal;

        // --- relative humidity, via the dew-point spread ---
        // The physically conserved short-term quantity is the air mass's
        // moisture content (dew point), not RH. We generate a *smooth*
        // dew-point spread (T − T_d) — seasonal target + slow OU anomaly +
        // synoptic coupling — and derive RH from it. Fast temperature
        // wiggles then anticorrelate with RH automatically, exactly as in
        // real traces, and downstream consumers (the tent) see a smooth
        // vapor-pressure signal.
        //
        // Map the configured RH variability (pp) into spread units (K):
        // d(RH)/d(spread) ≈ −6 pp/K in the relevant range.
        let spread = (e.spread_target_k + (p.rh_sd / 6.0) * self.rh.z
            - (p.rh_temp_coupling / 6.0) * synoptic_k)
            .max(0.05);
        // Dew point rides the *slow* temperature components only (seasonal
        // + synoptic, i.e. `base`): mesoscale and diurnal temperature
        // swings happen at constant moisture, so they show up as RH
        // variation — the anticorrelation real traces exhibit.
        let dew_point = (base - spread).min(temp_c);
        let rh_pct = clamp(
            crate::psychro::rel_humidity_from_dew_point(temp_c, dew_point),
            5.0,
            100.0,
        );

        // --- wind ---
        let u = fastmath::norm_cdf(self.wind.z).clamp(1e-9, 1.0 - 1e-9);
        let wind_ms = fastmath::weibull_quantile(u, p.wind_weibull_scale, p.wind_weibull_shape);

        // --- solar ---
        // Night (most winter ticks at 60 °N) skips the attenuation powf:
        // zero stays zero under any cloud factor.
        let solar_w_m2 = if e.clear_sky_w_m2 > 0.0 {
            e.clear_sky_w_m2 * solar::cloud_attenuation(cloud)
        } else {
            0.0
        };

        WeatherSample {
            t,
            temp_c,
            rh_pct,
            wind_ms,
            solar_w_m2,
            cloud,
        }
    }

    /// Generate a regularly sampled series over `[start, end]` inclusive.
    pub fn series(
        &mut self,
        start: SimTime,
        end: SimTime,
        step: SimDuration,
    ) -> Vec<WeatherSample> {
        assert!(step.as_secs() > 0, "step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            out.push(self.sample_at(t));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn february_series(seed: u64) -> Vec<WeatherSample> {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
        wx.series(
            SimTime::from_date(2010, 2, 1),
            SimTime::from_date(2010, 3, 1),
            SimDuration::minutes(30),
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let a = february_series(7);
        let b = february_series(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.temp_c, y.temp_c);
            assert_eq!(x.rh_pct, y.rh_pct);
            assert_eq!(x.wind_ms, y.wind_ms);
        }
    }

    #[test]
    fn seeds_differ() {
        let a = february_series(1);
        let b = february_series(2);
        let identical = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.temp_c == y.temp_c)
            .count();
        assert!(identical < a.len() / 10);
    }

    #[test]
    fn february_mean_in_band() {
        // Winter 2009–2010 was harsh: Feb means around −7…−11 °C.
        for seed in [1, 2, 3, 4, 5] {
            let s = february_series(seed);
            let mean = s.iter().map(|x| x.temp_c).sum::<f64>() / s.len() as f64;
            assert!(
                (-13.0..=-4.0).contains(&mean),
                "seed {seed}: Feb mean {mean}"
            );
        }
    }

    #[test]
    fn winter_minimum_reaches_deep_cold() {
        // Season minimum (Jan–Mar) should land near the paper's −22 °C.
        for seed in [1, 2, 3] {
            let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
            let s = wx.series(
                SimTime::from_date(2010, 1, 5),
                SimTime::from_date(2010, 3, 31),
                SimDuration::minutes(30),
            );
            let min = s.iter().map(|x| x.temp_c).fold(f64::INFINITY, f64::min);
            assert!(
                (-30.0..=-15.0).contains(&min),
                "seed {seed}: winter min {min}"
            );
        }
    }

    #[test]
    fn rh_stays_in_range_and_high_in_winter() {
        let s = february_series(3);
        for x in &s {
            assert!((5.0..=100.0).contains(&x.rh_pct));
        }
        let mean_rh = s.iter().map(|x| x.rh_pct).sum::<f64>() / s.len() as f64;
        assert!((70.0..=95.0).contains(&mean_rh), "mean RH {mean_rh}");
    }

    #[test]
    fn wind_nonnegative_with_plausible_mean() {
        let s = february_series(4);
        assert!(s.iter().all(|x| x.wind_ms >= 0.0));
        let mean = s.iter().map(|x| x.wind_ms).sum::<f64>() / s.len() as f64;
        assert!((1.5..=8.0).contains(&mean), "mean wind {mean}");
    }

    #[test]
    fn solar_zero_at_night() {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 5);
        let night = wx.sample_at(SimTime::from_ymd_hms(2010, 2, 20, 2, 0, 0));
        assert_eq!(night.solar_w_m2, 0.0);
    }

    #[test]
    fn spring_is_warmer_than_winter() {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 6);
        let feb = wx.series(
            SimTime::from_date(2010, 2, 10),
            SimTime::from_date(2010, 2, 24),
            SimDuration::hours(1),
        );
        let may = wx.series(
            SimTime::from_date(2010, 5, 1),
            SimTime::from_date(2010, 5, 14),
            SimDuration::hours(1),
        );
        let m_feb = feb.iter().map(|x| x.temp_c).sum::<f64>() / feb.len() as f64;
        let m_may = may.iter().map(|x| x.temp_c).sum::<f64>() / may.len() as f64;
        assert!(m_may > m_feb + 8.0, "feb {m_feb} may {m_may}");
    }

    #[test]
    fn prototype_weekend_anchor_holds() {
        // The preset anchors Feb 12–15 to ≈ −9.2 °C (paper, Section 3.1).
        for seed in [1, 9, 42] {
            let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
            let s = wx.series(
                SimTime::from_date(2010, 2, 12),
                SimTime::from_date(2010, 2, 15),
                SimDuration::minutes(10),
            );
            let mean = s.iter().map(|x| x.temp_c).sum::<f64>() / s.len() as f64;
            assert!(
                (-12.0..=-6.5).contains(&mean),
                "seed {seed}: weekend mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn sampling_backwards_panics() {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 1);
        wx.sample_at(SimTime::from_date(2010, 3, 1));
        wx.sample_at(SimTime::from_date(2010, 2, 1));
    }

    #[test]
    fn series_length() {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 1);
        let s = wx.series(
            SimTime::from_date(2010, 2, 1),
            SimTime::from_date(2010, 2, 2),
            SimDuration::hours(6),
        );
        assert_eq!(s.len(), 5); // 0, 6, 12, 18, 24 h
    }

    #[test]
    fn temperature_has_no_teleports() {
        // Consecutive 10-min samples should differ by well under 3 K.
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 8);
        let s = wx.series(
            SimTime::from_date(2010, 2, 5),
            SimTime::from_date(2010, 2, 12),
            SimDuration::minutes(10),
        );
        for w in s.windows(2) {
            let d = (w[1].temp_c - w[0].temp_c).abs();
            assert!(d < 3.0, "jump of {d} K between consecutive samples");
        }
    }
}
