//! A ustar-style `tar` archiver over in-memory file trees.
//!
//! The workload packs "a Linux kernel source directory with the standard tar
//! and bzip2 archive programs" (§3.5). This module is the `tar` half: a
//! faithful subset of the POSIX ustar on-disk format — 512-byte headers with
//! octal fields and the standard checksum, 512-byte-padded content, and a
//! 1024-byte zero terminator. Deterministic by construction: identical trees
//! produce identical archives, which is what makes the golden-md5 comparison
//! meaningful.

/// One file in the tree to be archived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Path within the tree (no leading slash).
    pub path: String,
    /// Unix mode bits (e.g. 0o644).
    pub mode: u32,
    /// Modification time, seconds since the Unix epoch.
    pub mtime: u64,
    /// File contents.
    pub data: Vec<u8>,
}

/// Errors from [`unarchive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TarError {
    /// Archive ended mid-record.
    Truncated,
    /// A header's checksum did not match.
    BadChecksum {
        /// Offset of the offending header.
        offset: usize,
    },
    /// A numeric field contained non-octal data.
    BadField,
    /// Path field was not valid UTF-8.
    BadPath,
}

impl std::fmt::Display for TarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TarError::Truncated => write!(f, "tar archive truncated"),
            TarError::BadChecksum { offset } => write!(f, "tar header checksum failed at {offset}"),
            TarError::BadField => write!(f, "tar header field malformed"),
            TarError::BadPath => write!(f, "tar path not valid UTF-8"),
        }
    }
}

impl std::error::Error for TarError {}

const BLOCK: usize = 512;

fn write_octal(field: &mut [u8], value: u64) {
    // Classic tar: zero-padded octal, NUL-terminated.
    let width = field.len() - 1;
    let s = format!("{value:0width$o}");
    let bytes = s.as_bytes();
    let start = bytes.len().saturating_sub(width);
    field[..width].copy_from_slice(&bytes[start..]);
    field[width] = 0;
}

fn read_octal(field: &[u8]) -> Result<u64, TarError> {
    let mut v: u64 = 0;
    let mut seen = false;
    for &b in field {
        match b {
            b'0'..=b'7' => {
                v = v * 8 + u64::from(b - b'0');
                seen = true;
            }
            b' ' | 0 => {
                if seen {
                    break;
                }
            }
            _ => return Err(TarError::BadField),
        }
    }
    Ok(v)
}

fn header_for(entry: &FileEntry) -> [u8; BLOCK] {
    let mut h = [0u8; BLOCK];
    let name = entry.path.as_bytes();
    let n = name.len().min(100);
    h[0..n].copy_from_slice(&name[..n]);
    write_octal(&mut h[100..108], u64::from(entry.mode & 0o7777));
    write_octal(&mut h[108..116], 0); // uid
    write_octal(&mut h[116..124], 0); // gid
    write_octal(&mut h[124..136], entry.data.len() as u64);
    write_octal(&mut h[136..148], entry.mtime);
    h[156] = b'0'; // regular file
    h[257..263].copy_from_slice(b"ustar\0");
    h[263..265].copy_from_slice(b"00");
    // Checksum: field treated as spaces while summing.
    h[148..156].copy_from_slice(b"        ");
    let sum: u64 = h.iter().map(|&b| u64::from(b)).sum();
    let mut cks = [0u8; 8];
    write_octal(&mut cks[..7], sum);
    cks[7] = b' ';
    h[148..156].copy_from_slice(&cks);
    h
}

/// Serialize a file tree to a tar archive.
///
/// Entries are emitted in the order given; callers wanting deterministic
/// archives should sort (the workload's tree generator already does).
pub fn archive(entries: &[FileEntry]) -> Vec<u8> {
    let total: usize = entries
        .iter()
        .map(|e| BLOCK + e.data.len().div_ceil(BLOCK) * BLOCK)
        .sum::<usize>()
        + 2 * BLOCK;
    let mut out = Vec::with_capacity(total);
    for e in entries {
        out.extend_from_slice(&header_for(e));
        out.extend_from_slice(&e.data);
        let pad = (BLOCK - e.data.len() % BLOCK) % BLOCK;
        out.extend(std::iter::repeat_n(0u8, pad));
    }
    out.extend(std::iter::repeat_n(0u8, 2 * BLOCK));
    out
}

/// Parse a tar archive produced by [`archive`] (or any ustar archive of
/// plain files).
pub fn unarchive(data: &[u8]) -> Result<Vec<FileEntry>, TarError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let header = data.get(pos..pos + BLOCK).ok_or(TarError::Truncated)?;
        if header.iter().all(|&b| b == 0) {
            // End marker (possibly two zero blocks).
            return Ok(out);
        }
        // Verify checksum.
        let stored = read_octal(&header[148..156])?;
        let mut sum: u64 = header.iter().map(|&b| u64::from(b)).sum();
        // Replace checksum field with spaces.
        sum =
            sum - header[148..156].iter().map(|&b| u64::from(b)).sum::<u64>() + 8 * u64::from(b' ');
        if sum != stored {
            return Err(TarError::BadChecksum { offset: pos });
        }
        let name_end = header[..100].iter().position(|&b| b == 0).unwrap_or(100);
        let path = std::str::from_utf8(&header[..name_end])
            .map_err(|_| TarError::BadPath)?
            .to_string();
        let mode = read_octal(&header[100..108])? as u32;
        let size = read_octal(&header[124..136])? as usize;
        let mtime = read_octal(&header[136..148])?;
        pos += BLOCK;
        let body = data.get(pos..pos + size).ok_or(TarError::Truncated)?;
        out.push(FileEntry {
            path,
            mode,
            mtime,
            data: body.to_vec(),
        });
        pos += size.div_ceil(BLOCK) * BLOCK;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Vec<FileEntry> {
        vec![
            FileEntry {
                path: "linux/Makefile".into(),
                mode: 0o644,
                mtime: 1_266_000_000,
                data: b"VERSION = 2\nPATCHLEVEL = 6\n".to_vec(),
            },
            FileEntry {
                path: "linux/kernel/sched.c".into(),
                mode: 0o644,
                mtime: 1_266_000_001,
                data: b"void schedule(void) { /* ... */ }\n".repeat(40),
            },
            FileEntry {
                path: "linux/empty.h".into(),
                mode: 0o600,
                mtime: 1_266_000_002,
                data: Vec::new(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let t = tree();
        let tar = archive(&t);
        let back = unarchive(&tar).expect("unarchive");
        assert_eq!(back, t);
    }

    #[test]
    fn block_alignment() {
        let tar = archive(&tree());
        assert_eq!(tar.len() % BLOCK, 0);
        // header + data rounded per file + 2-block terminator
        let expect: usize = tree()
            .iter()
            .map(|e| BLOCK + e.data.len().div_ceil(BLOCK) * BLOCK)
            .sum::<usize>()
            + 2 * BLOCK;
        assert_eq!(tar.len(), expect);
    }

    #[test]
    fn deterministic() {
        assert_eq!(archive(&tree()), archive(&tree()));
    }

    #[test]
    fn checksum_detects_header_damage() {
        let mut tar = archive(&tree());
        tar[30] ^= 0x01; // inside the first header's name field
        assert!(matches!(
            unarchive(&tar),
            Err(TarError::BadChecksum { offset: 0 })
        ));
    }

    #[test]
    fn truncation_detected() {
        let tar = archive(&tree());
        assert_eq!(unarchive(&tar[..100]), Err(TarError::Truncated));
        // Cut inside the second file's data.
        assert!(unarchive(&tar[..BLOCK * 3 + 10]).is_err());
    }

    #[test]
    fn empty_archive() {
        let tar = archive(&[]);
        assert_eq!(tar.len(), 2 * BLOCK);
        assert_eq!(unarchive(&tar).unwrap(), Vec::<FileEntry>::new());
    }

    #[test]
    fn large_file_sizes_roundtrip() {
        let entries = vec![FileEntry {
            path: "big.bin".into(),
            mode: 0o644,
            mtime: 0,
            data: vec![0xABu8; 100_000],
        }];
        let tar = archive(&entries);
        assert_eq!(unarchive(&tar).unwrap(), entries);
    }

    #[test]
    fn mode_masked_to_permission_bits() {
        let entries = vec![FileEntry {
            path: "f".into(),
            mode: 0o100644,
            mtime: 0,
            data: vec![],
        }];
        let back = unarchive(&archive(&entries)).unwrap();
        assert_eq!(back[0].mode, 0o644);
    }

    #[test]
    fn ustar_magic_present() {
        let tar = archive(&tree());
        assert_eq!(&tar[257..263], b"ustar\0");
    }
}
