//! Bit-level I/O for the Huffman coder.
//!
//! MSB-first bit order (like bzip2): the first bit written becomes the most
//! significant bit of the first output byte.

/// Accumulates bits into a byte vector, MSB-first.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u8,
    nbits: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits per call");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            self.acc = (self.acc << 1) | bit as u8;
            self.nbits += 1;
            if self.nbits == 8 {
                self.out.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + u64::from(self.nbits)
    }

    /// Flush (zero-padding the final byte) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.out.push(self.acc);
        }
        self.out
    }
}

/// Reads bits from a byte slice, MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos_bits: u64,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos_bits: 0 }
    }

    /// Read a single bit; `None` at end of data.
    pub fn read_bit(&mut self) -> Option<u8> {
        let byte = self.data.get((self.pos_bits / 8) as usize)?;
        let bit = (byte >> (7 - (self.pos_bits % 8))) & 1;
        self.pos_bits += 1;
        Some(bit)
    }

    /// Read `count` bits as an MSB-first integer; `None` if data runs out.
    pub fn read_bits(&mut self, count: u8) -> Option<u32> {
        assert!(count <= 32);
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | u32::from(self.read_bit()?);
        }
        Some(v)
    }

    /// Number of bits consumed so far.
    pub fn position_bits(&self) -> u64 {
        self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0b1u32, 1u8),
            (0b1010, 4),
            (0xABCD, 16),
            (0x1FFFFF, 21),
            (0, 3),
            (1, 1),
        ];
        for (v, n) in values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, n) in values {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0, 1);
        w.write_bits(0b111111, 6);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1011_1111]);
    }

    #[test]
    fn padding_is_zero() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        assert_eq!(w.finish(), vec![0b1010_0000]);
    }

    #[test]
    fn bit_len_tracks() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 11);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn reader_end_of_data() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn zero_bit_read() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.position_bits(), 0);
    }
}
