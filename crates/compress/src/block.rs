//! The block container: an independently decodable, bzip2-style stream.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! stream  := "FZIP" ver(1) block_size(4)  block*  EOS_MAGIC stream_crc(4)
//! block   := BLOCK_MAGIC(6) crc(4) orig_len(4) rle_len(4) bwt_primary(4)
//!            code_lengths(256) payload_len(4) payload(payload_len)
//! ```
//!
//! `BLOCK_MAGIC` is bzip2's π digits (`0x314159265359`) and the end-of-stream
//! marker is bzip2's √π digits — a tip of the hat, and it gives
//! [`crate::recover`] realistic magic-scanning semantics. Every block checks
//! its own CRC-32 over the *uncompressed* chunk, so one flipped bit in a
//! 396-block archive damages exactly one block — the property the paper's
//! memory-fault forensics (§4.2.2) relied on.

use crate::bitio::{BitReader, BitWriter};
use crate::bwt;
use crate::crc32::crc32;
use crate::huffman;
use crate::mtf;
use crate::rle;

/// Per-block magic: 0x314159265359 (bzip2's).
pub const BLOCK_MAGIC: [u8; 6] = [0x31, 0x41, 0x59, 0x26, 0x53, 0x59];
/// End-of-stream magic: 0x177245385090 (bzip2's).
pub const EOS_MAGIC: [u8; 6] = [0x17, 0x72, 0x45, 0x38, 0x50, 0x90];
/// Stream header magic.
pub const STREAM_MAGIC: [u8; 4] = *b"FZIP";
/// Container format version.
pub const VERSION: u8 = 1;

/// Errors from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Stream header missing or wrong version.
    BadHeader,
    /// Stream ended unexpectedly.
    Truncated,
    /// A block's magic was neither BLOCK_MAGIC nor EOS_MAGIC.
    BadBlockMagic {
        /// Byte offset of the bad magic.
        offset: usize,
    },
    /// Block `index` failed its CRC after decoding.
    BlockCrc {
        /// Zero-based block index.
        index: usize,
    },
    /// Block `index` failed structural decoding (Huffman/BWT/RLE layer).
    BlockCorrupt {
        /// Zero-based block index.
        index: usize,
    },
    /// The whole-stream checksum failed.
    StreamCrc,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::BadHeader => write!(f, "bad stream header"),
            CompressError::Truncated => write!(f, "stream truncated"),
            CompressError::BadBlockMagic { offset } => {
                write!(f, "bad block magic at offset {offset}")
            }
            CompressError::BlockCrc { index } => write!(f, "block {index} failed CRC"),
            CompressError::BlockCorrupt { index } => write!(f, "block {index} failed to decode"),
            CompressError::StreamCrc => write!(f, "stream checksum mismatch"),
        }
    }
}

impl std::error::Error for CompressError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn get_u32(data: &[u8], pos: &mut usize) -> Result<u32, CompressError> {
    let b = data.get(*pos..*pos + 4).ok_or(CompressError::Truncated)?;
    *pos += 4;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Compress one block (already chunked). Returns the serialized block.
fn compress_block(chunk: &[u8]) -> Vec<u8> {
    let crc = crc32(chunk);
    let rle_data = rle::rle_encode(chunk);
    let (last_col, primary) = bwt::bwt_forward(&rle_data);
    let mtf_data = mtf::mtf_encode(&last_col);

    let mut freqs = [0u64; 256];
    for &b in &mtf_data {
        freqs[b as usize] += 1;
    }
    let lengths = huffman::code_lengths(&freqs);
    let mut w = BitWriter::new();
    huffman::encode_into(&mtf_data, &lengths, &mut w);
    let payload = w.finish();

    let mut out = Vec::with_capacity(payload.len() + 300);
    out.extend_from_slice(&BLOCK_MAGIC);
    put_u32(&mut out, crc);
    put_u32(&mut out, chunk.len() as u32);
    put_u32(&mut out, rle_data.len() as u32);
    put_u32(&mut out, primary);
    out.extend_from_slice(&lengths);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Decode one block given its serialized bytes *after* the magic.
/// Returns `(decoded_chunk, bytes_consumed_after_magic)`.
pub(crate) fn decode_block_body(data: &[u8]) -> Result<(Vec<u8>, usize), BlockDecodeError> {
    let mut pos = 0usize;
    let need = |pos: usize, n: usize| {
        if pos + n > data.len() {
            Err(BlockDecodeError::Truncated)
        } else {
            Ok(())
        }
    };
    need(pos, 16)?;
    let crc = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("len checked"));
    pos += 4;
    let orig_len = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("len checked")) as usize;
    pos += 4;
    let rle_len = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("len checked")) as usize;
    pos += 4;
    let primary = u32::from_be_bytes(data[pos..pos + 4].try_into().expect("len checked"));
    pos += 4;
    need(pos, 256)?;
    let mut lengths = [0u8; 256];
    lengths.copy_from_slice(&data[pos..pos + 256]);
    pos += 256;
    need(pos, 4)?;
    let payload_len =
        u32::from_be_bytes(data[pos..pos + 4].try_into().expect("len checked")) as usize;
    pos += 4;
    need(pos, payload_len)?;
    let payload = &data[pos..pos + payload_len];
    pos += payload_len;

    // Sanity bounds to avoid absurd allocations on corrupt headers.
    if rle_len > 64 * 1024 * 1024 || orig_len > 64 * 1024 * 1024 {
        return Err(BlockDecodeError::Structural);
    }

    let dec = huffman::Decoder::new(&lengths).map_err(|_| BlockDecodeError::Structural)?;
    let mut r = BitReader::new(payload);
    let mtf_data = dec
        .decode(&mut r, rle_len)
        .map_err(|_| BlockDecodeError::Structural)?;
    let last_col = mtf::mtf_decode(&mtf_data);
    let rle_data =
        bwt::bwt_inverse(&last_col, primary).map_err(|_| BlockDecodeError::Structural)?;
    let chunk = rle::rle_decode(&rle_data).map_err(|_| BlockDecodeError::Structural)?;
    if chunk.len() != orig_len {
        return Err(BlockDecodeError::Structural);
    }
    if crc32(&chunk) != crc {
        return Err(BlockDecodeError::Crc);
    }
    Ok((chunk, pos))
}

/// Internal block-decoding error, mapped by callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockDecodeError {
    Truncated,
    Structural,
    Crc,
}

/// Compress `data` into a block stream with the given block size (bytes of
/// *input* per block).
///
/// # Panics
/// Panics if `block_size == 0`.
pub fn compress(data: &[u8], block_size: usize) -> Vec<u8> {
    assert!(block_size > 0, "block size must be positive");
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(&STREAM_MAGIC);
    out.push(VERSION);
    put_u32(&mut out, block_size as u32);
    let mut combined = 0u32;
    for chunk in data.chunks(block_size) {
        let block = compress_block(chunk);
        // Combined CRC like bzip2: rotate and xor per-block CRCs.
        let block_crc = u32::from_be_bytes(block[6..10].try_into().expect("block header"));
        combined = combined.rotate_left(1) ^ block_crc;
        out.extend_from_slice(&block);
    }
    out.extend_from_slice(&EOS_MAGIC);
    put_u32(&mut out, combined);
    out
}

/// Number of compression blocks in a stream produced by [`compress`].
pub fn block_count(data: &[u8], block_size: usize) -> usize {
    data.len()
        .div_ceil(block_size.max(1))
        .max(if data.is_empty() { 0 } else { 1 })
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut pos = 0usize;
    if stream.len() < 9 || stream[0..4] != STREAM_MAGIC || stream[4] != VERSION {
        return Err(CompressError::BadHeader);
    }
    pos += 5;
    let _block_size = get_u32(stream, &mut pos)?;
    let mut out = Vec::new();
    let mut combined = 0u32;
    let mut index = 0usize;
    loop {
        let magic = stream.get(pos..pos + 6).ok_or(CompressError::Truncated)?;
        if magic == EOS_MAGIC {
            pos += 6;
            let stored = get_u32(stream, &mut pos)?;
            if stored != combined {
                return Err(CompressError::StreamCrc);
            }
            return Ok(out);
        }
        if magic != BLOCK_MAGIC {
            return Err(CompressError::BadBlockMagic { offset: pos });
        }
        pos += 6;
        let (chunk, used) = decode_block_body(&stream[pos..]).map_err(|e| match e {
            BlockDecodeError::Truncated => CompressError::Truncated,
            BlockDecodeError::Structural => CompressError::BlockCorrupt { index },
            BlockDecodeError::Crc => CompressError::BlockCrc { index },
        })?;
        let block_crc =
            u32::from_be_bytes(stream[pos..pos + 4].try_into().expect("decoded header"));
        combined = combined.rotate_left(1) ^ block_crc;
        pos += used;
        out.extend_from_slice(&chunk);
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_text(len: usize) -> Vec<u8> {
        let base = b"static int kumpula_terrace_probe(struct device *dev) {\n\treturn snow_depth(dev) < MAX_SNOW;\n}\n";
        base.iter().copied().cycle().take(len).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for len in [0usize, 1, 100, 4096, 4097, 20_000] {
            let data = sample_text(len);
            for bs in [512usize, 4096, 65_536] {
                let packed = compress(&data, bs);
                assert_eq!(
                    decompress(&packed).expect("roundtrip"),
                    data,
                    "len {len} bs {bs}"
                );
            }
        }
    }

    #[test]
    fn compresses_text_well() {
        let data = sample_text(100_000);
        let packed = compress(&data, 16_384);
        assert!(
            packed.len() < data.len() / 4,
            "text should compress ≥ 4:1, got {} → {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn block_count_matches_chunks() {
        let data = sample_text(10_000);
        let packed = compress(&data, 1000);
        // Count magics by decoding.
        let mut count = 0;
        let mut pos = 9;
        while packed[pos..pos + 6] != EOS_MAGIC {
            assert_eq!(&packed[pos..pos + 6], &BLOCK_MAGIC);
            pos += 6;
            let (_, used) = decode_block_body(&packed[pos..]).unwrap();
            pos += used;
            count += 1;
        }
        assert_eq!(count, 10);
        assert_eq!(block_count(&data, 1000), 10);
    }

    /// Byte offset of the middle of block `k`'s Huffman payload.
    /// Layout after each block magic: crc(4) orig(4) rle(4) primary(4)
    /// lengths(256) payload_len(4) payload — payload starts magic+282.
    fn payload_mid_offset(packed: &[u8], k: usize) -> usize {
        let mut pos = 9;
        let mut idx = 0;
        while packed[pos..pos + 6] == BLOCK_MAGIC {
            let body_start = pos + 6;
            let (_, used) = decode_block_body(&packed[body_start..]).unwrap();
            if idx == k {
                let payload_len = used - 276;
                return body_start + 276 + payload_len / 2;
            }
            pos = body_start + used;
            idx += 1;
        }
        panic!("block {k} not found");
    }

    #[test]
    fn single_bit_flip_damages_exactly_one_block() {
        // The paper's forensic scenario: one flipped bit in the archive.
        let data = sample_text(50_000);
        let mut packed = compress(&data, 5_000); // 10 blocks
                                                 // Flip a bit well inside block 4's payload.
        let target = payload_mid_offset(&packed, 4);
        packed[target] ^= 0x04;
        match decompress(&packed) {
            Err(CompressError::BlockCrc { index }) | Err(CompressError::BlockCorrupt { index }) => {
                assert!(index < 10, "index {index}");
            }
            other => panic!("expected a single-block failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let data = sample_text(10_000);
        let packed = compress(&data, 2_000);
        for cut in [5usize, 20, packed.len() / 2, packed.len() - 3] {
            let err = decompress(&packed[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CompressError::Truncated
                        | CompressError::BadHeader
                        | CompressError::BlockCorrupt { .. }
                        | CompressError::BlockCrc { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(decompress(b"NOPE"), Err(CompressError::BadHeader));
        assert_eq!(decompress(b""), Err(CompressError::BadHeader));
        let mut packed = compress(b"x", 16);
        packed[4] = 99; // wrong version
        assert_eq!(decompress(&packed), Err(CompressError::BadHeader));
    }

    #[test]
    fn stream_crc_guards_block_reordering() {
        // Swap two entire (different) blocks: each block's own CRC passes,
        // but the combined stream CRC must catch the tamper.
        let mut data = sample_text(4_000);
        data[0] = b'A'; // make block 0 distinct from block 1
        let packed = compress(&data, 2_000);
        // Parse block boundaries.
        let mut boundaries = Vec::new();
        let mut pos = 9;
        while packed[pos..pos + 6] != EOS_MAGIC {
            let start = pos;
            pos += 6;
            let (_, used) = decode_block_body(&packed[pos..]).unwrap();
            pos += used;
            boundaries.push((start, pos));
        }
        assert_eq!(boundaries.len(), 2);
        let mut tampered = packed[..9].to_vec();
        tampered.extend_from_slice(&packed[boundaries[1].0..boundaries[1].1]);
        tampered.extend_from_slice(&packed[boundaries[0].0..boundaries[0].1]);
        tampered.extend_from_slice(&packed[boundaries[1].1..]);
        let res = decompress(&tampered);
        assert!(
            matches!(res, Err(CompressError::StreamCrc)) || res.as_deref() != Ok(&data[..]),
            "reordering must not silently succeed"
        );
    }

    #[test]
    fn binary_data_roundtrip() {
        let mut state = 0xDEADBEEFu32;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        let packed = compress(&data, 8_192);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn empty_input_roundtrip() {
        let packed = compress(b"", 1024);
        assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
    }
}
