//! Burrows–Wheeler transform (forward and inverse).
//!
//! The forward transform sorts all cyclic rotations of the block and emits
//! the last column plus the index of the original rotation ("primary
//! index"), exactly as bzip2 does. Sorting uses prefix doubling over cyclic
//! shifts — O(n log n) time with radix-style counting sort per round — so
//! degenerate inputs (long runs, periodic data) cannot blow up the way a
//! naive comparison sort of rotations would.
//!
//! The inverse uses the standard LF-mapping reconstruction.

/// Forward BWT. Returns `(last_column, primary_index)`.
///
/// `primary_index` is the position of the original string in the sorted
/// rotation order; the decoder needs it to re-anchor the text.
pub fn bwt_forward(input: &[u8]) -> (Vec<u8>, u32) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    if n == 1 {
        return (input.to_vec(), 0);
    }

    // Sort cyclic shifts by prefix doubling.
    // rank[i]: equivalence class of the length-k prefix of rotation i.
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = input.iter().map(|&b| u32::from(b)).collect();
    let mut tmp_rank = vec![0u32; n];
    let mut k = 1usize;
    // Initial sort by first byte (counting sort).
    counting_sort_by_key(&mut sa, n.max(256), |&i| rank[i as usize]);
    loop {
        // Sort by (rank[i], rank[i+k]) using two stable counting-sort passes,
        // least significant key first.
        counting_sort_by_key(&mut sa, n.max(256) + 1, |&i| rank[(i as usize + k) % n] + 1);
        counting_sort_by_key(&mut sa, n.max(256) + 1, |&i| rank[i as usize]);
        // Re-rank.
        tmp_rank[sa[0] as usize] = 0;
        let mut classes = 1u32;
        for w in 1..n {
            let (a, b) = (sa[w - 1] as usize, sa[w] as usize);
            let same = rank[a] == rank[b] && rank[(a + k) % n] == rank[(b + k) % n];
            if !same {
                classes += 1;
            }
            tmp_rank[b] = classes - 1;
        }
        std::mem::swap(&mut rank, &mut tmp_rank);
        if classes as usize == n {
            break;
        }
        k *= 2;
        if k >= n {
            // All classes must be distinct once k >= n unless the input is
            // periodic; break ties by index to make the order total.
            // (A periodic input has identical rotations; any consistent
            // order works for BWT as long as forward and inverse agree —
            // LF-mapping reconstruction handles equal rotations correctly.)
            break;
        }
    }

    let last_col: Vec<u8> = sa
        .iter()
        .map(|&i| input[(i as usize + n - 1) % n])
        .collect();
    let primary = sa
        .iter()
        .position(|&i| i == 0)
        .expect("rotation 0 must be present") as u32;
    (last_col, primary)
}

/// Stable counting sort of `keys` indices by `key(i)` in `[0, buckets)`.
fn counting_sort_by_key(items: &mut [u32], buckets: usize, key: impl Fn(&u32) -> u32) {
    let mut count = vec![0u32; buckets + 1];
    for it in items.iter() {
        count[key(it) as usize + 1] += 1;
    }
    for b in 1..count.len() {
        count[b] += count[b - 1];
    }
    let mut out = vec![0u32; items.len()];
    for &it in items.iter() {
        let k = key(&it) as usize;
        out[count[k] as usize] = it;
        count[k] += 1;
    }
    items.copy_from_slice(&out);
}

/// Errors from [`bwt_inverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwtError {
    /// Primary index out of range for the block length.
    BadPrimaryIndex,
}

impl std::fmt::Display for BwtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BwtError::BadPrimaryIndex => write!(f, "BWT primary index out of range"),
        }
    }
}

impl std::error::Error for BwtError {}

/// Inverse BWT.
pub fn bwt_inverse(last_col: &[u8], primary: u32) -> Result<Vec<u8>, BwtError> {
    let n = last_col.len();
    if n == 0 {
        return if primary == 0 {
            Ok(Vec::new())
        } else {
            Err(BwtError::BadPrimaryIndex)
        };
    }
    if primary as usize >= n {
        return Err(BwtError::BadPrimaryIndex);
    }
    // LF mapping: next[i] gives, for row i of the sorted matrix, the row
    // whose rotation is one step earlier in the text.
    let mut count = [0u32; 256];
    for &b in last_col {
        count[b as usize] += 1;
    }
    let mut starts = [0u32; 256];
    let mut acc = 0u32;
    for b in 0..256 {
        starts[b] = acc;
        acc += count[b];
    }
    let mut next = vec![0u32; n];
    let mut seen = [0u32; 256];
    for (i, &b) in last_col.iter().enumerate() {
        next[(starts[b as usize] + seen[b as usize]) as usize] = i as u32;
        seen[b as usize] += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut row = next[primary as usize];
    for _ in 0..n {
        out.push(last_col[row as usize]);
        row = next[row as usize];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let (last, primary) = bwt_forward(data);
        assert_eq!(last.len(), data.len());
        let back = bwt_inverse(&last, primary).expect("inverse");
        assert_eq!(back, data, "roundtrip failed for {data:?}");
    }

    #[test]
    fn classic_example() {
        // The canonical "banana" example (cyclic BWT, no sentinel):
        let (last, primary) = bwt_forward(b"banana");
        let back = bwt_inverse(&last, primary).unwrap();
        assert_eq!(back, b"banana");
        // BWT of banana groups like letters:
        assert_eq!(&last, b"nnbaaa");
    }

    #[test]
    fn empty_single_double() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(b"ab");
        roundtrip(b"ba");
        roundtrip(b"aa");
    }

    #[test]
    fn periodic_inputs() {
        roundtrip(b"abababab");
        roundtrip(b"aaaaaaaaaaaaaaaa");
        roundtrip(b"abcabcabcabc");
        roundtrip(&b"xy".repeat(1000));
    }

    #[test]
    fn text_grouping_effect() {
        // BWT of English-like text should create long same-byte runs,
        // measured as a reduced number of byte transitions.
        let text = b"the quick brown fox jumps over the lazy dog. ".repeat(50);
        let (last, _) = bwt_forward(&text);
        let transitions = |xs: &[u8]| xs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            transitions(&last) < transitions(&text) / 2,
            "BWT should at least halve transitions: {} vs {}",
            transitions(&last),
            transitions(&text)
        );
    }

    #[test]
    fn binary_roundtrip() {
        let mut state = 0x9E3779B9u32;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn all_256_bytes() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
        let rev: Vec<u8> = (0..=255u8).rev().collect();
        roundtrip(&rev);
    }

    #[test]
    fn bad_primary_index_rejected() {
        let (last, _) = bwt_forward(b"hello world");
        assert_eq!(bwt_inverse(&last, 11), Err(BwtError::BadPrimaryIndex));
        assert_eq!(bwt_inverse(&[], 1), Err(BwtError::BadPrimaryIndex));
    }

    #[test]
    fn forward_is_permutation() {
        let data = b"permutation check 0123456789".repeat(7);
        let (last, _) = bwt_forward(&data);
        let mut a = data.to_vec();
        let mut b = last.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
