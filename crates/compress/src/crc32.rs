//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Used as the per-block integrity check in the [`crate::block`] container —
//! the same role bzip2's block CRC plays in letting `bzip2recover` decide
//! which salvaged blocks are intact.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lookup table, generated at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a new CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"zero degrees".repeat(50);
        let base = crc32(&data);
        for byte_idx in [0usize, 100, data.len() - 1] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte_idx] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupted),
                    base,
                    "flip at {byte_idx}:{bit} undetected"
                );
            }
        }
    }
}
