//! Canonical Huffman coding over the byte alphabet.
//!
//! The encoder builds optimal code lengths from symbol frequencies (heap
//! merge), converts them to canonical form, and the block container stores
//! only the 256 code lengths — the decoder rebuilds the identical codebook.
//! Code lengths are capped at [`MAX_CODE_LEN`] bits by frequency flattening,
//! keeping both the bit I/O and the table-walk decoder simple and bounded.

use crate::bitio::{BitReader, BitWriter};

/// Maximum codeword length in bits.
pub const MAX_CODE_LEN: u8 = 24;

/// Errors from Huffman decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffError {
    /// The declared code lengths do not form a valid prefix code.
    InvalidCodeLengths,
    /// The bitstream ended mid-codeword.
    Truncated,
    /// A codeword walked outside the canonical table.
    BadCodeword,
}

impl std::fmt::Display for HuffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffError::InvalidCodeLengths => write!(f, "invalid Huffman code lengths"),
            HuffError::Truncated => write!(f, "Huffman bitstream truncated"),
            HuffError::BadCodeword => write!(f, "invalid Huffman codeword"),
        }
    }
}

impl std::error::Error for HuffError {}

/// Compute optimal code lengths (≤ [`MAX_CODE_LEN`]) for the given symbol
/// frequencies. Symbols with zero frequency get length 0 (no code).
///
/// If only one symbol occurs it is assigned length 1.
pub fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let present: Vec<usize> = (0..256).filter(|&s| freqs[s] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Repeatedly build the tree; if it is too deep, flatten frequencies and
    // retry (bzip2 does the same).
    let mut adj: Vec<u64> = present.iter().map(|&s| freqs[s].max(1)).collect();
    loop {
        let depths = tree_depths(&adj);
        let max = depths.iter().copied().max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            for (i, &s) in present.iter().enumerate() {
                lengths[s] = depths[i];
            }
            return lengths;
        }
        for f in &mut adj {
            *f = (*f / 2).max(1);
        }
    }
}

/// Heap-based Huffman tree; returns the depth of each input symbol.
fn tree_depths(freqs: &[u64]) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq)]
    struct Item {
        weight: u64,
        // Tie-break on creation order for determinism.
        order: u32,
        node: usize,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.weight, self.order).cmp(&(other.weight, other.order))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = freqs.len();
    // nodes: 0..n are leaves; internal nodes appended after.
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    for (i, &f) in freqs.iter().enumerate() {
        heap.push(Reverse(Item {
            weight: f,
            order: i as u32,
            node: i,
        }));
    }
    let mut order = n as u32;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1").0;
        let b = heap.pop().expect("len > 1").0;
        let new = parent.len();
        parent.push(usize::MAX);
        parent[a.node] = new;
        parent[b.node] = new;
        heap.push(Reverse(Item {
            weight: a.weight + b.weight,
            order,
            node: new,
        }));
        order += 1;
    }
    (0..n)
        .map(|leaf| {
            let mut d = 0u8;
            let mut node = leaf;
            while parent[node] != usize::MAX {
                node = parent[node];
                d += 1;
            }
            d
        })
        .collect()
}

/// Canonical codes from code lengths: `(code, length)` per symbol.
///
/// Returns `None` if the lengths violate Kraft's inequality or exceed
/// [`MAX_CODE_LEN`].
pub fn canonical_codes(lengths: &[u8; 256]) -> Option<[(u32, u8); 256]> {
    let mut kraft: u64 = 0;
    let mut count_per_len = [0u32; MAX_CODE_LEN as usize + 1];
    for &l in lengths.iter() {
        if l > MAX_CODE_LEN {
            return None;
        }
        if l > 0 {
            kraft += 1u64 << (MAX_CODE_LEN - l);
            count_per_len[l as usize] += 1;
        }
    }
    if kraft > 1u64 << MAX_CODE_LEN {
        return None;
    }
    // First canonical code of each length.
    let mut next_code = [0u32; MAX_CODE_LEN as usize + 2];
    let mut code = 0u32;
    for l in 1..=MAX_CODE_LEN as usize {
        code = (code + count_per_len[l - 1]) << 1;
        next_code[l] = code;
    }
    let mut out = [(0u32, 0u8); 256];
    for s in 0..256 {
        let l = lengths[s];
        if l > 0 {
            out[s] = (next_code[l as usize], l);
            next_code[l as usize] += 1;
        }
    }
    Some(out)
}

/// Encode `data` with the canonical code implied by `lengths` into `w`.
///
/// # Panics
/// Panics if a byte of `data` has no code (zero length) — the caller builds
/// lengths from the same data's frequencies, so this indicates a logic bug.
pub fn encode_into(data: &[u8], lengths: &[u8; 256], w: &mut BitWriter) {
    let codes = canonical_codes(lengths).expect("encoder built the lengths; they must be valid");
    for &b in data {
        let (code, len) = codes[b as usize];
        assert!(len > 0, "no code for symbol {b}");
        w.write_bits(code, len);
    }
}

/// Decoder table for canonical codes.
pub struct Decoder {
    /// For each length: (first_code, first_index, count).
    per_len: Vec<(u32, u32, u32)>,
    /// Symbols sorted canonically (by length, then symbol value).
    symbols: Vec<u8>,
}

impl Decoder {
    /// Build a decoder from code lengths.
    pub fn new(lengths: &[u8; 256]) -> Result<Self, HuffError> {
        // Validate via canonical_codes.
        canonical_codes(lengths).ok_or(HuffError::InvalidCodeLengths)?;
        let mut symbols: Vec<u8> = Vec::new();
        let mut per_len = Vec::with_capacity(MAX_CODE_LEN as usize + 1);
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=MAX_CODE_LEN {
            let mut count = 0u32;
            for (s, &len) in lengths.iter().enumerate() {
                if len == l {
                    symbols.push(s as u8);
                    count += 1;
                }
            }
            per_len.push((code, index, count));
            index += count;
            code = (code + count) << 1;
        }
        Ok(Decoder { per_len, symbols })
    }

    /// Decode exactly `n` symbols from `r`.
    pub fn decode(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u8>, HuffError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut code = 0u32;
            let mut matched = false;
            for (len_idx, &(first_code, first_index, count)) in self.per_len.iter().enumerate() {
                let bit = r.read_bit().ok_or(HuffError::Truncated)?;
                code = (code << 1) | u32::from(bit);
                let _ = len_idx;
                if count > 0 && code >= first_code && code < first_code + count {
                    let sym_idx = first_index + (code - first_code);
                    out.push(
                        *self
                            .symbols
                            .get(sym_idx as usize)
                            .ok_or(HuffError::BadCodeword)?,
                    );
                    matched = true;
                    break;
                }
            }
            if !matched {
                return Err(HuffError::BadCodeword);
            }
        }
        Ok(out)
    }
}

/// Convenience: one-shot encode returning `(lengths, bitstream, bit_count)`.
pub fn encode(data: &[u8]) -> ([u8; 256], Vec<u8>, u64) {
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let mut w = BitWriter::new();
    encode_into(data, &lengths, &mut w);
    let bits = w.bit_len();
    (lengths, w.finish(), bits)
}

/// Convenience: one-shot decode of `n` symbols.
pub fn decode(lengths: &[u8; 256], bitstream: &[u8], n: usize) -> Result<Vec<u8>, HuffError> {
    let dec = Decoder::new(lengths)?;
    let mut r = BitReader::new(bitstream);
    dec.decode(&mut r, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let (lengths, bits, _) = encode(data);
        let back = decode(&lengths, &bits, data.len()).expect("decode");
        assert_eq!(back, data);
    }

    #[test]
    fn empty_single_symbol() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"aaaaaaaaaa");
    }

    #[test]
    fn two_symbols() {
        roundtrip(b"ababbbabbba");
    }

    #[test]
    fn text_and_binary() {
        roundtrip(b"the quick brown fox jumps over the lazy dog".as_slice());
        let all: Vec<u8> = (0..=255u8).collect();
        roundtrip(&all);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95 % zeros: entropy ≈ 0.29 bits/byte; Huffman is at least 1 bit.
        let mut data = vec![0u8; 10_000];
        for i in 0..500 {
            data[i * 20] = (i % 255) as u8 + 1;
        }
        let (lengths, bits, _) = encode(&data);
        assert!(
            bits.len() < data.len() / 4,
            "compressed to {} bytes",
            bits.len()
        );
        assert_eq!(decode(&lengths, &bits, data.len()).unwrap(), data);
    }

    #[test]
    fn optimality_vs_entropy_bound() {
        // Huffman is within 1 bit/symbol of entropy.
        let mut data = Vec::new();
        for (sym, count) in [(b'a', 500usize), (b'b', 250), (b'c', 125), (b'd', 125)] {
            data.extend(std::iter::repeat_n(sym, count));
        }
        let (_, _, bits) = encode(&data);
        // Entropy = 0.5*1 + 0.25*2 + 0.125*3*2 = 1.75 bits/sym, and these
        // dyadic frequencies make Huffman exactly optimal.
        assert_eq!(bits, (1.75 * data.len() as f64) as u64);
    }

    #[test]
    fn lengths_satisfy_kraft() {
        let mut freqs = [0u64; 256];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
        assert!(canonical_codes(&lengths).is_some());
    }

    #[test]
    fn length_cap_respected_on_pathological_freqs() {
        // Fibonacci-like frequencies force very deep trees without the cap.
        let mut freqs = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut().take(60) {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        // And the result still round-trips.
        let mut data = Vec::new();
        for s in 0..60u8 {
            data.extend(std::iter::repeat_n(s, (s as usize % 9) + 1));
        }
        let mut w = BitWriter::new();
        let mut f2 = [0u64; 256];
        for &x in &data {
            f2[x as usize] += 1;
        }
        let lens = code_lengths(&f2);
        encode_into(&data, &lens, &mut w);
        let bytes = w.finish();
        assert_eq!(decode(&lens, &bytes, data.len()).unwrap(), data);
    }

    #[test]
    fn invalid_lengths_rejected() {
        // Over-full: three codes of length 1.
        let mut lengths = [0u8; 256];
        lengths[0] = 1;
        lengths[1] = 1;
        lengths[2] = 1;
        assert!(canonical_codes(&lengths).is_none());
        assert!(Decoder::new(&lengths).is_err());
    }

    #[test]
    fn truncated_stream_detected() {
        let data = b"some reasonably long test data for truncation";
        let (lengths, bits, _) = encode(data);
        let short = &bits[..bits.len() / 2];
        assert!(matches!(
            decode(&lengths, short, data.len()),
            Err(HuffError::Truncated) | Err(HuffError::BadCodeword)
        ));
    }

    #[test]
    fn deterministic_codes() {
        let data = b"determinism matters for reproducible archives";
        let (l1, b1, _) = encode(data);
        let (l2, b2, _) = encode(data);
        assert_eq!(l1.to_vec(), l2.to_vec());
        assert_eq!(b1, b2);
    }

    #[test]
    fn random_roundtrip() {
        let mut state = 7u32;
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 24) & 0x3F) as u8 // 64-symbol alphabet
            })
            .collect();
        roundtrip(&data);
    }
}
