//! # frostlab-compress
//!
//! The synthetic workload's *real* data path, implemented from scratch.
//!
//! The paper's load is `tar | bzip2 | md5sum` over a Linux kernel source
//! tree, and its most interesting measurement result depends on the fine
//! structure of that pipeline: five runs out of 27 627 produced a wrong MD5
//! hash, and inspecting a recovered archive with `bzip2recover` showed that
//! **exactly one of the 396 compression blocks** was corrupted — the smoking
//! gun for a single flipped memory bit on non-ECC DIMMs.
//!
//! To reproduce that forensic chain the pipeline must be real, so this crate
//! implements it:
//!
//! * [`md5`] — RFC 1321 MD5 (the verification hash);
//! * [`crc32`] — CRC-32/IEEE (per-block integrity, like bzip2's block CRCs);
//! * [`archive`] — a ustar-style `tar` writer/reader;
//! * the bzip2-style compressor: [`rle`] (run-length pre-pass), [`bwt`]
//!   (Burrows–Wheeler transform), [`mtf`] (move-to-front), [`huffman`]
//!   (canonical Huffman coding), assembled into an independently decodable
//!   block container in [`block`];
//! * [`recover`] — the `bzip2recover` equivalent: scans a damaged stream for
//!   block magics and reports which blocks survive their CRC.
//!
//! A flipped bit anywhere in a block's compressed payload corrupts *only*
//! that block — precisely the behaviour the paper leaned on.
//!
//! ```
//! use frostlab_compress::block::{compress, decompress};
//!
//! let data = b"Running servers around zero degrees".repeat(100);
//! let packed = compress(&data, 4096);
//! assert_eq!(decompress(&packed).unwrap(), data);
//! assert!(packed.len() < data.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod bitio;
pub mod block;
pub mod bwt;
pub mod crc32;
pub mod huffman;
pub mod md5;
pub mod mtf;
pub mod recover;
pub mod rle;

pub use block::{compress, decompress, CompressError};
pub use md5::Md5;
