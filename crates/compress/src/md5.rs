//! MD5 message digest, RFC 1321.
//!
//! MD5 is cryptographically broken, but that is irrelevant here: the paper
//! uses `md5sum` purely as an integrity witness for the packed tarball —
//! compare against a golden value computed at install time, store the
//! archive if they differ. We implement it from the RFC so the workload's
//! verification step is the real computation the hosts performed.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 × |sin(i + 1)|, as fixed constants per the RFC.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Md5 {
    /// Start a new digest.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Feed bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    fn process(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }

    /// Finish and return the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length goes straight into the buffer tail.
        self.buffer[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buffer;
        self.process(&block);
        let mut out = [0u8; 16];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Finish and return the digest as a lowercase hex string, as `md5sum`
    /// prints it.
    pub fn finalize_hex(self) -> String {
        to_hex(&self.finalize())
    }
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot digest.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// One-shot digest as a lowercase hex string.
pub fn md5_hex(data: &[u8]) -> String {
    to_hex(&md5(data))
}

fn to_hex(digest: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in digest {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_1321_test_suite() {
        // The complete test suite from RFC 1321 appendix A.5.
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                md5_hex(input),
                want,
                "input {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0u32..100_000).map(|i| (i * 31 % 251) as u8).collect();
        for chunk_size in [1usize, 7, 63, 64, 65, 1000] {
            let mut h = Md5::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), md5(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn length_boundary_cases() {
        // Padding boundaries: 55, 56, 57, 63, 64, 65 bytes.
        for n in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![b'x'; n];
            let digest = md5(&data);
            // Compare against a second, chunked computation.
            let mut h = Md5::new();
            h.update(&data[..n / 2]);
            h.update(&data[n / 2..]);
            assert_eq!(h.finalize(), digest, "length {n}");
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let data = b"the tarball is overwritten in the next cycle".repeat(20);
        let base = md5(&data);
        let mut corrupted = data.clone();
        corrupted[data.len() / 2] ^= 0x10;
        assert_ne!(md5(&corrupted), base);
    }

    #[test]
    fn hex_format() {
        assert_eq!(md5_hex(b"").len(), 32);
        assert!(md5_hex(b"abc").chars().all(|c| c.is_ascii_hexdigit()));
    }
}
