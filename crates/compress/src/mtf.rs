//! Move-to-front transform.
//!
//! After the BWT, equal bytes cluster; MTF turns that local redundancy into
//! a stream dominated by small values (mostly zeros), which the Huffman
//! stage then codes with short codewords. Both directions are exact
//! bijections over byte streams.

/// Forward MTF.
pub fn mtf_encode(input: &[u8]) -> Vec<u8> {
    let mut table: [u8; 256] = std::array::from_fn(|i| i as u8);
    let mut out = Vec::with_capacity(input.len());
    for &b in input {
        let pos = table
            .iter()
            .position(|&x| x == b)
            .expect("every byte value is in the table") as u8;
        out.push(pos);
        // Move-to-front: shift everything before `pos` down one.
        for i in (1..=pos as usize).rev() {
            table[i] = table[i - 1];
        }
        table[0] = b;
    }
    out
}

/// Inverse MTF.
pub fn mtf_decode(input: &[u8]) -> Vec<u8> {
    let mut table: [u8; 256] = std::array::from_fn(|i| i as u8);
    let mut out = Vec::with_capacity(input.len());
    for &pos in input {
        let b = table[pos as usize];
        out.push(b);
        for i in (1..=pos as usize).rev() {
            table[i] = table[i - 1];
        }
        table[0] = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        assert_eq!(mtf_decode(&mtf_encode(data)), data);
    }

    #[test]
    fn empty_and_small() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"aaa");
    }

    #[test]
    fn known_small_example() {
        // 'a' = 97: first occurrence emits 97, repeats emit 0.
        assert_eq!(mtf_encode(b"aaaa"), vec![97, 0, 0, 0]);
        // "ab": 97, then 'b' is now at index 98 (a moved to front).
        assert_eq!(mtf_encode(b"ab"), vec![97, 98]);
        // "aba": a→97, b→98, a→1 (a is right behind b now).
        assert_eq!(mtf_encode(b"aba"), vec![97, 98, 1]);
    }

    #[test]
    fn runs_become_zeros() {
        let data = b"xxxxxxxxxxyyyyyyyyyyzzzzzzzzzz";
        let enc = mtf_encode(data);
        let zeros = enc.iter().filter(|&&v| v == 0).count();
        assert_eq!(zeros, 27); // every byte after the first of each run
    }

    #[test]
    fn all_bytes_roundtrip() {
        let data: Vec<u8> = (0..=255u8).chain((0..=255u8).rev()).collect();
        roundtrip(&data);
    }

    #[test]
    fn random_roundtrip() {
        let mut state = 42u32;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 23) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn output_length_preserved() {
        let data = b"length preserved".repeat(10);
        assert_eq!(mtf_encode(&data).len(), data.len());
    }
}
