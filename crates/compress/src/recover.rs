//! `bzip2recover` equivalent: salvage blocks from a damaged stream.
//!
//! When a host reported a wrong md5sum, the authors kept the offending
//! tarball and ran `bzip2recover` over it; the tool splits the stream at
//! block magics and re-checks each block, which is how they learned that
//! "only a single one of the 396 bzip2 compression blocks had been
//! corrupted" (§4.2.2). This module reproduces that workflow against the
//! [`crate::block`] container.

use crate::block::{self, BLOCK_MAGIC, EOS_MAGIC, STREAM_MAGIC};

/// Status of one recovered block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStatus {
    /// Decoded and passed its CRC.
    Good,
    /// Decoded structurally but failed its CRC (bit damage in payload).
    CrcMismatch,
    /// Could not be decoded at all (structural damage).
    Undecodable,
}

/// Result of scanning a (possibly damaged) stream.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Per-block status, in stream order.
    pub blocks: Vec<BlockStatus>,
    /// Concatenated contents of all good blocks.
    pub salvaged: Vec<u8>,
    /// True if the stream header was intact.
    pub header_ok: bool,
    /// True if the end-of-stream marker was found.
    pub eos_found: bool,
}

impl RecoveryReport {
    /// Number of blocks that failed (CRC or structure).
    pub fn corrupted_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|s| **s != BlockStatus::Good)
            .count()
    }

    /// Total number of blocks seen.
    pub fn total_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Indices of damaged blocks.
    pub fn corrupted_indices(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != BlockStatus::Good)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Scan `stream` for block magics and attempt to decode every block
/// independently, like `bzip2recover`.
pub fn recover(stream: &[u8]) -> RecoveryReport {
    let header_ok = stream.len() >= 9 && stream[0..4] == STREAM_MAGIC;
    let mut blocks = Vec::new();
    let mut salvaged = Vec::new();
    let mut eos_found = false;

    // Find all candidate magic positions (block and EOS).
    let mut pos = if header_ok { 9 } else { 0 };
    while pos + 6 <= stream.len() {
        if stream[pos..pos + 6] == EOS_MAGIC {
            eos_found = true;
            pos += 6;
            continue;
        }
        if stream[pos..pos + 6] != BLOCK_MAGIC {
            pos += 1;
            continue;
        }
        // Candidate block at `pos`.
        let body = &stream[pos + 6..];
        match block::decode_block_body(body) {
            Ok((chunk, used)) => {
                blocks.push(BlockStatus::Good);
                salvaged.extend_from_slice(&chunk);
                pos += 6 + used;
            }
            Err(block::BlockDecodeError::Crc) => {
                blocks.push(BlockStatus::CrcMismatch);
                // The header was parseable: skip the declared extent so the
                // next block is found at its true start.
                if let Some(skip) = declared_extent(body) {
                    pos += 6 + skip;
                } else {
                    pos += 6;
                }
            }
            Err(_) => {
                blocks.push(BlockStatus::Undecodable);
                if let Some(skip) = declared_extent(body) {
                    pos += 6 + skip;
                } else {
                    // Resync: scan forward for the next magic.
                    pos += 6;
                }
            }
        }
    }

    RecoveryReport {
        blocks,
        salvaged,
        header_ok,
        eos_found,
    }
}

/// Length a block header claims for itself (header fields + payload), if the
/// fixed-size part is present.
fn declared_extent(body: &[u8]) -> Option<usize> {
    // crc(4) orig(4) rle(4) primary(4) lengths(256) payload_len(4) payload.
    if body.len() < 276 {
        return None;
    }
    let payload_len = u32::from_be_bytes(body[272..276].try_into().expect("len checked")) as usize;
    let total = 276usize.checked_add(payload_len)?;
    if total <= body.len() + 4096 {
        Some(total.min(body.len()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::compress;

    fn kernel_like(len: usize) -> Vec<u8> {
        let base = b"obj-$(CONFIG_FROST) += tent.o terrace.o\n#include <linux/cold.h>\n";
        base.iter().copied().cycle().take(len).collect()
    }

    /// Byte offset of the middle of block `k`'s Huffman payload (see the
    /// container layout in [`crate::block`]).
    fn payload_mid_offset(packed: &[u8], k: usize) -> usize {
        let mut pos = 9;
        let mut idx = 0;
        while packed[pos..pos + 6] == BLOCK_MAGIC {
            let body_start = pos + 6;
            let (_, used) = block::decode_block_body(&packed[body_start..]).unwrap();
            if idx == k {
                let payload_len = used - 276;
                return body_start + 276 + payload_len / 2;
            }
            pos = body_start + used;
            idx += 1;
        }
        panic!("block {k} not found");
    }

    #[test]
    fn clean_stream_all_good() {
        let data = kernel_like(40_000);
        let packed = compress(&data, 4_000);
        let report = recover(&packed);
        assert!(report.header_ok);
        assert!(report.eos_found);
        assert_eq!(report.total_blocks(), 10);
        assert_eq!(report.corrupted_count(), 0);
        assert_eq!(report.salvaged, data);
    }

    #[test]
    fn paper_scenario_single_bit_flip() {
        // 396 blocks, one flipped bit → exactly one corrupted block.
        let data = kernel_like(396 * 512);
        let mut packed = compress(&data, 512);
        let report_clean = recover(&packed);
        assert_eq!(report_clean.total_blocks(), 396);

        // Flip one bit inside block 263's Huffman payload (≈ 2/3 in).
        let idx = payload_mid_offset(&packed, 263);
        packed[idx] ^= 0x20;
        let report = recover(&packed);
        assert_eq!(
            report.corrupted_count(),
            1,
            "exactly one of the {} blocks should be damaged",
            report.total_blocks()
        );
        // The rest salvages: we lose at most one block of content.
        assert!(report.salvaged.len() >= data.len() - 512);
    }

    #[test]
    fn corrupted_header_still_recovers_blocks() {
        let data = kernel_like(20_000);
        let mut packed = compress(&data, 4_000);
        packed[0] = b'X'; // destroy stream magic
        let report = recover(&packed);
        assert!(!report.header_ok);
        assert_eq!(report.total_blocks(), 5);
        assert_eq!(report.corrupted_count(), 0);
        assert_eq!(report.salvaged, data);
    }

    #[test]
    fn truncated_tail_loses_only_final_blocks() {
        let data = kernel_like(40_000);
        let packed = compress(&data, 4_000);
        let cut = packed.len() * 7 / 10;
        let report = recover(&packed[..cut]);
        assert!(!report.eos_found);
        assert!(report.total_blocks() >= 6);
        // Everything salvaged must be a prefix of the original.
        assert_eq!(&data[..report.salvaged.len()], &report.salvaged[..]);
        assert!(report.salvaged.len() >= 4_000 * 5);
    }

    #[test]
    fn corrupted_indices_reported() {
        let data = kernel_like(30_000);
        let mut packed = compress(&data, 3_000);
        let idx = payload_mid_offset(&packed, 2);
        packed[idx] ^= 0xFF;
        let report = recover(&packed);
        let bad = report.corrupted_indices();
        assert_eq!(bad.len(), report.corrupted_count());
        assert!(!bad.is_empty());
    }

    #[test]
    fn garbage_input_yields_empty_report() {
        let garbage = vec![0xA5u8; 10_000];
        let report = recover(&garbage);
        assert_eq!(report.total_blocks(), 0);
        assert!(report.salvaged.is_empty());
        assert!(!report.header_ok);
        assert!(!report.eos_found);
    }
}
