//! Run-length pre-pass (bzip2's "RLE1").
//!
//! bzip2 run-length-encodes the raw input before the BWT, primarily to
//! protect the sorter from degenerate inputs full of long runs. The scheme:
//! runs of 4–255 identical bytes are emitted as the 4 literal bytes followed
//! by one count byte holding the number of *additional* repeats (0–251).
//! Exactly 4 identical bytes therefore cost 5 bytes — a mild expansion on
//! adversarial input, a large win on real file trees full of padding.

/// Encode. Output is self-delimiting given the original alphabet.
pub fn rle_encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() + input.len() / 64 + 16);
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        // Measure the run length (capped at 255 total).
        let mut run = 1usize;
        while run < 255 && i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= 4 {
            out.extend_from_slice(&[b, b, b, b]);
            out.push((run - 4) as u8);
            i += run;
        } else {
            for _ in 0..run {
                out.push(b);
            }
            i += run;
        }
    }
    out
}

/// Errors from [`rle_decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RleError {
    /// The stream ended inside a run header (4 equal bytes with no count).
    TruncatedRun,
}

impl std::fmt::Display for RleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RleError::TruncatedRun => write!(f, "RLE stream truncated inside a run"),
        }
    }
}

impl std::error::Error for RleError {}

/// Decode the inverse of [`rle_encode`].
pub fn rle_decode(input: &[u8]) -> Result<Vec<u8>, RleError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    let mut run_of = None::<u8>;
    let mut run_len = 0usize;
    while i < input.len() {
        let b = input[i];
        i += 1;
        match run_of {
            Some(rb) if rb == b => {
                run_len += 1;
                out.push(b);
                if run_len == 4 {
                    // Next byte is the extra-repeat count.
                    let count = *input.get(i).ok_or(RleError::TruncatedRun)?;
                    i += 1;
                    for _ in 0..count {
                        out.push(b);
                    }
                    run_of = None;
                    run_len = 0;
                }
            }
            _ => {
                run_of = Some(b);
                run_len = 1;
                out.push(b);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = rle_encode(data);
        assert_eq!(rle_decode(&enc).expect("decode"), data, "input {data:?}");
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"aaa");
    }

    #[test]
    fn exact_run_boundaries() {
        roundtrip(b"aaaa"); // run of exactly 4 → 5 encoded bytes
        roundtrip(b"aaaaa");
        roundtrip(&[b'x'; 255]);
        roundtrip(&[b'x'; 256]);
        roundtrip(&[b'x'; 259]);
        roundtrip(&[b'x'; 1000]);
    }

    #[test]
    fn mixed_content() {
        roundtrip(b"abcddddddefggggggggggggghiii");
        let mut data = Vec::new();
        for i in 0..1000u32 {
            data.extend(std::iter::repeat_n((i % 7) as u8, (i % 11) as usize));
        }
        roundtrip(&data);
    }

    #[test]
    fn long_runs_compress() {
        let data = vec![0u8; 10_000];
        let enc = rle_encode(&data);
        assert!(enc.len() < 250, "10k zeros → {} bytes", enc.len());
    }

    #[test]
    fn four_runs_expand_gracefully() {
        // Worst case: repeated exact-4 runs grow by 25 %.
        let mut data = Vec::new();
        for i in 0..100u8 {
            data.extend_from_slice(&[i, i, i, i]);
        }
        let enc = rle_encode(&data);
        assert_eq!(enc.len(), 500);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_run_detected() {
        let enc = rle_encode(&[b'q'; 50]);
        // Chop off the count byte.
        assert_eq!(rle_decode(&enc[..4]), Err(RleError::TruncatedRun));
    }

    #[test]
    fn random_roundtrip() {
        // Deterministic pseudo-random stress.
        let mut state = 0x12345678u32;
        let mut data = Vec::new();
        for _ in 0..50_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push(if state & 0x300 == 0 {
                0xAA
            } else {
                (state >> 24) as u8
            });
        }
        roundtrip(&data);
    }
}
