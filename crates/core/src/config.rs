//! Experiment configuration.

use frostlab_climate::presets;
use frostlab_climate::weather::ClimateParams;
use frostlab_faults::chaos::ChaosConfig;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_thermal::tent::TentParams;
use frostlab_workload::job::JobConfig;

use crate::fleet::FleetSpec;

/// How faults enter the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Replay the paper's documented fault history exactly (figures and
    /// tables match the publication).
    Scripted,
    /// Draw every fault from the hazard models (Monte-Carlo mode).
    Stochastic,
}

/// Full configuration of one campaign.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Root seed; everything stochastic derives from it.
    pub seed: u64,
    /// Fault mode.
    pub fault_mode: FaultMode,
    /// Campaign start (the paper's normal phase began Feb 19; the weather
    /// and station trace start earlier for context in Fig. 3).
    pub start: SimTime,
    /// Campaign end ("three months" from the first install ⇒ mid-May).
    pub end: SimTime,
    /// Simulation tick.
    pub tick: SimDuration,
    /// Climate parameters (Helsinki by default; swap for what-if studies).
    pub climate: ClimateParams,
    /// Tent physical parameters.
    pub tent: TentParams,
    /// Workload pipeline configuration.
    pub job: JobConfig,
    /// Collection cadence (paper: 20 minutes).
    pub collection_interval: SimDuration,
    /// Interval between fault-model polls.
    pub fault_poll_interval: SimDuration,
    /// When the Lascar logger finally arrives on site (it was late).
    pub lascar_deployed_at: SimTime,
    /// Sensor-log append cadence (bounds log sizes).
    pub sensor_log_interval: SimDuration,
    /// Ablation: pretend every DIMM in the fleet is ECC (the what-if the
    /// paper's §4.2.2 implies — ECC would have corrected all five flips).
    pub force_ecc: bool,
    /// Chaos injection for resilience studies (`None` = off). Ignored in
    /// scripted mode — the paper's history is replayed verbatim there.
    pub chaos: Option<ChaosConfig>,
    /// Which fleet to simulate (the paper's 19 machines by default; a
    /// generated vendor-mix fleet for datacenter-scale studies).
    pub fleet: FleetSpec,
}

impl ExperimentConfig {
    /// The paper's campaign with scripted fault history.
    pub fn paper_scripted(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            seed,
            fault_mode: FaultMode::Scripted,
            start: SimTime::from_date(2010, 2, 12),
            end: SimTime::from_date(2010, 5, 13),
            tick: SimDuration::minutes(1),
            climate: presets::helsinki_winter_2010(),
            tent: TentParams::default(),
            job: JobConfig::default(),
            collection_interval: SimDuration::minutes(20),
            fault_poll_interval: SimDuration::minutes(5),
            lascar_deployed_at: SimTime::from_date(2010, 3, 5),
            sensor_log_interval: SimDuration::minutes(20),
            force_ecc: false,
            chaos: None,
            fleet: FleetSpec::Paper,
        }
    }

    /// Stochastic campaign with §4.2.1-grade chaos injection enabled.
    pub fn paper_chaos(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            chaos: Some(ChaosConfig::paper_like()),
            ..ExperimentConfig::paper_stochastic(seed)
        }
    }

    /// Same campaign, faults drawn stochastically.
    pub fn paper_stochastic(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            ..ExperimentConfig::paper_scripted(seed)
        }
    }

    /// A short window for tests: `days` days starting at the normal phase,
    /// with coarser bookkeeping so debug-mode tests stay fast.
    pub fn short(seed: u64, days: i64) -> ExperimentConfig {
        ExperimentConfig {
            start: SimTime::from_date(2010, 2, 12),
            end: SimTime::from_date(2010, 2, 12) + SimDuration::days(days),
            collection_interval: SimDuration::hours(2),
            lascar_deployed_at: SimTime::from_date(2010, 2, 12),
            ..ExperimentConfig::paper_scripted(seed)
        }
    }

    /// Campaign length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_spans_three_months() {
        let c = ExperimentConfig::paper_scripted(1);
        let days = c.duration().as_days_f64();
        assert!((85.0..95.0).contains(&days), "campaign days {days}");
        assert_eq!(c.fault_mode, FaultMode::Scripted);
    }

    #[test]
    fn stochastic_variant() {
        let c = ExperimentConfig::paper_stochastic(1);
        assert_eq!(c.fault_mode, FaultMode::Stochastic);
        assert_eq!(c.start, ExperimentConfig::paper_scripted(1).start);
    }

    #[test]
    fn lascar_arrives_late_in_paper_config() {
        let c = ExperimentConfig::paper_scripted(1);
        assert!(c.lascar_deployed_at > c.start + SimDuration::days(14));
    }

    #[test]
    fn short_config_is_short() {
        let c = ExperimentConfig::short(1, 3);
        assert_eq!(c.duration().as_days_f64(), 3.0);
    }
}
