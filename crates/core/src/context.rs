//! The shared per-tick campaign state that every [`crate::phases::TickPhase`]
//! steps over.
//!
//! [`CampaignCtx`] owns everything the campaign touches — the clock, the
//! RNG lane root, the weather models, the enclosures, the fleet, the
//! instruments, the collection network, the watchdog and every accumulator
//! that ends up in [`ExperimentResults`]. Phases receive `&mut CampaignCtx`
//! and communicate with each other exclusively through it: the weather
//! phase writes [`CampaignCtx::weather`], the enclosure phase writes
//! [`CampaignCtx::tent_state`] and [`CampaignCtx::tent_power_w`], the power
//! phase integrates what the enclosure phase computed, and so on.
//!
//! Cross-cutting fault plumbing (hangs, scripted events, chaos events, the
//! indoor-diagnosis workflow) lives here as methods so that any phase —
//! stock or user-written — can trigger them consistently.

use std::collections::BTreeMap;

use frostlab_climate::station::{StationConfig, WeatherObservation, WeatherStation};
use frostlab_climate::weather::{WeatherModel, WeatherSample};
use frostlab_faults::chaos::{ChaosEngine, ChaosEvent};
use frostlab_faults::injector::{FaultInjector, HostFaults};
use frostlab_faults::repair::{Disposition, HostRecord, RepairPolicy};
use frostlab_faults::types::{FaultEvent, FaultKind, HostId};
use frostlab_hardware::server::{Server, ServerSpec, Vendor};
use frostlab_netsim::collector::{Collector, MonitoredHost};
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_telemetry::lascar::{LascarConfig, LascarLogger};
use frostlab_telemetry::outlier::SpikeFilter;
use frostlab_telemetry::series::TimeSeries;
use frostlab_telemetry::technoline::CostControlMeter;
use frostlab_thermal::basement::Basement;
use frostlab_thermal::enclosure::{Enclosure, EnclosureState};
use frostlab_thermal::server_case::{ServerCaseThermal, ServerThermalParams};
use frostlab_thermal::tent::{Tent, TentConfig};
use frostlab_trace::Tracer;
use frostlab_workload::job::{JobRunner, JobTemplate};
use frostlab_workload::schedule::LoadSchedule;
use frostlab_workload::stats::{Placement, WorkloadStats};

use crate::config::{ExperimentConfig, FaultMode};
use crate::fleet::{paper_fleet, switch_assignment, HostPlan, SwitchFailoverPolicy};
use crate::results::{ExperimentResults, HostSummary, StoredArchive};
use crate::scripted::ScriptedEvent;
use crate::watchdog::{IncidentKind, Watchdog};

/// One live machine in the campaign.
pub struct HostSim {
    /// Fleet-plan entry (id, vendor, placement, install date).
    pub plan: HostPlan,
    /// The machine itself.
    pub server: Server,
    /// Chassis thermal chain.
    pub thermal: ServerCaseThermal,
    /// The pack-verify job runner.
    pub job: JobRunner,
    /// The jittered 10-minute schedule.
    pub schedule: LoadSchedule,
    /// Stochastic fault models for this host.
    pub faults: HostFaults,
    /// Repair-workflow history.
    pub record: HostRecord,
    /// The host's collectable log store.
    pub store: MonitoredHost,
    /// Bit flips queued for the next pack-verify run.
    pub pending_flips: u32,
    /// End of the current run's CPU-busy window.
    pub busy_until: SimTime,
    /// Next scheduled run start.
    pub next_run_at: SimTime,
    /// Pending staff inspection after a hang.
    pub inspection_due: Option<SimTime>,
    /// Wall power drawn during the previous tick, W.
    pub last_wall_w: f64,
    /// Physical CPU temperature, °C.
    pub cpu_temp_c: f64,
    /// Page ops accumulated since the last fault poll.
    pub page_ops_since_poll: u64,
    /// Permanently withdrawn (taken indoors)?
    pub withdrawn: bool,
    /// Outcome of the indoor Memtest diagnosis, if one ran.
    pub memtest_failed: Option<bool>,
    /// Next sensor-log append.
    pub next_sensor_log: SimTime,
}

impl HostSim {
    /// Is the host on site and not withdrawn at time `t`?
    pub fn installed(&self, t: SimTime) -> bool {
        t >= self.plan.install_at && !self.withdrawn
    }

    pub(crate) fn thermal_params(vendor: Vendor) -> ServerThermalParams {
        match vendor {
            Vendor::A => ServerThermalParams::vendor_a_tower(),
            Vendor::B => ServerThermalParams::vendor_b_sff(),
            Vendor::C => ServerThermalParams::vendor_c_2u(),
        }
    }

    pub(crate) fn spec_for(plan: &HostPlan) -> ServerSpec {
        match plan.vendor {
            Vendor::A => ServerSpec::vendor_a(),
            Vendor::B => ServerSpec::vendor_b(plan.defective),
            Vendor::C => ServerSpec::vendor_c(),
        }
    }
}

/// Live chaos-injection state (stochastic mode with `cfg.chaos` set).
pub struct ChaosState {
    /// The pre-generated chaos event schedule.
    pub engine: ChaosEngine,
    /// Per-attempt loss draws during a link-loss burst.
    pub draws: Rng,
    /// End of the current link-loss burst.
    pub loss_until: SimTime,
    /// Per-attempt drop probability during the burst.
    pub loss_prob: f64,
}

/// All campaign state, shared across phases through `&mut`.
pub struct CampaignCtx {
    /// The campaign configuration.
    pub cfg: ExperimentConfig,
    /// The clock: the tick currently being simulated.
    pub now: SimTime,
    /// Tick length, seconds.
    pub dt_secs: f64,
    /// Tick length, hours.
    pub dt_hours: f64,
    /// RNG lane root. [`Rng::derive`] new labelled streams from it; adding
    /// a consumer never perturbs existing streams.
    pub root: Rng,
    /// The synthetic winter.
    pub wx: WeatherModel,
    /// The SMEAR III surrogate observing it.
    pub station: WeatherStation,
    /// Current-tick weather sample (written by the weather phase).
    pub weather: WeatherSample,
    /// The tent on the roof terrace.
    pub tent: Tent,
    /// The basement control-group enclosure.
    pub basement: Basement,
    /// Tent air state this tick (written by the enclosure phase).
    pub tent_state: EnclosureState,
    /// Basement air state this tick (written by the enclosure phase).
    pub basement_state: EnclosureState,
    /// Tent-group wall power this tick, W (written by the enclosure phase
    /// from the *previous* tick's per-host draw, read by the power phase).
    pub tent_power_w: f64,
    /// Basement-group wall power this tick, W.
    pub basement_power_w: f64,
    /// The Lascar USB logger in the tent.
    pub lascar: LascarLogger,
    /// The Technoline wall-power meter on the tent feed.
    pub meter: CostControlMeter,
    /// The monitoring host's collection pipeline.
    pub collector: Collector,
    /// The fleet.
    pub hosts: Vec<HostSim>,
    /// Which of the two tent switches are up.
    pub switch_up: [bool; 2],
    /// Incident bookkeeping.
    pub watchdog: Watchdog,
    /// Spare-switch repair policy (stochastic/chaos mode).
    pub failover: SwitchFailoverPolicy,
    /// Escalation policy for the Monday repair visits.
    pub repair_policy: RepairPolicy,
    /// Chaos-injection state (`None` outside chaos mode).
    pub chaos: Option<ChaosState>,
    /// Chaos-mode switch repairs scheduled by the failover policy.
    pub pending_switch_restores: Vec<(SimTime, usize)>,
    /// Workload bookkeeping accumulator.
    pub workload: WorkloadStats,
    /// Every fault event so far.
    pub fault_events: Vec<FaultEvent>,
    /// Wrong-hash archives kept for forensics.
    pub stored_archives: Vec<StoredArchive>,
    /// Tent air temperature truth series (10-min cadence).
    pub tent_temp_truth: TimeSeries,
    /// Tent air RH truth series.
    pub tent_rh_truth: TimeSeries,
    /// Basement air temperature truth series.
    pub basement_temp: TimeSeries,
    /// The station's outside observations.
    pub outside: Vec<WeatherObservation>,
    /// True tent-group energy integral, Wh.
    pub energy_true_wh: f64,
    /// The campaign's trace handle. Disabled (a no-op) by default;
    /// [`crate::scenario::ScenarioBuilder::with_tracing`] arms it. Draws
    /// no randomness, so arming it never perturbs any RNG stream.
    pub tracer: Tracer,
}

impl CampaignCtx {
    /// Build the campaign state: fleet, instruments, network, chaos.
    ///
    /// Construction order (and every `derive` label) is part of the
    /// determinism contract: the golden-hash tests pin the resulting
    /// streams, so keep it stable.
    pub fn new(cfg: ExperimentConfig) -> CampaignCtx {
        let root = Rng::new(cfg.seed);
        let mut wx = WeatherModel::new(cfg.climate.clone(), cfg.seed);
        // Tabulate the deterministic weather skeleton for the campaign
        // window up front, so the weather phase pays table lookups only.
        wx.prewarm(cfg.start, cfg.end);
        let station = WeatherStation::new(StationConfig::default(), cfg.start, &root);
        let boot_weather = WeatherSample {
            t: cfg.start,
            temp_c: cfg.climate.seasonal_mean_c(cfg.start.day_of_year() as f64),
            rh_pct: 85.0,
            wind_ms: 3.0,
            solar_w_m2: 0.0,
            cloud: 0.7,
        };
        let tent = Tent::new(cfg.tent.clone(), TentConfig::initial(), &boot_weather);
        let injector = FaultInjector::new(&root);
        let template = JobTemplate::build(cfg.job.clone());
        let mut collector_rng = root.derive("collector");
        let collector = Collector::new(&mut collector_rng);

        let mut hosts = Vec::new();
        for plan in paper_fleet() {
            let host_rng = root.derive(&format!("host/{}", plan.id));
            let mut store_rng = host_rng.derive("store");
            let store = MonitoredHost::new(plan.id, &mut store_rng, vec![collector.key.public]);
            let mut spec = HostSim::spec_for(&plan);
            if cfg.force_ecc {
                spec.ecc = true;
            }
            hosts.push(HostSim {
                server: Server::new(spec),
                thermal: ServerCaseThermal::new(HostSim::thermal_params(plan.vendor), 18.0),
                job: JobRunner::from_template(&template, &host_rng),
                schedule: LoadSchedule::new(plan.install_at, &host_rng),
                faults: injector.host(HostId(plan.id), plan.defective),
                record: HostRecord::new(HostId(plan.id)),
                store,
                pending_flips: 0,
                busy_until: plan.install_at,
                next_run_at: plan.install_at,
                inspection_due: None,
                last_wall_w: 0.0,
                cpu_temp_c: 18.0,
                page_ops_since_poll: 0,
                withdrawn: false,
                memtest_failed: None,
                next_sensor_log: plan.install_at,
                plan,
            });
        }

        let lascar = LascarLogger::new(LascarConfig::default(), cfg.lascar_deployed_at, &root);
        let meter = CostControlMeter::new(&root);

        // Chaos injection only exists in stochastic mode; scripted mode
        // replays the paper's history verbatim. The engine and its draw
        // stream come from `derive`, so enabling/disabling chaos never
        // shifts any other consumer's randomness.
        let chaos = match (&cfg.fault_mode, &cfg.chaos) {
            (FaultMode::Stochastic, Some(chaos_cfg)) => {
                let host_ids: Vec<u32> = hosts.iter().map(|h| h.plan.id).collect();
                Some(ChaosState {
                    engine: ChaosEngine::generate(
                        chaos_cfg,
                        (cfg.start, cfg.end),
                        &host_ids,
                        2,
                        &root,
                    ),
                    draws: root.derive("chaos-draws"),
                    loss_until: cfg.start,
                    loss_prob: 0.0,
                })
            }
            _ => None,
        };

        let basement = Basement::new();
        let tent_state = tent.state();
        let basement_state = basement.state();
        let dt_secs = cfg.tick.as_secs() as f64;
        CampaignCtx {
            now: cfg.start,
            dt_secs,
            dt_hours: dt_secs / 3600.0,
            root,
            station,
            wx,
            weather: boot_weather,
            tent,
            basement,
            tent_state,
            basement_state,
            tent_power_w: 0.0,
            basement_power_w: 0.0,
            lascar,
            meter,
            collector,
            hosts,
            switch_up: [true, true],
            watchdog: Watchdog::new(),
            failover: SwitchFailoverPolicy::default(),
            repair_policy: RepairPolicy::default(),
            chaos,
            pending_switch_restores: Vec::new(),
            workload: WorkloadStats::new(),
            fault_events: Vec::new(),
            stored_archives: Vec::new(),
            tent_temp_truth: TimeSeries::new(),
            tent_rh_truth: TimeSeries::new(),
            basement_temp: TimeSeries::new(),
            outside: Vec::new(),
            energy_true_wh: 0.0,
            tracer: Tracer::disabled(),
            cfg,
        }
    }

    /// Is this host's collection path up?
    pub fn reachable(&self, host: &HostSim) -> bool {
        if !host.server.is_running() {
            return false;
        }
        match host.plan.placement {
            Placement::Basement => true,
            Placement::Tent => self.switch_up[switch_assignment(host.plan.id)],
        }
    }

    /// Append a fault event to the campaign ledger.
    pub fn record_fault(&mut self, at: SimTime, host: u32, kind: FaultKind) {
        self.fault_events.push(FaultEvent {
            at,
            host: HostId(host),
            kind,
        });
    }

    /// Hang host `idx`: stop the box, open an incident, schedule the next
    /// staff inspection.
    pub fn apply_hang(&mut self, idx: usize, at: SimTime) {
        let due = HostRecord::next_inspection(at);
        let host = &mut self.hosts[idx];
        if !host.server.is_running() {
            return;
        }
        host.server.hang();
        host.record.record_failure(at);
        host.inspection_due = Some(due);
        let id = host.plan.id;
        self.watchdog
            .open(IncidentKind::HostHang, &format!("host-{id}"), at);
        self.record_fault(at, id, FaultKind::TransientSystemFailure);
    }

    /// Apply one scripted event.
    pub fn handle_scripted(&mut self, at: SimTime, ev: ScriptedEvent) {
        match ev {
            ScriptedEvent::TentReconfig { config, .. } => self.tent.set_config(config),
            ScriptedEvent::HostHang { host } => {
                if let Some(idx) = self.hosts.iter().position(|h| h.plan.id == host) {
                    self.apply_hang(idx, at);
                }
            }
            ScriptedEvent::SensorColdFault { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.server.sensors.inject_cold_fault();
                }
                self.watchdog.open(
                    IncidentKind::SensorFault,
                    &format!("host-{host}/sensor"),
                    at,
                );
                self.record_fault(at, host, FaultKind::SensorChipErratic);
            }
            ScriptedEvent::SensorRedetect { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.server.sensors.attempt_redetect();
                }
            }
            ScriptedEvent::SensorWarmReboot { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.server.sensors.warm_reboot();
                }
                self.watchdog.resolve(
                    &format!("host-{host}/sensor"),
                    at,
                    "sensor chip warm-rebooted",
                );
            }
            ScriptedEvent::SwitchDown { switch } => {
                self.switch_up[switch] = false;
                self.watchdog
                    .open(IncidentKind::SwitchFailure, &format!("switch-{switch}"), at);
                self.record_fault(at, 101 + switch as u32, FaultKind::SwitchFailure);
            }
            ScriptedEvent::SwitchRestored { switch } => {
                self.switch_up[switch] = true;
                self.watchdog
                    .resolve(&format!("switch-{switch}"), at, "spare switch swapped in");
            }
            ScriptedEvent::FlipNextRun { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.pending_flips += 1;
                    h.server.memory.apply_bit_flip();
                }
                self.record_fault(at, host, FaultKind::MemoryBitFlip);
            }
        }
    }

    /// The repair-workflow escalation after repeat failures: reset fails in
    /// outside conditions, the host goes indoors, gets the Memtest86+
    /// treatment (a real pattern run over a DRAM model carrying the defects
    /// a repeatedly-hanging machine plausibly has), and stays out of the
    /// campaign — the paper's host #15 path.
    pub fn take_indoors(&mut self, idx: usize) {
        let host = &mut self.hosts[idx];
        host.record.replace(); // replaced-in-slot bookkeeping happens via #19
        host.withdrawn = true;
        host.server.power_off();
        // Indoor diagnosis: a machine that hung repeatedly gets a marginal
        // DIMM model — an intermittent cell whose period comes from the
        // host's own RNG stream — and the real tester runs over it.
        let mut dram = frostlab_hardware::memtest::DramArray::new(2048);
        let mut diag_rng = Rng::new(self.cfg.seed).derive(&format!("memtest/{}", host.plan.id));
        let word = diag_rng.below(2048) as usize;
        let bit = diag_rng.below(64) as u8;
        let period = 3 + diag_rng.below(40) as u32;
        dram.inject_intermittent(word, 1u64 << bit, period);
        let report = frostlab_hardware::memtest::run_memtest(&mut dram, 8, self.cfg.seed);
        host.memtest_failed = Some(!report.passed());
        let id = host.plan.id;
        self.collector.abandon(id);
    }

    /// Apply one chaos event (stochastic mode only).
    pub fn handle_chaos(&mut self, at: SimTime, ev: ChaosEvent) {
        match ev {
            ChaosEvent::LinkLossBurst { loss, duration } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.loss_until = at + duration;
                    chaos.loss_prob = loss;
                }
            }
            // Jitter delays frames but the 20-minute cadence dwarfs any
            // per-hop delay, so a jitter burst is invisible at this layer;
            // the frame-level effect lives in `frostlab_netsim::net`.
            ChaosEvent::JitterBurst { .. } => {}
            ChaosEvent::SwitchDeath { switch } => {
                if !self.switch_up[switch] {
                    return; // already dead
                }
                self.switch_up[switch] = false;
                self.watchdog
                    .open(IncidentKind::SwitchFailure, &format!("switch-{switch}"), at);
                self.record_fault(at, 101 + switch as u32, FaultKind::SwitchFailure);
                // The spare-swap repair workflow bounds the outage — while
                // spares last.
                if let Some(restore_at) = self.failover.take_spare(at) {
                    self.pending_switch_restores.push((restore_at, switch));
                }
            }
            ChaosEvent::HostHang { host } => {
                if let Some(idx) = self.hosts.iter().position(|h| h.plan.id == host) {
                    if self.hosts[idx].installed(at) {
                        self.apply_hang(idx, at);
                    }
                }
            }
            ChaosEvent::HostReboot { host } => {
                // Transient: the box comes straight back without operator
                // attention; only the in-flight run is lost.
                if let Some(h) = self
                    .hosts
                    .iter_mut()
                    .find(|h| h.plan.id == host && h.installed(at))
                {
                    if h.server.is_running() {
                        h.server.reset();
                        h.schedule.resume_at(at);
                        h.next_run_at = h.schedule.next_run();
                        self.record_fault(at, host, FaultKind::TransientSystemFailure);
                    }
                }
            }
            ChaosEvent::SensorFreeze { host } => {
                if let Some(h) = self
                    .hosts
                    .iter_mut()
                    .find(|h| h.plan.id == host && h.installed(at))
                {
                    h.server.sensors.inject_cold_fault();
                    self.watchdog.open(
                        IncidentKind::SensorFault,
                        &format!("host-{host}/sensor"),
                        at,
                    );
                    self.record_fault(at, host, FaultKind::SensorChipErratic);
                }
            }
        }
    }

    /// Does the chaos link-loss burst eat this collection attempt?
    pub fn chaos_drops_attempt(&mut self, t: SimTime) -> bool {
        match self.chaos.as_mut() {
            Some(chaos) if t < chaos.loss_until => chaos.draws.chance(chaos.loss_prob),
            _ => false,
        }
    }

    /// Freeze the campaign into [`ExperimentResults`].
    pub fn finish(self) -> ExperimentResults {
        // Clean the Lascar channels the way the authors did.
        let filter = SpikeFilter::default();
        let (lascar_temp, removed_t) = filter.clean(self.lascar.temperature());
        let (lascar_rh, removed_rh) = filter.clean(self.lascar.humidity());

        let mut hosts = BTreeMap::new();
        for mut h in self.hosts {
            let disposition = h.record.disposition();
            hosts.insert(
                h.plan.id,
                HostSummary {
                    id: h.plan.id,
                    vendor: h.plan.vendor,
                    placement: h.plan.placement,
                    defective: h.plan.defective,
                    installed_at: h.plan.install_at,
                    failures: h.record.failures().to_vec(),
                    resets: h.record.reset_count(),
                    disposition: if h.withdrawn {
                        Disposition::TakenIndoors
                    } else {
                        disposition
                    },
                    min_cpu_c: h.server.sensors.min_seen_c(),
                    sensor_erratic_reads: h.server.sensors.erratic_count(),
                    page_ops: h.server.memory.page_ops(),
                    silent_corruptions: h.server.memory.silent_corruptions(),
                    disks_pass_long_test: h.server.storage.all_long_tests_pass(),
                    memtest_failed: h.memtest_failed,
                },
            );
        }

        ExperimentResults {
            seed: self.cfg.seed,
            window: (self.cfg.start, self.cfg.end),
            outside: self.outside,
            tent_temp_truth: self.tent_temp_truth,
            tent_rh_truth: self.tent_rh_truth,
            basement_temp: self.basement_temp,
            lascar_temp_raw: self.lascar.temperature().clone(),
            lascar_rh_raw: self.lascar.humidity().clone(),
            lascar_temp,
            lascar_rh,
            lascar_outliers_removed: removed_t + removed_rh,
            workload: self.workload,
            fault_events: self.fault_events,
            hosts,
            collection: self.collector.history().to_vec(),
            collection_gaps: self.collector.gaps().to_vec(),
            incidents: self.watchdog.into_incidents(),
            stored_archives: self.stored_archives,
            tent_energy_metered_kwh: self.meter.energy_kwh(),
            tent_energy_true_kwh: self.energy_true_wh / 1000.0,
            trace: self.tracer.finish(),
        }
    }
}

/// Daily-rotated log-file name, e.g. `md5sums-0307.log` — the hosts rotate
/// their logs at midnight so each collection round only has to rsync the
/// current day's small files.
pub(crate) fn daily_log(prefix: &str, t: SimTime) -> String {
    let d = t.date();
    format!("{prefix}-{:02}{:02}.log", d.month, d.day)
}

/// The next Monday at 10:00 at or after `t` (staff-visit cadence).
pub(crate) fn next_monday_morning(t: SimTime) -> SimTime {
    let mut date = t.date();
    loop {
        if date.weekday_index() == 0 {
            let candidate = date.to_sim_time() + SimDuration::hours(10);
            if candidate >= t {
                return candidate;
            }
        }
        date = date.succ();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_monday_morning_lands_on_monday_ten_am() {
        // Feb 12 2010 is a Friday; the next Monday is Feb 15.
        let t = next_monday_morning(SimTime::from_date(2010, 2, 12));
        assert_eq!(t, SimTime::from_ymd_hms(2010, 2, 15, 10, 0, 0));
        // A Monday 09:00 resolves to the same day at 10:00.
        let mon9 = SimTime::from_ymd_hms(2010, 2, 15, 9, 0, 0);
        assert_eq!(
            next_monday_morning(mon9),
            SimTime::from_ymd_hms(2010, 2, 15, 10, 0, 0)
        );
        // A Monday 11:00 resolves to the following Monday.
        let mon11 = SimTime::from_ymd_hms(2010, 2, 15, 11, 0, 0);
        assert_eq!(
            next_monday_morning(mon11),
            SimTime::from_ymd_hms(2010, 2, 22, 10, 0, 0)
        );
    }

    #[test]
    fn daily_log_rotates_by_date() {
        let t = SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0);
        assert_eq!(daily_log("md5sums", t), "md5sums-0307.log");
        assert_eq!(daily_log("sensors", t), "sensors-0307.log");
    }

    #[test]
    fn fresh_ctx_matches_config_window() {
        let ctx = CampaignCtx::new(ExperimentConfig::short(1, 3));
        assert_eq!(ctx.now, ctx.cfg.start);
        assert_eq!(ctx.hosts.len(), paper_fleet().len());
        assert!(ctx.switch_up.iter().all(|&up| up));
        assert!(ctx.chaos.is_none(), "scripted mode never builds chaos");
    }
}
