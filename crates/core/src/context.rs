//! The shared per-tick campaign state that every [`crate::phases::TickPhase`]
//! steps over.
//!
//! [`CampaignCtx`] owns everything the campaign touches — the clock, the
//! RNG lane root, the weather models, the enclosures, the fleet, the
//! instruments, the collection network, the watchdog and every accumulator
//! that ends up in [`ExperimentResults`]. Phases receive `&mut CampaignCtx`
//! and communicate with each other exclusively through it: the weather
//! phase writes [`CampaignCtx::weather`], the enclosure phase writes
//! [`CampaignCtx::tent_state`] and [`CampaignCtx::tent_power_w`], the power
//! phase integrates what the enclosure phase computed, and so on.
//!
//! Per-host state lives in [`FleetState`] — struct-of-arrays columns the
//! host-step phase walks in bulk. The paper's fleet shares one tent and
//! one basement; generated fleets spread over many nine-host *zones*, each
//! with its own enclosure RC network ([`CampaignCtx::extra_tents`] /
//! [`CampaignCtx::extra_basements`]), so the thermal model stays physical
//! at 10,000 hosts. Zone 0 is always the instrumented primary pair — the
//! Lascar, the truth series and the power meter keep watching it.
//!
//! Cross-cutting fault plumbing (hangs, scripted events, chaos events, the
//! indoor-diagnosis workflow) lives here as methods so that any phase —
//! stock or user-written — can trigger them consistently.

use std::collections::BTreeMap;

use frostlab_climate::station::{StationConfig, WeatherObservation, WeatherStation};
use frostlab_climate::weather::{WeatherModel, WeatherSample};
use frostlab_faults::chaos::{ChaosEngine, ChaosEvent};
use frostlab_faults::injector::FaultInjector;
use frostlab_faults::repair::{Disposition, HostRecord, RepairPolicy};
use frostlab_faults::types::{FaultEvent, FaultKind, HostId};
use frostlab_netsim::collector::{Collector, MonitoredHost};
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_telemetry::lascar::{LascarConfig, LascarLogger};
use frostlab_telemetry::outlier::SpikeFilter;
use frostlab_telemetry::series::TimeSeries;
use frostlab_telemetry::technoline::CostControlMeter;
use frostlab_thermal::basement::Basement;
use frostlab_thermal::enclosure::{Enclosure, EnclosureState};
use frostlab_thermal::tent::{Tent, TentConfig};
use frostlab_trace::Tracer;
use frostlab_workload::job::{JobRunner, JobTemplate};
use frostlab_workload::schedule::LoadSchedule;
use frostlab_workload::stats::{Placement, WorkloadStats};

use crate::config::{ExperimentConfig, FaultMode};
use crate::fleet::{switch_assignment, FleetBuilder, SwitchFailoverPolicy};
use crate::fleet_state::{spec_for, FleetState};
use crate::results::{ExperimentResults, HostSummary, StoredArchive};
use crate::scripted::ScriptedEvent;
use crate::watchdog::{IncidentKind, Watchdog};

/// Live chaos-injection state (stochastic mode with `cfg.chaos` set).
pub struct ChaosState {
    /// The pre-generated chaos event schedule.
    pub engine: ChaosEngine,
    /// Per-attempt loss draws during a link-loss burst.
    pub draws: Rng,
    /// End of the current link-loss burst.
    pub loss_until: SimTime,
    /// Per-attempt drop probability during the burst.
    pub loss_prob: f64,
}

/// All campaign state, shared across phases through `&mut`.
pub struct CampaignCtx {
    /// The campaign configuration.
    pub cfg: ExperimentConfig,
    /// The clock: the tick currently being simulated.
    pub now: SimTime,
    /// Tick length, seconds.
    pub dt_secs: f64,
    /// Tick length, hours.
    pub dt_hours: f64,
    /// RNG lane root. [`Rng::derive`] new labelled streams from it; adding
    /// a consumer never perturbs existing streams.
    pub root: Rng,
    /// The synthetic winter.
    pub wx: WeatherModel,
    /// The SMEAR III surrogate observing it.
    pub station: WeatherStation,
    /// Current-tick weather sample (written by the weather phase).
    pub weather: WeatherSample,
    /// The tent on the roof terrace (zone 0, the instrumented one).
    pub tent: Tent,
    /// The basement control-group enclosure (zone 0).
    pub basement: Basement,
    /// Additional tent zones (generated fleets; empty for the paper).
    pub extra_tents: Vec<Tent>,
    /// Additional basement rooms (generated fleets; empty for the paper).
    pub extra_basements: Vec<Basement>,
    /// Tent air state this tick (written by the enclosure phase).
    pub tent_state: EnclosureState,
    /// Basement air state this tick (written by the enclosure phase).
    pub basement_state: EnclosureState,
    /// Per-zone tent air states; index 0 mirrors [`CampaignCtx::tent_state`].
    pub tent_zone_states: Vec<EnclosureState>,
    /// Per-zone basement air states; index 0 mirrors
    /// [`CampaignCtx::basement_state`].
    pub basement_zone_states: Vec<EnclosureState>,
    /// Zone-0 tent-group wall power this tick, W (written by the enclosure
    /// phase from the *previous* tick's per-host draw, read by the power
    /// phase — the meter hangs off the instrumented tent's feed).
    pub tent_power_w: f64,
    /// Zone-0 basement-group wall power this tick, W.
    pub basement_power_w: f64,
    /// The Lascar USB logger in the tent.
    pub lascar: LascarLogger,
    /// The Technoline wall-power meter on the tent feed.
    pub meter: CostControlMeter,
    /// The monitoring host's collection pipeline.
    pub collector: Collector,
    /// The fleet, as struct-of-arrays columns.
    pub fleet: FleetState,
    /// Which of the two tent switches are up.
    pub switch_up: [bool; 2],
    /// Incident bookkeeping.
    pub watchdog: Watchdog,
    /// Spare-switch repair policy (stochastic/chaos mode).
    pub failover: SwitchFailoverPolicy,
    /// Escalation policy for the Monday repair visits.
    pub repair_policy: RepairPolicy,
    /// Chaos-injection state (`None` outside chaos mode).
    pub chaos: Option<ChaosState>,
    /// Chaos-mode switch repairs scheduled by the failover policy.
    pub pending_switch_restores: Vec<(SimTime, usize)>,
    /// Workload bookkeeping accumulator.
    pub workload: WorkloadStats,
    /// Every fault event so far.
    pub fault_events: Vec<FaultEvent>,
    /// Wrong-hash archives kept for forensics.
    pub stored_archives: Vec<StoredArchive>,
    /// Tent air temperature truth series (10-min cadence).
    pub tent_temp_truth: TimeSeries,
    /// Tent air RH truth series.
    pub tent_rh_truth: TimeSeries,
    /// Basement air temperature truth series.
    pub basement_temp: TimeSeries,
    /// The station's outside observations.
    pub outside: Vec<WeatherObservation>,
    /// True tent-group energy integral, Wh.
    pub energy_true_wh: f64,
    /// The campaign's trace handle. Disabled (a no-op) by default;
    /// [`crate::scenario::ScenarioBuilder::with_tracing`] arms it. Draws
    /// no randomness, so arming it never perturbs any RNG stream.
    pub tracer: Tracer,
    /// The fleet health observatory (rollups, SLO burn-rate alerting,
    /// flight recorder). `None` by default — one branch per tick;
    /// [`crate::scenario::ScenarioBuilder::with_observability`] arms it.
    /// Boxed so the disabled campaign carries a single pointer. Like the
    /// tracer, it draws no randomness and no wall-clock.
    pub obs: Option<Box<frostlab_obs::ObsState>>,
}

impl CampaignCtx {
    /// Build the campaign state: fleet, instruments, network, chaos.
    ///
    /// Construction order (and every `derive` label) is part of the
    /// determinism contract: the golden-hash tests pin the resulting
    /// streams, so keep it stable.
    pub fn new(cfg: ExperimentConfig) -> CampaignCtx {
        let root = Rng::new(cfg.seed);
        let mut wx = WeatherModel::new(cfg.climate.clone(), cfg.seed);
        // Tabulate the deterministic weather skeleton for the campaign
        // window up front, so the weather phase pays table lookups only.
        wx.prewarm(cfg.start, cfg.end);
        let station = WeatherStation::new(StationConfig::default(), cfg.start, &root);
        let boot_weather = WeatherSample {
            t: cfg.start,
            temp_c: cfg.climate.seasonal_mean_c(cfg.start.day_of_year() as f64),
            rh_pct: 85.0,
            wind_ms: 3.0,
            solar_w_m2: 0.0,
            cloud: 0.7,
        };
        let tent = Tent::new(cfg.tent.clone(), TentConfig::initial(), &boot_weather);
        let injector = FaultInjector::new(&root);
        let template = JobTemplate::build(cfg.job.clone());
        let mut collector_rng = root.derive("collector");
        let collector = Collector::new(&mut collector_rng);

        let plans = FleetBuilder::from_spec(cfg.fleet).plans(cfg.start);
        let mut fleet = FleetState::with_capacity(plans.len());
        for plan in plans {
            let host_rng = root.derive(&format!("host/{}", plan.id));
            let mut store_rng = host_rng.derive("store");
            let store = MonitoredHost::new(plan.id, &mut store_rng, vec![collector.key.public]);
            let mut spec = spec_for(&plan);
            if cfg.force_ecc {
                spec.ecc = true;
            }
            let job = JobRunner::from_template(&template, &host_rng);
            let schedule = LoadSchedule::new(plan.install_at, &host_rng);
            let faults = injector.host(HostId(plan.id), plan.defective);
            fleet.push_host(plan, &spec, job, schedule, faults, store);
        }

        let lascar = LascarLogger::new(LascarConfig::default(), cfg.lascar_deployed_at, &root);
        let meter = CostControlMeter::new(&root);

        // Chaos injection only exists in stochastic mode; scripted mode
        // replays the paper's history verbatim. The engine and its draw
        // stream come from `derive`, so enabling/disabling chaos never
        // shifts any other consumer's randomness.
        let chaos = match (&cfg.fault_mode, &cfg.chaos) {
            (FaultMode::Stochastic, Some(chaos_cfg)) => {
                let host_ids: Vec<u32> = fleet.plans.iter().map(|p| p.id).collect();
                Some(ChaosState {
                    engine: ChaosEngine::generate(
                        chaos_cfg,
                        (cfg.start, cfg.end),
                        &host_ids,
                        2,
                        &root,
                    ),
                    draws: root.derive("chaos-draws"),
                    loss_until: cfg.start,
                    loss_prob: 0.0,
                })
            }
            _ => None,
        };

        let basement = Basement::new();
        // Zone enclosures beyond the primary pair. `Tent::new` and
        // `Basement::new` draw no randomness, so building them here is
        // RNG-neutral; the paper fleet (all zone 0) builds none.
        let (mut tent_zones, mut basement_zones) = (1usize, 1usize);
        for (i, p) in fleet.plans.iter().enumerate() {
            let z = fleet.zone[i] as usize + 1;
            match p.placement {
                Placement::Tent => tent_zones = tent_zones.max(z),
                Placement::Basement => basement_zones = basement_zones.max(z),
            }
        }
        let extra_tents: Vec<Tent> = (1..tent_zones)
            .map(|_| Tent::new(cfg.tent.clone(), TentConfig::initial(), &boot_weather))
            .collect();
        let extra_basements: Vec<Basement> = (1..basement_zones).map(|_| Basement::new()).collect();

        let tent_state = tent.state();
        let basement_state = basement.state();
        let tent_zone_states = vec![tent_state; tent_zones];
        let basement_zone_states = vec![basement_state; basement_zones];
        let dt_secs = cfg.tick.as_secs() as f64;
        CampaignCtx {
            now: cfg.start,
            dt_secs,
            dt_hours: dt_secs / 3600.0,
            root,
            station,
            wx,
            weather: boot_weather,
            tent,
            basement,
            extra_tents,
            extra_basements,
            tent_state,
            basement_state,
            tent_zone_states,
            basement_zone_states,
            tent_power_w: 0.0,
            basement_power_w: 0.0,
            lascar,
            meter,
            collector,
            fleet,
            switch_up: [true, true],
            watchdog: Watchdog::new(),
            failover: SwitchFailoverPolicy::default(),
            repair_policy: RepairPolicy::default(),
            chaos,
            pending_switch_restores: Vec::new(),
            workload: WorkloadStats::new(),
            fault_events: Vec::new(),
            stored_archives: Vec::new(),
            tent_temp_truth: TimeSeries::new(),
            tent_rh_truth: TimeSeries::new(),
            basement_temp: TimeSeries::new(),
            outside: Vec::new(),
            energy_true_wh: 0.0,
            tracer: Tracer::disabled(),
            obs: None,
            cfg,
        }
    }

    /// Is host `idx`'s collection path up?
    pub fn reachable(&self, idx: usize) -> bool {
        if !self.fleet.hw.is_running(idx) {
            return false;
        }
        match self.fleet.placement[idx] {
            Placement::Basement => true,
            Placement::Tent => self.switch_up[switch_assignment(self.fleet.plans[idx].id)],
        }
    }

    /// Append a fault event to the campaign ledger.
    pub fn record_fault(&mut self, at: SimTime, host: u32, kind: FaultKind) {
        self.fault_events.push(FaultEvent {
            at,
            host: HostId(host),
            kind,
        });
    }

    /// Hang host `idx`: stop the box, open an incident, schedule the next
    /// staff inspection.
    pub fn apply_hang(&mut self, idx: usize, at: SimTime) {
        let due = HostRecord::next_inspection(at);
        if !self.fleet.hw.is_running(idx) {
            return;
        }
        self.fleet.hw.hang(idx);
        self.fleet.records[idx].record_failure(at);
        self.fleet.inspection_due[idx] = Some(due);
        let id = self.fleet.plans[idx].id;
        self.watchdog
            .open(IncidentKind::HostHang, &format!("host-{id}"), at);
        self.record_fault(at, id, FaultKind::TransientSystemFailure);
    }

    /// Apply one scripted event.
    pub fn handle_scripted(&mut self, at: SimTime, ev: ScriptedEvent) {
        match ev {
            ScriptedEvent::TentReconfig { config, .. } => {
                self.tent.set_config(config);
                // Operators reconfigure every tent the same way — zone 0's
                // airflow mods applied fleet-wide.
                for tent in &mut self.extra_tents {
                    tent.set_config(config);
                }
            }
            ScriptedEvent::HostHang { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    self.apply_hang(idx, at);
                }
            }
            ScriptedEvent::SensorColdFault { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    self.fleet.hw.sensor_inject_cold_fault(idx);
                }
                self.watchdog.open(
                    IncidentKind::SensorFault,
                    &format!("host-{host}/sensor"),
                    at,
                );
                self.record_fault(at, host, FaultKind::SensorChipErratic);
            }
            ScriptedEvent::SensorRedetect { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    self.fleet.hw.sensor_attempt_redetect(idx);
                }
            }
            ScriptedEvent::SensorWarmReboot { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    self.fleet.hw.sensor_warm_reboot(idx);
                }
                self.watchdog.resolve(
                    &format!("host-{host}/sensor"),
                    at,
                    "sensor chip warm-rebooted",
                );
            }
            ScriptedEvent::SwitchDown { switch } => {
                self.switch_up[switch] = false;
                self.watchdog
                    .open(IncidentKind::SwitchFailure, &format!("switch-{switch}"), at);
                self.record_fault(at, 101 + switch as u32, FaultKind::SwitchFailure);
            }
            ScriptedEvent::SwitchRestored { switch } => {
                self.switch_up[switch] = true;
                self.watchdog
                    .resolve(&format!("switch-{switch}"), at, "spare switch swapped in");
            }
            ScriptedEvent::FlipNextRun { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    self.fleet.pending_flips[idx] += 1;
                    self.fleet.hw.memory_apply_bit_flip(idx);
                }
                self.record_fault(at, host, FaultKind::MemoryBitFlip);
            }
        }
    }

    /// The repair-workflow escalation after repeat failures: reset fails in
    /// outside conditions, the host goes indoors, gets the Memtest86+
    /// treatment (a real pattern run over a DRAM model carrying the defects
    /// a repeatedly-hanging machine plausibly has), and stays out of the
    /// campaign — the paper's host #15 path.
    pub fn take_indoors(&mut self, idx: usize) {
        self.fleet.records[idx].replace(); // replaced-in-slot bookkeeping happens via #19
        self.fleet.withdrawn[idx] = true;
        self.fleet.hw.power_off(idx);
        let id = self.fleet.plans[idx].id;
        // Indoor diagnosis: a machine that hung repeatedly gets a marginal
        // DIMM model — an intermittent cell whose period comes from the
        // host's own RNG stream — and the real tester runs over it.
        let mut dram = frostlab_hardware::memtest::DramArray::new(2048);
        let mut diag_rng = Rng::new(self.cfg.seed).derive(&format!("memtest/{id}"));
        let word = diag_rng.below(2048) as usize;
        let bit = diag_rng.below(64) as u8;
        let period = 3 + diag_rng.below(40) as u32;
        dram.inject_intermittent(word, 1u64 << bit, period);
        let report = frostlab_hardware::memtest::run_memtest(&mut dram, 8, self.cfg.seed);
        self.fleet.memtest_failed[idx] = Some(!report.passed());
        self.collector.abandon(id);
    }

    /// Apply one chaos event (stochastic mode only).
    pub fn handle_chaos(&mut self, at: SimTime, ev: ChaosEvent) {
        match ev {
            ChaosEvent::LinkLossBurst { loss, duration } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.loss_until = at + duration;
                    chaos.loss_prob = loss;
                }
            }
            // Jitter delays frames but the 20-minute cadence dwarfs any
            // per-hop delay, so a jitter burst is invisible at this layer;
            // the frame-level effect lives in `frostlab_netsim::net`.
            ChaosEvent::JitterBurst { .. } => {}
            ChaosEvent::SwitchDeath { switch } => {
                if !self.switch_up[switch] {
                    return; // already dead
                }
                self.switch_up[switch] = false;
                self.watchdog
                    .open(IncidentKind::SwitchFailure, &format!("switch-{switch}"), at);
                self.record_fault(at, 101 + switch as u32, FaultKind::SwitchFailure);
                // The spare-swap repair workflow bounds the outage — while
                // spares last.
                if let Some(restore_at) = self.failover.take_spare(at) {
                    self.pending_switch_restores.push((restore_at, switch));
                }
            }
            ChaosEvent::HostHang { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    if self.fleet.installed(idx, at) {
                        self.apply_hang(idx, at);
                    }
                }
            }
            ChaosEvent::HostReboot { host } => {
                // Transient: the box comes straight back without operator
                // attention; only the in-flight run is lost.
                if let Some(idx) = self.fleet.index_of(host) {
                    if self.fleet.installed(idx, at) && self.fleet.hw.is_running(idx) {
                        self.fleet.hw.reset(idx);
                        self.fleet.schedules[idx].resume_at(at);
                        self.fleet.next_run_at[idx] = self.fleet.schedules[idx].next_run();
                        self.record_fault(at, host, FaultKind::TransientSystemFailure);
                    }
                }
            }
            ChaosEvent::SensorFreeze { host } => {
                if let Some(idx) = self.fleet.index_of(host) {
                    if self.fleet.installed(idx, at) {
                        self.fleet.hw.sensor_inject_cold_fault(idx);
                        self.watchdog.open(
                            IncidentKind::SensorFault,
                            &format!("host-{host}/sensor"),
                            at,
                        );
                        self.record_fault(at, host, FaultKind::SensorChipErratic);
                    }
                }
            }
        }
    }

    /// Does the chaos link-loss burst eat this collection attempt?
    pub fn chaos_drops_attempt(&mut self, t: SimTime) -> bool {
        match self.chaos.as_mut() {
            Some(chaos) if t < chaos.loss_until => chaos.draws.chance(chaos.loss_prob),
            _ => false,
        }
    }

    /// Freeze the campaign into [`ExperimentResults`].
    pub fn finish(self) -> ExperimentResults {
        // The observatory flushes its rollup summary gauges into the
        // tracer's labeled metric families, so it must freeze first.
        let mut tracer = self.tracer;
        let obs = self.obs.map(|o| o.finish(&mut tracer));

        // Clean the Lascar channels the way the authors did.
        let filter = SpikeFilter::default();
        let (lascar_temp, removed_t) = filter.clean(self.lascar.temperature());
        let (lascar_rh, removed_rh) = filter.clean(self.lascar.humidity());

        let fleet = &self.fleet;
        let mut hosts = BTreeMap::new();
        for (i, plan) in fleet.plans.iter().enumerate() {
            let disposition = fleet.records[i].disposition();
            hosts.insert(
                plan.id,
                HostSummary {
                    id: plan.id,
                    vendor: plan.vendor,
                    placement: plan.placement,
                    defective: plan.defective,
                    installed_at: plan.install_at,
                    failures: fleet.records[i].failures().to_vec(),
                    resets: fleet.records[i].reset_count(),
                    disposition: if fleet.withdrawn[i] {
                        Disposition::TakenIndoors
                    } else {
                        disposition
                    },
                    min_cpu_c: fleet.hw.sensor_min_seen_c(i),
                    sensor_erratic_reads: fleet.hw.sensor_erratic_count(i),
                    page_ops: fleet.hw.memory_page_ops(i),
                    silent_corruptions: fleet.hw.memory_silent_corruptions(i),
                    disks_pass_long_test: fleet.hw.disks_all_long_tests_pass(i),
                    memtest_failed: fleet.memtest_failed[i],
                },
            );
        }

        ExperimentResults {
            seed: self.cfg.seed,
            window: (self.cfg.start, self.cfg.end),
            outside: self.outside,
            tent_temp_truth: self.tent_temp_truth,
            tent_rh_truth: self.tent_rh_truth,
            basement_temp: self.basement_temp,
            lascar_temp_raw: self.lascar.temperature().clone(),
            lascar_rh_raw: self.lascar.humidity().clone(),
            lascar_temp,
            lascar_rh,
            lascar_outliers_removed: removed_t + removed_rh,
            workload: self.workload,
            fault_events: self.fault_events,
            hosts,
            collection: self.collector.history().to_vec(),
            collection_gaps: self.collector.gaps().to_vec(),
            incidents: self.watchdog.into_incidents(),
            stored_archives: self.stored_archives,
            tent_energy_metered_kwh: self.meter.energy_kwh(),
            tent_energy_true_kwh: self.energy_true_wh / 1000.0,
            trace: tracer.finish(),
            obs,
        }
    }
}

/// Daily-rotated log-file name, e.g. `md5sums-0307.log` — the hosts rotate
/// their logs at midnight so each collection round only has to rsync the
/// current day's small files.
pub(crate) fn daily_log(prefix: &str, t: SimTime) -> String {
    let d = t.date();
    format!("{prefix}-{:02}{:02}.log", d.month, d.day)
}

/// The next Monday at 10:00 at or after `t` (staff-visit cadence).
pub(crate) fn next_monday_morning(t: SimTime) -> SimTime {
    let mut date = t.date();
    loop {
        if date.weekday_index() == 0 {
            let candidate = date.to_sim_time() + SimDuration::hours(10);
            if candidate >= t {
                return candidate;
            }
        }
        date = date.succ();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{paper_fleet, FleetSpec};

    #[test]
    fn next_monday_morning_lands_on_monday_ten_am() {
        // Feb 12 2010 is a Friday; the next Monday is Feb 15.
        let t = next_monday_morning(SimTime::from_date(2010, 2, 12));
        assert_eq!(t, SimTime::from_ymd_hms(2010, 2, 15, 10, 0, 0));
        // A Monday 09:00 resolves to the same day at 10:00.
        let mon9 = SimTime::from_ymd_hms(2010, 2, 15, 9, 0, 0);
        assert_eq!(
            next_monday_morning(mon9),
            SimTime::from_ymd_hms(2010, 2, 15, 10, 0, 0)
        );
        // A Monday 11:00 resolves to the following Monday.
        let mon11 = SimTime::from_ymd_hms(2010, 2, 15, 11, 0, 0);
        assert_eq!(
            next_monday_morning(mon11),
            SimTime::from_ymd_hms(2010, 2, 22, 10, 0, 0)
        );
    }

    #[test]
    fn daily_log_rotates_by_date() {
        let t = SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0);
        assert_eq!(daily_log("md5sums", t), "md5sums-0307.log");
        assert_eq!(daily_log("sensors", t), "sensors-0307.log");
    }

    #[test]
    fn fresh_ctx_matches_config_window() {
        let ctx = CampaignCtx::new(ExperimentConfig::short(1, 3));
        assert_eq!(ctx.now, ctx.cfg.start);
        assert_eq!(ctx.fleet.len(), paper_fleet().len());
        assert!(ctx.switch_up.iter().all(|&up| up));
        assert!(ctx.chaos.is_none(), "scripted mode never builds chaos");
        // The paper fleet shares one tent and one basement: no extras.
        assert!(ctx.extra_tents.is_empty());
        assert!(ctx.extra_basements.is_empty());
        assert_eq!(ctx.tent_zone_states.len(), 1);
        assert_eq!(ctx.basement_zone_states.len(), 1);
    }

    #[test]
    fn generated_fleet_builds_zone_enclosures() {
        let mut cfg = ExperimentConfig::short(1, 1);
        cfg.fleet = FleetSpec::VendorMix { hosts: 100 };
        let ctx = CampaignCtx::new(cfg);
        assert_eq!(ctx.fleet.len(), 100);
        // 50 tent hosts over 9-host zones ⇒ 6 zones, 5 of them extra.
        assert_eq!(ctx.tent_zone_states.len(), 6);
        assert_eq!(ctx.extra_tents.len(), 5);
        assert_eq!(ctx.basement_zone_states.len(), 6);
        assert_eq!(ctx.extra_basements.len(), 5);
    }
}
