//! The tick-driven campaign orchestrator.
//!
//! One-minute ticks from the prototype weekend to mid-May. Each tick:
//!
//! 1. advance the weather and let the SMEAR III surrogate observe it;
//! 2. step the tent and basement thermal models with the groups' current
//!    power draw;
//! 3. poll the Lascar logger against the tent air state;
//! 4. fire any scripted events that came due (tent mods, hangs, sensor
//!    saga, switch deaths, wrong-hash injections);
//! 5. per installed host: step the chassis thermal chain, read the sensor
//!    chip, tick S.M.A.R.T., poll the stochastic fault models, run the
//!    synthetic load when its jittered 10-minute slot arrives, and handle
//!    repair-workflow visits;
//! 6. run the 20-minute collection round against reachable hosts;
//! 7. integrate the Technoline meter over the tent group's wall power.
//!
//! Everything lands in [`ExperimentResults`].

use std::collections::BTreeMap;

use frostlab_climate::station::{StationConfig, WeatherStation};
use frostlab_climate::weather::{WeatherModel, WeatherSample};
use frostlab_faults::chaos::{ChaosEngine, ChaosEvent};
use frostlab_faults::injector::{FaultInjector, HostFaults};
use frostlab_faults::repair::{Disposition, HostRecord, RepairAction, RepairPolicy};
use frostlab_faults::types::{FaultEvent, FaultKind, HostId};
use frostlab_hardware::server::{Server, ServerSpec, Vendor};
use frostlab_netsim::collector::{Collector, MonitoredHost};
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_telemetry::lascar::{LascarConfig, LascarLogger};
use frostlab_telemetry::outlier::SpikeFilter;
use frostlab_telemetry::series::TimeSeries;
use frostlab_telemetry::technoline::CostControlMeter;
use frostlab_thermal::basement::Basement;
use frostlab_thermal::enclosure::Enclosure;
use frostlab_thermal::server_case::{ServerCaseThermal, ServerThermalParams};
use frostlab_thermal::tent::{Tent, TentConfig};
use frostlab_workload::job::{JobRunner, JobTemplate};
use frostlab_workload::schedule::LoadSchedule;
use frostlab_workload::stats::{Placement, WorkloadStats};

use crate::config::{ExperimentConfig, FaultMode};
use crate::fleet::{paper_fleet, switch_assignment, HostPlan, SwitchFailoverPolicy};
use crate::results::{ExperimentResults, HostSummary, StoredArchive};
use crate::scripted::{paper_script, ScriptedEvent};
use crate::watchdog::{IncidentKind, Watchdog};

/// One live machine in the campaign.
struct HostSim {
    plan: HostPlan,
    server: Server,
    thermal: ServerCaseThermal,
    job: JobRunner,
    schedule: LoadSchedule,
    faults: HostFaults,
    record: HostRecord,
    store: MonitoredHost,
    /// Bit flips queued for the next pack-verify run.
    pending_flips: u32,
    /// End of the current run's CPU-busy window.
    busy_until: SimTime,
    /// Next scheduled run start.
    next_run_at: SimTime,
    /// Pending staff inspection after a hang.
    inspection_due: Option<SimTime>,
    /// Wall power drawn during the previous tick, W.
    last_wall_w: f64,
    /// Physical CPU temperature, °C.
    cpu_temp_c: f64,
    /// Page ops accumulated since the last fault poll.
    page_ops_since_poll: u64,
    /// Permanently withdrawn (taken indoors)?
    withdrawn: bool,
    /// Outcome of the indoor Memtest diagnosis, if one ran.
    memtest_failed: Option<bool>,
    /// Next sensor-log append.
    next_sensor_log: SimTime,
}

impl HostSim {
    fn installed(&self, t: SimTime) -> bool {
        t >= self.plan.install_at && !self.withdrawn
    }

    fn thermal_params(vendor: Vendor) -> ServerThermalParams {
        match vendor {
            Vendor::A => ServerThermalParams::vendor_a_tower(),
            Vendor::B => ServerThermalParams::vendor_b_sff(),
            Vendor::C => ServerThermalParams::vendor_c_2u(),
        }
    }

    fn spec_for(plan: &HostPlan) -> ServerSpec {
        match plan.vendor {
            Vendor::A => ServerSpec::vendor_a(),
            Vendor::B => ServerSpec::vendor_b(plan.defective),
            Vendor::C => ServerSpec::vendor_c(),
        }
    }
}

/// Live chaos-injection state (stochastic mode with `cfg.chaos` set).
struct ChaosState {
    engine: ChaosEngine,
    /// Per-attempt loss draws during a link-loss burst.
    draws: Rng,
    loss_until: SimTime,
    loss_prob: f64,
}

/// The campaign driver. Construct with a config, then [`Experiment::run`].
pub struct Experiment {
    cfg: ExperimentConfig,
    wx: WeatherModel,
    station: WeatherStation,
    tent: Tent,
    basement: Basement,
    lascar: LascarLogger,
    meter: CostControlMeter,
    collector: Collector,
    hosts: Vec<HostSim>,
    script: Vec<(SimTime, ScriptedEvent)>,
    script_next: usize,
    switch_up: [bool; 2],
    watchdog: Watchdog,
    failover: SwitchFailoverPolicy,
    chaos: Option<ChaosState>,
    /// Chaos-mode switch repairs scheduled by the failover policy.
    pending_switch_restores: Vec<(SimTime, usize)>,
    // accumulation
    workload: WorkloadStats,
    fault_events: Vec<FaultEvent>,
    stored_archives: Vec<StoredArchive>,
    tent_temp_truth: TimeSeries,
    tent_rh_truth: TimeSeries,
    basement_temp: TimeSeries,
    outside: Vec<frostlab_climate::station::WeatherObservation>,
    energy_true_wh: f64,
    next_truth_sample: SimTime,
    next_collection: SimTime,
    next_fault_poll: SimTime,
    next_lascar_readout: SimTime,
}

impl Experiment {
    /// Build the campaign: fleet, instruments, network, scripts.
    pub fn new(cfg: ExperimentConfig) -> Experiment {
        let root = Rng::new(cfg.seed);
        let wx = WeatherModel::new(cfg.climate.clone(), cfg.seed);
        let station = WeatherStation::new(StationConfig::default(), cfg.start, &root);
        let boot_weather = WeatherSample {
            t: cfg.start,
            temp_c: cfg.climate.seasonal_mean_c(cfg.start.day_of_year() as f64),
            rh_pct: 85.0,
            wind_ms: 3.0,
            solar_w_m2: 0.0,
            cloud: 0.7,
        };
        let tent = Tent::new(cfg.tent.clone(), TentConfig::initial(), &boot_weather);
        let injector = FaultInjector::new(&root);
        let template = JobTemplate::build(cfg.job.clone());
        let mut collector_rng = root.derive("collector");
        let collector = Collector::new(&mut collector_rng);

        let mut hosts = Vec::new();
        for plan in paper_fleet() {
            let host_rng = root.derive(&format!("host/{}", plan.id));
            let mut store_rng = host_rng.derive("store");
            let store = MonitoredHost::new(plan.id, &mut store_rng, vec![collector.key.public]);
            let mut spec = HostSim::spec_for(&plan);
            if cfg.force_ecc {
                spec.ecc = true;
            }
            hosts.push(HostSim {
                server: Server::new(spec),
                thermal: ServerCaseThermal::new(HostSim::thermal_params(plan.vendor), 18.0),
                job: JobRunner::from_template(&template, &host_rng),
                schedule: LoadSchedule::new(plan.install_at, &host_rng),
                faults: injector.host(HostId(plan.id), plan.defective),
                record: HostRecord::new(HostId(plan.id)),
                store,
                pending_flips: 0,
                busy_until: plan.install_at,
                next_run_at: plan.install_at,
                inspection_due: None,
                last_wall_w: 0.0,
                cpu_temp_c: 18.0,
                page_ops_since_poll: 0,
                withdrawn: false,
                memtest_failed: None,
                next_sensor_log: plan.install_at,
                plan,
            });
        }

        let script = match cfg.fault_mode {
            FaultMode::Scripted => paper_script(),
            // Stochastic mode draws *faults* from the hazard models, but
            // the operators' physical interventions (the R/I/B/F tent
            // modifications) and the infrastructure history (the defective
            // switches' deaths and replacement) still happened — keep them.
            FaultMode::Stochastic => paper_script()
                .into_iter()
                .filter(|(_, ev)| {
                    matches!(
                        ev,
                        ScriptedEvent::TentReconfig { .. }
                            | ScriptedEvent::SwitchDown { .. }
                            | ScriptedEvent::SwitchRestored { .. }
                    )
                })
                .collect(),
        };

        let lascar = LascarLogger::new(LascarConfig::default(), cfg.lascar_deployed_at, &root);
        let meter = CostControlMeter::new(&root);

        // Chaos injection only exists in stochastic mode; scripted mode
        // replays the paper's history verbatim. The engine and its draw
        // stream come from `derive`, so enabling/disabling chaos never
        // shifts any other consumer's randomness.
        let chaos = match (&cfg.fault_mode, &cfg.chaos) {
            (FaultMode::Stochastic, Some(chaos_cfg)) => {
                let host_ids: Vec<u32> = hosts.iter().map(|h| h.plan.id).collect();
                Some(ChaosState {
                    engine: ChaosEngine::generate(
                        chaos_cfg,
                        (cfg.start, cfg.end),
                        &host_ids,
                        2,
                        &root,
                    ),
                    draws: root.derive("chaos-draws"),
                    loss_until: cfg.start,
                    loss_prob: 0.0,
                })
            }
            _ => None,
        };

        Experiment {
            station,
            wx,
            tent,
            basement: Basement::new(),
            lascar,
            meter,
            collector,
            hosts,
            script,
            script_next: 0,
            switch_up: [true, true],
            watchdog: Watchdog::new(),
            failover: SwitchFailoverPolicy::default(),
            chaos,
            pending_switch_restores: Vec::new(),
            workload: WorkloadStats::new(),
            fault_events: Vec::new(),
            stored_archives: Vec::new(),
            tent_temp_truth: TimeSeries::new(),
            tent_rh_truth: TimeSeries::new(),
            basement_temp: TimeSeries::new(),
            outside: Vec::new(),
            energy_true_wh: 0.0,
            next_truth_sample: cfg.start,
            next_collection: cfg.start + cfg.collection_interval,
            next_fault_poll: cfg.start + cfg.fault_poll_interval,
            next_lascar_readout: next_monday_morning(cfg.lascar_deployed_at),
            cfg,
        }
    }

    /// Is this host's collection path up?
    fn reachable(&self, host: &HostSim) -> bool {
        if !host.server.is_running() {
            return false;
        }
        match host.plan.placement {
            Placement::Basement => true,
            Placement::Tent => self.switch_up[switch_assignment(host.plan.id)],
        }
    }

    fn record_fault(&mut self, at: SimTime, host: u32, kind: FaultKind) {
        self.fault_events.push(FaultEvent {
            at,
            host: HostId(host),
            kind,
        });
    }

    fn apply_hang(&mut self, idx: usize, at: SimTime) {
        let due = HostRecord::next_inspection(at);
        let host = &mut self.hosts[idx];
        if !host.server.is_running() {
            return;
        }
        host.server.hang();
        host.record.record_failure(at);
        host.inspection_due = Some(due);
        let id = host.plan.id;
        self.watchdog
            .open(IncidentKind::HostHang, &format!("host-{id}"), at);
        self.record_fault(at, id, FaultKind::TransientSystemFailure);
    }

    fn handle_scripted(&mut self, at: SimTime, ev: ScriptedEvent) {
        match ev {
            ScriptedEvent::TentReconfig { config, .. } => self.tent.set_config(config),
            ScriptedEvent::HostHang { host } => {
                if let Some(idx) = self.hosts.iter().position(|h| h.plan.id == host) {
                    self.apply_hang(idx, at);
                }
            }
            ScriptedEvent::SensorColdFault { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.server.sensors.inject_cold_fault();
                }
                self.watchdog.open(
                    IncidentKind::SensorFault,
                    &format!("host-{host}/sensor"),
                    at,
                );
                self.record_fault(at, host, FaultKind::SensorChipErratic);
            }
            ScriptedEvent::SensorRedetect { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.server.sensors.attempt_redetect();
                }
            }
            ScriptedEvent::SensorWarmReboot { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.server.sensors.warm_reboot();
                }
                self.watchdog.resolve(
                    &format!("host-{host}/sensor"),
                    at,
                    "sensor chip warm-rebooted",
                );
            }
            ScriptedEvent::SwitchDown { switch } => {
                self.switch_up[switch] = false;
                self.watchdog
                    .open(IncidentKind::SwitchFailure, &format!("switch-{switch}"), at);
                self.record_fault(at, 101 + switch as u32, FaultKind::SwitchFailure);
            }
            ScriptedEvent::SwitchRestored { switch } => {
                self.switch_up[switch] = true;
                self.watchdog
                    .resolve(&format!("switch-{switch}"), at, "spare switch swapped in");
            }
            ScriptedEvent::FlipNextRun { host } => {
                if let Some(h) = self.hosts.iter_mut().find(|h| h.plan.id == host) {
                    h.pending_flips += 1;
                    h.server.memory.apply_bit_flip();
                }
                self.record_fault(at, host, FaultKind::MemoryBitFlip);
            }
        }
    }

    /// The repair-workflow escalation after repeat failures: reset fails in
    /// outside conditions, the host goes indoors, gets the Memtest86+
    /// treatment (a real pattern run over a DRAM model carrying the defects
    /// a repeatedly-hanging machine plausibly has), and stays out of the
    /// campaign — the paper's host #15 path.
    fn take_indoors(&mut self, idx: usize) {
        let host = &mut self.hosts[idx];
        host.record.replace(); // replaced-in-slot bookkeeping happens via #19
        host.withdrawn = true;
        host.server.power_off();
        // Indoor diagnosis: a machine that hung repeatedly gets a marginal
        // DIMM model — an intermittent cell whose period comes from the
        // host's own RNG stream — and the real tester runs over it.
        let mut dram = frostlab_hardware::memtest::DramArray::new(2048);
        let mut diag_rng = Rng::new(self.cfg.seed).derive(&format!("memtest/{}", host.plan.id));
        let word = diag_rng.below(2048) as usize;
        let bit = diag_rng.below(64) as u8;
        let period = 3 + diag_rng.below(40) as u32;
        dram.inject_intermittent(word, 1u64 << bit, period);
        let report = frostlab_hardware::memtest::run_memtest(&mut dram, 8, self.cfg.seed);
        host.memtest_failed = Some(!report.passed());
        let id = host.plan.id;
        self.collector.abandon(id);
    }

    /// Apply one chaos event (stochastic mode only).
    fn handle_chaos(&mut self, at: SimTime, ev: ChaosEvent) {
        match ev {
            ChaosEvent::LinkLossBurst { loss, duration } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.loss_until = at + duration;
                    chaos.loss_prob = loss;
                }
            }
            // Jitter delays frames but the 20-minute cadence dwarfs any
            // per-hop delay, so a jitter burst is invisible at this layer;
            // the frame-level effect lives in `frostlab_netsim::net`.
            ChaosEvent::JitterBurst { .. } => {}
            ChaosEvent::SwitchDeath { switch } => {
                if !self.switch_up[switch] {
                    return; // already dead
                }
                self.switch_up[switch] = false;
                self.watchdog
                    .open(IncidentKind::SwitchFailure, &format!("switch-{switch}"), at);
                self.record_fault(at, 101 + switch as u32, FaultKind::SwitchFailure);
                // The spare-swap repair workflow bounds the outage — while
                // spares last.
                if let Some(restore_at) = self.failover.take_spare(at) {
                    self.pending_switch_restores.push((restore_at, switch));
                }
            }
            ChaosEvent::HostHang { host } => {
                if let Some(idx) = self.hosts.iter().position(|h| h.plan.id == host) {
                    if self.hosts[idx].installed(at) {
                        self.apply_hang(idx, at);
                    }
                }
            }
            ChaosEvent::HostReboot { host } => {
                // Transient: the box comes straight back without operator
                // attention; only the in-flight run is lost.
                if let Some(h) = self
                    .hosts
                    .iter_mut()
                    .find(|h| h.plan.id == host && h.installed(at))
                {
                    if h.server.is_running() {
                        h.server.reset();
                        h.schedule.resume_at(at);
                        h.next_run_at = h.schedule.next_run();
                        self.record_fault(at, host, FaultKind::TransientSystemFailure);
                    }
                }
            }
            ChaosEvent::SensorFreeze { host } => {
                if let Some(h) = self
                    .hosts
                    .iter_mut()
                    .find(|h| h.plan.id == host && h.installed(at))
                {
                    h.server.sensors.inject_cold_fault();
                    self.watchdog.open(
                        IncidentKind::SensorFault,
                        &format!("host-{host}/sensor"),
                        at,
                    );
                    self.record_fault(at, host, FaultKind::SensorChipErratic);
                }
            }
        }
    }

    /// Does the chaos link-loss burst eat this collection attempt?
    fn chaos_drops_attempt(&mut self, t: SimTime) -> bool {
        match self.chaos.as_mut() {
            Some(chaos) if t < chaos.loss_until => chaos.draws.chance(chaos.loss_prob),
            _ => false,
        }
    }

    /// Run the campaign to completion.
    pub fn run(mut self) -> ExperimentResults {
        let policy = RepairPolicy::default();
        let mut t = self.cfg.start;
        let tick = self.cfg.tick;
        let dt_secs = tick.as_secs() as f64;
        let dt_hours = dt_secs / 3600.0;

        while t <= self.cfg.end {
            // 1. Weather + station.
            while let Some(obs) = self.station.poll(&mut self.wx, t) {
                self.outside.push(obs);
            }
            let weather = self.wx.sample_at(t);

            // 2. Enclosures, driven by the previous tick's power.
            let tent_power: f64 = self
                .hosts
                .iter()
                .filter(|h| h.plan.placement == Placement::Tent && h.installed(t))
                .map(|h| h.last_wall_w)
                .sum();
            let basement_power: f64 = self
                .hosts
                .iter()
                .filter(|h| h.plan.placement == Placement::Basement && h.installed(t))
                .map(|h| h.last_wall_w)
                .sum();
            self.tent.step(dt_secs, &weather, tent_power);
            self.basement.step(dt_secs, &weather, basement_power);
            let tent_state = self.tent.state();
            let basement_state = self.basement.state();

            // 3. Lascar — including the weekly Monday USB readout that
            // downloads the memory and drags the unit indoors for half an
            // hour (the outlier source the paper mentions).
            if t >= self.next_lascar_readout {
                self.lascar.begin_readout(t, SimDuration::minutes(30));
                self.next_lascar_readout = t + SimDuration::days(7);
            }
            self.lascar
                .poll(t, tent_state.air_temp_c, tent_state.air_rh_pct);

            // Truth series (10-min cadence).
            if t >= self.next_truth_sample {
                self.tent_temp_truth.push(t, tent_state.air_temp_c);
                self.tent_rh_truth.push(t, tent_state.air_rh_pct);
                self.basement_temp.push(t, basement_state.air_temp_c);
                self.next_truth_sample = t + SimDuration::minutes(10);
            }

            // 4. Scripted events due.
            while self.script_next < self.script.len() && self.script[self.script_next].0 <= t {
                let (at, ev) = self.script[self.script_next].clone();
                self.script_next += 1;
                self.handle_scripted(at, ev);
            }

            // 4b. Chaos events due, then any failover-scheduled switch
            // repairs that have come due.
            let chaos_due = match self.chaos.as_mut() {
                Some(chaos) => chaos.engine.pop_due(t),
                None => Vec::new(),
            };
            for (at, ev) in chaos_due {
                self.handle_chaos(at, ev);
            }
            while let Some(pos) = self
                .pending_switch_restores
                .iter()
                .position(|(due, _)| *due <= t)
            {
                let (at, switch) = self.pending_switch_restores.remove(pos);
                self.switch_up[switch] = true;
                self.watchdog
                    .resolve(&format!("switch-{switch}"), at, "spare switch swapped in");
            }

            // 5. Hosts.
            let fault_poll_due = t >= self.next_fault_poll;
            let stochastic = self.cfg.fault_mode == FaultMode::Stochastic;
            let mut hangs: Vec<(usize, SimTime)> = Vec::new();
            let mut withdrawals: Vec<usize> = Vec::new();
            for idx in 0..self.hosts.len() {
                // Split-borrow dance: take what we need from `self` first.
                let host = &mut self.hosts[idx];
                if !host.installed(t) {
                    continue;
                }
                let encl = match host.plan.placement {
                    Placement::Tent => tent_state,
                    Placement::Basement => basement_state,
                };
                let util = if host.server.is_running() && t < host.busy_until {
                    1.0
                } else {
                    0.0
                };
                let cpu_w = host.server.spec.cpu_power_w(util);
                let dc_w = host.server.spec.dc_power_w(util);
                host.thermal.step(dt_secs, encl.air_temp_c, cpu_w, dc_w);
                host.cpu_temp_c = host.thermal.cpu_temp_c();
                host.last_wall_w = host.server.wall_power_w(util);
                host.server.tick(dt_hours, host.thermal.hdd_temp_c());
                let sensor_reading = host.server.sensors.read_cpu_temp(host.cpu_temp_c);

                // Sensor log.
                if t >= host.next_sensor_log {
                    let line = match sensor_reading {
                        Some(v) => {
                            format!("{} cpu={:.1} rh={:.0}\n", t.datetime(), v, encl.air_rh_pct)
                        }
                        None => format!("{} cpu=n/a rh={:.0}\n", t.datetime(), encl.air_rh_pct),
                    };
                    host.store.append(&daily_log("sensors", t), line.as_bytes());
                    host.next_sensor_log = t + self.cfg.sensor_log_interval;
                }

                // Stochastic faults.
                if stochastic && fault_poll_due && host.server.is_running() {
                    let poll_hours = self.cfg.fault_poll_interval.as_secs() as f64 / 3600.0;
                    let page_ops = std::mem::take(&mut host.page_ops_since_poll);
                    let outcome =
                        host.faults
                            .poll(poll_hours, host.cpu_temp_c, encl.air_rh_pct, page_ops);
                    for kind in &outcome.faults {
                        match kind {
                            FaultKind::TransientSystemFailure => hangs.push((idx, t)),
                            FaultKind::SensorChipErratic => {
                                host.server.sensors.inject_cold_fault();
                                self.fault_events.push(FaultEvent {
                                    at: t,
                                    host: HostId(host.plan.id),
                                    kind: *kind,
                                });
                            }
                            FaultKind::DiskPendingSector => {
                                host.server
                                    .storage
                                    .for_each_disk_mut(|d| d.inject_pending_sector(0));
                                self.fault_events.push(FaultEvent {
                                    at: t,
                                    host: HostId(host.plan.id),
                                    kind: *kind,
                                });
                            }
                            FaultKind::PsuFailure => {
                                host.server.psu.fail();
                                hangs.push((idx, t));
                            }
                            _ => {}
                        }
                    }
                    if outcome.memory_flips > 0 {
                        for _ in 0..outcome.memory_flips {
                            if host.server.memory.apply_bit_flip()
                                == frostlab_hardware::memory::FlipOutcome::SilentCorruption
                            {
                                host.pending_flips += 1;
                            }
                            self.fault_events.push(FaultEvent {
                                at: t,
                                host: HostId(host.plan.id),
                                kind: FaultKind::MemoryBitFlip,
                            });
                        }
                    }
                }

                // Workload.
                if host.server.is_running() && t >= host.next_run_at {
                    let flips = std::mem::take(&mut host.pending_flips);
                    let outcome = host.job.run(flips);
                    host.busy_until = t + SimDuration::secs(outcome.duration_secs as i64);
                    host.page_ops_since_poll += outcome.page_ops;
                    host.server.memory.record_page_ops(outcome.page_ops);
                    self.workload.record_run(host.plan.id, outcome.page_ops);
                    let line = format!("{} {} run\n", t.datetime(), outcome.hash);
                    host.store.append(&daily_log("md5sums", t), line.as_bytes());
                    if !outcome.hash_ok {
                        self.workload
                            .record_hash_error(host.plan.id, host.plan.placement, t);
                        if let Some(bytes) = outcome.stored_archive {
                            self.stored_archives.push(StoredArchive {
                                host: host.plan.id,
                                at: t,
                                bytes,
                            });
                        }
                    }
                    host.schedule.resume_at(t);
                    host.next_run_at = host.schedule.next_run();
                }

                // Repair visit.
                if let Some(due) = host.inspection_due {
                    if t >= due {
                        host.inspection_due = None;
                        match host.record.inspect(&policy) {
                            RepairAction::ResetInPlace => {
                                host.server.reset();
                                host.schedule.resume_at(t);
                                host.next_run_at = host.schedule.next_run();
                                self.watchdog.resolve(
                                    &format!("host-{}", host.plan.id),
                                    t,
                                    "reset in place",
                                );
                            }
                            RepairAction::TakeIndoors => withdrawals.push(idx),
                        }
                    }
                }
            }
            for (idx, at) in hangs {
                self.apply_hang(idx, at);
            }
            for idx in withdrawals {
                let id = self.hosts[idx].plan.id;
                self.take_indoors(idx);
                self.watchdog
                    .resolve(&format!("host-{id}"), t, "taken indoors (memtest)");
            }
            if fault_poll_due {
                self.next_fault_poll = t + self.cfg.fault_poll_interval;
            }

            // 6. Collection round, plus the watchdog's staleness sweep.
            if t >= self.next_collection {
                for idx in 0..self.hosts.len() {
                    if !self.hosts[idx].installed(t) {
                        continue;
                    }
                    let reachable =
                        self.reachable(&self.hosts[idx]) && !self.chaos_drops_attempt(t);
                    let host = &mut self.hosts[idx];
                    self.collector.collect(&mut host.store, reachable, t);
                    // Staleness check: alarm only when nothing else (an open
                    // switch or host incident) already explains the gap.
                    let id = host.plan.id;
                    let explained = self.watchdog.is_open(&format!("host-{id}"))
                        || (host.plan.placement == Placement::Tent
                            && self
                                .watchdog
                                .is_open(&format!("switch-{}", switch_assignment(id))));
                    let staleness = self.collector.staleness(id, t);
                    self.watchdog.observe_staleness(id, staleness, explained, t);
                }
                self.next_collection = t + self.cfg.collection_interval;
            }

            // 6b. Catch-up retries with backoff for hosts whose mirror is
            // stale. A scheduled failure at this same tick has already
            // pushed the host's next attempt into the future, so a host is
            // never tried twice in one tick.
            for id in self.collector.due_retries(t) {
                let Some(idx) = self.hosts.iter().position(|h| h.plan.id == id) else {
                    continue;
                };
                if !self.hosts[idx].installed(t) {
                    continue;
                }
                let reachable = self.reachable(&self.hosts[idx]) && !self.chaos_drops_attempt(t);
                let host = &mut self.hosts[idx];
                self.collector.retry_collect(&mut host.store, reachable, t);
            }

            // 7. Power metering (tent group feed).
            self.energy_true_wh += tent_power * dt_hours;
            self.meter.integrate(tent_power, dt_hours);

            t += tick;
        }

        self.finish()
    }

    fn finish(self) -> ExperimentResults {
        // Clean the Lascar channels the way the authors did.
        let filter = SpikeFilter::default();
        let (lascar_temp, removed_t) = filter.clean(self.lascar.temperature());
        let (lascar_rh, removed_rh) = filter.clean(self.lascar.humidity());

        let mut hosts = BTreeMap::new();
        for mut h in self.hosts {
            let disposition = h.record.disposition();
            hosts.insert(
                h.plan.id,
                HostSummary {
                    id: h.plan.id,
                    vendor: h.plan.vendor,
                    placement: h.plan.placement,
                    defective: h.plan.defective,
                    installed_at: h.plan.install_at,
                    failures: h.record.failures().to_vec(),
                    resets: h.record.reset_count(),
                    disposition: if h.withdrawn {
                        Disposition::TakenIndoors
                    } else {
                        disposition
                    },
                    min_cpu_c: h.server.sensors.min_seen_c(),
                    sensor_erratic_reads: h.server.sensors.erratic_count(),
                    page_ops: h.server.memory.page_ops(),
                    silent_corruptions: h.server.memory.silent_corruptions(),
                    disks_pass_long_test: h.server.storage.all_long_tests_pass(),
                    memtest_failed: h.memtest_failed,
                },
            );
        }

        ExperimentResults {
            seed: self.cfg.seed,
            window: (self.cfg.start, self.cfg.end),
            outside: self.outside,
            tent_temp_truth: self.tent_temp_truth,
            tent_rh_truth: self.tent_rh_truth,
            basement_temp: self.basement_temp,
            lascar_temp_raw: self.lascar.temperature().clone(),
            lascar_rh_raw: self.lascar.humidity().clone(),
            lascar_temp,
            lascar_rh,
            lascar_outliers_removed: removed_t + removed_rh,
            workload: self.workload,
            fault_events: self.fault_events,
            hosts,
            collection: self.collector.history().to_vec(),
            collection_gaps: self.collector.gaps().to_vec(),
            incidents: self.watchdog.into_incidents(),
            stored_archives: self.stored_archives,
            tent_energy_metered_kwh: self.meter.energy_kwh(),
            tent_energy_true_kwh: self.energy_true_wh / 1000.0,
        }
    }
}

/// Daily-rotated log-file name, e.g. `md5sums-0307.log` — the hosts rotate
/// their logs at midnight so each collection round only has to rsync the
/// current day's small files.
fn daily_log(prefix: &str, t: SimTime) -> String {
    let d = t.date();
    format!("{prefix}-{:02}{:02}.log", d.month, d.day)
}

/// The next Monday at 10:00 at or after `t` (staff-visit cadence).
fn next_monday_morning(t: SimTime) -> SimTime {
    let mut date = t.date();
    loop {
        if date.weekday_index() == 0 {
            let candidate = date.to_sim_time() + SimDuration::hours(10);
            if candidate >= t {
                return candidate;
            }
        }
        date = date.succ();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_runs_and_accumulates() {
        let results = Experiment::new(ExperimentConfig::short(1, 3)).run();
        // 3 days, first three tent hosts + twins installed at start+... —
        // nobody is installed before Feb 19 in the paper fleet, so the
        // short window Feb 12–15 has zero runs but full weather capture.
        assert!(
            results.outside.len() > 400,
            "outside obs {}",
            results.outside.len()
        );
        assert!(results.tent_temp_truth.len() > 400);
        assert_eq!(results.workload.total_runs(), 0);
    }

    #[test]
    fn ten_day_campaign_produces_runs_and_power() {
        let results = Experiment::new(ExperimentConfig::short(2, 10)).run();
        // Hosts 1,2,3 (+ twins) install Feb 19 11:00; window ends Feb 22.
        let runs = results.workload.total_runs();
        // 6 machines × ~3 days × 144 runs/day ≈ 2400.
        assert!((1500..3500).contains(&runs), "runs {runs}");
        assert!(
            results.tent_energy_true_kwh > 1.0,
            "energy {}",
            results.tent_energy_true_kwh
        );
        let mean_w = results.tent_mean_power_w();
        assert!(mean_w > 0.0 && mean_w < 2000.0, "mean tent power {mean_w}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Experiment::new(ExperimentConfig::short(7, 9)).run();
        let b = Experiment::new(ExperimentConfig::short(7, 9)).run();
        assert_eq!(a.workload.total_runs(), b.workload.total_runs());
        assert_eq!(a.tent_temp_truth, b.tent_temp_truth);
        assert_eq!(a.fault_events.len(), b.fault_events.len());
        assert_eq!(a.tent_energy_true_kwh, b.tent_energy_true_kwh);
    }

    #[test]
    fn summary_json_roundtrips() {
        let results = Experiment::new(ExperimentConfig::short(11, 8)).run();
        let summary = results.summary();
        let json = summary.to_json().expect("plain data serializes");
        assert!(json.contains("\"total_runs\""));
        let back: crate::results::CampaignSummary =
            serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(back, summary);
        assert_eq!(back.seed, 11);
        assert!(back.collection_availability > 0.0);
    }

    #[test]
    fn watchdog_logs_the_switch_outage_with_recovery() {
        // 20 days from Feb 12 cover both §4.2.1 switch deaths (Feb 26 and
        // Feb 28) and the Mar 1 restoration.
        let results = Experiment::new(ExperimentConfig::short(5, 20)).run();
        let switch_incidents: Vec<_> = results
            .incidents
            .iter()
            .filter(|i| i.kind == crate::watchdog::IncidentKind::SwitchFailure)
            .collect();
        assert_eq!(switch_incidents.len(), 2, "{:?}", results.incidents);
        let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
        for i in &switch_incidents {
            assert_eq!(i.resolved, Some(restored), "{i:?}");
            assert_eq!(i.resolution.as_deref(), Some("spare switch swapped in"));
        }
        assert_eq!(
            switch_incidents[0].started,
            SimTime::from_ymd_hms(2010, 2, 26, 9, 0, 0)
        );
        // Stale tent mirrors during the outage are explained by the open
        // switch incidents — no spurious staleness alarms.
        assert!(
            !results
                .incidents
                .iter()
                .any(|i| i.kind == crate::watchdog::IncidentKind::CollectionStale),
            "{:?}",
            results.incidents
        );
        // The log round-trips as machine-readable JSON.
        let json = results.incident_log_json().expect("plain data");
        assert!(json.contains("switch-0") && json.contains("switch-1"));
    }

    #[test]
    fn retries_heal_the_switch_outage_gap() {
        let results = Experiment::new(ExperimentConfig::short(5, 20)).run();
        // Retry attempts were made during the outage…
        let retry_attempts = results
            .collection
            .iter()
            .filter(|r| r.kind == frostlab_netsim::collector::AttemptKind::Retry)
            .count();
        assert!(retry_attempts > 0, "no catch-up retries recorded");
        // …and every tent host's gap healed shortly after the Mar 1 repair:
        // the backoff cap is 20 minutes, so recovery lands within ~25 min
        // of the restoration instead of waiting for the 2 h scheduled round.
        let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
        assert!(!results.collection_gaps.is_empty());
        for gap in &results.collection_gaps {
            assert!(gap.failed_attempts > 0);
            assert!(gap.end > restored, "{gap:?}");
            assert!(
                gap.end - restored < SimDuration::minutes(30),
                "recovery should ride a capped retry, not the next scheduled round: {gap:?}"
            );
        }
        // Availability still measures the scheduled cadence only.
        let avail = results.collection_availability();
        assert!(avail < 1.0 && avail > 0.5, "availability {avail}");
    }

    #[test]
    fn chaos_campaign_runs_deterministically() {
        let cfg = || ExperimentConfig {
            chaos: Some(frostlab_faults::chaos::ChaosConfig::paper_like()),
            fault_mode: FaultMode::Stochastic,
            ..ExperimentConfig::short(13, 20)
        };
        let a = Experiment::new(cfg()).run();
        let b = Experiment::new(cfg()).run();
        assert_eq!(a.workload.total_runs(), b.workload.total_runs());
        assert_eq!(a.collection.len(), b.collection.len());
        assert_eq!(a.incidents, b.incidents);
        // 20 hostile days should produce injected events beyond the two
        // scripted switch deaths.
        assert!(
            a.fault_events.len() > 2,
            "chaos injected nothing: {:?}",
            a.fault_events
        );
    }

    #[test]
    fn chaos_off_stochastic_matches_plain_stochastic() {
        // `chaos: None` must be bit-identical to a build that never had
        // chaos at all — same seed, same stochastic draws, same outputs.
        let plain = Experiment::new(ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            ..ExperimentConfig::short(17, 15)
        })
        .run();
        let with_none = Experiment::new(ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            chaos: None,
            ..ExperimentConfig::short(17, 15)
        })
        .run();
        assert_eq!(plain.workload.total_runs(), with_none.workload.total_runs());
        assert_eq!(plain.tent_temp_truth, with_none.tent_temp_truth);
        assert_eq!(plain.collection.len(), with_none.collection.len());
        assert_eq!(plain.tent_energy_true_kwh, with_none.tent_energy_true_kwh);
    }

    #[test]
    fn tent_is_warmer_than_outside_and_cooler_than_basement() {
        let results = Experiment::new(ExperimentConfig::short(3, 12)).run();
        let out_mean: f64 =
            results.outside.iter().map(|o| o.temp_c).sum::<f64>() / results.outside.len() as f64;
        // Compare over the loaded window (after first installs).
        let loaded_from = SimTime::from_date(2010, 2, 20);
        let tent_mean = results
            .tent_temp_truth
            .window(loaded_from, results.window.1)
            .mean()
            .unwrap();
        let basement_mean = results.basement_temp.mean().unwrap();
        assert!(
            tent_mean > out_mean,
            "tent {tent_mean} vs outside {out_mean}"
        );
        assert!(
            basement_mean > tent_mean,
            "basement {basement_mean} vs tent {tent_mean}"
        );
        assert!((18.0..24.0).contains(&basement_mean));
    }
}
