//! The classic campaign entry point, now a thin shim.
//!
//! The tick-driven orchestrator that used to live here as one monolithic
//! `run()` is decomposed into the phase-pipeline kernel:
//!
//! * [`crate::context::CampaignCtx`] — the shared campaign state;
//! * [`crate::phases`] — the seven per-tick substrate phases;
//! * [`crate::scenario::ScenarioBuilder`] — composes phases into runnable
//!   scenarios.
//!
//! [`Experiment`] remains as the stable two-call API (`new` + `run`) for
//! the common case — the stock paper pipeline with nothing customised —
//! and is exactly equivalent to
//! `ScenarioBuilder::paper(cfg).build().run()`. The golden-hash tests in
//! `tests/golden_hash.rs` pin the pipeline byte-identical to the
//! pre-refactor monolith.

use crate::config::ExperimentConfig;
use crate::results::ExperimentResults;
use crate::scenario::{Scenario, ScenarioBuilder};

/// The campaign driver. Construct with a config, then [`Experiment::run`].
///
/// Equivalent to the stock [`ScenarioBuilder::paper`] pipeline; use the
/// builder directly to customise phases.
pub struct Experiment {
    scenario: Scenario,
}

impl Experiment {
    /// Build the campaign: fleet, instruments, network, scripts.
    pub fn new(cfg: ExperimentConfig) -> Experiment {
        Experiment {
            scenario: ScenarioBuilder::paper(cfg).build(),
        }
    }

    /// Run the campaign to completion.
    pub fn run(self) -> ExperimentResults {
        self.scenario.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::{SimDuration, SimTime};

    use crate::config::FaultMode;

    #[test]
    fn short_campaign_runs_and_accumulates() {
        let results = Experiment::new(ExperimentConfig::short(1, 3)).run();
        // 3 days, first three tent hosts + twins installed at start+... —
        // nobody is installed before Feb 19 in the paper fleet, so the
        // short window Feb 12–15 has zero runs but full weather capture.
        assert!(
            results.outside.len() > 400,
            "outside obs {}",
            results.outside.len()
        );
        assert!(results.tent_temp_truth.len() > 400);
        assert_eq!(results.workload.total_runs(), 0);
    }

    #[test]
    fn ten_day_campaign_produces_runs_and_power() {
        let results = Experiment::new(ExperimentConfig::short(2, 10)).run();
        // Hosts 1,2,3 (+ twins) install Feb 19 11:00; window ends Feb 22.
        let runs = results.workload.total_runs();
        // 6 machines × ~3 days × 144 runs/day ≈ 2400.
        assert!((1500..3500).contains(&runs), "runs {runs}");
        assert!(
            results.tent_energy_true_kwh > 1.0,
            "energy {}",
            results.tent_energy_true_kwh
        );
        let mean_w = results.tent_mean_power_w();
        assert!(mean_w > 0.0 && mean_w < 2000.0, "mean tent power {mean_w}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Experiment::new(ExperimentConfig::short(7, 9)).run();
        let b = Experiment::new(ExperimentConfig::short(7, 9)).run();
        assert_eq!(a.workload.total_runs(), b.workload.total_runs());
        assert_eq!(a.tent_temp_truth, b.tent_temp_truth);
        assert_eq!(a.fault_events.len(), b.fault_events.len());
        assert_eq!(a.tent_energy_true_kwh, b.tent_energy_true_kwh);
    }

    #[test]
    fn summary_json_roundtrips() {
        let results = Experiment::new(ExperimentConfig::short(11, 8)).run();
        let summary = results.summary();
        let json = summary.to_json().expect("plain data serializes");
        assert!(json.contains("\"total_runs\""));
        let back: crate::results::CampaignSummary =
            serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(back, summary);
        assert_eq!(back.seed, 11);
        assert!(back.collection_availability > 0.0);
    }

    #[test]
    fn watchdog_logs_the_switch_outage_with_recovery() -> Result<(), serde_json::Error> {
        // 20 days from Feb 12 cover both §4.2.1 switch deaths (Feb 26 and
        // Feb 28) and the Mar 1 restoration.
        let results = Experiment::new(ExperimentConfig::short(5, 20)).run();
        let switch_incidents: Vec<_> = results
            .incidents
            .iter()
            .filter(|i| i.kind == crate::watchdog::IncidentKind::SwitchFailure)
            .collect();
        assert_eq!(switch_incidents.len(), 2, "{:?}", results.incidents);
        let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
        for i in &switch_incidents {
            assert_eq!(i.resolved, Some(restored), "{i:?}");
            assert_eq!(i.resolution.as_deref(), Some("spare switch swapped in"));
        }
        assert_eq!(
            switch_incidents[0].started,
            SimTime::from_ymd_hms(2010, 2, 26, 9, 0, 0)
        );
        // Stale tent mirrors during the outage are explained by the open
        // switch incidents — no spurious staleness alarms.
        assert!(
            !results
                .incidents
                .iter()
                .any(|i| i.kind == crate::watchdog::IncidentKind::CollectionStale),
            "{:?}",
            results.incidents
        );
        // The log round-trips as machine-readable JSON; a serializer error
        // propagates as a test failure instead of a panic.
        let json = results.incident_log_json()?;
        assert!(json.contains("switch-0") && json.contains("switch-1"));
        Ok(())
    }

    #[test]
    fn retries_heal_the_switch_outage_gap() {
        let results = Experiment::new(ExperimentConfig::short(5, 20)).run();
        // Retry attempts were made during the outage…
        let retry_attempts = results
            .collection
            .iter()
            .filter(|r| r.kind == frostlab_netsim::collector::AttemptKind::Retry)
            .count();
        assert!(retry_attempts > 0, "no catch-up retries recorded");
        // …and every tent host's gap healed shortly after the Mar 1 repair:
        // the backoff cap is 20 minutes, so recovery lands within ~25 min
        // of the restoration instead of waiting for the 2 h scheduled round.
        let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
        assert!(!results.collection_gaps.is_empty());
        for gap in &results.collection_gaps {
            assert!(gap.failed_attempts > 0);
            assert!(gap.end > restored, "{gap:?}");
            assert!(
                gap.end - restored < SimDuration::minutes(30),
                "recovery should ride a capped retry, not the next scheduled round: {gap:?}"
            );
        }
        // Availability still measures the scheduled cadence only.
        let avail = results.collection_availability();
        assert!(avail < 1.0 && avail > 0.5, "availability {avail}");
    }

    #[test]
    fn chaos_campaign_runs_deterministically() {
        let cfg = || ExperimentConfig {
            chaos: Some(frostlab_faults::chaos::ChaosConfig::paper_like()),
            fault_mode: FaultMode::Stochastic,
            ..ExperimentConfig::short(13, 20)
        };
        let a = Experiment::new(cfg()).run();
        let b = Experiment::new(cfg()).run();
        assert_eq!(a.workload.total_runs(), b.workload.total_runs());
        assert_eq!(a.collection.len(), b.collection.len());
        assert_eq!(a.incidents, b.incidents);
        // 20 hostile days should produce injected events beyond the two
        // scripted switch deaths.
        assert!(
            a.fault_events.len() > 2,
            "chaos injected nothing: {:?}",
            a.fault_events
        );
    }

    #[test]
    fn chaos_off_stochastic_matches_plain_stochastic() {
        // `chaos: None` must be bit-identical to a build that never had
        // chaos at all — same seed, same stochastic draws, same outputs.
        let plain = Experiment::new(ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            ..ExperimentConfig::short(17, 15)
        })
        .run();
        let with_none = Experiment::new(ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            chaos: None,
            ..ExperimentConfig::short(17, 15)
        })
        .run();
        assert_eq!(plain.workload.total_runs(), with_none.workload.total_runs());
        assert_eq!(plain.tent_temp_truth, with_none.tent_temp_truth);
        assert_eq!(plain.collection.len(), with_none.collection.len());
        assert_eq!(plain.tent_energy_true_kwh, with_none.tent_energy_true_kwh);
    }

    #[test]
    fn tent_is_warmer_than_outside_and_cooler_than_basement() {
        let results = Experiment::new(ExperimentConfig::short(3, 12)).run();
        let out_mean: f64 =
            results.outside.iter().map(|o| o.temp_c).sum::<f64>() / results.outside.len() as f64;
        // Compare over the loaded window (after first installs).
        let loaded_from = SimTime::from_date(2010, 2, 20);
        let tent_mean = results
            .tent_temp_truth
            .window(loaded_from, results.window.1)
            .mean()
            .unwrap();
        let basement_mean = results.basement_temp.mean().unwrap();
        assert!(
            tent_mean > out_mean,
            "tent {tent_mean} vs outside {out_mean}"
        );
        assert!(
            basement_mean > tent_mean,
            "basement {basement_mean} vs tent {tent_mean}"
        );
        assert!((18.0..24.0).contains(&basement_mean));
    }
}
