//! Figure reproductions F1–F4.
//!
//! Each function returns printable/plottable data; the `frostlab-bench`
//! binaries print it (CSV for the series figures, text for the rest).

use frostlab_simkern::time::SimTime;
use frostlab_telemetry::export::to_csv;
use frostlab_telemetry::series::TimeSeries;
use frostlab_thermal::tent::TentParams;

use crate::fleet::paper_fleet;
use crate::results::ExperimentResults;
use crate::scripted::tent_mod_marks;

/// F1 — the tent schematic, as parameterized ASCII plus the thermal
/// parameters the model actually uses (the paper's Fig. 1 is a drawing; the
/// reproducible content is the geometry/parameters).
pub fn fig1_tent_schematic(params: &TentParams) -> String {
    format!(
        r#"            Fig. 1 — tent shielding the computer hardware
                      (parameterized reproduction)

                    ~ reflective foil cover (R): absorptance {:.2} -> {:.2}
              ______________________
             /                      \        double fabric (I removes inner):
            /   inner tent (I)       \       UA {:.0} -> {:.0} W/K
           |   .----------------.     |
           |   |  9 machines    |     |  <- front door half-open (+{:.3} m^2)
           |   |  ~1 kW         |     |
           |   '----------------'     |
            \  bottom tarpaulin (B)  /       tarpaulin removed: +{:.3} m^2
             \______________________/        desk fan (F): +{:.3} m^3/s
           ===== elevated terrace floor =====   (cool air path through floor)

  solar area {:.1} m^2 | closed leakage {:.3} m^2 | wind coupling {:.2}
"#,
        params.absorptance_bare,
        params.absorptance_foil,
        params.ua_fabric_double_w_k,
        params.ua_fabric_single_w_k,
        params.vent_area_door_m2,
        params.vent_area_tarpaulin_m2,
        params.fan_flow_m3_s,
        params.solar_area_m2,
        params.vent_area_closed_m2,
        params.wind_coupling,
    )
}

/// One row of the Fig. 2 timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Host number.
    pub id: u32,
    /// Install time.
    pub at: SimTime,
    /// Row annotation.
    pub note: &'static str,
}

/// F2 — the install timeline (tent hosts, as in the paper's figure).
pub fn fig2_timeline() -> Vec<TimelineRow> {
    let mut rows: Vec<TimelineRow> = paper_fleet()
        .into_iter()
        .filter(|h| h.placement == frostlab_workload::stats::Placement::Tent)
        .map(|h| TimelineRow {
            id: h.id,
            at: h.install_at,
            note: if h.is_replacement {
                "replacement of machine #15"
            } else {
                ""
            },
        })
        .collect();
    rows.sort_by_key(|r| (r.at, r.id));
    rows
}

/// Render F2 as a text gantt: one row per host, '#' from install to the
/// campaign end.
pub fn fig2_render(end: SimTime) -> String {
    let rows = fig2_timeline();
    let start = SimTime::from_date(2010, 2, 12);
    let days_total = (end - start).as_days_f64().ceil() as usize;
    let mut out = String::from("Fig. 2 — dates when servers were installed (tent group)\n\n");
    for r in &rows {
        let offset = (r.at - start).as_days_f64().max(0.0) as usize;
        let mut line = format!("  #{:02} |", r.id);
        for d in 0..days_total.min(120) {
            line.push(if d >= offset { '#' } else { ' ' });
        }
        line.push_str(&format!("| {} {}", r.at.date().short_label(), r.note));
        out.push(' ');
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("       ^Feb 12 (prototype)   ^Feb 19 start of testing    … one column per day\n");
    out
}

/// F3/F4 payload: the aligned series plus the R/I/B/F marks.
#[derive(Debug, Clone)]
pub struct SeriesFigure {
    /// CSV body (datetime, days, outside, inside).
    pub csv: String,
    /// Letter marks: `(letter, time)`.
    pub marks: Vec<(char, SimTime)>,
    /// Gaps in the inside channel (the Lascar's late arrival).
    pub inside_gaps: Vec<(SimTime, SimTime)>,
    /// Summary line for quick inspection.
    pub summary: String,
}

fn outside_series(
    results: &ExperimentResults,
    f: impl Fn(&frostlab_climate::station::WeatherObservation) -> f64,
) -> TimeSeries {
    TimeSeries::from_points(results.outside.iter().map(|o| (o.t, f(o))))
}

/// F3 — temperatures outside and inside the tent, with event marks.
pub fn fig3_temperature(results: &ExperimentResults) -> SeriesFigure {
    let outside = outside_series(results, |o| o.temp_c);
    let inside = &results.lascar_temp;
    let csv = to_csv(&[("outside_c", &outside), ("inside_c", inside)]);
    let gap_probe = frostlab_simkern::time::SimDuration::hours(2);
    // How closely, and how late, does the tent follow the sky? Align the
    // 10-min outside observations with the tent truth channel (same
    // cadence) over the common window and find the best lag within 3 h.
    let tracking = {
        use std::collections::BTreeMap;
        let inside_map: BTreeMap<_, _> = results.tent_temp_truth.points().iter().copied().collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &(t, v) in outside.points() {
            if let Some(&iv) = inside_map.get(&t) {
                xs.push(v);
                ys.push(iv);
            }
        }
        frostlab_analysis::correlation::best_lag(&xs, &ys, 18)
    };
    let tracking_str = match tracking {
        Some((lag, r)) => format!(
            " | tent tracks outside with r = {:.2} at a {} min lag",
            r,
            lag * 10
        ),
        None => String::new(),
    };
    let summary = format!(
        "outside: min {:.1} mean {:.1} max {:.1} °C over {} obs | inside (Lascar, cleaned): min {:.1} mean {:.1} max {:.1} °C over {} samples, {} outliers removed{tracking_str}",
        outside.min().unwrap_or(f64::NAN),
        outside.mean().unwrap_or(f64::NAN),
        outside.max().unwrap_or(f64::NAN),
        outside.len(),
        inside.min().unwrap_or(f64::NAN),
        inside.mean().unwrap_or(f64::NAN),
        inside.max().unwrap_or(f64::NAN),
        inside.len(),
        results.lascar_outliers_removed,
    );
    SeriesFigure {
        csv,
        marks: tent_mod_marks(),
        inside_gaps: inside.gaps(gap_probe),
        summary,
    }
}

/// Short-term roughness: mean absolute change per hour of elapsed time —
/// the "how intensely does it vary" measure behind the paper's §4.1 claim
/// that the tent retained *more stable* humidities than outside air.
fn roughness_per_hour(series: &TimeSeries) -> f64 {
    let pts = series.points();
    if pts.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut hours = 0.0;
    for w in pts.windows(2) {
        let dt_h = (w[1].0 - w[0].0).as_hours_f64();
        // Skip across gaps (logger readouts, late start).
        if dt_h <= 1.0 {
            total += (w[1].1 - w[0].1).abs();
            hours += dt_h;
        }
    }
    if hours > 0.0 {
        total / hours
    } else {
        0.0
    }
}

/// F4 — relative humidities inside and outside the tent.
pub fn fig4_humidity(results: &ExperimentResults) -> SeriesFigure {
    let outside = outside_series(results, |o| o.rh_pct);
    let inside = &results.lascar_rh;
    let csv = to_csv(&[("outside_rh", &outside), ("inside_rh", inside)]);
    let gap_probe = frostlab_simkern::time::SimDuration::hours(2);
    // Compare stability over the window where both channels exist.
    let common_from = inside.start().unwrap_or(results.window.0);
    let outside_common = outside.window(common_from, results.window.1);
    let summary = format!(
        "outside RH: mean {:.0} % (sd {:.1}, roughness {:.1} pp/h) | inside RH: mean {:.0} % (sd {:.1}, roughness {:.1} pp/h) — 'more stable' = lower roughness (short-term variation), though the inside mean drifts as the airflow mods land",
        outside_common.mean().unwrap_or(f64::NAN),
        outside_common.std_dev().unwrap_or(f64::NAN),
        roughness_per_hour(&outside_common),
        inside.mean().unwrap_or(f64::NAN),
        inside.std_dev().unwrap_or(f64::NAN),
        roughness_per_hour(inside),
    );
    SeriesFigure {
        csv,
        marks: tent_mod_marks(),
        inside_gaps: inside.gaps(gap_probe),
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::experiment::Experiment;

    #[test]
    fn fig1_mentions_all_four_interventions() {
        let s = fig1_tent_schematic(&TentParams::default());
        for mark in ["(R)", "(I)", "(B)", "(F)"] {
            assert!(s.contains(mark), "missing {mark}");
        }
    }

    #[test]
    fn fig2_rows_ordered_and_complete() {
        let rows = fig2_timeline();
        assert_eq!(rows.len(), 10, "nine tent hosts + replacement");
        for w in rows.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(rows.last().unwrap().id, 19);
        assert!(rows.last().unwrap().note.contains("replacement"));
        let render = fig2_render(SimTime::from_date(2010, 5, 13));
        assert!(render.contains("#15"));
        assert!(render.contains("Feb 19"));
    }

    #[test]
    fn fig3_and_fig4_from_short_campaign() {
        let results = Experiment::new(ExperimentConfig::short(4, 8)).run();
        let f3 = fig3_temperature(&results);
        assert!(
            f3.csv.lines().count() > 500,
            "csv rows {}",
            f3.csv.lines().count()
        );
        assert_eq!(f3.marks.len(), 4);
        assert!(f3.csv.starts_with("datetime,days,outside_c,inside_c"));
        let f4 = fig4_humidity(&results);
        assert!(f4.csv.contains("outside_rh"));
        assert!(!f4.summary.is_empty());
    }
}
