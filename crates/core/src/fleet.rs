//! The fleet: 19 machines, pairwise placement, and the Fig. 2 timeline.
//!
//! §3.4: ten hosts from vendor A, four from vendor B (the known-unreliable
//! SFF series) and four from vendor C (2U servers) — eighteen machines
//! installed pairwise, nine in the tent and nine in the basement, plus a
//! nineteenth that replaced host #15 after its second failure.
//!
//! The paper's Fig. 2 shows tent-host install dates between Feb 19 and
//! Mar 26 (with "the last of the hosts … installed March 13th" per §4 and
//! the #15 replacement as the final event). The exact per-host dates are
//! only partially legible from the figure; the timeline below follows its
//! tick marks (Feb 19, Feb 24/25, Mar 05, Mar 10, Mar 17, Mar 26) and the
//! constraints in the text (e.g. #15 was running in the tent before its
//! Mar 7 failure).

use frostlab_faults::repair::HostRecord;
use frostlab_hardware::server::Vendor;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_workload::stats::Placement;

/// One machine's static plan.
#[derive(Debug, Clone)]
pub struct HostPlan {
    /// Paper host number (tent hosts use the Fig. 2 numbers).
    pub id: u32,
    /// Vendor.
    pub vendor: Vendor,
    /// From the known-defective vendor-B series?
    pub defective: bool,
    /// Tent or basement.
    pub placement: Placement,
    /// Install (power-on) time.
    pub install_at: SimTime,
    /// The identical twin in the other group (pairwise installation).
    pub pair: u32,
    /// True for machine #19, the spare that replaced #15.
    pub is_replacement: bool,
    /// Enclosure zone index within the placement kind. The paper's fleet
    /// shares one tent and one basement room, so every host is zone 0;
    /// generated fleets spread over many tents/rooms so the thermal model
    /// stays physical at scale.
    pub zone: u32,
}

/// The paper's fleet. Tent hosts carry the Fig. 2 numbers
/// (01 02 03 06 10 11 14 15 18); their basement twins take the remaining
/// numbers; #19 is the replacement spare (installed only in scripted runs
/// after #15 is withdrawn).
pub fn paper_fleet() -> Vec<HostPlan> {
    let d = |y: i32, m: u32, day: u32| {
        SimTime::from_date(y, m, day) + frostlab_simkern::time::SimDuration::hours(11)
    };
    let mut fleet = Vec::new();
    // (tent_id, twin_id, vendor, defective, install_date)
    let rows: [(u32, u32, Vendor, bool, SimTime); 9] = [
        (1, 4, Vendor::A, false, d(2010, 2, 19)),
        (2, 5, Vendor::A, false, d(2010, 2, 19)),
        (3, 7, Vendor::A, false, d(2010, 2, 19)),
        (6, 8, Vendor::A, false, d(2010, 2, 24)),
        (10, 9, Vendor::A, false, d(2010, 2, 25)),
        (11, 12, Vendor::B, true, d(2010, 3, 5)),
        (15, 16, Vendor::B, true, d(2010, 3, 5)),
        (14, 13, Vendor::C, false, d(2010, 3, 10)),
        (18, 17, Vendor::C, false, d(2010, 3, 13)),
    ];
    for (tent_id, twin_id, vendor, defective, at) in rows {
        fleet.push(HostPlan {
            id: tent_id,
            vendor,
            defective,
            placement: Placement::Tent,
            install_at: at,
            pair: twin_id,
            is_replacement: false,
            zone: 0,
        });
        fleet.push(HostPlan {
            id: twin_id,
            vendor,
            defective,
            placement: Placement::Basement,
            install_at: at,
            pair: tent_id,
            is_replacement: false,
            zone: 0,
        });
    }
    // #19: the spare that replaced #15 in the tent (same vendor-B series).
    fleet.push(HostPlan {
        id: 19,
        vendor: Vendor::B,
        defective: false, // the replacement "has not failed" — a sound unit
        placement: Placement::Tent,
        install_at: d(2010, 3, 26),
        pair: 16,
        is_replacement: true,
        zone: 0,
    });
    fleet.sort_by_key(|h| h.id);
    fleet
}

/// Which fleet a campaign simulates.
///
/// This is the determinism boundary for scale: per-host randomness is
/// derived from the label `host/{id}` off the experiment seed, so host #3's
/// fault train, job-corruption stream and store keys are identical whether
/// the fleet has 19 hosts or 10,000 — growing a fleet appends streams, it
/// never reshuffles existing ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FleetSpec {
    /// The paper's 19 machines with the Fig. 2 install timeline.
    #[default]
    Paper,
    /// A generated vendor-mix fleet of `hosts` machines, installed at
    /// campaign start and spread over many tent/basement zones.
    VendorMix {
        /// Total number of machines.
        hosts: u32,
    },
}

/// Hosts per enclosure zone in generated fleets — the paper's tent held
/// nine machines, so generated tents and basement rooms do too.
pub const HOSTS_PER_ZONE: u32 = 9;

/// Emits host plans for a [`FleetSpec`].
///
/// The paper preset delegates to [`paper_fleet`] unchanged; the vendor-mix
/// generator repeats the paper's 19-host composition (ten vendor A, five
/// vendor B — the defective SFF series — and four vendor C) across the
/// fleet, installs everything at campaign start, places odd ids in tents
/// and even ids in basement rooms (pairwise twins like the paper), and
/// assigns [`HOSTS_PER_ZONE`] machines per thermal zone. No randomness is
/// drawn: the roster is a pure function of the spec.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    spec: FleetSpec,
}

impl FleetBuilder {
    /// The paper's 19-host roster.
    pub fn paper() -> Self {
        FleetBuilder {
            spec: FleetSpec::Paper,
        }
    }

    /// A generated vendor-mix fleet of `hosts` machines.
    pub fn vendor_mix(hosts: u32) -> Self {
        FleetBuilder {
            spec: FleetSpec::VendorMix { hosts },
        }
    }

    /// Builder for an arbitrary spec.
    pub fn from_spec(spec: FleetSpec) -> Self {
        FleetBuilder { spec }
    }

    /// The spec this builder emits.
    pub fn spec(&self) -> FleetSpec {
        self.spec
    }

    /// Emit the host plans. `start` is the campaign start (generated
    /// fleets power on at start; the paper preset keeps its Fig. 2 dates).
    pub fn plans(&self, start: SimTime) -> Vec<HostPlan> {
        match self.spec {
            FleetSpec::Paper => paper_fleet(),
            FleetSpec::VendorMix { hosts } => {
                let mut fleet = Vec::with_capacity(hosts as usize);
                let mut tent_seq = 0u32;
                let mut basement_seq = 0u32;
                for id in 1..=hosts {
                    // Repeat the paper's 19-host vendor composition.
                    let r = (id - 1) % 19;
                    let vendor = if r < 10 {
                        Vendor::A
                    } else if r < 15 {
                        Vendor::B
                    } else {
                        Vendor::C
                    };
                    let placement = if id % 2 == 1 {
                        Placement::Tent
                    } else {
                        Placement::Basement
                    };
                    let zone = match placement {
                        Placement::Tent => {
                            tent_seq += 1;
                            (tent_seq - 1) / HOSTS_PER_ZONE
                        }
                        Placement::Basement => {
                            basement_seq += 1;
                            (basement_seq - 1) / HOSTS_PER_ZONE
                        }
                    };
                    // Pairwise twins: 1↔2, 3↔4, …; a trailing odd host
                    // without a twin pairs with itself.
                    let pair = if id % 2 == 1 {
                        (id + 1).min(hosts)
                    } else {
                        id - 1
                    };
                    fleet.push(HostPlan {
                        id,
                        vendor,
                        // The paper's vendor-B series was the unreliable
                        // one; generated fleets model every B unit that way.
                        defective: vendor == Vendor::B,
                        placement,
                        install_at: start,
                        pair,
                        is_replacement: false,
                        zone,
                    });
                }
                fleet
            }
        }
    }
}

/// Host ids assigned to each of the two tent switches (daisy-chained
/// 8-port units; the monitoring uplink hangs off switch 2).
pub fn switch_assignment(host: u32) -> usize {
    // First six tent installs on switch 0, later arrivals on switch 1.
    match host {
        1 | 2 | 3 | 6 | 10 | 11 => 0,
        _ => 1,
    }
}

/// The spare-switch swap repair policy for the monitoring fabric.
///
/// §4.2.1: the switches came from a defective batch and two of them died
/// during the campaign; each was replaced with a spare unit on the next
/// visit to the roof. The policy models that workflow: a dead switch waits
/// for the next operator inspection window (working days, 10:00 — the same
/// cadence host repairs use) and then takes a fixed swap time to re-cable
/// and power the spare. While spares remain, every switch death has a
/// bounded repair window; once the spares run out the outage lasts until
/// campaign end.
#[derive(Debug, Clone)]
pub struct SwitchFailoverPolicy {
    /// Spare units on the shelf (the paper's batch left a couple unused).
    pub spares: u32,
    /// Hands-on time to swap the spare in once the operator is on site.
    pub swap_time: SimDuration,
}

impl Default for SwitchFailoverPolicy {
    fn default() -> Self {
        SwitchFailoverPolicy {
            spares: 2,
            swap_time: SimDuration::minutes(90),
        }
    }
}

impl SwitchFailoverPolicy {
    /// When a switch that died at `failed_at` comes back, if a spare is
    /// available: the next operator inspection window plus the swap time.
    pub fn restore_time(&self, failed_at: SimTime) -> SimTime {
        HostRecord::next_inspection(failed_at) + self.swap_time
    }

    /// Consume a spare for one swap. Returns `None` (no restore possible)
    /// when the shelf is empty, otherwise the restore time.
    pub fn take_spare(&mut self, failed_at: SimTime) -> Option<SimTime> {
        if self.spares == 0 {
            return None;
        }
        self.spares -= 1;
        Some(self.restore_time(failed_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::Date;

    #[test]
    fn fleet_composition_matches_paper() {
        let fleet = paper_fleet();
        assert_eq!(fleet.len(), 19);
        let count = |v: Vendor| {
            fleet
                .iter()
                .filter(|h| h.vendor == v && !h.is_replacement)
                .count()
        };
        assert_eq!(count(Vendor::A), 10, "ten hosts from vendor A");
        assert_eq!(count(Vendor::B), 4, "four from B");
        assert_eq!(count(Vendor::C), 4, "four from C");
        let tent = fleet
            .iter()
            .filter(|h| h.placement == Placement::Tent && !h.is_replacement)
            .count();
        let basement = fleet
            .iter()
            .filter(|h| h.placement == Placement::Basement)
            .count();
        assert_eq!(tent, 9, "nine in the tent");
        assert_eq!(basement, 9, "nine in the basement");
    }

    #[test]
    fn pairwise_symmetry() {
        let fleet = paper_fleet();
        let by_id = |id: u32| fleet.iter().find(|h| h.id == id).expect("id present");
        for h in fleet.iter().filter(|h| !h.is_replacement) {
            let twin = by_id(h.pair);
            assert_eq!(twin.vendor, h.vendor, "pair {}/{} vendor", h.id, h.pair);
            assert_ne!(twin.placement, h.placement, "pairs straddle the groups");
            assert_eq!(twin.install_at, h.install_at, "pairs installed together");
        }
    }

    #[test]
    fn timeline_constraints_from_text() {
        let fleet = paper_fleet();
        let by_id = |id: u32| fleet.iter().find(|h| h.id == id).expect("id present");
        // Testing starts Feb 19.
        let first = fleet.iter().map(|h| h.install_at).min().unwrap();
        assert_eq!(first.date(), Date::new(2010, 2, 19).unwrap());
        // #15 installed before its Mar 7 failure.
        assert!(by_id(15).install_at < SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0));
        // Last initial host on Mar 13 (§4).
        let last_initial = fleet
            .iter()
            .filter(|h| !h.is_replacement)
            .map(|h| h.install_at)
            .max()
            .unwrap();
        assert_eq!(last_initial.date(), Date::new(2010, 3, 13).unwrap());
        // Replacement lands Mar 26 (Fig. 2's final tick).
        assert_eq!(by_id(19).install_at.date(), Date::new(2010, 3, 26).unwrap());
    }

    #[test]
    fn host15_is_defective_vendor_b() {
        let fleet = paper_fleet();
        let h15 = fleet.iter().find(|h| h.id == 15).unwrap();
        assert_eq!(h15.vendor, Vendor::B);
        assert!(h15.defective);
        assert_eq!(h15.placement, Placement::Tent);
    }

    #[test]
    fn switch_assignment_covers_tent() {
        let fleet = paper_fleet();
        for h in fleet.iter().filter(|h| h.placement == Placement::Tent) {
            let sw = switch_assignment(h.id);
            assert!(sw < 2, "host {} on switch {sw}", h.id);
        }
    }

    #[test]
    fn failover_policy_matches_scripted_restores() {
        // Both §4.2.1 switch deaths (Fri Feb 26 09:00 and Sun Feb 28 14:00)
        // wait for the Monday-morning inspection and come back after the
        // 90-minute swap — exactly the paper script's restore events.
        let policy = SwitchFailoverPolicy::default();
        let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
        assert_eq!(
            policy.restore_time(SimTime::from_ymd_hms(2010, 2, 26, 9, 0, 0)),
            restored
        );
        assert_eq!(
            policy.restore_time(SimTime::from_ymd_hms(2010, 2, 28, 14, 0, 0)),
            restored
        );
    }

    #[test]
    fn spare_shelf_is_finite() {
        let mut policy = SwitchFailoverPolicy::default();
        let at = SimTime::from_ymd_hms(2010, 3, 3, 9, 0, 0);
        let first = policy.take_spare(at);
        assert!(first.is_some());
        assert!(first.unwrap() > at, "repair takes time");
        assert!(policy.take_spare(at).is_some());
        assert_eq!(policy.take_spare(at), None, "shelf empty after two swaps");
    }

    #[test]
    fn ids_unique() {
        let fleet = paper_fleet();
        let mut ids: Vec<u32> = fleet.iter().map(|h| h.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 19);
    }

    /// Pin every install date host-by-host so the `FleetBuilder` refactor
    /// (or any future one) can't silently drift the Fig. 2 timeline.
    #[test]
    fn install_dates_pinned_per_host() {
        let fleet = paper_fleet();
        let date_of = |id: u32| {
            fleet
                .iter()
                .find(|h| h.id == id)
                .expect("id present")
                .install_at
                .date()
        };
        let d = |m: u32, day: u32| Date::new(2010, m, day).unwrap();
        let expected: [(u32, u32, u32); 19] = [
            (1, 2, 19),
            (2, 2, 19),
            (3, 2, 19),
            (4, 2, 19),
            (5, 2, 19),
            (6, 2, 24),
            (7, 2, 19),
            (8, 2, 24),
            (9, 2, 25),
            (10, 2, 25),
            (11, 3, 5),
            (12, 3, 5),
            (13, 3, 10),
            (14, 3, 10),
            (15, 3, 5),
            (16, 3, 5),
            (17, 3, 13),
            (18, 3, 13),
            (19, 3, 26),
        ];
        for (id, m, day) in expected {
            assert_eq!(date_of(id), d(m, day), "host {id} install date");
        }
        // All installs land at the 11:00 site visit.
        for h in &fleet {
            assert_eq!(h.install_at.datetime().hour, 11, "host {} hour", h.id);
        }
    }

    /// The #15 → #19 spare-swap semantics: #19 is the only replacement, a
    /// *sound* vendor-B unit, in the tent, paired with #15's twin (#16),
    /// and the last machine to arrive.
    #[test]
    fn spare_swap_replacement_semantics() {
        let fleet = paper_fleet();
        let replacements: Vec<&HostPlan> = fleet.iter().filter(|h| h.is_replacement).collect();
        assert_eq!(replacements.len(), 1, "exactly one spare swap");
        let h19 = replacements[0];
        assert_eq!(h19.id, 19);
        assert_eq!(h19.vendor, Vendor::B);
        assert!(!h19.defective, "the spare had not failed — a sound unit");
        assert_eq!(h19.placement, Placement::Tent);
        assert_eq!(h19.pair, 16, "inherits #15's basement twin");
        let latest = fleet.iter().map(|h| h.install_at).max().unwrap();
        assert_eq!(h19.install_at, latest, "the final Fig. 2 event");
        // #15 itself stays in the roster (it ran until withdrawn).
        assert!(fleet.iter().any(|h| h.id == 15 && !h.is_replacement));
    }

    /// Vendor-B defective flags, unit by unit: the four original SFF
    /// machines carry the flag, the spare does not, nobody else does.
    #[test]
    fn vendor_b_defective_flags_pinned() {
        let fleet = paper_fleet();
        for h in &fleet {
            let expected = matches!(h.id, 11 | 12 | 15 | 16);
            assert_eq!(h.defective, expected, "host {} defective flag", h.id);
            if h.defective {
                assert_eq!(h.vendor, Vendor::B, "only B units are defective");
            }
        }
    }

    #[test]
    fn paper_builder_is_byte_identical_to_paper_fleet() {
        let via_builder = FleetBuilder::paper().plans(SimTime::from_date(2010, 2, 12));
        let direct = paper_fleet();
        assert_eq!(via_builder.len(), direct.len());
        for (a, b) in via_builder.iter().zip(&direct) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.vendor, b.vendor);
            assert_eq!(a.defective, b.defective);
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.install_at, b.install_at);
            assert_eq!(a.pair, b.pair);
            assert_eq!(a.is_replacement, b.is_replacement);
            assert_eq!(a.zone, 0, "the paper fleet shares one tent/basement");
        }
    }

    #[test]
    fn vendor_mix_fleet_shape() {
        let start = SimTime::from_date(2010, 2, 12);
        let fleet = FleetBuilder::vendor_mix(1000).plans(start);
        assert_eq!(fleet.len(), 1000);
        // Composition repeats the paper's 10:5:4 vendor split.
        let count = |v: Vendor| fleet.iter().filter(|h| h.vendor == v).count();
        assert!(count(Vendor::A) >= 500 && count(Vendor::A) <= 540);
        assert!(count(Vendor::B) >= 240 && count(Vendor::B) <= 280);
        assert!(count(Vendor::C) >= 190 && count(Vendor::C) <= 230);
        for h in &fleet {
            assert_eq!(h.install_at, start, "generated fleets power on at start");
            assert!(!h.is_replacement);
            assert_eq!(h.defective, h.vendor == Vendor::B);
            // Twins straddle the groups (except a trailing self-pair).
            if h.pair != h.id {
                let twin = fleet.iter().find(|t| t.id == h.pair).unwrap();
                assert_ne!(twin.placement, h.placement, "pair {}/{}", h.id, h.pair);
            }
        }
        // Zones fill in nine-host rooms, densely from zero.
        let tent_zones: Vec<u32> = fleet
            .iter()
            .filter(|h| h.placement == Placement::Tent)
            .map(|h| h.zone)
            .collect();
        assert_eq!(tent_zones.iter().filter(|&&z| z == 0).count(), 9);
        let max_zone = *tent_zones.iter().max().unwrap();
        assert_eq!(max_zone, (500 - 1) / HOSTS_PER_ZONE, "500 tent hosts");
    }

    #[test]
    fn vendor_mix_is_deterministic_and_prefix_stable() {
        let start = SimTime::from_date(2010, 2, 12);
        let small = FleetBuilder::vendor_mix(100).plans(start);
        let large = FleetBuilder::vendor_mix(200).plans(start);
        for (a, b) in small.iter().zip(&large) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.vendor, b.vendor);
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.zone, b.zone);
            // Only the trailing self-pair may differ between sizes.
            if a.pair != a.id {
                assert_eq!(a.pair, b.pair);
            }
        }
    }
}
