//! The fleet: 19 machines, pairwise placement, and the Fig. 2 timeline.
//!
//! §3.4: ten hosts from vendor A, four from vendor B (the known-unreliable
//! SFF series) and four from vendor C (2U servers) — eighteen machines
//! installed pairwise, nine in the tent and nine in the basement, plus a
//! nineteenth that replaced host #15 after its second failure.
//!
//! The paper's Fig. 2 shows tent-host install dates between Feb 19 and
//! Mar 26 (with "the last of the hosts … installed March 13th" per §4 and
//! the #15 replacement as the final event). The exact per-host dates are
//! only partially legible from the figure; the timeline below follows its
//! tick marks (Feb 19, Feb 24/25, Mar 05, Mar 10, Mar 17, Mar 26) and the
//! constraints in the text (e.g. #15 was running in the tent before its
//! Mar 7 failure).

use frostlab_faults::repair::HostRecord;
use frostlab_hardware::server::Vendor;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_workload::stats::Placement;

/// One machine's static plan.
#[derive(Debug, Clone)]
pub struct HostPlan {
    /// Paper host number (tent hosts use the Fig. 2 numbers).
    pub id: u32,
    /// Vendor.
    pub vendor: Vendor,
    /// From the known-defective vendor-B series?
    pub defective: bool,
    /// Tent or basement.
    pub placement: Placement,
    /// Install (power-on) time.
    pub install_at: SimTime,
    /// The identical twin in the other group (pairwise installation).
    pub pair: u32,
    /// True for machine #19, the spare that replaced #15.
    pub is_replacement: bool,
}

/// The paper's fleet. Tent hosts carry the Fig. 2 numbers
/// (01 02 03 06 10 11 14 15 18); their basement twins take the remaining
/// numbers; #19 is the replacement spare (installed only in scripted runs
/// after #15 is withdrawn).
pub fn paper_fleet() -> Vec<HostPlan> {
    let d = |y: i32, m: u32, day: u32| {
        SimTime::from_date(y, m, day) + frostlab_simkern::time::SimDuration::hours(11)
    };
    let mut fleet = Vec::new();
    // (tent_id, twin_id, vendor, defective, install_date)
    let rows: [(u32, u32, Vendor, bool, SimTime); 9] = [
        (1, 4, Vendor::A, false, d(2010, 2, 19)),
        (2, 5, Vendor::A, false, d(2010, 2, 19)),
        (3, 7, Vendor::A, false, d(2010, 2, 19)),
        (6, 8, Vendor::A, false, d(2010, 2, 24)),
        (10, 9, Vendor::A, false, d(2010, 2, 25)),
        (11, 12, Vendor::B, true, d(2010, 3, 5)),
        (15, 16, Vendor::B, true, d(2010, 3, 5)),
        (14, 13, Vendor::C, false, d(2010, 3, 10)),
        (18, 17, Vendor::C, false, d(2010, 3, 13)),
    ];
    for (tent_id, twin_id, vendor, defective, at) in rows {
        fleet.push(HostPlan {
            id: tent_id,
            vendor,
            defective,
            placement: Placement::Tent,
            install_at: at,
            pair: twin_id,
            is_replacement: false,
        });
        fleet.push(HostPlan {
            id: twin_id,
            vendor,
            defective,
            placement: Placement::Basement,
            install_at: at,
            pair: tent_id,
            is_replacement: false,
        });
    }
    // #19: the spare that replaced #15 in the tent (same vendor-B series).
    fleet.push(HostPlan {
        id: 19,
        vendor: Vendor::B,
        defective: false, // the replacement "has not failed" — a sound unit
        placement: Placement::Tent,
        install_at: d(2010, 3, 26),
        pair: 16,
        is_replacement: true,
    });
    fleet.sort_by_key(|h| h.id);
    fleet
}

/// Host ids assigned to each of the two tent switches (daisy-chained
/// 8-port units; the monitoring uplink hangs off switch 2).
pub fn switch_assignment(host: u32) -> usize {
    // First six tent installs on switch 0, later arrivals on switch 1.
    match host {
        1 | 2 | 3 | 6 | 10 | 11 => 0,
        _ => 1,
    }
}

/// The spare-switch swap repair policy for the monitoring fabric.
///
/// §4.2.1: the switches came from a defective batch and two of them died
/// during the campaign; each was replaced with a spare unit on the next
/// visit to the roof. The policy models that workflow: a dead switch waits
/// for the next operator inspection window (working days, 10:00 — the same
/// cadence host repairs use) and then takes a fixed swap time to re-cable
/// and power the spare. While spares remain, every switch death has a
/// bounded repair window; once the spares run out the outage lasts until
/// campaign end.
#[derive(Debug, Clone)]
pub struct SwitchFailoverPolicy {
    /// Spare units on the shelf (the paper's batch left a couple unused).
    pub spares: u32,
    /// Hands-on time to swap the spare in once the operator is on site.
    pub swap_time: SimDuration,
}

impl Default for SwitchFailoverPolicy {
    fn default() -> Self {
        SwitchFailoverPolicy {
            spares: 2,
            swap_time: SimDuration::minutes(90),
        }
    }
}

impl SwitchFailoverPolicy {
    /// When a switch that died at `failed_at` comes back, if a spare is
    /// available: the next operator inspection window plus the swap time.
    pub fn restore_time(&self, failed_at: SimTime) -> SimTime {
        HostRecord::next_inspection(failed_at) + self.swap_time
    }

    /// Consume a spare for one swap. Returns `None` (no restore possible)
    /// when the shelf is empty, otherwise the restore time.
    pub fn take_spare(&mut self, failed_at: SimTime) -> Option<SimTime> {
        if self.spares == 0 {
            return None;
        }
        self.spares -= 1;
        Some(self.restore_time(failed_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::Date;

    #[test]
    fn fleet_composition_matches_paper() {
        let fleet = paper_fleet();
        assert_eq!(fleet.len(), 19);
        let count = |v: Vendor| {
            fleet
                .iter()
                .filter(|h| h.vendor == v && !h.is_replacement)
                .count()
        };
        assert_eq!(count(Vendor::A), 10, "ten hosts from vendor A");
        assert_eq!(count(Vendor::B), 4, "four from B");
        assert_eq!(count(Vendor::C), 4, "four from C");
        let tent = fleet
            .iter()
            .filter(|h| h.placement == Placement::Tent && !h.is_replacement)
            .count();
        let basement = fleet
            .iter()
            .filter(|h| h.placement == Placement::Basement)
            .count();
        assert_eq!(tent, 9, "nine in the tent");
        assert_eq!(basement, 9, "nine in the basement");
    }

    #[test]
    fn pairwise_symmetry() {
        let fleet = paper_fleet();
        let by_id = |id: u32| fleet.iter().find(|h| h.id == id).expect("id present");
        for h in fleet.iter().filter(|h| !h.is_replacement) {
            let twin = by_id(h.pair);
            assert_eq!(twin.vendor, h.vendor, "pair {}/{} vendor", h.id, h.pair);
            assert_ne!(twin.placement, h.placement, "pairs straddle the groups");
            assert_eq!(twin.install_at, h.install_at, "pairs installed together");
        }
    }

    #[test]
    fn timeline_constraints_from_text() {
        let fleet = paper_fleet();
        let by_id = |id: u32| fleet.iter().find(|h| h.id == id).expect("id present");
        // Testing starts Feb 19.
        let first = fleet.iter().map(|h| h.install_at).min().unwrap();
        assert_eq!(first.date(), Date::new(2010, 2, 19).unwrap());
        // #15 installed before its Mar 7 failure.
        assert!(by_id(15).install_at < SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0));
        // Last initial host on Mar 13 (§4).
        let last_initial = fleet
            .iter()
            .filter(|h| !h.is_replacement)
            .map(|h| h.install_at)
            .max()
            .unwrap();
        assert_eq!(last_initial.date(), Date::new(2010, 3, 13).unwrap());
        // Replacement lands Mar 26 (Fig. 2's final tick).
        assert_eq!(by_id(19).install_at.date(), Date::new(2010, 3, 26).unwrap());
    }

    #[test]
    fn host15_is_defective_vendor_b() {
        let fleet = paper_fleet();
        let h15 = fleet.iter().find(|h| h.id == 15).unwrap();
        assert_eq!(h15.vendor, Vendor::B);
        assert!(h15.defective);
        assert_eq!(h15.placement, Placement::Tent);
    }

    #[test]
    fn switch_assignment_covers_tent() {
        let fleet = paper_fleet();
        for h in fleet.iter().filter(|h| h.placement == Placement::Tent) {
            let sw = switch_assignment(h.id);
            assert!(sw < 2, "host {} on switch {sw}", h.id);
        }
    }

    #[test]
    fn failover_policy_matches_scripted_restores() {
        // Both §4.2.1 switch deaths (Fri Feb 26 09:00 and Sun Feb 28 14:00)
        // wait for the Monday-morning inspection and come back after the
        // 90-minute swap — exactly the paper script's restore events.
        let policy = SwitchFailoverPolicy::default();
        let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
        assert_eq!(
            policy.restore_time(SimTime::from_ymd_hms(2010, 2, 26, 9, 0, 0)),
            restored
        );
        assert_eq!(
            policy.restore_time(SimTime::from_ymd_hms(2010, 2, 28, 14, 0, 0)),
            restored
        );
    }

    #[test]
    fn spare_shelf_is_finite() {
        let mut policy = SwitchFailoverPolicy::default();
        let at = SimTime::from_ymd_hms(2010, 3, 3, 9, 0, 0);
        let first = policy.take_spare(at);
        assert!(first.is_some());
        assert!(first.unwrap() > at, "repair takes time");
        assert!(policy.take_spare(at).is_some());
        assert_eq!(policy.take_spare(at), None, "shelf empty after two swaps");
    }

    #[test]
    fn ids_unique() {
        let fleet = paper_fleet();
        let mut ids: Vec<u32> = fleet.iter().map(|h| h.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 19);
    }
}
