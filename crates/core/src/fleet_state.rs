//! Struct-of-arrays fleet state: every per-host column the campaign steps.
//!
//! The campaign used to carry a `Vec<HostSim>` of fat per-host objects; at
//! 19 hosts that was fine, at 10,000 the pointer-chasing and per-host
//! allocations dominated. [`FleetState`] flattens the hot state into
//! parallel arrays indexed by a dense host index:
//!
//! * **hot columns** (`install_at`, `busy_until`, `last_wall_w`, …) — plain
//!   scalars read/written every tick, one cache line streams many hosts;
//! * **kernel banks** — chassis thermals in a
//!   [`CaseBank`] and hardware state in a
//!   [`HostBank`], both bit-identical
//!   ports of the per-host object models;
//! * **cold objects** (`jobs`, `schedules`, `faults`, `records`, `stores`)
//!   — stateful machines touched at event cadence (10-minute runs, 5-minute
//!   fault polls, 20-minute collections), kept as parallel object vectors.
//!
//! ## Column ownership
//!
//! A column lives in a bank when its per-tick update is a pure function of
//! its own row plus scalar inputs; it stays an object when it owns RNG
//! streams or cross-host protocol state. Phases may borrow disjoint columns
//! simultaneously — the whole point of the layout is that the host-step
//! loop destructures [`FleetState`] once and walks flat slices.
//!
//! ## Determinism contract at scale
//!
//! Per-host randomness derives from labels (`host/{id}`, then `store`,
//! `job-corruption`, …) off the experiment seed, so a host's streams are
//! identical whether the fleet has 19 hosts or 10,000. Hosts are pushed in
//! fleet-plan order; the dense index is therefore reproducible, and the
//! golden-hash tests pin the 19-host paper fleet byte-for-byte.

use std::collections::BTreeMap;

use frostlab_faults::injector::HostFaults;
use frostlab_faults::repair::HostRecord;
use frostlab_faults::types::HostId;
use frostlab_hardware::columns::HostBank;
use frostlab_hardware::server::{ServerSpec, Vendor};
use frostlab_netsim::collector::MonitoredHost;
use frostlab_simkern::time::SimTime;
use frostlab_thermal::bank::CaseBank;
use frostlab_thermal::server_case::ServerThermalParams;
use frostlab_workload::job::JobRunner;
use frostlab_workload::schedule::LoadSchedule;
use frostlab_workload::stats::Placement;

use crate::fleet::HostPlan;

/// Every machine starts its life at the February install temperature.
pub const INITIAL_CHASSIS_C: f64 = 18.0;

/// The chassis thermal parameters for a vendor's form factor.
pub fn thermal_params(vendor: Vendor) -> ServerThermalParams {
    match vendor {
        Vendor::A => ServerThermalParams::vendor_a_tower(),
        Vendor::B => ServerThermalParams::vendor_b_sff(),
        Vendor::C => ServerThermalParams::vendor_c_2u(),
    }
}

/// The hardware spec a plan's machine ships with.
pub fn spec_for(plan: &HostPlan) -> ServerSpec {
    match plan.vendor {
        Vendor::A => ServerSpec::vendor_a(),
        Vendor::B => ServerSpec::vendor_b(plan.defective),
        Vendor::C => ServerSpec::vendor_c(),
    }
}

/// Struct-of-arrays state for the whole fleet, indexed by dense host index.
#[derive(Debug, Default)]
pub struct FleetState {
    /// Static plans in push order (id, vendor, placement, install date…).
    pub plans: Vec<HostPlan>,
    /// Paper host id → dense index.
    idx_of: BTreeMap<u32, usize>,

    // --- hot columns, one scalar per host ---
    /// Install (power-on) time, copied from the plan for flat access.
    pub install_at: Vec<SimTime>,
    /// Tent or basement, copied from the plan for flat access.
    pub placement: Vec<Placement>,
    /// Enclosure zone within the placement kind, from the plan.
    pub zone: Vec<u32>,
    /// Permanently withdrawn (taken indoors)?
    pub withdrawn: Vec<bool>,
    /// End of the current run's CPU-busy window.
    pub busy_until: Vec<SimTime>,
    /// Next scheduled run start.
    pub next_run_at: Vec<SimTime>,
    /// Next sensor-log append.
    pub next_sensor_log: Vec<SimTime>,
    /// Pending staff inspection after a hang.
    pub inspection_due: Vec<Option<SimTime>>,
    /// Bit flips queued for the next pack-verify run.
    pub pending_flips: Vec<u32>,
    /// Page ops accumulated since the last fault poll.
    pub page_ops_since_poll: Vec<u64>,
    /// Wall power drawn during the previous tick, W.
    pub last_wall_w: Vec<f64>,
    /// Physical CPU temperature, °C.
    pub cpu_temp_c: Vec<f64>,
    /// Outcome of the indoor Memtest diagnosis, if one ran.
    pub memtest_failed: Vec<Option<bool>>,

    // --- kernel banks ---
    /// Chassis thermal chains (case + CPU RC network), flat.
    pub thermal: CaseBank,
    /// Hardware state machines (power, PSU, sensors, memory, disks), flat.
    pub hw: HostBank,

    // --- cold per-host objects, touched at event cadence ---
    /// Pack-verify job runners (own the corruption RNG stream).
    pub jobs: Vec<JobRunner>,
    /// Jittered 10-minute schedules.
    pub schedules: Vec<LoadSchedule>,
    /// Stochastic fault samplers.
    pub faults: Vec<HostFaults>,
    /// Repair-workflow histories.
    pub records: Vec<HostRecord>,
    /// Collectable log stores.
    pub stores: Vec<MonitoredHost>,
}

impl FleetState {
    /// An empty fleet.
    pub fn new() -> FleetState {
        FleetState::default()
    }

    /// An empty fleet with room for `n` hosts.
    pub fn with_capacity(n: usize) -> FleetState {
        let mut f = FleetState::new();
        f.plans.reserve(n);
        f.install_at.reserve(n);
        f.placement.reserve(n);
        f.zone.reserve(n);
        f.withdrawn.reserve(n);
        f.busy_until.reserve(n);
        f.next_run_at.reserve(n);
        f.next_sensor_log.reserve(n);
        f.inspection_due.reserve(n);
        f.pending_flips.reserve(n);
        f.page_ops_since_poll.reserve(n);
        f.last_wall_w.reserve(n);
        f.cpu_temp_c.reserve(n);
        f.memtest_failed.reserve(n);
        f.jobs.reserve(n);
        f.schedules.reserve(n);
        f.faults.reserve(n);
        f.records.reserve(n);
        f.stores.reserve(n);
        f
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the fleet holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Dense index of paper host `id`, if present.
    pub fn index_of(&self, id: u32) -> Option<usize> {
        self.idx_of.get(&id).copied()
    }

    /// Is host `i` on site and not withdrawn at time `t`?
    pub fn installed(&self, i: usize, t: SimTime) -> bool {
        t >= self.install_at[i] && !self.withdrawn[i]
    }

    /// Add one host in fleet-plan order, returning its dense index. The
    /// machine comes up exactly like the old `HostSim` literal did: running,
    /// chassis at [`INITIAL_CHASSIS_C`], first run and sensor log due at its
    /// install time.
    pub fn push_host(
        &mut self,
        plan: HostPlan,
        spec: &ServerSpec,
        job: JobRunner,
        schedule: LoadSchedule,
        faults: HostFaults,
        store: MonitoredHost,
    ) -> usize {
        let idx = self.plans.len();
        self.idx_of.insert(plan.id, idx);
        self.install_at.push(plan.install_at);
        self.placement.push(plan.placement);
        self.zone.push(plan.zone);
        self.withdrawn.push(false);
        self.busy_until.push(plan.install_at);
        self.next_run_at.push(plan.install_at);
        self.next_sensor_log.push(plan.install_at);
        self.inspection_due.push(None);
        self.pending_flips.push(0);
        self.page_ops_since_poll.push(0);
        self.last_wall_w.push(0.0);
        self.cpu_temp_c.push(INITIAL_CHASSIS_C);
        self.memtest_failed.push(None);
        self.thermal
            .push(&thermal_params(plan.vendor), INITIAL_CHASSIS_C);
        self.hw.push_host(spec);
        self.jobs.push(job);
        self.schedules.push(schedule);
        self.faults.push(faults);
        self.records.push(HostRecord::new(HostId(plan.id)));
        self.stores.push(store);
        self.plans.push(plan);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::paper_fleet;
    use frostlab_netsim::collector::Collector;
    use frostlab_simkern::rng::Rng;
    use frostlab_workload::job::{JobConfig, JobTemplate};

    fn build_paper_fleet_state() -> FleetState {
        let root = Rng::new(7);
        let injector = frostlab_faults::injector::FaultInjector::new(&root);
        let template = JobTemplate::build(JobConfig::default());
        let mut collector_rng = root.derive("collector");
        let collector = Collector::new(&mut collector_rng);
        let plans = paper_fleet();
        let mut fleet = FleetState::with_capacity(plans.len());
        for plan in plans {
            let host_rng = root.derive(&format!("host/{}", plan.id));
            let mut store_rng = host_rng.derive("store");
            let store = MonitoredHost::new(plan.id, &mut store_rng, vec![collector.key.public]);
            let spec = spec_for(&plan);
            fleet.push_host(
                plan.clone(),
                &spec,
                JobRunner::from_template(&template, &host_rng),
                LoadSchedule::new(plan.install_at, &host_rng),
                injector.host(HostId(plan.id), plan.defective),
                store,
            );
        }
        fleet
    }

    #[test]
    fn columns_stay_parallel() {
        let fleet = build_paper_fleet_state();
        let n = fleet.len();
        assert_eq!(n, 19);
        assert_eq!(fleet.install_at.len(), n);
        assert_eq!(fleet.busy_until.len(), n);
        assert_eq!(fleet.thermal.len(), n);
        assert_eq!(fleet.hw.len(), n);
        assert_eq!(fleet.jobs.len(), n);
        assert_eq!(fleet.stores.len(), n);
        for i in 0..n {
            assert_eq!(fleet.install_at[i], fleet.plans[i].install_at);
            assert_eq!(fleet.placement[i], fleet.plans[i].placement);
            assert_eq!(fleet.index_of(fleet.plans[i].id), Some(i));
        }
        assert_eq!(fleet.index_of(999), None);
    }

    #[test]
    fn fresh_hosts_match_hostsim_initial_state() {
        let fleet = build_paper_fleet_state();
        for i in 0..fleet.len() {
            assert!(fleet.hw.is_running(i));
            assert_eq!(fleet.cpu_temp_c[i], INITIAL_CHASSIS_C);
            assert_eq!(fleet.thermal.cpu_temp_c(i), INITIAL_CHASSIS_C);
            assert_eq!(fleet.busy_until[i], fleet.plans[i].install_at);
            assert_eq!(fleet.next_run_at[i], fleet.plans[i].install_at);
            assert_eq!(fleet.next_sensor_log[i], fleet.plans[i].install_at);
            assert_eq!(fleet.last_wall_w[i], 0.0);
            assert!(!fleet.withdrawn[i]);
            assert_eq!(fleet.memtest_failed[i], None);
            let before = fleet.plans[i].install_at - frostlab_simkern::time::SimDuration::secs(1);
            assert!(!fleet.installed(i, before));
            assert!(fleet.installed(i, fleet.plans[i].install_at));
        }
    }

    #[test]
    fn vendor_ecc_flows_into_the_bank() {
        let fleet = build_paper_fleet_state();
        for i in 0..fleet.len() {
            let expect_ecc = fleet.plans[i].vendor == Vendor::C;
            let outcome_is_corrected = {
                let mut f = build_paper_fleet_state();
                f.hw.memory_apply_bit_flip(i)
                    == frostlab_hardware::memory::FlipOutcome::CorrectedByEcc
            };
            assert_eq!(
                outcome_is_corrected, expect_ecc,
                "host {}",
                fleet.plans[i].id
            );
        }
    }
}
