//! # frostlab-core
//!
//! The experiment itself: *Running Servers around Zero Degrees*, re-run as
//! a deterministic simulation.
//!
//! This crate wires every substrate together into the campaign the paper
//! describes — a prototype weekend under two plastic boxes (Feb 12–15,
//! 2010), then a three-month normal phase with nine machines in a tent on
//! the roof terrace and nine identical machines in the basement control
//! group, all grinding the tar+bzip2+md5 synthetic load every ten minutes
//! while a monitoring host collects their logs over two sickly 8-port
//! switches.
//!
//! * [`config`] — experiment configuration (seed, dates, fidelity knobs);
//! * [`fleet`] — the 19 machines, their vendors, pairings and the Fig. 2
//!   install timeline;
//! * [`scripted`] — the documented event history (tent modifications
//!   R/I/B/F, host #15's two failures, the sensor-chip saga, the switch
//!   deaths, the five wrong hashes) for faithful figure reproduction;
//! * [`context`] — [`context::CampaignCtx`], the shared per-tick campaign
//!   state (clock, RNG lanes, weather, enclosures, fleet, instruments,
//!   accumulators);
//! * [`fleet_state`] — [`fleet_state::FleetState`], the struct-of-arrays
//!   per-host columns (hot scalars, thermal/hardware kernel banks, cold
//!   event-cadence objects) the phases step in bulk;
//! * [`phases`] — the seven per-tick substrate phases
//!   (weather → enclosure-thermal → logger-poll → script → host-step →
//!   collection → power-integration), each a [`phases::TickPhase`];
//! * [`scenario`] — [`scenario::ScenarioBuilder`], which composes phases
//!   into runnable campaigns (insert/replace/wrap, per-phase timing);
//!   supports **scripted** mode (replays the history; figures match the
//!   paper) and **stochastic** mode (all faults drawn from the hazard
//!   models; for Monte-Carlo and sensitivity studies);
//! * [`spec`] — declarative, serializable scenario/matrix specs with
//!   stable content hashes: the job currency of `frostlab-farm`'s durable
//!   work queue and result cache;
//! * [`observe`] — tracing instrumentation for the pipeline: per-phase
//!   span probes and the per-tick metrics sampler installed by
//!   [`scenario::ScenarioBuilder::with_tracing`] (see `frostlab-trace`);
//! * [`experiment`] — the stable two-call shim over the stock paper
//!   pipeline;
//! * [`prototype`] — the plastic-box weekend (T5);
//! * [`results`] — everything measured, in one struct;
//! * [`figures`] / [`tables`] — per-figure and per-table reproduction
//!   entry points used by `frostlab-bench`'s binaries.
//!
//! ## Quickstart
//!
//! ```no_run
//! use frostlab_core::config::ExperimentConfig;
//! use frostlab_core::scenario::ScenarioBuilder;
//!
//! let config = ExperimentConfig::paper_scripted(42);
//! let results = ScenarioBuilder::paper(config).build().run();
//! println!("runs: {}", results.workload.total_runs());
//! println!("failure rate: {:.1} %", 100.0 * results.failure_comparison().fleet().rate);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod experiment;
pub mod figures;
pub mod fleet;
pub mod fleet_state;
pub mod observe;
pub mod phases;
pub mod prototype;
pub mod results;
pub mod scenario;
pub mod scripted;
pub mod spec;
pub mod tables;
pub mod watchdog;

pub use config::ExperimentConfig;
pub use context::CampaignCtx;
pub use experiment::Experiment;
pub use phases::TickPhase;
pub use results::ExperimentResults;
pub use scenario::{Scenario, ScenarioBuilder};
pub use spec::{JobSpec, MatrixSpec, ScenarioSpec, SpecError};
