//! Observability instrumentation for the phase pipeline.
//!
//! Three pieces, installed by the scenario builder:
//!
//! * [`TracePhaseProbe`] decorates each phase and emits one sim-time span
//!   per step on a `phase/<name>` track
//!   ([`crate::scenario::ScenarioBuilder::with_tracing`]);
//! * [`TraceSamplePhase`] runs after the substrate phases each tick and
//!   samples the campaign state into the tracer's metrics registry
//!   (gauges at tick boundaries, counters by delta) while draining the
//!   append-only ledgers — collector history, healed gaps, fault events,
//!   watchdog incidents — into trace events via cursors;
//! * [`ObservePhase`] is the fleet health observatory's sampling phase
//!   ([`crate::scenario::ScenarioBuilder::with_observability`]): it
//!   subsumes the trace sampling and, in the *same* O(hosts) pass, feeds
//!   the dimensional rollups, the SLO burn-rate engine and the incident
//!   flight recorder in [`frostlab_obs::ObsState`]. SLO fires/resolves
//!   are mirrored into the watchdog ledger as
//!   [`IncidentKind::SloBreach`] incidents, so the alert timeline rides
//!   the same deterministic bookkeeping as every other incident.
//!
//! Everything here reads state the campaign already maintains; nothing
//! draws randomness or wall-clock, so arming tracing or observability
//! cannot perturb a single RNG stream or artifact byte (the golden-hash
//! tests pin this).

use std::collections::BTreeMap;

use frostlab_netsim::collector::{AttemptKind, CollectOutcome};
use frostlab_obs::{FleetRollup, RollupDim, SloFeed};
use frostlab_trace::FieldValue;
use frostlab_workload::stats::Placement;

use crate::context::CampaignCtx;
use crate::phases::{PhaseTiming, TickPhase};
use crate::watchdog::IncidentKind;

/// Decorates a phase with a per-step sim-time span on `phase/<name>`.
///
/// The span covers the tick being simulated (`[now, now + tick]`), so the
/// Perfetto view shows the seven substrate rows stepping in lockstep.
/// `name()` and `timing()` delegate to the wrapped phase: builder edits
/// still address it, and a [`crate::phases::TimingProbe`] composes in
/// either nesting order.
pub struct TracePhaseProbe {
    inner: Box<dyn TickPhase>,
    track: String,
}

impl TracePhaseProbe {
    /// Trace `inner`'s steps.
    pub fn new(inner: Box<dyn TickPhase>) -> TracePhaseProbe {
        let track = format!("phase/{}", inner.name());
        TracePhaseProbe { inner, track }
    }
}

impl TickPhase for TracePhaseProbe {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        self.inner.step(ctx);
        if ctx.tracer.phase_spans_enabled() {
            let start = ctx.now;
            let end = ctx.now + ctx.cfg.tick;
            ctx.tracer.span(&self.track, "step", start, end, &[]);
        }
    }

    fn timing(&self) -> Option<PhaseTiming> {
        self.inner.timing()
    }
}

/// The per-tick trace-sampling state machine shared by
/// [`TraceSamplePhase`] and [`ObservePhase`]: gauge snapshots, counter
/// deltas, and the cursors that drain the campaign's append-only ledgers
/// into trace events exactly once each.
struct TraceCursors {
    collection_cursor: usize,
    gap_cursor: usize,
    fault_cursor: usize,
    incident_cursor: usize,
    resolve_emitted: Vec<bool>,
    runs_seen: u64,
    hash_errors_seen: usize,
    registered: bool,
}

impl TraceCursors {
    fn new() -> TraceCursors {
        TraceCursors {
            collection_cursor: 0,
            gap_cursor: 0,
            fault_cursor: 0,
            incident_cursor: 0,
            resolve_emitted: Vec::new(),
            runs_seen: 0,
            hash_errors_seen: 0,
            registered: false,
        }
    }

    /// Sample one tick into the tracer. `hosts_up` is the
    /// installed-and-running count the caller already computed in its
    /// O(hosts) pass. No-op while the tracer is disabled.
    fn sample(&mut self, ctx: &mut CampaignCtx, hosts_up: usize) {
        if !ctx.tracer.is_enabled() {
            return;
        }
        if !self.registered {
            ctx.tracer
                .register_histogram("tent.temp_c_dist", -40.0, 1.0, 80);
            ctx.tracer
                .register_histogram("tent.power_w_dist", 0.0, 25.0, 80);
            self.registered = true;
        }

        // Environment and fleet gauges, at the tick boundary.
        ctx.tracer
            .gauge_set("tent.temp_c", ctx.tent_state.air_temp_c);
        ctx.tracer
            .gauge_set("tent.rh_pct", ctx.tent_state.air_rh_pct);
        ctx.tracer
            .gauge_set("basement.temp_c", ctx.basement_state.air_temp_c);
        ctx.tracer.gauge_set("outside.temp_c", ctx.weather.temp_c);
        ctx.tracer.gauge_set("tent.power_w", ctx.tent_power_w);
        ctx.tracer
            .gauge_set("collector.gaps_open", ctx.collector.open_retries() as f64);
        ctx.tracer
            .gauge_set("watchdog.open_incidents", ctx.watchdog.open_count() as f64);
        ctx.tracer.gauge_set("fleet.hosts_up", hosts_up as f64);
        ctx.tracer
            .gauge_set("workload.archives_stored", ctx.stored_archives.len() as f64);
        ctx.tracer
            .observe("tent.temp_c_dist", ctx.tent_state.air_temp_c);
        ctx.tracer.observe("tent.power_w_dist", ctx.tent_power_w);

        // Workload counters, by delta against the stats accumulator.
        let runs = ctx.workload.total_runs();
        ctx.tracer
            .counter_add("workload.runs_total", runs - self.runs_seen);
        self.runs_seen = runs;
        let hash_errors = ctx.workload.hash_errors().len();
        ctx.tracer.counter_add(
            "workload.wrong_hashes_total",
            (hash_errors - self.hash_errors_seen) as u64,
        );
        self.hash_errors_seen = hash_errors;

        // Collection attempts since the last tick.
        let emit_collection = ctx.tracer.collection_events_enabled();
        let history = ctx.collector.history();
        for rec in &history[self.collection_cursor..] {
            ctx.tracer.counter_add("collector.attempts_total", 1);
            if rec.kind == AttemptKind::Retry {
                ctx.tracer.counter_add("netsim.retransmits", 1);
            }
            let (outcome, files, bytes) = match &rec.outcome {
                CollectOutcome::Success {
                    files_updated,
                    literal_bytes,
                } => {
                    ctx.tracer.counter_add("collector.success_total", 1);
                    ("success", *files_updated as u64, *literal_bytes as u64)
                }
                CollectOutcome::Unreachable { .. } => {
                    ctx.tracer.counter_add("collector.unreachable_total", 1);
                    ("unreachable", 0, 0)
                }
                CollectOutcome::AuthFailed(_) => {
                    ctx.tracer.counter_add("collector.auth_failed_total", 1);
                    ("auth-failed", 0, 0)
                }
            };
            if emit_collection {
                let kind = match rec.kind {
                    AttemptKind::Scheduled => "scheduled",
                    AttemptKind::Retry => "retry",
                };
                ctx.tracer.instant(
                    "collector",
                    "attempt",
                    rec.at,
                    &[
                        ("host", FieldValue::U64(u64::from(rec.host))),
                        ("kind", FieldValue::Str(kind.to_string())),
                        ("outcome", FieldValue::Str(outcome.to_string())),
                        ("files_updated", FieldValue::U64(files)),
                        ("literal_bytes", FieldValue::U64(bytes)),
                    ],
                );
            }
        }
        self.collection_cursor = history.len();

        // Gaps healed since the last tick — each becomes a span on the
        // affected host's track, covering the whole outage.
        let gaps = ctx.collector.gaps();
        for gap in &gaps[self.gap_cursor..] {
            ctx.tracer.counter_add("collector.gaps_healed_total", 1);
            if emit_collection {
                ctx.tracer.span(
                    &format!("host/{}", gap.host),
                    "collection-gap",
                    gap.start,
                    gap.end,
                    &[(
                        "failed_attempts",
                        FieldValue::U64(u64::from(gap.failed_attempts)),
                    )],
                );
            }
        }
        self.gap_cursor = gaps.len();

        // Fault events since the last tick.
        let emit_incidents = ctx.tracer.incident_events_enabled();
        let faults = &ctx.fault_events;
        for ev in &faults[self.fault_cursor..] {
            ctx.tracer.counter_add("faults.events_total", 1);
            if emit_incidents {
                ctx.tracer.instant(
                    "faults",
                    "fault",
                    ev.at,
                    &[
                        ("host", FieldValue::U64(u64::from(ev.host.0))),
                        ("kind", FieldValue::Str(format!("{:?}", ev.kind))),
                    ],
                );
            }
        }
        self.fault_cursor = faults.len();

        // Watchdog incidents: opens are append-only (cursor); resolves
        // mutate in place, so track emission per incident index.
        let incidents = ctx.watchdog.incidents();
        self.resolve_emitted.resize(incidents.len(), false);
        for inc in &incidents[self.incident_cursor..] {
            ctx.tracer.counter_add("watchdog.incidents_opened", 1);
            if emit_incidents {
                ctx.tracer.instant(
                    "watchdog",
                    "incident-open",
                    inc.started,
                    &[
                        ("kind", FieldValue::Str(inc.kind.name().to_string())),
                        ("subject", FieldValue::Str(inc.subject.clone())),
                    ],
                );
            }
        }
        self.incident_cursor = incidents.len();
        for (i, inc) in incidents.iter().enumerate() {
            if self.resolve_emitted[i] {
                continue;
            }
            if let Some(resolved) = inc.resolved {
                self.resolve_emitted[i] = true;
                ctx.tracer.counter_add("watchdog.incidents_resolved", 1);
                if emit_incidents {
                    ctx.tracer.instant(
                        "watchdog",
                        "incident-resolve",
                        resolved,
                        &[("subject", FieldValue::Str(inc.subject.clone()))],
                    );
                }
            }
        }
    }
}

/// Samples campaign state into the tracer once per tick, after the
/// substrate phases have stepped.
///
/// Gauges snapshot the current tick (`tent.temp_c`, `tent.power_w`,
/// `collector.gaps_open`, `fleet.hosts_up`, …); counters advance by delta
/// against the campaign's own accumulators (`workload.runs_total`,
/// `collector.attempts_total`, `faults.events_total`, …); and the
/// append-only ledgers are drained through cursors into trace events —
/// collection attempts and healed-gap spans (gated by
/// `collection_events`), fault and incident instants (gated by
/// `incident_events`).
///
/// `netsim.retransmits` counts the collector's backoff-driven catch-up
/// attempts — the campaign-level analog of transport retransmission,
/// since the collection pipeline models loss at attempt granularity
/// rather than per frame.
///
/// When a scenario arms observability, [`ObservePhase`] replaces this
/// phase and performs the same sampling inside its own fleet scan.
pub struct TraceSamplePhase {
    cursors: TraceCursors,
}

impl TraceSamplePhase {
    /// A fresh sampler (all cursors at zero).
    pub fn new() -> TraceSamplePhase {
        TraceSamplePhase {
            cursors: TraceCursors::new(),
        }
    }
}

impl Default for TraceSamplePhase {
    fn default() -> Self {
        TraceSamplePhase::new()
    }
}

impl TickPhase for TraceSamplePhase {
    fn name(&self) -> &str {
        "trace-sample"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        if !ctx.tracer.is_enabled() {
            return;
        }
        let t = ctx.now;
        let hosts_up = (0..ctx.fleet.len())
            .filter(|&i| ctx.fleet.installed(i, t) && ctx.fleet.hw.is_running(i))
            .count();
        self.cursors.sample(ctx, hosts_up);
    }
}

/// Cached per-host dense bucket indices for the three rollup dimensions.
/// Built once on the observatory's first armed tick; the hot loop then
/// pushes plain `usize`s — no string hashing per host per tick, keeping
/// rollup memory and per-tick work O(label cardinality) + O(hosts).
struct RollupCaches {
    zone_bucket: Vec<u32>,
    vendor_bucket: Vec<u8>,
    placement_bucket: Vec<u8>,
}

impl RollupCaches {
    /// Derive the label universe from the fleet and build the index
    /// caches plus the matching [`FleetRollup`] dimensions.
    ///
    /// Zone labels incorporate placement (`tent-0`, `basement-2`) since
    /// tent zone 0 and basement zone 0 are distinct enclosures sharing a
    /// zone number. Vendor labels are the paper's `A`/`B`/`C`; placement
    /// labels are `tent`/`basement`.
    fn build(ctx: &CampaignCtx) -> (RollupCaches, FleetRollup) {
        let fleet = &ctx.fleet;
        // Dense zone bucket ids in label order: BTreeMap gives a stable,
        // deterministic ordering over (placement, zone).
        let mut zone_ids: BTreeMap<(u8, u32), u32> = BTreeMap::new();
        for i in 0..fleet.len() {
            let key = (placement_bucket(fleet.placement[i]), fleet.zone[i]);
            let next = zone_ids.len() as u32;
            zone_ids.entry(key).or_insert(next);
        }
        let mut zone_labels = vec![String::new(); zone_ids.len()];
        for (&(p, z), &idx) in &zone_ids {
            let place = if p == 0 { "tent" } else { "basement" };
            zone_labels[idx as usize] = format!("{place}-{z}");
        }

        let mut caches = RollupCaches {
            zone_bucket: Vec::with_capacity(fleet.len()),
            vendor_bucket: Vec::with_capacity(fleet.len()),
            placement_bucket: Vec::with_capacity(fleet.len()),
        };
        for i in 0..fleet.len() {
            let key = (placement_bucket(fleet.placement[i]), fleet.zone[i]);
            caches.zone_bucket.push(zone_ids[&key]);
            caches.vendor_bucket.push(match fleet.plans[i].vendor {
                frostlab_hardware::server::Vendor::A => 0,
                frostlab_hardware::server::Vendor::B => 1,
                frostlab_hardware::server::Vendor::C => 2,
            });
            caches
                .placement_bucket
                .push(placement_bucket(fleet.placement[i]));
        }

        let rollup = FleetRollup::new(vec![
            RollupDim::new("zone", zone_labels),
            RollupDim::new(
                "vendor",
                vec!["A".to_string(), "B".to_string(), "C".to_string()],
            ),
            RollupDim::new(
                "placement",
                vec!["tent".to_string(), "basement".to_string()],
            ),
        ]);
        (caches, rollup)
    }
}

fn placement_bucket(p: Placement) -> u8 {
    match p {
        Placement::Tent => 0,
        Placement::Basement => 1,
    }
}

/// The observatory's sampling phase: one O(hosts) fleet scan per tick
/// that feeds the tracer's metric registry (everything
/// [`TraceSamplePhase`] samples), the dimensional rollups, the SLO
/// burn-rate engine and the incident flight recorder.
///
/// Installed by [`crate::scenario::ScenarioBuilder::with_observability`],
/// *replacing* any `trace-sample` phase so the campaign never samples
/// twice. Inert (one branch) when neither the tracer nor the observatory
/// is armed.
pub struct ObservePhase {
    cursors: TraceCursors,
    caches: Option<RollupCaches>,
    slo_runs_seen: u64,
    slo_bad_seen: usize,
    resets_seen: u64,
    flight_incident_cursor: usize,
}

impl ObservePhase {
    /// A fresh observer (all cursors at zero, caches unbuilt).
    pub fn new() -> ObservePhase {
        ObservePhase {
            cursors: TraceCursors::new(),
            caches: None,
            slo_runs_seen: 0,
            slo_bad_seen: 0,
            resets_seen: 0,
            flight_incident_cursor: 0,
        }
    }
}

impl Default for ObservePhase {
    fn default() -> Self {
        ObservePhase::new()
    }
}

impl TickPhase for ObservePhase {
    fn name(&self) -> &str {
        "observe"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        if !ctx.tracer.is_enabled() && ctx.obs.is_none() {
            return;
        }
        // Take the observatory out of the context so the scan below can
        // borrow fleet columns and the tracer disjointly; restored at the
        // end of the step.
        let mut obs = ctx.obs.take();
        let t = ctx.now;

        if let Some(o) = obs.as_deref_mut() {
            if o.rollups_enabled() && self.caches.is_none() {
                let (caches, rollup) = RollupCaches::build(ctx);
                o.init_rollup(rollup);
                self.caches = Some(caches);
            }
        }

        // The single O(hosts) pass: hosts-up census, reset totals, and
        // the per-host rollup pushes through the cached bucket indices.
        let mut hosts_up = 0usize;
        let mut resets_total = 0u64;
        let mut rollup = obs
            .as_deref_mut()
            .and_then(|o| o.rollup_mut())
            .zip(self.caches.as_ref());
        for i in 0..ctx.fleet.len() {
            resets_total += u64::from(ctx.fleet.records[i].reset_count());
            if !(ctx.fleet.installed(i, t) && ctx.fleet.hw.is_running(i)) {
                continue;
            }
            hosts_up += 1;
            if let Some((rollup, caches)) = rollup.as_mut() {
                let temp = ctx.fleet.cpu_temp_c[i];
                let power = ctx.fleet.last_wall_w[i];
                rollup.dims[0].push(caches.zone_bucket[i] as usize, temp, power);
                rollup.dims[1].push(usize::from(caches.vendor_bucket[i]), temp, power);
                rollup.dims[2].push(usize::from(caches.placement_bucket[i]), temp, power);
            }
        }

        // Trace sampling (gauges, counters, ledger cursors) — exactly
        // what the stand-alone trace-sample phase does.
        self.cursors.sample(ctx, hosts_up);

        if let Some(o) = obs.as_deref_mut() {
            // Feed this tick's observations into the SLO engine.
            let runs = ctx.workload.total_runs();
            let bad = ctx.workload.hash_errors().len();
            let feed = SloFeed {
                runs_delta: runs - self.slo_runs_seen,
                bad_hash_delta: (bad - self.slo_bad_seen) as u64,
                open_gaps: ctx.collector.open_retries() as f64,
                dew_margin_min_c: dew_margin_min_c(ctx),
                resets_delta: resets_total - self.resets_seen,
            };
            self.slo_runs_seen = runs;
            self.slo_bad_seen = bad;
            self.resets_seen = resets_total;
            let events = o.slo_step(t, &feed);

            // Mirror fires/resolves into the watchdog incident ledger —
            // the alert timeline rides the same deterministic
            // bookkeeping as every other incident.
            for ev in &events {
                let subject = format!("slo/{}", ev.slo);
                if ev.fired {
                    ctx.watchdog.open(IncidentKind::SloBreach, &subject, ev.at);
                } else {
                    ctx.watchdog.resolve(&subject, ev.at, "burn rate recovered");
                }
            }

            // Flight recorder: tail the trace buffer first so this
            // tick's events are in the rings, then snapshot for every
            // non-SLO incident opened since last tick and every alert
            // fire (SLO incidents are skipped to avoid double dumps).
            o.flight_mut().ingest(ctx.tracer.events());
            let incidents = ctx.watchdog.incidents();
            for inc in &incidents[self.flight_incident_cursor..] {
                if !matches!(inc.kind, IncidentKind::SloBreach) {
                    o.flight_mut().snapshot(
                        &format!("incident/{}/{}", inc.kind.name(), inc.subject),
                        inc.started,
                    );
                }
            }
            self.flight_incident_cursor = incidents.len();
            for ev in &events {
                if ev.fired {
                    o.flight_mut().snapshot(&format!("alert/{}", ev.slo), ev.at);
                }
            }
        }

        ctx.obs = obs;
    }
}

/// Minimum (air temperature − dew point) across the tent zones, °C —
/// the condensation guard the `dew-point-margin` SLO watches.
/// `f64::INFINITY` when there are no tent zones.
fn dew_margin_min_c(ctx: &CampaignCtx) -> f64 {
    let mut min = f64::INFINITY;
    for s in &ctx.tent_zone_states {
        let margin =
            s.air_temp_c - frostlab_climate::psychro::dew_point_c(s.air_temp_c, s.air_rh_pct);
        if margin < min {
            min = margin;
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::phases::WeatherPhase;
    use frostlab_obs::{ObsConfig, ObsState};
    use frostlab_simkern::time::SimDuration;
    use frostlab_trace::{TraceConfig, Tracer};

    #[test]
    fn sample_phase_is_inert_without_a_tracer() {
        let cfg = ExperimentConfig::short(1, 2);
        let mut ctx = CampaignCtx::new(cfg);
        let mut phase = TraceSamplePhase::new();
        phase.step(&mut ctx);
        assert_eq!(ctx.tracer.events_recorded(), 0);
    }

    #[test]
    fn sample_phase_snapshots_gauges_each_tick() {
        let cfg = ExperimentConfig::short(1, 2);
        let start = cfg.start;
        let mut ctx = CampaignCtx::new(cfg);
        ctx.tracer = Tracer::enabled(TraceConfig::default(), start);
        let mut phase = TraceSamplePhase::new();
        phase.step(&mut ctx);
        let trace = ctx.tracer.finish().expect("enabled");
        assert_eq!(
            trace.metrics.gauge("tent.temp_c"),
            Some(ctx.tent_state.air_temp_c)
        );
        assert!(trace.metrics.gauge("fleet.hosts_up").is_some());
        assert!(trace.metrics.gauge("collector.gaps_open").is_some());
    }

    #[test]
    fn phase_probe_emits_one_span_per_step_and_keeps_the_name() {
        let cfg = ExperimentConfig::short(1, 2);
        let start = cfg.start;
        let mut ctx = CampaignCtx::new(cfg);
        ctx.tracer = Tracer::enabled(TraceConfig::default(), start);
        let mut probe = TracePhaseProbe::new(Box::new(WeatherPhase::new()));
        assert_eq!(probe.name(), "weather");
        for _ in 0..3 {
            probe.step(&mut ctx);
            ctx.now += SimDuration::minutes(1);
        }
        let trace = ctx.tracer.finish().expect("enabled");
        let spans: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.track == "phase/weather")
            .collect();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|e| e.end.is_some()));
    }

    #[test]
    fn observe_phase_is_inert_when_nothing_is_armed() {
        let cfg = ExperimentConfig::short(1, 2);
        let mut ctx = CampaignCtx::new(cfg);
        let mut phase = ObservePhase::new();
        phase.step(&mut ctx);
        assert_eq!(ctx.tracer.events_recorded(), 0);
        assert!(ctx.obs.is_none());
    }

    #[test]
    fn observe_phase_builds_rollup_dims_from_the_fleet() {
        let cfg = ExperimentConfig::short(1, 2);
        let mut ctx = CampaignCtx::new(cfg);
        ctx.obs = Some(Box::new(ObsState::new(&ObsConfig::default(), ctx.cfg.tick)));
        let mut phase = ObservePhase::new();
        phase.step(&mut ctx);
        let mut tracer = Tracer::disabled();
        let obs = ctx.obs.take().expect("restored").finish(&mut tracer);
        let rollup = obs.rollup.expect("rollups default on");
        let dims: Vec<&str> = rollup.dims.iter().map(|d| d.dim.as_str()).collect();
        assert_eq!(dims, ["zone", "vendor", "placement"]);
        // The paper fleet: one tent zone, one basement zone.
        let zone_labels: Vec<&str> = rollup.dims[0]
            .buckets
            .iter()
            .map(|b| b.label.as_str())
            .collect();
        assert_eq!(zone_labels, ["tent-0", "basement-0"]);
        let vendor_labels: Vec<&str> = rollup.dims[1]
            .buckets
            .iter()
            .map(|b| b.label.as_str())
            .collect();
        assert_eq!(vendor_labels, ["A", "B", "C"]);
        // No host has booted yet (no host-step phase ran), so every
        // bucket exists but none has folded a sample.
        assert!(rollup.dims[2].buckets.iter().all(|b| b.samples == 0));
    }

    #[test]
    fn observe_phase_matches_trace_sample_metrics_exactly() {
        // The observatory's merged scan must sample the tracer exactly
        // as the stand-alone trace-sample phase does.
        let run = |observed: bool| {
            let cfg = ExperimentConfig::short(1, 2);
            let start = cfg.start;
            let mut ctx = CampaignCtx::new(cfg);
            ctx.tracer = Tracer::enabled(TraceConfig::default(), start);
            if observed {
                let mut phase = ObservePhase::new();
                for _ in 0..5 {
                    phase.step(&mut ctx);
                    ctx.now += SimDuration::minutes(1);
                }
            } else {
                let mut phase = TraceSamplePhase::new();
                for _ in 0..5 {
                    phase.step(&mut ctx);
                    ctx.now += SimDuration::minutes(1);
                }
            }
            let trace = ctx.tracer.finish().expect("enabled");
            frostlab_trace::export::to_prometheus(&trace.metrics)
        };
        assert_eq!(run(false), run(true));
    }
}
