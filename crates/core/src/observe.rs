//! Tracing instrumentation for the phase pipeline.
//!
//! Two pieces, both installed by
//! [`crate::scenario::ScenarioBuilder::with_tracing`]:
//!
//! * [`TracePhaseProbe`] decorates each phase and emits one sim-time span
//!   per step on a `phase/<name>` track;
//! * [`TraceSamplePhase`] runs after the substrate phases each tick and
//!   samples the campaign state into the tracer's metrics registry
//!   (gauges at tick boundaries, counters by delta) while draining the
//!   append-only ledgers — collector history, healed gaps, fault events,
//!   watchdog incidents — into trace events via cursors.
//!
//! Everything here reads state the campaign already maintains; nothing
//! draws randomness or wall-clock, so arming tracing cannot perturb a
//! single RNG stream or artifact byte (the golden-hash tests pin this).

use frostlab_netsim::collector::{AttemptKind, CollectOutcome};
use frostlab_trace::FieldValue;

use crate::context::CampaignCtx;
use crate::phases::{PhaseTiming, TickPhase};

/// Decorates a phase with a per-step sim-time span on `phase/<name>`.
///
/// The span covers the tick being simulated (`[now, now + tick]`), so the
/// Perfetto view shows the seven substrate rows stepping in lockstep.
/// `name()` and `timing()` delegate to the wrapped phase: builder edits
/// still address it, and a [`crate::phases::TimingProbe`] composes in
/// either nesting order.
pub struct TracePhaseProbe {
    inner: Box<dyn TickPhase>,
    track: String,
}

impl TracePhaseProbe {
    /// Trace `inner`'s steps.
    pub fn new(inner: Box<dyn TickPhase>) -> TracePhaseProbe {
        let track = format!("phase/{}", inner.name());
        TracePhaseProbe { inner, track }
    }
}

impl TickPhase for TracePhaseProbe {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        self.inner.step(ctx);
        if ctx.tracer.phase_spans_enabled() {
            let start = ctx.now;
            let end = ctx.now + ctx.cfg.tick;
            ctx.tracer.span(&self.track, "step", start, end, &[]);
        }
    }

    fn timing(&self) -> Option<PhaseTiming> {
        self.inner.timing()
    }
}

/// Samples campaign state into the tracer once per tick, after the
/// substrate phases have stepped.
///
/// Gauges snapshot the current tick (`tent.temp_c`, `tent.power_w`,
/// `collector.gaps_open`, `fleet.hosts_up`, …); counters advance by delta
/// against the campaign's own accumulators (`workload.runs_total`,
/// `collector.attempts_total`, `faults.events_total`, …); and the
/// append-only ledgers are drained through cursors into trace events —
/// collection attempts and healed-gap spans (gated by
/// `collection_events`), fault and incident instants (gated by
/// `incident_events`).
///
/// `netsim.retransmits` counts the collector's backoff-driven catch-up
/// attempts — the campaign-level analog of transport retransmission,
/// since the collection pipeline models loss at attempt granularity
/// rather than per frame.
pub struct TraceSamplePhase {
    collection_cursor: usize,
    gap_cursor: usize,
    fault_cursor: usize,
    incident_cursor: usize,
    resolve_emitted: Vec<bool>,
    runs_seen: u64,
    hash_errors_seen: usize,
    registered: bool,
}

impl TraceSamplePhase {
    /// A fresh sampler (all cursors at zero).
    pub fn new() -> TraceSamplePhase {
        TraceSamplePhase {
            collection_cursor: 0,
            gap_cursor: 0,
            fault_cursor: 0,
            incident_cursor: 0,
            resolve_emitted: Vec::new(),
            runs_seen: 0,
            hash_errors_seen: 0,
            registered: false,
        }
    }
}

impl Default for TraceSamplePhase {
    fn default() -> Self {
        TraceSamplePhase::new()
    }
}

impl TickPhase for TraceSamplePhase {
    fn name(&self) -> &str {
        "trace-sample"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        if !ctx.tracer.is_enabled() {
            return;
        }
        if !self.registered {
            ctx.tracer
                .register_histogram("tent.temp_c_dist", -40.0, 1.0, 80);
            ctx.tracer
                .register_histogram("tent.power_w_dist", 0.0, 25.0, 80);
            self.registered = true;
        }
        let t = ctx.now;

        // Environment and fleet gauges, at the tick boundary.
        ctx.tracer
            .gauge_set("tent.temp_c", ctx.tent_state.air_temp_c);
        ctx.tracer
            .gauge_set("tent.rh_pct", ctx.tent_state.air_rh_pct);
        ctx.tracer
            .gauge_set("basement.temp_c", ctx.basement_state.air_temp_c);
        ctx.tracer.gauge_set("outside.temp_c", ctx.weather.temp_c);
        ctx.tracer.gauge_set("tent.power_w", ctx.tent_power_w);
        ctx.tracer
            .gauge_set("collector.gaps_open", ctx.collector.open_retries() as f64);
        ctx.tracer
            .gauge_set("watchdog.open_incidents", ctx.watchdog.open_count() as f64);
        let hosts_up = (0..ctx.fleet.len())
            .filter(|&i| ctx.fleet.installed(i, t) && ctx.fleet.hw.is_running(i))
            .count();
        ctx.tracer.gauge_set("fleet.hosts_up", hosts_up as f64);
        ctx.tracer
            .gauge_set("workload.archives_stored", ctx.stored_archives.len() as f64);
        ctx.tracer
            .observe("tent.temp_c_dist", ctx.tent_state.air_temp_c);
        ctx.tracer.observe("tent.power_w_dist", ctx.tent_power_w);

        // Workload counters, by delta against the stats accumulator.
        let runs = ctx.workload.total_runs();
        ctx.tracer
            .counter_add("workload.runs_total", runs - self.runs_seen);
        self.runs_seen = runs;
        let hash_errors = ctx.workload.hash_errors().len();
        ctx.tracer.counter_add(
            "workload.wrong_hashes_total",
            (hash_errors - self.hash_errors_seen) as u64,
        );
        self.hash_errors_seen = hash_errors;

        // Collection attempts since the last tick.
        let emit_collection = ctx.tracer.collection_events_enabled();
        let history = ctx.collector.history();
        for rec in &history[self.collection_cursor..] {
            ctx.tracer.counter_add("collector.attempts_total", 1);
            if rec.kind == AttemptKind::Retry {
                ctx.tracer.counter_add("netsim.retransmits", 1);
            }
            let (outcome, files, bytes) = match &rec.outcome {
                CollectOutcome::Success {
                    files_updated,
                    literal_bytes,
                } => {
                    ctx.tracer.counter_add("collector.success_total", 1);
                    ("success", *files_updated as u64, *literal_bytes as u64)
                }
                CollectOutcome::Unreachable { .. } => {
                    ctx.tracer.counter_add("collector.unreachable_total", 1);
                    ("unreachable", 0, 0)
                }
                CollectOutcome::AuthFailed(_) => {
                    ctx.tracer.counter_add("collector.auth_failed_total", 1);
                    ("auth-failed", 0, 0)
                }
            };
            if emit_collection {
                let kind = match rec.kind {
                    AttemptKind::Scheduled => "scheduled",
                    AttemptKind::Retry => "retry",
                };
                ctx.tracer.instant(
                    "collector",
                    "attempt",
                    rec.at,
                    &[
                        ("host", FieldValue::U64(u64::from(rec.host))),
                        ("kind", FieldValue::Str(kind.to_string())),
                        ("outcome", FieldValue::Str(outcome.to_string())),
                        ("files_updated", FieldValue::U64(files)),
                        ("literal_bytes", FieldValue::U64(bytes)),
                    ],
                );
            }
        }
        self.collection_cursor = history.len();

        // Gaps healed since the last tick — each becomes a span on the
        // affected host's track, covering the whole outage.
        let gaps = ctx.collector.gaps();
        for gap in &gaps[self.gap_cursor..] {
            ctx.tracer.counter_add("collector.gaps_healed_total", 1);
            if emit_collection {
                ctx.tracer.span(
                    &format!("host/{}", gap.host),
                    "collection-gap",
                    gap.start,
                    gap.end,
                    &[(
                        "failed_attempts",
                        FieldValue::U64(u64::from(gap.failed_attempts)),
                    )],
                );
            }
        }
        self.gap_cursor = gaps.len();

        // Fault events since the last tick.
        let emit_incidents = ctx.tracer.incident_events_enabled();
        let faults = &ctx.fault_events;
        for ev in &faults[self.fault_cursor..] {
            ctx.tracer.counter_add("faults.events_total", 1);
            if emit_incidents {
                ctx.tracer.instant(
                    "faults",
                    "fault",
                    ev.at,
                    &[
                        ("host", FieldValue::U64(u64::from(ev.host.0))),
                        ("kind", FieldValue::Str(format!("{:?}", ev.kind))),
                    ],
                );
            }
        }
        self.fault_cursor = faults.len();

        // Watchdog incidents: opens are append-only (cursor); resolves
        // mutate in place, so track emission per incident index.
        let incidents = ctx.watchdog.incidents();
        self.resolve_emitted.resize(incidents.len(), false);
        for inc in &incidents[self.incident_cursor..] {
            ctx.tracer.counter_add("watchdog.incidents_opened", 1);
            if emit_incidents {
                ctx.tracer.instant(
                    "watchdog",
                    "incident-open",
                    inc.started,
                    &[
                        ("kind", FieldValue::Str(inc.kind.name().to_string())),
                        ("subject", FieldValue::Str(inc.subject.clone())),
                    ],
                );
            }
        }
        self.incident_cursor = incidents.len();
        for (i, inc) in incidents.iter().enumerate() {
            if self.resolve_emitted[i] {
                continue;
            }
            if let Some(resolved) = inc.resolved {
                self.resolve_emitted[i] = true;
                ctx.tracer.counter_add("watchdog.incidents_resolved", 1);
                if emit_incidents {
                    ctx.tracer.instant(
                        "watchdog",
                        "incident-resolve",
                        resolved,
                        &[("subject", FieldValue::Str(inc.subject.clone()))],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::phases::WeatherPhase;
    use frostlab_simkern::time::SimDuration;
    use frostlab_trace::{TraceConfig, Tracer};

    #[test]
    fn sample_phase_is_inert_without_a_tracer() {
        let cfg = ExperimentConfig::short(1, 2);
        let mut ctx = CampaignCtx::new(cfg);
        let mut phase = TraceSamplePhase::new();
        phase.step(&mut ctx);
        assert_eq!(ctx.tracer.events_recorded(), 0);
    }

    #[test]
    fn sample_phase_snapshots_gauges_each_tick() {
        let cfg = ExperimentConfig::short(1, 2);
        let start = cfg.start;
        let mut ctx = CampaignCtx::new(cfg);
        ctx.tracer = Tracer::enabled(TraceConfig::default(), start);
        let mut phase = TraceSamplePhase::new();
        phase.step(&mut ctx);
        let trace = ctx.tracer.finish().expect("enabled");
        assert_eq!(
            trace.metrics.gauge("tent.temp_c"),
            Some(ctx.tent_state.air_temp_c)
        );
        assert!(trace.metrics.gauge("fleet.hosts_up").is_some());
        assert!(trace.metrics.gauge("collector.gaps_open").is_some());
    }

    #[test]
    fn phase_probe_emits_one_span_per_step_and_keeps_the_name() {
        let cfg = ExperimentConfig::short(1, 2);
        let start = cfg.start;
        let mut ctx = CampaignCtx::new(cfg);
        ctx.tracer = Tracer::enabled(TraceConfig::default(), start);
        let mut probe = TracePhaseProbe::new(Box::new(WeatherPhase::new()));
        assert_eq!(probe.name(), "weather");
        for _ in 0..3 {
            probe.step(&mut ctx);
            ctx.now += SimDuration::minutes(1);
        }
        let trace = ctx.tracer.finish().expect("enabled");
        let spans: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.track == "phase/weather")
            .collect();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|e| e.end.is_some()));
    }
}
