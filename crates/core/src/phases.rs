//! The per-tick substrate phases of the campaign kernel.
//!
//! Each phase is one step of the paper's per-minute tick sequence, ported
//! verbatim from the old monolithic orchestrator and pinned byte-identical
//! by the golden-hash tests:
//!
//! 1. [`WeatherPhase`] — advance the synthetic winter, let the SMEAR III
//!    surrogate observe it;
//! 2. [`EnclosureThermalPhase`] — step tent and basement with the groups'
//!    previous-tick wall power;
//! 3. [`LoggerPollPhase`] — Lascar readout/poll and the 10-minute truth
//!    series;
//! 4. [`ScriptPhase`] — scripted events, chaos events, pending switch
//!    repairs;
//! 5. [`HostStepPhase`] — chassis thermals, sensors, stochastic faults,
//!    the synthetic load, repair visits;
//! 6. [`CollectionPhase`] — the 20-minute collection round, staleness
//!    sweep, and backoff retries;
//! 7. [`PowerIntegrationPhase`] — the Technoline meter over the tent feed.
//!
//! Phases communicate only through [`CampaignCtx`]; the
//! [`crate::scenario::ScenarioBuilder`] composes them (and anything
//! user-written that implements [`TickPhase`]) into a runnable scenario.

use std::time::Instant;

use frostlab_faults::repair::RepairAction;
use frostlab_faults::types::{FaultEvent, FaultKind, HostId};
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_trace::FieldValue;
use frostlab_workload::stats::Placement;

use crate::config::{ExperimentConfig, FaultMode};
use crate::context::{daily_log, next_monday_morning, CampaignCtx};
use crate::fleet::switch_assignment;
use crate::results::StoredArchive;
use crate::scripted::{paper_script, ScriptedEvent};

/// One substrate step of the per-tick pipeline.
///
/// A phase owns its private schedule state (next due times, event cursors)
/// and reads/writes shared campaign state through [`CampaignCtx`]. The
/// scenario steps every phase once per tick, in pipeline order.
pub trait TickPhase {
    /// Stable phase name, used by the builder to address phases for
    /// `replace`/`insert_before`/`wrap`.
    fn name(&self) -> &str;

    /// Advance this substrate by one tick at `ctx.now`.
    fn step(&mut self, ctx: &mut CampaignCtx);

    /// Wall-clock accounting, if this phase collects any (see
    /// [`TimingProbe`]). Stock phases return `None`.
    fn timing(&self) -> Option<PhaseTiming> {
        None
    }
}

/// Accumulated wall-clock cost of one phase across a whole campaign.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTiming {
    /// The wrapped phase's name.
    pub phase: String,
    /// Total wall-clock spent inside `step`, milliseconds.
    pub total_ms: f64,
    /// Number of `step` invocations.
    pub calls: u64,
}

/// Wraps any phase and meters the wall-clock its `step` consumes.
///
/// Installed across the whole pipeline by
/// [`crate::scenario::ScenarioBuilder::with_timing`], or around a single
/// phase via `wrap`.
pub struct TimingProbe {
    inner: Box<dyn TickPhase>,
    total: std::time::Duration,
    calls: u64,
}

impl TimingProbe {
    /// Meter `inner`.
    pub fn new(inner: Box<dyn TickPhase>) -> TimingProbe {
        TimingProbe {
            inner,
            total: std::time::Duration::ZERO,
            calls: 0,
        }
    }
}

impl TickPhase for TimingProbe {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        let started = Instant::now();
        self.inner.step(ctx);
        self.total += started.elapsed();
        self.calls += 1;
    }

    fn timing(&self) -> Option<PhaseTiming> {
        // If the wrapped phase already meters itself (a nested probe, or a
        // tracing probe around one), its numbers are authoritative: the
        // innermost probe excludes every wrapper's own overhead, and
        // reporting both would double-count the phase under one name.
        if let Some(inner) = self.inner.timing() {
            return Some(inner);
        }
        Some(PhaseTiming {
            phase: self.inner.name().to_string(),
            total_ms: self.total.as_secs_f64() * 1e3,
            calls: self.calls,
        })
    }
}

/// Ticks per weather batch: one simulated day on the model's 60-s grid,
/// matching the skeleton chunk size. The final refill of a campaign may
/// generate up to a day past the end — the surplus samples are discarded
/// and the surplus RNG draws are private to the model.
const WEATHER_BATCH_TICKS: usize = 1440;

/// Step 1: advance the weather model and poll the station.
///
/// When the campaign tick, the campaign start, and the station cadence all
/// lie on the weather model's 60-s grid (the stock configuration), samples
/// are served from a day-sized batch produced by
/// [`WeatherModel::sample_ticks`](frostlab_climate::WeatherModel::sample_ticks) — bit-identical to per-tick sampling, but
/// the weather working set is traversed once per simulated day instead of
/// being re-faulted from cache on every tick. Unaligned configurations keep
/// the per-tick path.
#[derive(Debug, Default)]
pub struct WeatherPhase {
    /// Batched samples; `buf[i]` is the sample at `buf_t0 + i·60 s`.
    buf: Vec<frostlab_climate::weather::WeatherSample>,
    /// Instant of `buf[0]`.
    buf_t0: SimTime,
}

impl WeatherPhase {
    /// Stock weather phase.
    pub fn new() -> WeatherPhase {
        WeatherPhase::default()
    }
}

impl TickPhase for WeatherPhase {
    fn name(&self) -> &str {
        "weather"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        let t = ctx.now;
        // The batched path requires every instant the model gets sampled at
        // to land on its 60-s grid. All three inputs are campaign constants
        // (the station schedule steps by a fixed interval), so the predicate
        // is tick-invariant: a campaign is either always batched or never.
        let aligned = t.as_secs() % 60 == 0
            && ctx.station.next_due().as_secs() % 60 == 0
            && ctx.station.config().interval.as_secs() % 60 == 0;
        let sample = if aligned {
            let idx = (t.as_secs() - self.buf_t0.as_secs()) / 60;
            if self.buf.is_empty() || idx < 0 || idx as usize >= self.buf.len() {
                self.buf = ctx.wx.sample_ticks(t, WEATHER_BATCH_TICKS);
                self.buf_t0 = t;
                self.buf[0]
            } else {
                self.buf[idx as usize]
            }
        } else {
            // Catch up any observations due strictly before this tick (only
            // possible with a station cadence unaligned to the tick grid).
            while ctx.station.next_due() < t {
                match ctx.station.poll(&mut ctx.wx, t) {
                    Some(obs) => ctx.outside.push(obs),
                    None => break,
                }
            }
            ctx.wx.sample_at(t)
        };
        // One model sample serves both the tick and, when the 10-minute
        // station cadence lands on this tick, the station observation —
        // the pre-kernel phase sampled the model twice at those instants.
        if let Some(obs) = ctx.station.poll_at(&sample) {
            ctx.outside.push(obs);
        }
        ctx.weather = sample;
    }
}

/// Step 2: step every tent and basement zone, driven by the previous
/// tick's per-host wall power. Publishes zone 0's power draw for the
/// power-integration phase — the meter sees the same watts that heated
/// the instrumented tent.
///
/// Per-zone power accumulates in one pass over the fleet in host-index
/// order; for the paper's single-zone fleet each accumulator receives its
/// adds in exactly the order the old filtered sums did, so the result is
/// byte-identical. The scratch vectors are phase-owned and sized once —
/// no per-tick allocation.
#[derive(Debug, Default)]
pub struct EnclosureThermalPhase {
    tent_power: Vec<f64>,
    basement_power: Vec<f64>,
}

impl EnclosureThermalPhase {
    /// Stock enclosure phase.
    pub fn new() -> EnclosureThermalPhase {
        EnclosureThermalPhase::default()
    }
}

impl TickPhase for EnclosureThermalPhase {
    fn name(&self) -> &str {
        "enclosure-thermal"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        use frostlab_thermal::enclosure::Enclosure;
        let t = ctx.now;
        self.tent_power.resize(ctx.tent_zone_states.len(), 0.0);
        self.tent_power.fill(0.0);
        self.basement_power
            .resize(ctx.basement_zone_states.len(), 0.0);
        self.basement_power.fill(0.0);
        let fleet = &ctx.fleet;
        for i in 0..fleet.len() {
            if !fleet.installed(i, t) {
                continue;
            }
            let z = fleet.zone[i] as usize;
            match fleet.placement[i] {
                Placement::Tent => self.tent_power[z] += fleet.last_wall_w[i],
                Placement::Basement => self.basement_power[z] += fleet.last_wall_w[i],
            }
        }
        ctx.tent.step(ctx.dt_secs, &ctx.weather, self.tent_power[0]);
        ctx.basement
            .step(ctx.dt_secs, &ctx.weather, self.basement_power[0]);
        ctx.tent_state = ctx.tent.state();
        ctx.basement_state = ctx.basement.state();
        ctx.tent_zone_states[0] = ctx.tent_state;
        ctx.basement_zone_states[0] = ctx.basement_state;
        for (k, tent) in ctx.extra_tents.iter_mut().enumerate() {
            tent.step(ctx.dt_secs, &ctx.weather, self.tent_power[k + 1]);
            ctx.tent_zone_states[k + 1] = tent.state();
        }
        for (k, room) in ctx.extra_basements.iter_mut().enumerate() {
            room.step(ctx.dt_secs, &ctx.weather, self.basement_power[k + 1]);
            ctx.basement_zone_states[k + 1] = room.state();
        }
        ctx.tent_power_w = self.tent_power[0];
        ctx.basement_power_w = self.basement_power[0];
    }
}

/// Step 3: the Lascar logger — including the weekly Monday USB readout
/// that downloads the memory and drags the unit indoors for half an hour
/// (the outlier source the paper mentions) — plus the 10-minute truth
/// series the figures are drawn from.
#[derive(Debug)]
pub struct LoggerPollPhase {
    next_readout: SimTime,
    next_truth_sample: SimTime,
}

impl LoggerPollPhase {
    /// Stock logger phase scheduled from the campaign config.
    pub fn new(cfg: &ExperimentConfig) -> LoggerPollPhase {
        LoggerPollPhase {
            next_readout: next_monday_morning(cfg.lascar_deployed_at),
            next_truth_sample: cfg.start,
        }
    }
}

impl TickPhase for LoggerPollPhase {
    fn name(&self) -> &str {
        "logger-poll"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        let t = ctx.now;
        if t >= self.next_readout {
            ctx.lascar.begin_readout(t, SimDuration::minutes(30));
            self.next_readout = t + SimDuration::days(7);
        }
        ctx.lascar
            .poll(t, ctx.tent_state.air_temp_c, ctx.tent_state.air_rh_pct);

        if t >= self.next_truth_sample {
            ctx.tent_temp_truth.push(t, ctx.tent_state.air_temp_c);
            ctx.tent_rh_truth.push(t, ctx.tent_state.air_rh_pct);
            ctx.basement_temp.push(t, ctx.basement_state.air_temp_c);
            self.next_truth_sample = t + SimDuration::minutes(10);
        }
    }
}

/// Step 4: fire scripted events that came due, then chaos events, then
/// any failover-scheduled switch repairs.
#[derive(Debug)]
pub struct ScriptPhase {
    events: Vec<(SimTime, ScriptedEvent)>,
    next: usize,
}

impl ScriptPhase {
    /// The paper's event history, filtered by fault mode: scripted mode
    /// replays everything; stochastic mode draws *faults* from the hazard
    /// models but keeps the operators' physical interventions (the R/I/B/F
    /// tent modifications) and the infrastructure history (the defective
    /// switches' deaths and replacement), which happened regardless.
    pub fn from_config(cfg: &ExperimentConfig) -> ScriptPhase {
        let events = match cfg.fault_mode {
            FaultMode::Scripted => paper_script(),
            FaultMode::Stochastic => paper_script()
                .into_iter()
                .filter(|(_, ev)| {
                    matches!(
                        ev,
                        ScriptedEvent::TentReconfig { .. }
                            | ScriptedEvent::SwitchDown { .. }
                            | ScriptedEvent::SwitchRestored { .. }
                    )
                })
                .collect(),
        };
        ScriptPhase::with_events(events)
    }

    /// A custom script. Events must be sorted by due time; each fires on
    /// the first tick at or after it.
    pub fn with_events(events: Vec<(SimTime, ScriptedEvent)>) -> ScriptPhase {
        ScriptPhase { events, next: 0 }
    }
}

impl TickPhase for ScriptPhase {
    fn name(&self) -> &str {
        "script"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        let t = ctx.now;
        while self.next < self.events.len() && self.events[self.next].0 <= t {
            let (at, ev) = self.events[self.next].clone();
            self.next += 1;
            ctx.handle_scripted(at, ev);
        }

        let chaos_due = match ctx.chaos.as_mut() {
            Some(chaos) => chaos.engine.pop_due(t),
            None => Vec::new(),
        };
        for (at, ev) in chaos_due {
            ctx.handle_chaos(at, ev);
        }
        while let Some(pos) = ctx
            .pending_switch_restores
            .iter()
            .position(|(due, _)| *due <= t)
        {
            let (at, switch) = ctx.pending_switch_restores.remove(pos);
            ctx.switch_up[switch] = true;
            ctx.watchdog
                .resolve(&format!("switch-{switch}"), at, "spare switch swapped in");
        }
    }
}

/// Step 5: per installed host — chassis thermal chain, sensor chip,
/// S.M.A.R.T. ticks, stochastic fault polls, the jittered 10-minute
/// synthetic load, and repair-workflow visits. Hangs and withdrawals are
/// applied after the fleet loop, matching the monolith's ordering.
///
/// The loop destructures [`CampaignCtx`] and
/// [`crate::fleet_state::FleetState`] once into disjoint column borrows and
/// walks the flat arrays — O(hosts) per tick, no indexed re-borrow per
/// field access. All scratch (the deferred hang/withdrawal lists, the log
/// line buffer, the day-cached log file names) is phase-owned and reused,
/// so the hot loop performs zero heap allocations per tick.
#[derive(Debug)]
pub struct HostStepPhase {
    next_fault_poll: SimTime,
    hangs: Vec<(usize, SimTime)>,
    withdrawals: Vec<usize>,
    line_buf: String,
    sensors_log: String,
    md5sums_log: String,
    log_day: (u32, u32),
}

impl HostStepPhase {
    /// Stock host phase scheduled from the campaign config.
    pub fn new(cfg: &ExperimentConfig) -> HostStepPhase {
        HostStepPhase {
            next_fault_poll: cfg.start + cfg.fault_poll_interval,
            hangs: Vec::new(),
            withdrawals: Vec::new(),
            line_buf: String::new(),
            sensors_log: String::new(),
            md5sums_log: String::new(),
            log_day: (0, 0),
        }
    }
}

impl TickPhase for HostStepPhase {
    fn name(&self) -> &str {
        "host-step"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        use std::fmt::Write as _;
        let t = ctx.now;
        let dt_secs = ctx.dt_secs;
        let dt_hours = ctx.dt_hours;
        let fault_poll_due = t >= self.next_fault_poll;
        let stochastic = ctx.cfg.fault_mode == FaultMode::Stochastic;
        let sensor_log_interval = ctx.cfg.sensor_log_interval;
        let poll_hours = ctx.cfg.fault_poll_interval.as_secs() as f64 / 3600.0;

        // Daily-rotated log names, recomputed only when the date rolls.
        let d = t.date();
        if self.log_day != (d.month, d.day) {
            self.log_day = (d.month, d.day);
            self.sensors_log = daily_log("sensors", t);
            self.md5sums_log = daily_log("md5sums", t);
        }

        // Borrow the context once into disjoint pieces; the fleet columns
        // split again so every per-host field is a flat slice access.
        let CampaignCtx {
            fleet,
            tent_zone_states,
            basement_zone_states,
            fault_events,
            workload,
            stored_archives,
            tracer,
            watchdog,
            repair_policy,
            ..
        } = ctx;
        let crate::fleet_state::FleetState {
            plans,
            install_at,
            placement,
            zone,
            withdrawn,
            busy_until,
            next_run_at,
            next_sensor_log,
            inspection_due,
            pending_flips,
            page_ops_since_poll,
            last_wall_w,
            cpu_temp_c,
            thermal,
            hw,
            jobs,
            schedules,
            faults,
            records,
            stores,
            ..
        } = fleet;

        for i in 0..plans.len() {
            if t < install_at[i] || withdrawn[i] {
                continue;
            }
            let encl = match placement[i] {
                Placement::Tent => tent_zone_states[zone[i] as usize],
                Placement::Basement => basement_zone_states[zone[i] as usize],
            };
            let util = if hw.is_running(i) && t < busy_until[i] {
                1.0
            } else {
                0.0
            };
            let cpu_w = hw.cpu_power_w(i, util);
            let dc_w = hw.dc_power_w(i, util);
            thermal.step_one(i, dt_secs, encl.air_temp_c, cpu_w, dc_w);
            cpu_temp_c[i] = thermal.cpu_temp_c(i);
            last_wall_w[i] = hw.wall_power_w(i, util);
            hw.tick(i, dt_hours, thermal.hdd_temp_c(i));
            let sensor_reading = hw.sensor_read_cpu_temp(i, cpu_temp_c[i]);

            // Sensor log.
            if t >= next_sensor_log[i] {
                self.line_buf.clear();
                let _ = match sensor_reading {
                    Some(v) => writeln!(
                        self.line_buf,
                        "{} cpu={:.1} rh={:.0}",
                        t.datetime(),
                        v,
                        encl.air_rh_pct
                    ),
                    None => writeln!(
                        self.line_buf,
                        "{} cpu=n/a rh={:.0}",
                        t.datetime(),
                        encl.air_rh_pct
                    ),
                };
                stores[i].append(&self.sensors_log, self.line_buf.as_bytes());
                next_sensor_log[i] = t + sensor_log_interval;
            }

            // Stochastic faults.
            if stochastic && fault_poll_due && hw.is_running(i) {
                let page_ops = std::mem::take(&mut page_ops_since_poll[i]);
                let outcome = faults[i].poll(poll_hours, cpu_temp_c[i], encl.air_rh_pct, page_ops);
                for kind in &outcome.faults {
                    match kind {
                        FaultKind::TransientSystemFailure => self.hangs.push((i, t)),
                        FaultKind::SensorChipErratic => {
                            hw.sensor_inject_cold_fault(i);
                            fault_events.push(FaultEvent {
                                at: t,
                                host: HostId(plans[i].id),
                                kind: *kind,
                            });
                        }
                        FaultKind::DiskPendingSector => {
                            hw.disks_inject_pending_sector0(i);
                            fault_events.push(FaultEvent {
                                at: t,
                                host: HostId(plans[i].id),
                                kind: *kind,
                            });
                        }
                        FaultKind::PsuFailure => {
                            hw.psu_fail(i);
                            self.hangs.push((i, t));
                        }
                        _ => {}
                    }
                }
                if outcome.memory_flips > 0 {
                    for _ in 0..outcome.memory_flips {
                        if hw.memory_apply_bit_flip(i)
                            == frostlab_hardware::memory::FlipOutcome::SilentCorruption
                        {
                            pending_flips[i] += 1;
                        }
                        fault_events.push(FaultEvent {
                            at: t,
                            host: HostId(plans[i].id),
                            kind: FaultKind::MemoryBitFlip,
                        });
                    }
                }
            }

            // Workload.
            if hw.is_running(i) && t >= next_run_at[i] {
                let flips = std::mem::take(&mut pending_flips[i]);
                let outcome = jobs[i].run(flips);
                busy_until[i] = t + SimDuration::secs(outcome.duration_secs as i64);
                page_ops_since_poll[i] += outcome.page_ops;
                hw.memory_record_page_ops(i, outcome.page_ops);
                workload.record_run(plans[i].id, outcome.page_ops);
                if tracer.host_spans_enabled() {
                    tracer.span(
                        &format!("host/{}", plans[i].id),
                        "job-run",
                        t,
                        busy_until[i],
                        &[
                            ("page_ops", FieldValue::U64(outcome.page_ops)),
                            ("hash_ok", FieldValue::Bool(outcome.hash_ok)),
                            ("flips", FieldValue::U64(u64::from(flips))),
                        ],
                    );
                }
                self.line_buf.clear();
                let _ = writeln!(self.line_buf, "{} {} run", t.datetime(), outcome.hash);
                stores[i].append(&self.md5sums_log, self.line_buf.as_bytes());
                if !outcome.hash_ok {
                    workload.record_hash_error(plans[i].id, placement[i], t);
                    if let Some(bytes) = outcome.stored_archive {
                        stored_archives.push(StoredArchive {
                            host: plans[i].id,
                            at: t,
                            bytes,
                        });
                    }
                }
                schedules[i].resume_at(t);
                next_run_at[i] = schedules[i].next_run();
            }

            // Repair visit.
            if let Some(due) = inspection_due[i] {
                if t >= due {
                    inspection_due[i] = None;
                    match records[i].inspect(repair_policy) {
                        RepairAction::ResetInPlace => {
                            hw.reset(i);
                            schedules[i].resume_at(t);
                            next_run_at[i] = schedules[i].next_run();
                            watchdog.resolve(&format!("host-{}", plans[i].id), t, "reset in place");
                        }
                        RepairAction::TakeIndoors => self.withdrawals.push(i),
                    }
                }
            }
        }
        for (idx, at) in self.hangs.drain(..) {
            ctx.apply_hang(idx, at);
        }
        for idx in self.withdrawals.drain(..) {
            let id = ctx.fleet.plans[idx].id;
            ctx.take_indoors(idx);
            ctx.watchdog
                .resolve(&format!("host-{id}"), t, "taken indoors (memtest)");
        }
        if fault_poll_due {
            self.next_fault_poll = t + ctx.cfg.fault_poll_interval;
        }
    }
}

/// Step 6: the scheduled collection round with the watchdog's staleness
/// sweep, then catch-up retries with backoff for hosts whose mirror is
/// stale.
#[derive(Debug)]
pub struct CollectionPhase {
    next_round: SimTime,
}

impl CollectionPhase {
    /// Stock collection phase scheduled from the campaign config.
    pub fn new(cfg: &ExperimentConfig) -> CollectionPhase {
        CollectionPhase {
            next_round: cfg.start + cfg.collection_interval,
        }
    }
}

impl TickPhase for CollectionPhase {
    fn name(&self) -> &str {
        "collection"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        let t = ctx.now;
        if t >= self.next_round {
            for idx in 0..ctx.fleet.len() {
                if !ctx.fleet.installed(idx, t) {
                    continue;
                }
                // `&&` short-circuits: the chaos draw is only consumed for
                // hosts that are reachable in the first place.
                let reachable = ctx.reachable(idx) && !ctx.chaos_drops_attempt(t);
                ctx.collector
                    .collect(&mut ctx.fleet.stores[idx], reachable, t);
                // Staleness check: alarm only when nothing else (an open
                // switch or host incident) already explains the gap.
                let id = ctx.fleet.plans[idx].id;
                let explained = ctx.watchdog.is_open(&format!("host-{id}"))
                    || (ctx.fleet.placement[idx] == Placement::Tent
                        && ctx
                            .watchdog
                            .is_open(&format!("switch-{}", switch_assignment(id))));
                let staleness = ctx.collector.staleness(id, t);
                ctx.watchdog.observe_staleness(id, staleness, explained, t);
            }
            self.next_round = t + ctx.cfg.collection_interval;
        }

        // Catch-up retries with backoff for hosts whose mirror is stale. A
        // scheduled failure at this same tick has already pushed the host's
        // next attempt into the future, so a host is never tried twice in
        // one tick.
        for id in ctx.collector.due_retries(t) {
            let Some(idx) = ctx.fleet.index_of(id) else {
                continue;
            };
            if !ctx.fleet.installed(idx, t) {
                continue;
            }
            let reachable = ctx.reachable(idx) && !ctx.chaos_drops_attempt(t);
            ctx.collector
                .retry_collect(&mut ctx.fleet.stores[idx], reachable, t);
        }
    }
}

/// Step 7: integrate the tent group's wall power — the true integral and
/// the Technoline Cost Control meter's imperfect view of it. Reads the
/// power the enclosure phase published this tick, so the meter and the
/// tent physics always agree on the watts.
#[derive(Debug, Default)]
pub struct PowerIntegrationPhase;

impl PowerIntegrationPhase {
    /// Stock power-integration phase.
    pub fn new() -> PowerIntegrationPhase {
        PowerIntegrationPhase
    }
}

impl TickPhase for PowerIntegrationPhase {
    fn name(&self) -> &str {
        "power-integration"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        ctx.energy_true_wh += ctx.tent_power_w * ctx.dt_hours;
        ctx.meter.integrate(ctx.tent_power_w, ctx.dt_hours);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use frostlab_thermal::tent::TentConfig;

    fn ctx_at(cfg: ExperimentConfig) -> CampaignCtx {
        CampaignCtx::new(cfg)
    }

    #[test]
    fn scripted_event_exactly_on_tick_boundary_fires_that_tick() {
        let cfg = ExperimentConfig::short(1, 3);
        let start = cfg.start;
        let mut ctx = ctx_at(cfg);
        let mut phase =
            ScriptPhase::with_events(vec![(start, ScriptedEvent::SwitchDown { switch: 0 })]);
        ctx.now = start;
        phase.step(&mut ctx);
        assert!(!ctx.switch_up[0], "event due exactly at the tick must fire");
        assert!(ctx.watchdog.is_open("switch-0"));
    }

    #[test]
    fn scripted_event_between_ticks_fires_on_next_tick_with_original_due_time() {
        let cfg = ExperimentConfig::short(1, 3);
        let start = cfg.start;
        let tick = cfg.tick;
        let mut ctx = ctx_at(cfg);
        // Due 1 s after the first tick: must NOT fire at `start`, must fire
        // at `start + tick`, and the incident keeps the scripted due time,
        // not the tick time.
        let due = start + SimDuration::secs(1);
        let mut phase =
            ScriptPhase::with_events(vec![(due, ScriptedEvent::SwitchDown { switch: 1 })]);
        ctx.now = start;
        phase.step(&mut ctx);
        assert!(ctx.switch_up[1], "not due yet");
        ctx.now = start + tick;
        phase.step(&mut ctx);
        assert!(!ctx.switch_up[1]);
        let incident = ctx
            .watchdog
            .incidents()
            .iter()
            .find(|i| i.subject == "switch-1")
            .expect("incident opened");
        assert_eq!(incident.started, due, "incident stamped with due time");
    }

    #[test]
    fn multiple_due_events_fire_in_script_order_within_one_tick() {
        let cfg = ExperimentConfig::short(1, 3);
        let start = cfg.start;
        let tick = cfg.tick;
        let mut ctx = ctx_at(cfg);
        // Both come due within one tick window; down-then-restore must
        // leave the switch up (the reverse order would leave it down).
        let mut phase = ScriptPhase::with_events(vec![
            (
                start + SimDuration::secs(10),
                ScriptedEvent::SwitchDown { switch: 0 },
            ),
            (
                start + SimDuration::secs(20),
                ScriptedEvent::SwitchRestored { switch: 0 },
            ),
        ]);
        ctx.now = start + tick;
        phase.step(&mut ctx);
        assert!(ctx.switch_up[0], "down then restore, in order");
        assert!(!ctx.watchdog.is_open("switch-0"));
    }

    #[test]
    fn script_event_at_campaign_end_still_fires_on_final_tick() {
        let cfg = ExperimentConfig::short(1, 3);
        let end = cfg.end;
        let mut ctx = ctx_at(cfg);
        let mut phase = ScriptPhase::with_events(vec![(
            end,
            ScriptedEvent::TentReconfig {
                mark: 'R',
                config: TentConfig::initial(),
            },
        )]);
        ctx.now = end;
        phase.step(&mut ctx);
        // No panic, event consumed: a second step must not re-fire it.
        phase.step(&mut ctx);
    }

    #[test]
    fn timing_probe_counts_calls_and_preserves_name() {
        let cfg = ExperimentConfig::short(1, 3);
        let mut ctx = ctx_at(cfg);
        let mut probe = TimingProbe::new(Box::new(WeatherPhase::new()));
        assert_eq!(probe.name(), "weather");
        for _ in 0..5 {
            probe.step(&mut ctx);
            ctx.now += SimDuration::minutes(1);
        }
        let timing = probe.timing().expect("probe measures");
        assert_eq!(timing.phase, "weather");
        assert_eq!(timing.calls, 5);
        assert!(timing.total_ms >= 0.0);
    }

    #[test]
    fn stock_phases_report_no_timing() {
        assert!(WeatherPhase::new().timing().is_none());
        assert!(PowerIntegrationPhase::new().timing().is_none());
    }

    #[test]
    fn nested_timing_probes_keep_the_inner_name_and_do_not_double_count() {
        let cfg = ExperimentConfig::short(1, 3);
        let mut ctx = ctx_at(cfg);
        let inner = TimingProbe::new(Box::new(WeatherPhase::new()));
        let mut outer = TimingProbe::new(Box::new(inner));
        assert_eq!(outer.name(), "weather");
        for _ in 0..3 {
            outer.step(&mut ctx);
            ctx.now += SimDuration::minutes(1);
        }
        let timing = outer.timing().expect("probe measures");
        assert_eq!(timing.phase, "weather", "inner phase name survives");
        assert_eq!(timing.calls, 3, "one count per step, not two");
    }
}
