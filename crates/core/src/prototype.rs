//! The prototype weekend (T5).
//!
//! §3.1: Friday Feb 12 → Monday Feb 15, one generic PC sandwiched between
//! two plastic boxes on the terrace, S.M.A.R.T. and lm-sensors monitored
//! throughout. The local weather unit recorded a minimum of −10.2 °C and a
//! mean of −9.2 °C; lm-sensors showed the CPU down to −4 °C; the machine
//! survived the whole weekend and the test was declared a success.

use frostlab_climate::station::{StationConfig, WeatherStation};
use frostlab_climate::weather::WeatherModel;
use frostlab_hardware::server::{Server, ServerSpec};
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_thermal::enclosure::{Enclosure, PlasticBoxes};
use frostlab_thermal::server_case::{ServerCaseThermal, ServerThermalParams};

use crate::config::ExperimentConfig;

/// What the weekend produced.
#[derive(Debug, Clone)]
pub struct PrototypeReport {
    /// Minimum outside temperature observed, °C (paper: −10.2).
    pub outside_min_c: f64,
    /// Mean outside temperature, °C (paper: −9.2).
    pub outside_mean_c: f64,
    /// Minimum CPU temperature reported by lm-sensors, °C (paper: −4).
    pub cpu_min_c: f64,
    /// Minimum drive temperature from S.M.A.R.T., °C.
    pub hdd_min_c: f64,
    /// Did the machine stay operational the whole weekend?
    pub survived: bool,
    /// Did the drives pass their self-tests afterwards?
    pub smart_ok: bool,
}

/// Run the prototype weekend under the given experiment configuration
/// (uses its climate and seed; ignores the fleet).
pub fn run_prototype(cfg: &ExperimentConfig) -> PrototypeReport {
    let root = Rng::new(cfg.seed);
    let mut wx = WeatherModel::new(cfg.climate.clone(), cfg.seed);
    let start = SimTime::from_date(2010, 2, 12) + SimDuration::hours(16);
    let end = SimTime::from_date(2010, 2, 15) + SimDuration::hours(10);
    let mut station = WeatherStation::new(StationConfig::default(), start, &root);

    let first = wx.sample_at(start);
    let mut boxes = PlasticBoxes::new(&first);
    let mut server = Server::new(ServerSpec::vendor_a());
    let mut thermal = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), first.temp_c);

    let mut outside_min = f64::INFINITY;
    let mut outside_sum = 0.0;
    let mut outside_n = 0u64;
    let mut t = start;
    let tick = SimDuration::minutes(1);
    while t <= end {
        if let Some(obs) = station.poll(&mut wx, t) {
            outside_min = outside_min.min(obs.temp_c);
            outside_sum += obs.temp_c;
            outside_n += 1;
        }
        let weather = wx.sample_at(t);
        // The prototype idled (no synthetic load yet): ~idle power.
        let spec = &server.spec;
        boxes.step(60.0, &weather, spec.idle_power_w);
        let state = boxes.state();
        thermal.step(60.0, state.air_temp_c, spec.cpu_idle_w, spec.idle_power_w);
        server.sensors.read_cpu_temp(thermal.cpu_temp_c());
        server.tick(1.0 / 60.0, thermal.hdd_temp_c());
        t += tick;
    }

    let smart_ok = server.storage.all_long_tests_pass();
    let hdd_min = {
        let mut min = f64::INFINITY;
        server.storage.for_each_disk_mut(|d| {
            min = min.min(d.smart().min_temperature_c);
        });
        min
    };
    PrototypeReport {
        outside_min_c: outside_min,
        outside_mean_c: outside_sum / outside_n.max(1) as f64,
        cpu_min_c: server.sensors.min_seen_c(),
        hdd_min_c: hdd_min,
        survived: server.is_running(),
        smart_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn prototype_matches_paper_shape() {
        // Thanks to the climate anchor the weekend statistics land near the
        // paper's reported values for any seed.
        for seed in [1, 42, 2010] {
            let report = run_prototype(&ExperimentConfig::paper_scripted(seed));
            assert!(report.survived, "seed {seed}: prototype must survive");
            assert!(report.smart_ok);
            assert!(
                (-13.0..=-6.0).contains(&report.outside_mean_c),
                "seed {seed}: mean {} (paper −9.2)",
                report.outside_mean_c
            );
            assert!(
                (-16.0..=-8.0).contains(&report.outside_min_c),
                "seed {seed}: min {} (paper −10.2)",
                report.outside_min_c
            );
            assert!(
                report.outside_min_c < report.outside_mean_c,
                "min below mean"
            );
            // CPU runs a few kelvin above ambient at idle: paper saw −4 °C.
            assert!(
                (-9.0..=0.0).contains(&report.cpu_min_c),
                "seed {seed}: CPU min {} (paper −4)",
                report.cpu_min_c
            );
            assert!(report.cpu_min_c > report.outside_min_c);
        }
    }

    #[test]
    fn deterministic() {
        let a = run_prototype(&ExperimentConfig::paper_scripted(5));
        let b = run_prototype(&ExperimentConfig::paper_scripted(5));
        assert_eq!(a.outside_min_c, b.outside_min_c);
        assert_eq!(a.cpu_min_c, b.cpu_min_c);
    }
}
