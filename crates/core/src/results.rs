//! Everything a campaign measures.

use std::collections::BTreeMap;

use frostlab_analysis::failure::FailureComparison;
use frostlab_climate::station::WeatherObservation;
use frostlab_faults::repair::Disposition;
use frostlab_faults::types::FaultEvent;
use frostlab_hardware::server::Vendor;
use frostlab_netsim::collector::{AttemptKind, CollectRecord, CollectionGap};
use frostlab_obs::CampaignObs;
use frostlab_simkern::time::SimTime;
use frostlab_trace::CampaignTrace;

use crate::watchdog::{Incident, IncidentRecord};
use frostlab_telemetry::series::TimeSeries;
use frostlab_workload::stats::{Placement, WorkloadStats};

/// Per-host outcome summary.
#[derive(Debug, Clone)]
pub struct HostSummary {
    /// Paper host number.
    pub id: u32,
    /// Vendor letter.
    pub vendor: Vendor,
    /// Placement group.
    pub placement: Placement,
    /// Known-defective series?
    pub defective: bool,
    /// Install time.
    pub installed_at: SimTime,
    /// Timestamps of transient system failures.
    pub failures: Vec<SimTime>,
    /// In-place resets performed.
    pub resets: u32,
    /// Final repair-workflow disposition.
    pub disposition: Disposition,
    /// Lowest CPU temperature truthfully reported, °C.
    pub min_cpu_c: f64,
    /// Number of −111 °C erratic sensor readings produced.
    pub sensor_erratic_reads: u64,
    /// Memory page operations accumulated.
    pub page_ops: u64,
    /// Silent memory corruptions suffered (non-ECC flips).
    pub silent_corruptions: u64,
    /// All drives passing their long self-tests at campaign end?
    pub disks_pass_long_test: bool,
    /// Outcome of the indoor Memtest86+ diagnosis, if the host was taken
    /// indoors (`Some(true)` = the DIMM was condemned, like host #15's).
    pub memtest_failed: Option<bool>,
}

/// A stored (wrong-hash) archive kept for forensics.
#[derive(Debug, Clone)]
pub struct StoredArchive {
    /// Host that produced it.
    pub host: u32,
    /// Completion time of the offending run.
    pub at: SimTime,
    /// The corrupted compressed tarball.
    pub bytes: Vec<u8>,
}

/// Full results of one campaign.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// Root seed the campaign ran with.
    pub seed: u64,
    /// Campaign window.
    pub window: (SimTime, SimTime),
    /// The SMEAR III surrogate's outside observations.
    pub outside: Vec<WeatherObservation>,
    /// Tent air temperature (model truth, 10-min cadence).
    pub tent_temp_truth: TimeSeries,
    /// Tent air RH (model truth).
    pub tent_rh_truth: TimeSeries,
    /// Basement air temperature (model truth).
    pub basement_temp: TimeSeries,
    /// Lascar logger temperature, raw (with indoor excursions).
    pub lascar_temp_raw: TimeSeries,
    /// Lascar RH, raw.
    pub lascar_rh_raw: TimeSeries,
    /// Lascar temperature after outlier removal (the published series).
    pub lascar_temp: TimeSeries,
    /// Lascar RH after outlier removal.
    pub lascar_rh: TimeSeries,
    /// Outlier samples removed from the Lascar channels.
    pub lascar_outliers_removed: usize,
    /// Workload bookkeeping.
    pub workload: WorkloadStats,
    /// Every fault event that occurred.
    pub fault_events: Vec<FaultEvent>,
    /// Per-host summaries.
    pub hosts: BTreeMap<u32, HostSummary>,
    /// Collector attempt history (scheduled rounds and catch-up retries).
    pub collection: Vec<CollectRecord>,
    /// Healed collection outages, per host (start, end, failed attempts).
    pub collection_gaps: Vec<CollectionGap>,
    /// The watchdog's incident ledger: switch deaths, host hangs, sensor
    /// faults and unexplained staleness, with resolution timestamps.
    pub incidents: Vec<Incident>,
    /// Wrong-hash archives kept for forensics.
    pub stored_archives: Vec<StoredArchive>,
    /// Tent-group energy as the Technoline counted it, kWh.
    pub tent_energy_metered_kwh: f64,
    /// Tent-group energy, true, kWh.
    pub tent_energy_true_kwh: f64,
    /// The campaign's frozen trace, if the scenario enabled tracing
    /// (`None` for the default no-op tracer).
    pub trace: Option<CampaignTrace>,
    /// The campaign's frozen observability record — alert timeline,
    /// SLO attainment, rollup report and flight dumps — if the scenario
    /// armed the observatory (`None` otherwise).
    pub obs: Option<CampaignObs>,
}

impl ExperimentResults {
    /// Hosts that suffered at least one transient system failure, per group
    /// — the T1 numbers. Denominators are the *initially installed* hosts
    /// (the paper's "of the eighteen hosts installed initially").
    pub fn failure_comparison(&self) -> FailureComparison {
        let count = |p: Placement| {
            self.hosts
                .values()
                .filter(|h| h.placement == p && !h.failures.is_empty())
                .count() as u64
        };
        let initial = |p: Placement| {
            self.hosts
                .values()
                .filter(|h| h.placement == p && h.id != 19)
                .count() as u64
        };
        FailureComparison::new(
            count(Placement::Tent),
            initial(Placement::Tent),
            count(Placement::Basement),
            initial(Placement::Basement),
        )
    }

    /// Collection availability over the campaign: the fraction of
    /// *scheduled* 20-minute rounds that succeeded. Backoff-driven catch-up
    /// retries are excluded so the retry policy's persistence cannot
    /// flatter (or dilute) the cadence the paper reports on.
    pub fn collection_availability(&self) -> f64 {
        let (mut ok, mut total) = (0usize, 0usize);
        for r in &self.collection {
            if r.kind != AttemptKind::Scheduled {
                continue;
            }
            total += 1;
            if matches!(
                r.outcome,
                frostlab_netsim::collector::CollectOutcome::Success { .. }
            ) {
                ok += 1;
            }
        }
        if total == 0 {
            return 1.0;
        }
        ok as f64 / total as f64
    }

    /// The incident ledger in its machine-readable form.
    pub fn incident_log(&self) -> Vec<IncidentRecord> {
        self.incidents.iter().map(IncidentRecord::from).collect()
    }

    /// The incident ledger as pretty JSON.
    pub fn incident_log_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.incident_log())
    }

    /// Literal bytes the rsync collection actually moved over the wire
    /// across the campaign (copy tokens excluded).
    pub fn collection_literal_bytes(&self) -> u64 {
        self.collection
            .iter()
            .map(|r| match r.outcome {
                frostlab_netsim::collector::CollectOutcome::Success { literal_bytes, .. } => {
                    literal_bytes as u64
                }
                _ => 0,
            })
            .sum()
    }

    /// Mean tent-group power over the campaign, W.
    pub fn tent_mean_power_w(&self) -> f64 {
        let hours = (self.window.1 - self.window.0).as_hours_f64();
        if hours <= 0.0 {
            0.0
        } else {
            self.tent_energy_true_kwh * 1000.0 / hours
        }
    }

    /// The lowest CPU temperature any host truthfully reported — the
    /// paper's "CPU had been operating in temperatures as low as −4 °C"
    /// claim generalized to the fleet.
    pub fn fleet_min_cpu_c(&self) -> f64 {
        self.hosts
            .values()
            .map(|h| h.min_cpu_c)
            .fold(f64::INFINITY, f64::min)
    }

    /// Condensed, machine-readable summary for dashboards / EXPERIMENTS.md
    /// evidence — and the per-run projection the ensemble engine streams,
    /// so an N-campaign sweep retains O(1) memory instead of N full
    /// [`ExperimentResults`]. Every field is a cheap fold over data the
    /// campaign already collected; nothing here re-simulates.
    pub fn summary(&self) -> CampaignSummary {
        let cmp = self.failure_comparison();
        let finite = |x: Option<f64>| x.unwrap_or(f64::NAN);
        // Empty min-folds yield +inf; normalize to NaN so "no sample" has
        // one canonical encoding. JSON maps every non-finite float to
        // null, so a summary that round-trips through a result store
        // (frostlab-farm) must decode null to a value downstream
        // aggregation treats exactly like the in-process one — and
        // min/max trackers ignore NaN but would absorb ±inf.
        let or_nan = |x: f64| if x.is_finite() { x } else { f64::NAN };
        CampaignSummary {
            seed: self.seed,
            start: self.window.0.to_string(),
            end: self.window.1.to_string(),
            total_runs: self.workload.total_runs(),
            wrong_hashes: self.workload.hash_errors().len(),
            wrong_hashes_tent: self.workload.hash_errors_by_placement().0,
            silent_corruptions: self.hosts.values().map(|h| h.silent_corruptions).sum(),
            stored_archives: self.stored_archives.len(),
            failed_hosts_tent: cmp.outside.failed_hosts,
            failed_hosts_control: cmp.control.failed_hosts,
            host_resets: self.hosts.values().map(|h| u64::from(h.resets)).sum(),
            fleet_failure_rate: cmp.fleet().rate,
            comparable_with_intel: cmp.comparable_with_intel(),
            outside_min_c: or_nan(
                self.outside
                    .iter()
                    .map(|o| o.temp_c)
                    .fold(f64::INFINITY, f64::min),
            ),
            tent_temp_min_c: finite(self.tent_temp_truth.min()),
            tent_temp_max_c: finite(self.tent_temp_truth.max()),
            tent_rh_max_pct: finite(self.tent_rh_truth.max()),
            fleet_min_cpu_c: or_nan(self.fleet_min_cpu_c()),
            collection_availability: self.collection_availability(),
            tent_energy_kwh: self.tent_energy_true_kwh,
            lascar_outliers_removed: self.lascar_outliers_removed,
            total_page_ops: self.workload.total_page_ops(),
        }
    }
}

/// Flat, serializable campaign summary (see [`ExperimentResults::summary`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignSummary {
    /// Root seed.
    pub seed: u64,
    /// Window start (ISO-ish datetime).
    pub start: String,
    /// Window end.
    pub end: String,
    /// Synthetic-load runs executed.
    pub total_runs: u64,
    /// Wrong md5sums observed.
    pub wrong_hashes: usize,
    /// Wrong md5sums from tent hosts.
    pub wrong_hashes_tent: usize,
    /// Silent (non-ECC) memory corruptions across the fleet.
    pub silent_corruptions: u64,
    /// Wrong-hash archives kept for forensics.
    pub stored_archives: usize,
    /// Tent hosts with ≥1 transient failure.
    pub failed_hosts_tent: u64,
    /// Control hosts with ≥1 transient failure.
    pub failed_hosts_control: u64,
    /// In-place resets performed across the fleet.
    pub host_resets: u64,
    /// Whole-fleet host failure rate.
    pub fleet_failure_rate: f64,
    /// Does the Wilson interval cover Intel's 4.46 %?
    pub comparable_with_intel: bool,
    /// Campaign minimum outside temperature, °C.
    pub outside_min_c: f64,
    /// Tent air temperature minimum (model truth), °C.
    pub tent_temp_min_c: f64,
    /// Tent air temperature maximum (model truth), °C.
    pub tent_temp_max_c: f64,
    /// Tent relative-humidity maximum (model truth), %.
    pub tent_rh_max_pct: f64,
    /// Lowest truthful CPU reading in the fleet, °C.
    pub fleet_min_cpu_c: f64,
    /// Fraction of collection rounds that succeeded.
    pub collection_availability: f64,
    /// Tent-group energy, kWh.
    pub tent_energy_kwh: f64,
    /// Lascar samples removed as indoor-excursion outliers.
    pub lascar_outliers_removed: usize,
    /// Total memory page operations (exposure).
    pub total_page_ops: u64,
}

impl CampaignSummary {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}
