//! Composing campaigns out of [`TickPhase`]s.
//!
//! [`ScenarioBuilder::paper`] assembles the stock seven-phase pipeline
//! that reproduces the paper's campaign; `insert_before` / `insert_after`
//! / `replace` / `remove` / `wrap` then let a what-if study restructure
//! the pipeline without forking the orchestrator:
//!
//! ```no_run
//! use frostlab_core::config::ExperimentConfig;
//! use frostlab_core::scenario::ScenarioBuilder;
//!
//! // The paper's campaign, with per-phase wall-clock metering.
//! let (results, timings) = ScenarioBuilder::paper(ExperimentConfig::paper_scripted(42))
//!     .with_timing()
//!     .build()
//!     .run_with_timings();
//! println!("runs: {}", results.workload.total_runs());
//! for t in timings {
//!     println!("{:>20}: {:.1} ms over {} calls", t.phase, t.total_ms, t.calls);
//! }
//! ```
//!
//! The stock phase names, in pipeline order: `weather`,
//! `enclosure-thermal`, `logger-poll`, `script`, `host-step`,
//! `collection`, `power-integration`.

use frostlab_obs::{ObsConfig, ObsState};
use frostlab_trace::{TraceConfig, Tracer};

use crate::config::ExperimentConfig;
use crate::context::CampaignCtx;
use crate::observe::{ObservePhase, TracePhaseProbe, TraceSamplePhase};
use crate::phases::{
    CollectionPhase, EnclosureThermalPhase, HostStepPhase, LoggerPollPhase, PhaseTiming,
    PowerIntegrationPhase, ScriptPhase, TickPhase, TimingProbe, WeatherPhase,
};
use crate::results::ExperimentResults;

/// Builds a [`Scenario`] by composing [`TickPhase`]s over a fresh
/// [`CampaignCtx`].
pub struct ScenarioBuilder {
    ctx: CampaignCtx,
    phases: Vec<Box<dyn TickPhase>>,
}

impl ScenarioBuilder {
    /// The stock pipeline reproducing the paper's campaign — the seven
    /// phases in the order the old monolithic orchestrator ran them.
    pub fn paper(cfg: ExperimentConfig) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::empty(cfg);
        let cfg = &b.ctx.cfg;
        let phases: Vec<Box<dyn TickPhase>> = vec![
            Box::new(WeatherPhase::new()),
            Box::new(EnclosureThermalPhase::new()),
            Box::new(LoggerPollPhase::new(cfg)),
            Box::new(ScriptPhase::from_config(cfg)),
            Box::new(HostStepPhase::new(cfg)),
            Box::new(CollectionPhase::new(cfg)),
            Box::new(PowerIntegrationPhase::new()),
        ];
        b.phases = phases;
        b
    }

    /// A pipeline with no phases — the campaign state exists but nothing
    /// steps it. Push phases to build a scenario from scratch.
    pub fn empty(cfg: ExperimentConfig) -> ScenarioBuilder {
        ScenarioBuilder {
            ctx: CampaignCtx::new(cfg),
            phases: Vec::new(),
        }
    }

    /// The campaign config this scenario was built from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.ctx.cfg
    }

    /// Current phase names, in pipeline order.
    pub fn phase_names(&self) -> Vec<String> {
        self.phases.iter().map(|p| p.name().to_string()).collect()
    }

    /// Append a phase at the end of the pipeline.
    pub fn push(mut self, phase: Box<dyn TickPhase>) -> ScenarioBuilder {
        self.phases.push(phase);
        self
    }

    /// Insert a phase immediately before the named one.
    ///
    /// # Panics
    /// Panics if no phase has that name — a misaddressed pipeline edit is
    /// a scenario-definition bug, not a runtime condition.
    pub fn insert_before(mut self, name: &str, phase: Box<dyn TickPhase>) -> ScenarioBuilder {
        let idx = self.index_of(name);
        self.phases.insert(idx, phase);
        self
    }

    /// Insert a phase immediately after the named one.
    ///
    /// # Panics
    /// Panics if no phase has that name.
    pub fn insert_after(mut self, name: &str, phase: Box<dyn TickPhase>) -> ScenarioBuilder {
        let idx = self.index_of(name);
        self.phases.insert(idx + 1, phase);
        self
    }

    /// Swap the named phase for a replacement (e.g. a replayed-trace
    /// weather phase in place of the synthetic one).
    ///
    /// # Panics
    /// Panics if no phase has that name.
    pub fn replace(mut self, name: &str, phase: Box<dyn TickPhase>) -> ScenarioBuilder {
        let idx = self.index_of(name);
        self.phases[idx] = phase;
        self
    }

    /// Drop the named phase from the pipeline.
    ///
    /// # Panics
    /// Panics if no phase has that name.
    pub fn remove(mut self, name: &str) -> ScenarioBuilder {
        let idx = self.index_of(name);
        self.phases.remove(idx);
        self
    }

    /// Wrap the named phase in a decorator (the wrapper decides whether
    /// and how to delegate — timing probes, conditional skips, tracing).
    ///
    /// # Panics
    /// Panics if no phase has that name.
    pub fn wrap(
        mut self,
        name: &str,
        wrapper: impl FnOnce(Box<dyn TickPhase>) -> Box<dyn TickPhase>,
    ) -> ScenarioBuilder {
        let idx = self.index_of(name);
        // Placeholder swap: `WeatherPhase` stands in while the real phase
        // moves through the wrapper.
        let inner = std::mem::replace(&mut self.phases[idx], Box::new(WeatherPhase::new()));
        self.phases[idx] = wrapper(inner);
        self
    }

    /// Wrap *every* phase in a [`TimingProbe`] so
    /// [`Scenario::run_with_timings`] can report the per-phase wall-clock
    /// breakdown.
    ///
    /// Phases that already report a timing (e.g. one manually wrapped via
    /// [`ScenarioBuilder::wrap`]) are left alone, so the phase is metered
    /// exactly once under its own name.
    pub fn with_timing(mut self) -> ScenarioBuilder {
        self.phases = self
            .phases
            .into_iter()
            .map(|p| {
                if p.timing().is_some() {
                    p
                } else {
                    Box::new(TimingProbe::new(p)) as Box<dyn TickPhase>
                }
            })
            .collect();
        self
    }

    /// Arm the campaign's tracer and instrument the pipeline: every phase
    /// currently in the pipeline is wrapped in a [`TracePhaseProbe`] and a
    /// [`TraceSamplePhase`] is appended to sample metrics at each tick
    /// boundary. The finished run carries the frozen trace in
    /// [`ExperimentResults::trace`].
    ///
    /// Call this *after* structural edits so late-added phases are probed
    /// too. Tracing draws no randomness and no wall-clock, so results stay
    /// byte-identical to an untraced run and the exported trace is
    /// byte-identical across runs and ensemble thread counts.
    pub fn with_tracing(mut self, cfg: TraceConfig) -> ScenarioBuilder {
        self.ctx.tracer = Tracer::enabled(cfg, self.ctx.cfg.start);
        // The sampling phases (`trace-sample`, `observe`) are never
        // span-probed themselves — they read state, they aren't
        // substrate work — which also keeps the trace byte-identical
        // whichever order tracing and observability are armed in.
        self.phases = self
            .phases
            .into_iter()
            .map(|p| {
                if p.name() == "observe" || p.name() == "trace-sample" {
                    p
                } else {
                    Box::new(TracePhaseProbe::new(p)) as Box<dyn TickPhase>
                }
            })
            .collect();
        // A pipeline that already carries the observatory's sampling
        // phase must not sample twice: `observe` subsumes `trace-sample`.
        if !self.phases.iter().any(|p| p.name() == "observe") {
            self.phases.push(Box::new(TraceSamplePhase::new()));
        }
        self
    }

    /// Arm the fleet health observatory: dimensional rollups, SLO
    /// burn-rate alerting and the incident flight recorder (see
    /// [`frostlab_obs::ObsConfig`]). An [`ObservePhase`] joins the
    /// pipeline — *replacing* any `trace-sample` phase, since it performs
    /// the same trace sampling inside its own O(hosts) fleet scan — and
    /// the finished run carries the frozen record in
    /// [`ExperimentResults::obs`].
    ///
    /// Composes with [`ScenarioBuilder::with_tracing`] in either order;
    /// call it *before* [`ScenarioBuilder::with_timing`] so the observe
    /// phase is metered too. Like tracing, observability draws no
    /// randomness and no wall-clock, so the campaign's physics and every
    /// golden artifact stay byte-identical.
    pub fn with_observability(mut self, cfg: ObsConfig) -> ScenarioBuilder {
        self.ctx.obs = Some(Box::new(ObsState::new(&cfg, self.ctx.cfg.tick)));
        if let Some(idx) = self.phases.iter().position(|p| p.name() == "trace-sample") {
            self.phases[idx] = Box::new(ObservePhase::new());
        } else if !self.phases.iter().any(|p| p.name() == "observe") {
            self.phases.push(Box::new(ObservePhase::new()));
        }
        self
    }

    /// Finish composition.
    pub fn build(self) -> Scenario {
        Scenario {
            ctx: self.ctx,
            phases: self.phases,
        }
    }

    fn index_of(&self, name: &str) -> usize {
        self.phases
            .iter()
            .position(|p| p.name() == name)
            .unwrap_or_else(|| {
                panic!(
                    "no phase named {name:?} in pipeline {:?}",
                    self.phase_names()
                )
            })
    }
}

/// A runnable campaign: a phase pipeline over a [`CampaignCtx`].
pub struct Scenario {
    ctx: CampaignCtx,
    phases: Vec<Box<dyn TickPhase>>,
}

impl Scenario {
    /// Run the campaign to completion.
    pub fn run(self) -> ExperimentResults {
        self.run_with_timings().0
    }

    /// Run the campaign and also return whatever per-phase wall-clock
    /// accounting the pipeline collected (empty unless phases were wrapped
    /// in [`TimingProbe`]s, e.g. via [`ScenarioBuilder::with_timing`]).
    pub fn run_with_timings(mut self) -> (ExperimentResults, Vec<PhaseTiming>) {
        let tick = self.ctx.cfg.tick;
        while self.ctx.now <= self.ctx.cfg.end {
            for phase in &mut self.phases {
                phase.step(&mut self.ctx);
            }
            self.ctx.now += tick;
        }
        let timings = self.phases.iter().filter_map(|p| p.timing()).collect();
        (self.ctx.finish(), timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::PhaseTiming;

    const STOCK: [&str; 7] = [
        "weather",
        "enclosure-thermal",
        "logger-poll",
        "script",
        "host-step",
        "collection",
        "power-integration",
    ];

    /// A phase that counts its own steps — for composition tests.
    struct CountingPhase {
        name: &'static str,
        steps: u64,
    }

    impl TickPhase for CountingPhase {
        fn name(&self) -> &str {
            self.name
        }
        fn step(&mut self, _ctx: &mut CampaignCtx) {
            self.steps += 1;
        }
    }

    #[test]
    fn paper_pipeline_has_the_stock_phases_in_order() {
        let b = ScenarioBuilder::paper(ExperimentConfig::short(1, 3));
        assert_eq!(b.phase_names(), STOCK);
    }

    #[test]
    fn builder_edits_address_phases_by_name() {
        let b = ScenarioBuilder::paper(ExperimentConfig::short(1, 3))
            .insert_before(
                "host-step",
                Box::new(CountingPhase {
                    name: "pre-host",
                    steps: 0,
                }),
            )
            .insert_after(
                "power-integration",
                Box::new(CountingPhase {
                    name: "post-power",
                    steps: 0,
                }),
            )
            .remove("collection")
            .replace(
                "script",
                Box::new(CountingPhase {
                    name: "no-script",
                    steps: 0,
                }),
            );
        assert_eq!(
            b.phase_names(),
            vec![
                "weather",
                "enclosure-thermal",
                "logger-poll",
                "no-script",
                "pre-host",
                "host-step",
                "power-integration",
                "post-power",
            ]
        );
    }

    #[test]
    #[should_panic(expected = "no phase named")]
    fn misaddressed_edit_panics() {
        let _ = ScenarioBuilder::paper(ExperimentConfig::short(1, 3)).remove("no-such-phase");
    }

    #[test]
    fn paper_builder_matches_the_experiment_shim_exactly() {
        let via_builder = ScenarioBuilder::paper(ExperimentConfig::short(2, 10))
            .build()
            .run();
        let via_shim = crate::experiment::Experiment::new(ExperimentConfig::short(2, 10)).run();
        assert_eq!(
            via_builder.workload.total_runs(),
            via_shim.workload.total_runs()
        );
        assert_eq!(via_builder.tent_temp_truth, via_shim.tent_temp_truth);
        assert_eq!(via_builder.incidents, via_shim.incidents);
        assert_eq!(
            via_builder.tent_energy_true_kwh,
            via_shim.tent_energy_true_kwh
        );
    }

    #[test]
    fn with_timing_meters_every_phase_without_changing_results() {
        let plain = ScenarioBuilder::paper(ExperimentConfig::short(3, 5))
            .build()
            .run();
        let (timed, timings) = ScenarioBuilder::paper(ExperimentConfig::short(3, 5))
            .with_timing()
            .build()
            .run_with_timings();
        assert_eq!(plain.workload.total_runs(), timed.workload.total_runs());
        assert_eq!(plain.tent_temp_truth, timed.tent_temp_truth);
        let names: Vec<&str> = timings.iter().map(|t| t.phase.as_str()).collect();
        assert_eq!(names, STOCK);
        // 5 days of 1-minute ticks, inclusive window.
        let expected_ticks = 5 * 24 * 60 + 1;
        for t in &timings {
            assert_eq!(t.calls, expected_ticks, "{}", t.phase);
        }
    }

    #[test]
    fn wrap_decorates_a_single_phase() {
        let (_, timings) = ScenarioBuilder::paper(ExperimentConfig::short(4, 2))
            .wrap("collection", |inner| Box::new(TimingProbe::new(inner)))
            .build()
            .run_with_timings();
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].phase, "collection");
        assert!(timings[0].calls > 0);
    }

    #[test]
    fn with_timing_after_manual_wrap_does_not_double_count() {
        // The collection phase is already probed by hand; `with_timing`
        // must leave it alone instead of nesting a second probe that
        // would report the phase twice (or double its wall-clock).
        let (_, timings) = ScenarioBuilder::paper(ExperimentConfig::short(4, 2))
            .wrap("collection", |inner| Box::new(TimingProbe::new(inner)))
            .with_timing()
            .build()
            .run_with_timings();
        let names: Vec<&str> = timings.iter().map(|t| t.phase.as_str()).collect();
        assert_eq!(names, STOCK, "each phase metered exactly once");
        let expected_ticks = 2 * 24 * 60 + 1;
        for t in &timings {
            assert_eq!(t.calls, expected_ticks, "{}", t.phase);
        }
    }

    #[test]
    fn with_tracing_records_a_trace_without_changing_results() {
        use frostlab_trace::TraceConfig;
        let plain = ScenarioBuilder::paper(ExperimentConfig::short(3, 2))
            .build()
            .run();
        let traced = ScenarioBuilder::paper(ExperimentConfig::short(3, 2))
            .with_tracing(TraceConfig::default())
            .build()
            .run();
        assert!(plain.trace.is_none(), "tracing is off by default");
        assert_eq!(plain.workload.total_runs(), traced.workload.total_runs());
        assert_eq!(plain.tent_temp_truth, traced.tent_temp_truth);
        assert_eq!(plain.incidents, traced.incidents);
        let trace = traced.trace.expect("tracing was armed");
        assert!(!trace.events.is_empty());
        // Zero-delta ticks never create a counter, so a window with no
        // runs leaves it absent rather than zero.
        assert_eq!(
            trace.metrics.counter("workload.runs_total").unwrap_or(0),
            traced.workload.total_runs(),
            "the runs counter tracks the workload accumulator"
        );
        assert!(trace.metrics.gauge("tent.temp_c").is_some());
    }

    #[test]
    fn tracing_composes_with_timing() {
        use frostlab_trace::TraceConfig;
        let (results, timings) = ScenarioBuilder::paper(ExperimentConfig::short(5, 1))
            .with_tracing(TraceConfig::default())
            .with_timing()
            .build()
            .run_with_timings();
        assert!(results.trace.is_some());
        // The trace-sample phase is part of the pipeline now, so it is
        // metered too; the seven substrate phases keep their own names
        // through the nested probes.
        let names: Vec<&str> = timings.iter().map(|t| t.phase.as_str()).collect();
        let mut expected: Vec<&str> = STOCK.to_vec();
        expected.push("trace-sample");
        assert_eq!(names, expected);
    }

    #[test]
    fn with_observability_records_obs_without_changing_physics() {
        use frostlab_obs::ObsConfig;
        let plain = ScenarioBuilder::paper(ExperimentConfig::short(3, 2))
            .build()
            .run();
        let observed = ScenarioBuilder::paper(ExperimentConfig::short(3, 2))
            .with_observability(ObsConfig::default())
            .build()
            .run();
        assert!(plain.obs.is_none(), "observability is off by default");
        let obs = observed.obs.expect("observatory was armed");
        assert_eq!(plain.workload.total_runs(), observed.workload.total_runs());
        assert_eq!(plain.tent_temp_truth, observed.tent_temp_truth);
        assert_eq!(plain.tent_energy_true_kwh, observed.tent_energy_true_kwh);
        // The paper's four SLOs were evaluated, in spec order.
        let slos: Vec<&str> = obs.slos.iter().map(|s| s.slo.as_str()).collect();
        assert_eq!(
            slos,
            [
                "corruption-rate",
                "collection-staleness",
                "dew-point-margin",
                "host-reset-rate"
            ]
        );
        // Rollups cover the fleet's three dimensions.
        let rollup = obs.rollup.expect("rollups default on");
        assert_eq!(rollup.dims.len(), 3);
        // The incident ledger may gain slo-breach mirrors; everything
        // else must match the plain run exactly.
        let non_slo: Vec<_> = observed
            .incidents
            .iter()
            .filter(|i| !matches!(i.kind, crate::watchdog::IncidentKind::SloBreach))
            .cloned()
            .collect();
        assert_eq!(non_slo, plain.incidents);
        // Every alert fire in the timeline has a matching slo/ incident.
        for a in obs.alerts.iter().filter(|a| a.action == "fire") {
            assert!(
                observed
                    .incidents
                    .iter()
                    .any(|i| i.subject == format!("slo/{}", a.slo)),
                "alert {} missing from the watchdog ledger",
                a.slo
            );
        }
    }

    #[test]
    fn observability_composes_with_tracing_in_either_order() {
        use frostlab_obs::ObsConfig;
        use frostlab_trace::TraceConfig;
        let obs_then_trace = ScenarioBuilder::paper(ExperimentConfig::short(5, 1))
            .with_observability(ObsConfig::default())
            .with_tracing(TraceConfig::default());
        let trace_then_obs = ScenarioBuilder::paper(ExperimentConfig::short(5, 1))
            .with_tracing(TraceConfig::default())
            .with_observability(ObsConfig::default());
        for b in [&obs_then_trace, &trace_then_obs] {
            let names = b.phase_names();
            assert_eq!(
                names.iter().filter(|n| n.as_str() == "observe").count(),
                1,
                "{names:?}"
            );
            assert!(
                !names.iter().any(|n| n == "trace-sample"),
                "observe subsumes trace-sample: {names:?}"
            );
        }
        // Both orders produce identical traces and obs records.
        let a = obs_then_trace.build().run();
        let b = trace_then_obs.build().run();
        assert_eq!(a.obs, b.obs);
        let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
        assert_eq!(
            frostlab_trace::export::to_prometheus(&ta.metrics),
            frostlab_trace::export::to_prometheus(&tb.metrics)
        );
    }

    #[test]
    fn removing_host_step_stops_the_workload_but_weather_continues() {
        let results = ScenarioBuilder::paper(ExperimentConfig::short(2, 10))
            .remove("host-step")
            .build()
            .run();
        assert_eq!(results.workload.total_runs(), 0);
        assert!(results.outside.len() > 400);
        assert!(results.tent_temp_truth.len() > 400);
    }

    #[test]
    fn empty_pipeline_runs_and_finishes() {
        let results = ScenarioBuilder::empty(ExperimentConfig::short(1, 2))
            .build()
            .run();
        assert_eq!(results.workload.total_runs(), 0);
        assert!(results.outside.is_empty());
    }

    #[test]
    fn phase_timing_serializes_round_trip() {
        let t = PhaseTiming {
            phase: "collection".to_string(),
            total_ms: 12.5,
            calls: 7,
        };
        let json = serde_json::to_string(&t).expect("plain data");
        let back: PhaseTiming = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, t);
    }
}
