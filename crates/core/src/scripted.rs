//! The documented event history, as a replayable script.
//!
//! Everything §3–4 pins to a date goes here:
//!
//! * the tent modifications, in order of appearance **R** (reflective foil),
//!   **I** (inner tent removed), **B** (bottom tarpaulin partially removed,
//!   front door half-open) and **F** (desk fan) — Fig. 3's letter marks;
//! * the sensor-chip saga on the longest-running host (#1): deep-cold fault
//!   after the −22 °C snap, the re-detection attempt that made the chip
//!   vanish, and the warm reboot a week later that fixed it;
//! * host #15's two failures (Mar 7 04:40 and Mar 17 12:20), its removal
//!   indoors and its replacement by machine #19;
//! * the two switch failures after ≈ a week of tent operation and the
//!   service restoration;
//! * the five wrong md5sums: one each on two tent hosts, three on one
//!   basement host (§4.2.2).
//!
//! Exact dates the paper does not state (tent-mod days, wrong-hash days)
//! are placed consistently with the figure and the narrative; they are
//! constants here so EXPERIMENTS.md can cite them.

use frostlab_simkern::time::SimTime;
use frostlab_thermal::tent::TentConfig;

/// One scripted occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptedEvent {
    /// Change the tent's modification state (the R/I/B/F steps).
    TentReconfig {
        /// Figure-3 letter for this step.
        mark: char,
        /// The new configuration.
        config: TentConfig,
    },
    /// A transient system failure (hang) on a host.
    HostHang {
        /// Host number.
        host: u32,
    },
    /// The sensor chip on `host` goes erratic (−111 °C readings).
    SensorColdFault {
        /// Host number.
        host: u32,
    },
    /// Staff try to re-detect the chip (it vanishes instead).
    SensorRedetect {
        /// Host number.
        host: u32,
    },
    /// The risked warm reboot that brought the chip back.
    SensorWarmReboot {
        /// Host number.
        host: u32,
    },
    /// A tent switch dies.
    SwitchDown {
        /// Switch index (0 or 1).
        switch: usize,
    },
    /// Network service restored (replacement unit installed).
    SwitchRestored {
        /// Switch index.
        switch: usize,
    },
    /// Corrupt the host's next pack-verify run with one bit flip.
    FlipNextRun {
        /// Host number.
        host: u32,
    },
}

/// The full scripted history, time-ordered.
pub fn paper_script() -> Vec<(SimTime, ScriptedEvent)> {
    use ScriptedEvent::*;
    let t = SimTime::from_ymd_hms;
    let mut ev = vec![
        // --- tent modifications (Fig. 3 marks, in order R, I, B, F) ---
        (
            t(2010, 2, 26, 12, 0, 0),
            TentReconfig {
                mark: 'R',
                config: TentConfig {
                    foil: true,
                    ..TentConfig::initial()
                },
            },
        ),
        (
            t(2010, 3, 6, 12, 0, 0),
            TentReconfig {
                mark: 'I',
                config: TentConfig {
                    foil: true,
                    inner_removed: true,
                    ..TentConfig::initial()
                },
            },
        ),
        (
            t(2010, 3, 16, 12, 0, 0),
            TentReconfig {
                mark: 'B',
                config: TentConfig {
                    foil: true,
                    inner_removed: true,
                    tarpaulin_removed: true,
                    door_half_open: true,
                    fan: false,
                },
            },
        ),
        (
            t(2010, 3, 31, 12, 0, 0),
            TentReconfig {
                mark: 'F',
                config: TentConfig::fully_modified(),
            },
        ),
        // --- sensor-chip saga on host #1 (§4.2.1) ---
        (t(2010, 2, 25, 5, 0, 0), SensorColdFault { host: 1 }),
        (t(2010, 3, 1, 11, 0, 0), SensorRedetect { host: 1 }),
        (t(2010, 3, 8, 11, 0, 0), SensorWarmReboot { host: 1 }),
        // --- host #15 (§4.2.1) ---
        (t(2010, 3, 7, 4, 40, 0), HostHang { host: 15 }),
        (t(2010, 3, 17, 12, 20, 0), HostHang { host: 15 }),
        // --- switches (§4.2.1): both died after ≈ a week in the tent ---
        (t(2010, 2, 26, 9, 0, 0), SwitchDown { switch: 0 }),
        (t(2010, 2, 28, 14, 0, 0), SwitchDown { switch: 1 }),
        (t(2010, 3, 1, 11, 30, 0), SwitchRestored { switch: 0 }),
        (t(2010, 3, 1, 11, 30, 0), SwitchRestored { switch: 1 }),
        // --- the five wrong hashes (§4.2.2) ---
        (t(2010, 3, 12, 14, 0, 0), FlipNextRun { host: 3 }),
        (t(2010, 4, 2, 9, 0, 0), FlipNextRun { host: 10 }),
        (t(2010, 3, 20, 7, 0, 0), FlipNextRun { host: 9 }),
        (t(2010, 4, 10, 16, 0, 0), FlipNextRun { host: 9 }),
        (t(2010, 4, 28, 2, 0, 0), FlipNextRun { host: 9 }),
    ];
    ev.sort_by_key(|(at, _)| *at);
    ev
}

/// The Fig. 3 letter marks: `(letter, time)` in order of appearance.
pub fn tent_mod_marks() -> Vec<(char, SimTime)> {
    paper_script()
        .into_iter()
        .filter_map(|(at, ev)| match ev {
            ScriptedEvent::TentReconfig { mark, .. } => Some((mark, at)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_time_ordered() {
        let s = paper_script();
        for w in s.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn marks_in_paper_order() {
        let marks: Vec<char> = tent_mod_marks().iter().map(|&(m, _)| m).collect();
        assert_eq!(
            marks,
            vec!['R', 'I', 'B', 'F'],
            "order of appearance per §4.1"
        );
    }

    #[test]
    fn host15_failure_times_match_paper() {
        let s = paper_script();
        let hangs: Vec<SimTime> = s
            .iter()
            .filter_map(|(at, ev)| match ev {
                ScriptedEvent::HostHang { host: 15 } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(hangs.len(), 2);
        assert_eq!(hangs[0], SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0));
        assert_eq!(hangs[1], SimTime::from_ymd_hms(2010, 3, 17, 12, 20, 0));
    }

    #[test]
    fn five_wrong_hashes_two_tent_three_basement() {
        let s = paper_script();
        let flips: Vec<u32> = s
            .iter()
            .filter_map(|(_, ev)| match ev {
                ScriptedEvent::FlipNextRun { host } => Some(*host),
                _ => None,
            })
            .collect();
        assert_eq!(flips.len(), 5);
        // Hosts 3 and 10 are tent hosts; host 9 is a basement twin.
        assert_eq!(flips.iter().filter(|&&h| h == 9).count(), 3);
        assert!(flips.contains(&3) && flips.contains(&10));
    }

    #[test]
    fn switches_fail_about_a_week_in() {
        let start = SimTime::from_date(2010, 2, 19);
        for (at, ev) in paper_script() {
            if let ScriptedEvent::SwitchDown { .. } = ev {
                let days = (at - start).as_days_f64();
                assert!((5.0..12.0).contains(&days), "switch died {days} days in");
            }
        }
    }
}
