//! Declarative, serializable scenario specs — the job currency of the
//! campaign farm.
//!
//! [`ScenarioSpec`] names a campaign configuration by *value* instead of
//! by code: a climate preset, a window length, the chaos/ECC toggles.
//! Two properties make it the right unit of distributed work:
//!
//! 1. **Serialization** — a spec round-trips through JSON, so a farm can
//!    persist a submitted matrix and a worker in another process can
//!    rebuild the exact [`ExperimentConfig`] the submitter meant.
//! 2. **Content hashing** — [`JobSpec::content_hash`] is a stable FNV-1a
//!    digest of the canonical JSON, so identical jobs collide on purpose:
//!    a result store keyed by the hash serves repeated work from cache
//!    instead of re-simulating it.
//!
//! [`MatrixSpec`] expands a climate × chaos × seed sweep into an ordered
//! job list. The order is part of the contract: scenario-major,
//! seed-minor, exactly the order a single-process ensemble run of the
//! same matrix folds its summaries in — which is what lets a farm's
//! merged output be byte-identical to the in-process run.

use frostlab_climate::presets;
use frostlab_climate::weather::ClimateParams;
use frostlab_faults::chaos::ChaosConfig;

use crate::config::{ExperimentConfig, FaultMode};
use crate::context::CampaignCtx;
use crate::fleet::FleetSpec;
use crate::phases::TickPhase;
use crate::scenario::{Scenario, ScenarioBuilder};

/// A spec that cannot be turned into a runnable campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The named climate preset does not exist.
    UnknownClimate(String),
    /// The campaign window length is out of range.
    InvalidDays(i64),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownClimate(name) => {
                write!(
                    f,
                    "unknown climate preset {name:?} (known: {})",
                    CLIMATE_PRESETS.join(", ")
                )
            }
            SpecError::InvalidDays(d) => {
                write!(
                    f,
                    "invalid campaign length {d} days (want 0 = full, or 1..=366)"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Climate preset names resolvable by [`climate_preset`].
pub const CLIMATE_PRESETS: [&str; 3] = ["helsinki", "new-mexico", "north-east-england"];

/// Resolve a climate preset by its stable name.
pub fn climate_preset(name: &str) -> Option<ClimateParams> {
    match name {
        "helsinki" => Some(presets::helsinki_winter_2010()),
        "new-mexico" => Some(presets::new_mexico()),
        "north-east-england" => Some(presets::north_east_england()),
        _ => None,
    }
}

/// A campaign described by value: everything needed to rebuild its
/// [`ExperimentConfig`] in another process, and nothing else.
///
/// Field order is the canonical JSON order — changing it changes every
/// content hash, so treat it as part of the on-disk format.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable label (not part of the physics; *is* part of the
    /// content hash, so two differently-named but otherwise identical
    /// scenarios are distinct jobs).
    pub name: String,
    /// Campaign length in days; `0` runs the paper's full Feb 12 – May 13
    /// window.
    pub days: i64,
    /// Climate preset name (see [`CLIMATE_PRESETS`]).
    pub climate: String,
    /// Arm §4.2.1-grade chaos injection ([`ChaosConfig::paper_like`]).
    pub chaos: bool,
    /// Ablation: pretend every DIMM is ECC.
    pub force_ecc: bool,
    /// Test rig: insert a phase that panics mid-campaign — the poison job
    /// the farm's quarantine machinery is exercised with.
    pub poison: bool,
    /// Fleet size: `0` runs the paper's 19 machines; `n > 0` runs a
    /// generated vendor-mix fleet of `n` hosts (see
    /// [`crate::fleet::FleetBuilder::vendor_mix`]). Skipped from the
    /// canonical JSON when zero so every pre-existing spec keeps its
    /// content hash.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub hosts: u32,
    /// Arm the fleet health observatory (rollups, the paper's four SLOs,
    /// flight recorder — [`frostlab_obs::ObsConfig::default`]). Skipped
    /// from the canonical JSON when false so every pre-existing spec
    /// keeps its content hash.
    #[serde(default, skip_serializing_if = "is_false")]
    pub observe: bool,
}

/// `skip_serializing_if` helper: the paper-fleet default stays out of the
/// canonical JSON.
fn is_zero(n: &u32) -> bool {
    *n == 0
}

/// `skip_serializing_if` helper: the observatory-off default stays out of
/// the canonical JSON.
fn is_false(b: &bool) -> bool {
    !*b
}

impl ScenarioSpec {
    /// A stochastic campaign of `days` days under the named climate.
    pub fn new(name: &str, days: i64, climate: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            days,
            climate: climate.to_string(),
            chaos: false,
            force_ecc: false,
            poison: false,
            hosts: 0,
            observe: false,
        }
    }

    /// Validate the spec and build the campaign config for `seed`.
    ///
    /// Specs are always stochastic — a farm sweeps Monte-Carlo variants;
    /// the scripted paper replay stays a single-process concern.
    pub fn to_config(&self, seed: u64) -> Result<ExperimentConfig, SpecError> {
        let climate = climate_preset(&self.climate)
            .ok_or_else(|| SpecError::UnknownClimate(self.climate.clone()))?;
        let base = match self.days {
            0 => ExperimentConfig::paper_stochastic(seed),
            d @ 1..=366 => ExperimentConfig {
                fault_mode: FaultMode::Stochastic,
                ..ExperimentConfig::short(seed, d)
            },
            d => return Err(SpecError::InvalidDays(d)),
        };
        Ok(ExperimentConfig {
            climate,
            force_ecc: self.force_ecc,
            chaos: if self.chaos {
                Some(ChaosConfig::paper_like())
            } else {
                None
            },
            fleet: match self.hosts {
                0 => FleetSpec::Paper,
                n => FleetSpec::VendorMix { hosts: n },
            },
            ..base
        })
    }

    /// Build the runnable campaign for `seed`: the stock paper pipeline,
    /// plus the observatory when [`ScenarioSpec::observe`] is set and the
    /// poison phase when [`ScenarioSpec::poison`] is set.
    pub fn build(&self, seed: u64) -> Result<Scenario, SpecError> {
        let mut b = ScenarioBuilder::paper(self.to_config(seed)?);
        if self.observe {
            b = b.with_observability(frostlab_obs::ObsConfig::default());
        }
        if self.poison {
            b = b.push(Box::new(PanicPhase::after_ticks(POISON_PANIC_TICK)));
        }
        Ok(b.build())
    }
}

/// Tick at which a poison scenario's [`PanicPhase`] detonates — late
/// enough that the job visibly starts, early enough that retries are
/// cheap.
pub const POISON_PANIC_TICK: u64 = 32;

/// A phase that panics after a fixed number of ticks — the deterministic
/// "poison job" used to exercise retry + quarantine paths. Never part of
/// the stock pipeline.
#[derive(Debug)]
pub struct PanicPhase {
    ticks: u64,
    after: u64,
}

impl PanicPhase {
    /// Panic on the `after`-th call to `step` (1-based).
    pub fn after_ticks(after: u64) -> PanicPhase {
        PanicPhase { ticks: 0, after }
    }
}

impl TickPhase for PanicPhase {
    fn name(&self) -> &str {
        "poison"
    }

    fn step(&mut self, _ctx: &mut CampaignCtx) {
        self.ticks += 1;
        if self.ticks >= self.after {
            panic!("poison phase detonated at tick {}", self.ticks);
        }
    }
}

/// One unit of farm work: a scenario at a seed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// The campaign description.
    pub scenario: ScenarioSpec,
    /// Root seed for this campaign.
    pub seed: u64,
}

impl JobSpec {
    /// Stable content hash: FNV-1a 64 over the canonical (compact) JSON.
    ///
    /// Identical `(scenario, seed)` pairs hash identically across
    /// processes and farm restarts — the key the result store dedups on.
    pub fn content_hash(&self) -> Result<u64, serde_json::Error> {
        Ok(fnv1a(serde_json::to_string(self)?.as_bytes()))
    }

    /// The content hash as the fixed-width hex key used for store files.
    pub fn key(&self) -> Result<String, serde_json::Error> {
        Ok(format!("{:016x}", self.content_hash()?))
    }
}

/// FNV-1a 64-bit — stable, dependency-free, and plenty for
/// content-addressing a job universe of thousands (the same digest the
/// golden-hash CI gate uses).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A climate × chaos × seed sweep: the farm's submission unit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MatrixSpec {
    /// Scenario axis, in submission order.
    pub scenarios: Vec<ScenarioSpec>,
    /// First seed of the contiguous range.
    pub seed_start: u64,
    /// Seeds per scenario.
    pub seeds: u64,
}

impl MatrixSpec {
    /// Total jobs in the matrix.
    pub fn jobs(&self) -> u64 {
        self.scenarios.len() as u64 * self.seeds
    }

    /// Expand to the ordered job list: **scenario-major, seed-minor** —
    /// the fold order both the farm's merge and the single-process
    /// ensemble comparator use, so their outputs can be byte-identical.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.jobs() as usize);
        for scenario in &self.scenarios {
            for s in 0..self.seeds {
                jobs.push(JobSpec {
                    scenario: scenario.clone(),
                    seed: self.seed_start + s,
                });
            }
        }
        jobs
    }

    /// Validate every scenario in the matrix without running anything.
    pub fn validate(&self) -> Result<(), SpecError> {
        for s in &self.scenarios {
            s.to_config(self.seed_start)?;
        }
        Ok(())
    }

    /// Pretty JSON (the farm's `manifest.json` format).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a manifest back.
    pub fn from_json(json: &str) -> Result<MatrixSpec, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> MatrixSpec {
        MatrixSpec {
            scenarios: vec![
                ScenarioSpec::new("helsinki", 2, "helsinki"),
                ScenarioSpec::new("desert", 2, "new-mexico"),
            ],
            seed_start: 10,
            seeds: 3,
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let m = matrix();
        let back = MatrixSpec::from_json(&m.to_json().expect("serializes")).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn expansion_is_scenario_major_seed_minor() {
        let jobs = matrix().expand();
        assert_eq!(jobs.len(), 6);
        let order: Vec<(&str, u64)> = jobs
            .iter()
            .map(|j| (j.scenario.name.as_str(), j.seed))
            .collect();
        assert_eq!(
            order,
            vec![
                ("helsinki", 10),
                ("helsinki", 11),
                ("helsinki", 12),
                ("desert", 10),
                ("desert", 11),
                ("desert", 12),
            ]
        );
    }

    #[test]
    fn content_hash_is_stable_and_distinguishes_jobs() {
        let jobs = matrix().expand();
        let h0 = jobs[0].content_hash().expect("hashes");
        assert_eq!(jobs[0].content_hash().expect("hashes"), h0, "stable");
        assert_eq!(jobs[0].clone().content_hash().expect("hashes"), h0);
        // Every job in the matrix is distinct.
        let mut keys: Vec<String> = jobs.iter().map(|j| j.key().expect("keys")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
        // But an identical spec collides on purpose.
        let twin = JobSpec {
            scenario: ScenarioSpec::new("helsinki", 2, "helsinki"),
            seed: 10,
        };
        assert_eq!(twin.content_hash().expect("hashes"), h0);
    }

    #[test]
    fn unknown_climate_is_a_typed_error() {
        let spec = ScenarioSpec::new("x", 2, "atlantis");
        assert_eq!(
            spec.to_config(1).err(),
            Some(SpecError::UnknownClimate("atlantis".into()))
        );
        let m = MatrixSpec {
            scenarios: vec![spec],
            seed_start: 0,
            seeds: 1,
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn invalid_days_rejected() {
        assert_eq!(
            ScenarioSpec::new("x", -3, "helsinki").to_config(1).err(),
            Some(SpecError::InvalidDays(-3))
        );
        assert_eq!(
            ScenarioSpec::new("x", 400, "helsinki").to_config(1).err(),
            Some(SpecError::InvalidDays(400))
        );
    }

    #[test]
    fn to_config_carries_the_toggles() {
        let mut spec = ScenarioSpec::new("x", 3, "new-mexico");
        spec.chaos = true;
        spec.force_ecc = true;
        let cfg = spec.to_config(7).expect("valid");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.fault_mode, FaultMode::Stochastic);
        assert!(cfg.force_ecc);
        assert!(cfg.chaos.is_some());
        assert_eq!(cfg.duration().as_days_f64(), 3.0);
    }

    #[test]
    fn full_window_spec_spans_the_paper_campaign() {
        let cfg = ScenarioSpec::new("full", 0, "helsinki")
            .to_config(1)
            .expect("valid");
        let days = cfg.duration().as_days_f64();
        assert!((85.0..95.0).contains(&days));
    }

    #[test]
    fn built_scenario_runs_and_matches_direct_config() {
        let spec = ScenarioSpec::new("x", 1, "helsinki");
        let via_spec = spec.build(3).expect("valid").run();
        let via_config = ScenarioBuilder::paper(spec.to_config(3).expect("valid"))
            .build()
            .run();
        assert_eq!(
            via_spec.summary().to_json().expect("serializes"),
            via_config.summary().to_json().expect("serializes"),
            "spec adds nothing to a non-poison pipeline"
        );
    }

    #[test]
    fn poison_scenario_panics_mid_campaign() {
        let mut spec = ScenarioSpec::new("poison", 1, "helsinki");
        spec.poison = true;
        let scenario = spec.build(1).expect("valid spec");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario.run()));
        assert!(result.is_err(), "poison phase must detonate");
    }

    #[test]
    fn zero_hosts_keeps_legacy_content_hashes_and_parses_legacy_json() {
        // A paper-fleet job must hash exactly as it did before the `hosts`
        // knob existed: the field is skipped from canonical JSON at 0.
        let job = JobSpec {
            scenario: ScenarioSpec::new("helsinki", 2, "helsinki"),
            seed: 10,
        };
        let json = serde_json::to_string(&job).expect("serializes");
        assert!(!json.contains("hosts"), "zero fleet stays out of JSON");
        // And a manifest written before the knob existed still parses.
        let legacy = r#"{"scenario":{"name":"x","days":2,"climate":"helsinki",
            "chaos":false,"force_ecc":false,"poison":false},"seed":1}"#;
        let back: JobSpec = serde_json::from_str(legacy).expect("legacy parses");
        assert_eq!(back.scenario.hosts, 0);
        assert_eq!(
            back.scenario.to_config(1).expect("valid").fleet,
            FleetSpec::Paper
        );
    }

    #[test]
    fn hosts_knob_selects_a_vendor_mix_fleet_and_changes_the_hash() {
        let mut spec = ScenarioSpec::new("big", 2, "helsinki");
        spec.hosts = 1000;
        let cfg = spec.to_config(1).expect("valid");
        assert_eq!(cfg.fleet, FleetSpec::VendorMix { hosts: 1000 });
        let small = JobSpec {
            scenario: ScenarioSpec::new("big", 2, "helsinki"),
            seed: 1,
        };
        let big = JobSpec {
            scenario: spec,
            seed: 1,
        };
        assert_ne!(
            small.content_hash().expect("hashes"),
            big.content_hash().expect("hashes"),
            "fleet size is part of the job identity"
        );
    }

    #[test]
    fn observe_flag_stays_out_of_legacy_hashes_and_arms_the_observatory() {
        // A non-observed job must hash exactly as it did before the knob
        // existed.
        let plain = JobSpec {
            scenario: ScenarioSpec::new("helsinki", 2, "helsinki"),
            seed: 10,
        };
        let json = serde_json::to_string(&plain).expect("serializes");
        assert!(!json.contains("observe"), "false stays out of JSON");
        // A legacy manifest (no `observe` key) parses to false.
        let legacy = r#"{"scenario":{"name":"x","days":2,"climate":"helsinki",
            "chaos":false,"force_ecc":false,"poison":false},"seed":1}"#;
        let back: JobSpec = serde_json::from_str(legacy).expect("legacy parses");
        assert!(!back.scenario.observe);
        // Setting it changes the job identity and arms the observatory.
        let mut spec = ScenarioSpec::new("helsinki", 2, "helsinki");
        spec.observe = true;
        let observed = JobSpec {
            scenario: spec.clone(),
            seed: 10,
        };
        assert_ne!(
            plain.content_hash().expect("hashes"),
            observed.content_hash().expect("hashes"),
            "observability is part of the job identity"
        );
        let mut short = spec.clone();
        short.days = 1;
        let results = short.build(3).expect("valid").run();
        let obs = results.obs.expect("observe flag arms the observatory");
        assert_eq!(obs.slos.len(), 4);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
