//! Table reproductions T1–T6 (the paper's in-text numeric results).

use frostlab_analysis::memory_est::{estimate, ExposureInputs};
use frostlab_analysis::report::{one_in, pct, Table};
use frostlab_compress::recover::recover;
use frostlab_energy::economizer::{simulate_year, EconomizerConfig};
use frostlab_energy::plant::CoolingPlant;
use frostlab_energy::pue::{naive_plant_pue, pue_with_legacy};
use frostlab_workload::stats::Placement;

use crate::prototype::PrototypeReport;
use crate::results::ExperimentResults;

/// T1 — failure rates: this experiment vs. Intel's economizer PoC.
pub fn t1_failures(results: &ExperimentResults) -> Table {
    let cmp = results.failure_comparison();
    let fleet = cmp.fleet();
    let mut t = Table::new(
        "T1 — transient system failures (hosts affected)",
        &["group", "failed/total", "rate", "95% Wilson"],
    );
    let fmt_rate = |r: &frostlab_analysis::failure::FailureRate| {
        vec![
            format!("{}/{}", r.failed_hosts, r.total_hosts),
            pct(r.rate),
            format!("[{}, {}]", pct(r.interval.0), pct(r.interval.1)),
        ]
    };
    let mut row = vec!["tent (outside)".to_string()];
    row.extend(fmt_rate(&cmp.outside));
    t.row(&row);
    let mut row = vec!["basement (control)".to_string()];
    row.extend(fmt_rate(&cmp.control));
    t.row(&row);
    let mut row = vec!["fleet (paper: 5.6 %)".to_string()];
    row.extend(fmt_rate(&fleet));
    t.row(&row);
    t.row(&[
        "Intel PoC [1] (paper: comparable)".to_string(),
        "—".to_string(),
        pct(cmp.intel_rate),
        if cmp.comparable_with_intel() {
            "covered by fleet interval".to_string()
        } else {
            "NOT covered".to_string()
        },
    ]);
    t
}

/// T2 — wrong hashes and the bzip2recover forensics.
pub fn t2_hashes(results: &ExperimentResults) -> Table {
    let (tent, basement) = results.workload.hash_errors_by_placement();
    let mut t = Table::new(
        "T2 — wrong md5sums (paper: 5 of 27 627 runs; 2 tent hosts x1, 1 basement host x3; 1 bad block of 396)",
        &["metric", "value"],
    );
    t.row(&[
        "total runs".to_string(),
        results.workload.total_runs().to_string(),
    ]);
    t.row(&[
        "wrong hashes".to_string(),
        results.workload.hash_errors().len().to_string(),
    ]);
    t.row(&["wrong hashes (tent)".to_string(), tent.to_string()]);
    t.row(&["wrong hashes (basement)".to_string(), basement.to_string()]);
    for (host, n) in results.workload.hash_errors_by_host() {
        let placement = results
            .hosts
            .get(&host)
            .map(|h| h.placement)
            .unwrap_or(Placement::Tent);
        t.row(&[format!("  host #{host:02} ({placement})"), format!("{n}")]);
    }
    // Forensics on the most recent stored archive, like §4.2.2.
    if let Some(archive) = results.stored_archives.last() {
        let report = recover(&archive.bytes);
        t.row(&[
            "recovered archive: blocks".to_string(),
            report.total_blocks().to_string(),
        ]);
        t.row(&[
            "recovered archive: corrupted blocks".to_string(),
            report.corrupted_count().to_string(),
        ]);
        t.row(&[
            "corrupted block indices".to_string(),
            format!("{:?}", report.corrupted_indices()),
        ]);
    } else {
        t.row(&["recovered archive".to_string(), "none stored".to_string()]);
    }
    t
}

/// T3 — the memory-exposure estimate.
pub fn t3_memory(results: &ExperimentResults) -> Table {
    let mut t = Table::new(
        "T3 — memory-fault exposure (paper: ~3.2e9 page ops, ~1 in 570 million)",
        &["metric", "value"],
    );
    let measured_ops = results.workload.total_page_ops();
    let errors = results.workload.hash_errors().len() as u64;
    t.row(&[
        "page ops (measured)".to_string(),
        format!("{measured_ops:.3e}", measured_ops = measured_ops as f64),
    ]);
    t.row(&["faulty archives (measured)".to_string(), errors.to_string()]);
    let ratio = if errors > 0 {
        measured_ops as f64 / errors as f64
    } else {
        f64::INFINITY
    };
    t.row(&["fault ratio (full campaign)".to_string(), one_in(ratio)]);
    // The paper's 27 627 runs is a snapshot at writing time (~Mar 26);
    // report how many of the measured errors had landed by then.
    let snapshot = frostlab_simkern::time::SimTime::from_date(2010, 3, 26);
    let errors_by_snapshot = results
        .workload
        .hash_errors()
        .iter()
        .filter(|e| e.at <= snapshot)
        .count();
    t.row(&[
        "errors by the paper's writing time (Mar 26)".to_string(),
        errors_by_snapshot.to_string(),
    ]);
    // The paper's own back-of-envelope, reproduced as computation.
    let paper = estimate(&ExposureInputs::paper_ballpark(), 6);
    t.row(&[
        "paper ballpark: page ops".to_string(),
        format!("{:.2e}", paper.page_ops as f64),
    ]);
    t.row(&[
        "paper ballpark: fault ratio".to_string(),
        one_in(paper.ops_per_fault),
    ]);
    t
}

/// T4 — the §5 PUE calculation.
pub fn t4_pue() -> Table {
    let plant = CoolingPlant::department_retrofit();
    let mut t = Table::new(
        "T4 — new cluster PUE (paper: 75 kW IT; 6.9 + 44.7 + 3.8 kW cooling; PUE 1.74)",
        &["item", "kW"],
    );
    let crac: f64 = plant.cracs.iter().map(|c| c.power_draw_kw).sum();
    t.row(&["IT load (peak)".to_string(), "75.0".to_string()]);
    t.row(&["3 new CRAC units".to_string(), format!("{crac:.1}")]);
    t.row(&[
        "chilled-water HVAC unit".to_string(),
        format!("{:.1}", plant.hvac_unit_kw),
    ]);
    t.row(&[
        "roof liquid cooler".to_string(),
        format!("{:.1}", plant.roof_cooler_kw),
    ]);
    t.row(&[
        "naive PUE (sum of figures)".to_string(),
        format!("{:.2}", naive_plant_pue(75.0, &plant)),
    ]);
    t.row(&[
        "with legacy CRAC share (25 % @ 0.5 kW/kW)".to_string(),
        format!("{:.2}", pue_with_legacy(75.0, &plant, 0.25, 0.5)),
    ]);
    t
}

/// T5 — the prototype weekend.
pub fn t5_prototype(report: &PrototypeReport) -> Table {
    let mut t = Table::new(
        "T5 — prototype weekend Feb 12–15 (paper: min −10.2 °C, mean −9.2 °C, CPU to −4 °C, survived)",
        &["metric", "measured", "paper"],
    );
    t.row(&[
        "outside min".to_string(),
        format!("{:.1} °C", report.outside_min_c),
        "−10.2 °C".to_string(),
    ]);
    t.row(&[
        "outside mean".to_string(),
        format!("{:.1} °C", report.outside_mean_c),
        "−9.2 °C".to_string(),
    ]);
    t.row(&[
        "CPU minimum".to_string(),
        format!("{:.1} °C", report.cpu_min_c),
        "−4 °C".to_string(),
    ]);
    t.row(&[
        "survived weekend".to_string(),
        report.survived.to_string(),
        "yes".to_string(),
    ]);
    t.row(&[
        "S.M.A.R.T. clean".to_string(),
        report.smart_ok.to_string(),
        "yes".to_string(),
    ]);
    t
}

/// T6 — economizer savings across the three study climates.
pub fn t6_savings(seed: u64) -> Table {
    let mut t = Table::new(
        "T6 — air-economizer cooling-energy savings (paper context: 40 % HP … 67 % Intel)",
        &[
            "climate",
            "free-cooling hours",
            "free %",
            "savings vs mechanical",
            "effective PUE",
        ],
    );
    for climate in [
        frostlab_climate::presets::helsinki_winter_2010(),
        frostlab_climate::presets::north_east_england(),
        frostlab_climate::presets::new_mexico(),
    ] {
        let r = simulate_year(climate, &EconomizerConfig::default(), seed);
        t.row(&[
            r.climate.to_string(),
            format!("{:.0}", r.free_hours),
            pct(r.free_fraction()),
            pct(r.savings()),
            format!("{:.2}", r.effective_pue()),
        ]);
    }
    t.row(&[
        "published baselines".to_string(),
        "—".to_string(),
        "—".to_string(),
        "40 % (HP Wynyard) – 67 % (Intel NM)".to_string(),
        "—".to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::experiment::Experiment;
    use crate::prototype::run_prototype;

    #[test]
    fn t4_is_config_free_and_matches_paper() {
        let t = t4_pue();
        let s = t.to_string();
        assert!(s.contains("1.74"), "{s}");
    }

    #[test]
    fn t5_renders() {
        let report = run_prototype(&ExperimentConfig::paper_scripted(1));
        let s = t5_prototype(&report).to_string();
        assert!(s.contains("outside min"));
        assert!(s.contains("−10.2 °C"));
    }

    #[test]
    fn t6_renders_three_climates() {
        let t = t6_savings(9);
        assert_eq!(t.len(), 4);
        let s = t.to_string();
        assert!(s.contains("Helsinki") && s.contains("New Mexico") && s.contains("NE England"));
    }

    #[test]
    fn campaign_tables_render() {
        let results = Experiment::new(ExperimentConfig::short(5, 10)).run();
        let t1 = t1_failures(&results).to_string();
        assert!(t1.contains("tent (outside)"));
        assert!(t1.contains("4.5 %"), "intel row: {t1}");
        let t2 = t2_hashes(&results).to_string();
        assert!(t2.contains("total runs"));
        let t3 = t3_memory(&results).to_string();
        assert!(
            t3.contains("570 million") || t3.contains("paper ballpark"),
            "{t3}"
        );
    }
}
