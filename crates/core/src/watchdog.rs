//! The campaign watchdog: incident bookkeeping for the collection pipeline.
//!
//! §4.2.1 of the paper is a catalogue of operational incidents — two switch
//! deaths, host #15's repeated hangs, the sensor-chip saga — reconstructed
//! after the fact from logs. The watchdog makes that reconstruction a
//! first-class artefact: it observes the fleet as the campaign runs (switch
//! state, host hangs, sensor faults, per-host collection staleness), keeps
//! one open [`Incident`] per misbehaving subject, stamps the resolution when
//! a repair lands, and leaves a machine-readable incident log in
//! [`crate::results::ExperimentResults`].
//!
//! The watchdog only *observes and records* in scripted mode (the paper's
//! history is replayed verbatim); in stochastic/chaos mode the experiment
//! additionally uses its open switch incidents to drive the
//! [`crate::fleet::SwitchFailoverPolicy`] spare-swap repair.

use std::collections::BTreeMap;

use frostlab_simkern::time::{SimDuration, SimTime};

/// What kind of thing went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// A monitoring switch died (§4.2.1's defective batch).
    SwitchFailure,
    /// A host hung and needed operator attention.
    HostHang,
    /// A host's sensor chip misbehaved (cold fault, wrong redetect).
    SensorFault,
    /// A host's mirror went stale past the watchdog threshold without a
    /// matching infrastructure incident — the catch-all alarm.
    CollectionStale,
    /// A farm job exhausted its retry budget and was quarantined
    /// (`frostlab-farm`'s poison-job policy; never raised in-campaign).
    JobQuarantine,
    /// An SLO's multi-window burn rate breached its thresholds
    /// (`frostlab-obs`; subject is `slo/<name>`).
    SloBreach,
}

impl IncidentKind {
    /// Stable lowercase name for the machine-readable log.
    pub fn name(&self) -> &'static str {
        match self {
            IncidentKind::SwitchFailure => "switch-failure",
            IncidentKind::HostHang => "host-hang",
            IncidentKind::SensorFault => "sensor-fault",
            IncidentKind::CollectionStale => "collection-stale",
            IncidentKind::JobQuarantine => "job-quarantine",
            IncidentKind::SloBreach => "slo-breach",
        }
    }
}

/// One incident: opened when the watchdog first sees the condition, resolved
/// when the repair (or the script's restoration event) lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Classification.
    pub kind: IncidentKind,
    /// The affected component, e.g. `"switch-0"`, `"host-15"`,
    /// `"host-1/sensor"`.
    pub subject: String,
    /// When the condition was first observed.
    pub started: SimTime,
    /// When it was resolved (`None` = still open at campaign end).
    pub resolved: Option<SimTime>,
    /// Human-readable note on how it was resolved.
    pub resolution: Option<String>,
}

impl Incident {
    /// How long the incident stayed open (up to `now` if unresolved).
    pub fn duration(&self, now: SimTime) -> SimDuration {
        self.resolved.unwrap_or(now) - self.started
    }
}

/// Serializable mirror of [`Incident`] with string timestamps.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IncidentRecord {
    /// Stable kind name (see [`IncidentKind::name`]).
    pub kind: String,
    /// Affected component.
    pub subject: String,
    /// Open timestamp (ISO-ish datetime).
    pub started: String,
    /// Resolve timestamp, if any.
    pub resolved: Option<String>,
    /// Resolution note, if any.
    pub resolution: Option<String>,
}

impl From<&Incident> for IncidentRecord {
    fn from(i: &Incident) -> Self {
        IncidentRecord {
            kind: i.kind.name().to_string(),
            subject: i.subject.clone(),
            started: i.started.to_string(),
            resolved: i.resolved.map(|t| t.to_string()),
            resolution: i.resolution.clone(),
        }
    }
}

/// Watches the campaign and keeps the incident ledger.
#[derive(Debug)]
pub struct Watchdog {
    /// Mirror staleness beyond which a host (with no other open incident
    /// explaining it) gets a [`IncidentKind::CollectionStale`] alarm.
    pub staleness_threshold: SimDuration,
    incidents: Vec<Incident>,
    open: BTreeMap<String, usize>,
}

impl Watchdog {
    /// New watchdog. The default staleness threshold is three missed
    /// 20-minute rounds.
    pub fn new() -> Self {
        Watchdog {
            staleness_threshold: SimDuration::minutes(60),
            incidents: Vec::new(),
            open: BTreeMap::new(),
        }
    }

    /// Open an incident for `subject` unless one is already open. Returns
    /// true if a new incident was opened.
    pub fn open(&mut self, kind: IncidentKind, subject: &str, at: SimTime) -> bool {
        if self.open.contains_key(subject) {
            return false;
        }
        self.open.insert(subject.to_string(), self.incidents.len());
        self.incidents.push(Incident {
            kind,
            subject: subject.to_string(),
            started: at,
            resolved: None,
            resolution: None,
        });
        true
    }

    /// Resolve the open incident for `subject`, if any. Returns true if one
    /// was resolved.
    pub fn resolve(&mut self, subject: &str, at: SimTime, resolution: &str) -> bool {
        match self.open.remove(subject) {
            Some(idx) => {
                let incident = &mut self.incidents[idx];
                incident.resolved = Some(at);
                incident.resolution = Some(resolution.to_string());
                true
            }
            None => false,
        }
    }

    /// Is there an open incident for this subject?
    pub fn is_open(&self, subject: &str) -> bool {
        self.open.contains_key(subject)
    }

    /// Open incidents right now.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Feed the per-host staleness observed at a collection round. Opens a
    /// [`IncidentKind::CollectionStale`] incident when a host's mirror ages
    /// past the threshold *and* nothing else already explains it (an open
    /// switch or host incident covering this host); resolves the alarm when
    /// the mirror freshens again.
    pub fn observe_staleness(
        &mut self,
        host: u32,
        staleness: Option<SimDuration>,
        explained: bool,
        now: SimTime,
    ) {
        let subject = format!("host-{host}/collection");
        let stale = staleness.is_some_and(|s| s > self.staleness_threshold);
        if stale && !explained {
            self.open(IncidentKind::CollectionStale, &subject, now);
        } else if !stale {
            self.resolve(&subject, now, "mirror caught up");
        }
    }

    /// The full ledger (open incidents have `resolved: None`).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Consume the watchdog, returning the ledger.
    pub fn into_incidents(self) -> Vec<Incident> {
        self.incidents
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn open_resolve_round_trip() {
        let mut w = Watchdog::new();
        assert!(w.open(IncidentKind::SwitchFailure, "switch-0", t(100)));
        assert!(
            !w.open(IncidentKind::SwitchFailure, "switch-0", t(200)),
            "no duplicates"
        );
        assert!(w.is_open("switch-0"));
        assert_eq!(w.open_count(), 1);
        assert!(w.resolve("switch-0", t(500), "spare switch swapped in"));
        assert!(!w.resolve("switch-0", t(600), "again"), "already resolved");
        let i = &w.incidents()[0];
        assert_eq!(i.started, t(100));
        assert_eq!(i.resolved, Some(t(500)));
        assert_eq!(i.resolution.as_deref(), Some("spare switch swapped in"));
        assert_eq!(i.duration(t(9999)), SimDuration::secs(400));
    }

    #[test]
    fn distinct_subjects_coexist() {
        let mut w = Watchdog::new();
        w.open(IncidentKind::SwitchFailure, "switch-0", t(0));
        w.open(IncidentKind::HostHang, "host-15", t(10));
        w.open(IncidentKind::SensorFault, "host-1/sensor", t(20));
        assert_eq!(w.open_count(), 3);
        w.resolve("host-15", t(30), "reset in place");
        assert_eq!(w.open_count(), 2);
        assert!(w.is_open("switch-0"));
        assert!(w.is_open("host-1/sensor"));
    }

    #[test]
    fn staleness_alarm_respects_explanations() {
        let mut w = Watchdog::new();
        // Stale but explained by an open switch incident: no alarm.
        w.observe_staleness(3, Some(SimDuration::minutes(90)), true, t(1000));
        assert_eq!(w.incidents().len(), 0);
        // Stale and unexplained: alarm opens.
        w.observe_staleness(3, Some(SimDuration::minutes(90)), false, t(2000));
        assert!(w.is_open("host-3/collection"));
        // Mirror freshens: alarm resolves.
        w.observe_staleness(3, Some(SimDuration::minutes(5)), false, t(3000));
        assert!(!w.is_open("host-3/collection"));
        let i = &w.incidents()[0];
        assert_eq!(i.kind, IncidentKind::CollectionStale);
        assert_eq!(i.resolved, Some(t(3000)));
    }

    #[test]
    fn fresh_or_unknown_hosts_raise_nothing() {
        let mut w = Watchdog::new();
        w.observe_staleness(7, None, false, t(0));
        w.observe_staleness(7, Some(SimDuration::minutes(20)), false, t(0));
        assert!(w.incidents().is_empty());
    }

    #[test]
    fn ledger_preserves_open_order_across_interleaved_resolves() {
        // The ledger is the §4.2.1 narrative: incidents must appear in the
        // order they were first observed, regardless of when (or whether)
        // each one resolved. BTreeMap-keyed open tracking must not leak its
        // alphabetical ordering into the ledger.
        let mut w = Watchdog::new();
        w.open(IncidentKind::SwitchFailure, "switch-1", t(0));
        w.open(IncidentKind::HostHang, "host-15", t(10));
        w.open(IncidentKind::SensorFault, "host-1/sensor", t(20));
        // Resolve out of open order: last opened heals first.
        w.resolve("host-1/sensor", t(30), "chip recovered");
        w.resolve("switch-1", t(40), "spare switch swapped in");
        // host-15 stays open; a new subject opens after the resolves.
        w.open(IncidentKind::SwitchFailure, "switch-0", t(50));

        let subjects: Vec<&str> = w.incidents().iter().map(|i| i.subject.as_str()).collect();
        assert_eq!(
            subjects,
            ["switch-1", "host-15", "host-1/sensor", "switch-0"],
            "ledger order is first-open order, not resolve or key order"
        );
        // Resolution landed on the right entries.
        assert_eq!(w.incidents()[0].resolved, Some(t(40)));
        assert_eq!(w.incidents()[1].resolved, None);
        assert_eq!(w.incidents()[2].resolved, Some(t(30)));
        assert_eq!(w.incidents()[3].resolved, None);
        assert_eq!(w.into_incidents().len(), 4);
    }

    #[test]
    fn reopened_subject_appends_a_fresh_incident() {
        // Host #15 hung twice; each hang is its own ledger entry, appended
        // at its own open time — the earlier resolved entry is untouched.
        let mut w = Watchdog::new();
        w.open(IncidentKind::HostHang, "host-15", t(0));
        w.resolve("host-15", t(100), "reset in place");
        w.open(IncidentKind::HostHang, "host-15", t(200));
        w.resolve("host-15", t(300), "taken indoors (memtest)");

        let h15: Vec<&Incident> = w.incidents().iter().collect();
        assert_eq!(h15.len(), 2);
        assert_eq!(h15[0].started, t(0));
        assert_eq!(h15[0].resolution.as_deref(), Some("reset in place"));
        assert_eq!(h15[1].started, t(200));
        assert_eq!(
            h15[1].resolution.as_deref(),
            Some("taken indoors (memtest)")
        );
        assert!(h15[0].started < h15[1].started, "chronological ledger");
    }

    #[test]
    fn resolve_targets_the_open_incident_not_an_earlier_one() {
        // After a reopen, resolve must stamp the *newest* entry for the
        // subject even though an older resolved entry shares its key.
        let mut w = Watchdog::new();
        w.open(IncidentKind::SensorFault, "host-1/sensor", t(0));
        w.resolve("host-1/sensor", t(10), "first recovery");
        w.open(IncidentKind::SensorFault, "host-1/sensor", t(20));
        assert!(w.is_open("host-1/sensor"));
        w.resolve("host-1/sensor", t(30), "second recovery");
        assert_eq!(w.incidents()[0].resolved, Some(t(10)));
        assert_eq!(w.incidents()[1].resolved, Some(t(30)));
        assert_eq!(
            w.incidents()[1].resolution.as_deref(),
            Some("second recovery")
        );
    }

    #[test]
    fn incident_record_serializes() {
        let mut w = Watchdog::new();
        w.open(IncidentKind::SwitchFailure, "switch-1", t(0));
        w.resolve("switch-1", t(3600), "spare switch swapped in");
        let rec = IncidentRecord::from(&w.incidents()[0]);
        assert_eq!(rec.kind, "switch-failure");
        let json = serde_json::to_string_pretty(&rec).expect("plain data");
        assert!(json.contains("switch-1"));
        assert!(json.contains("spare switch swapped in"));
    }
}
