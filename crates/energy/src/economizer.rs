//! Air-side economizer vs. mechanical cooling, across climates.
//!
//! The T6 reproduction. The intro's claim: outside-air cooling saves 40 %
//! (HP, Wynyard) to 67 % (Intel, New Mexico) of cooling energy, and the
//! whole point of the tent experiment is that if hardware survives Finnish
//! winter *unconditioned*, the technique extends to most of the globe.
//!
//! Model: for every hour of a simulated year, compare the outside dry-bulb
//! temperature against the supply-air limit.
//!
//! * `T_out ≤ limit − mix_band` — **full free cooling**: fans only;
//! * `limit − mix_band < T_out < limit` — **partial**: fans plus a
//!   proportionally loaded mechanical stage;
//! * `T_out ≥ limit` — **mechanical**: full chiller overhead.
//!
//! The baseline is the same facility running its chiller year-round.

use frostlab_climate::weather::{ClimateParams, WeatherModel};
use frostlab_simkern::time::{SimDuration, SimTime};

/// Economizer operating parameters.
#[derive(Debug, Clone)]
pub struct EconomizerConfig {
    /// Supply-air temperature limit, °C (ASHRAE-allowable-style setpoint;
    /// Intel's PoC ran up to ≈ 32 °C, conservative designs use 18–24 °C).
    pub supply_limit_c: f64,
    /// Width of the partial-cooling mixing band below the limit, K.
    pub mix_band_k: f64,
    /// Fan power as a fraction of IT load while economizing.
    pub fan_fraction: f64,
    /// Mechanical-cooling power as a fraction of IT load (chiller + CRAC +
    /// pumps) when carrying the full heat load.
    pub mechanical_fraction: f64,
}

impl Default for EconomizerConfig {
    fn default() -> Self {
        EconomizerConfig {
            supply_limit_c: 24.0,
            mix_band_k: 6.0,
            fan_fraction: 0.08,
            mechanical_fraction: 0.45,
        }
    }
}

/// Result of a one-year economizer simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomizerReport {
    /// Climate name.
    pub climate: &'static str,
    /// Hours in full free-cooling mode.
    pub free_hours: f64,
    /// Hours in partial mode.
    pub partial_hours: f64,
    /// Hours on full mechanical cooling.
    pub mechanical_hours: f64,
    /// Cooling energy with the economizer, kWh per kW of IT load.
    pub econ_cooling_kwh_per_kw: f64,
    /// Cooling energy for the always-mechanical baseline, kWh per kW.
    pub baseline_cooling_kwh_per_kw: f64,
}

impl EconomizerReport {
    /// Fraction of the year in full free cooling.
    pub fn free_fraction(&self) -> f64 {
        let total = self.free_hours + self.partial_hours + self.mechanical_hours;
        self.free_hours / total
    }

    /// Cooling-energy savings vs. the mechanical baseline (0–1).
    pub fn savings(&self) -> f64 {
        1.0 - self.econ_cooling_kwh_per_kw / self.baseline_cooling_kwh_per_kw
    }

    /// Effective PUE with the economizer, assuming cooling is the only
    /// overhead.
    pub fn effective_pue(&self) -> f64 {
        1.0 + self.econ_cooling_kwh_per_kw / 8760.0
    }
}

/// Simulate one year (hourly) of economizer operation in `climate`.
pub fn simulate_year(
    climate: ClimateParams,
    config: &EconomizerConfig,
    seed: u64,
) -> EconomizerReport {
    let name = climate.name;
    let mut wx = WeatherModel::new(climate, seed);
    let start = SimTime::from_date(2010, 1, 1);
    let end = SimTime::from_date(2010, 12, 31) + SimDuration::hours(23);
    let mut free = 0.0f64;
    let mut partial = 0.0f64;
    let mut mech = 0.0f64;
    let mut econ_kwh = 0.0f64;
    let mut base_kwh = 0.0f64;
    let mut t = start;
    while t <= end {
        let s = wx.sample_at(t);
        let full_mech_kw = config.mechanical_fraction;
        base_kwh += full_mech_kw; // 1 kW IT × 1 h
        let lo = config.supply_limit_c - config.mix_band_k;
        if s.temp_c <= lo {
            free += 1.0;
            econ_kwh += config.fan_fraction;
        } else if s.temp_c < config.supply_limit_c {
            partial += 1.0;
            let frac = (s.temp_c - lo) / config.mix_band_k;
            econ_kwh += config.fan_fraction + frac * full_mech_kw;
        } else {
            mech += 1.0;
            econ_kwh += config.fan_fraction + full_mech_kw;
        }
        t += SimDuration::hours(1);
    }
    EconomizerReport {
        climate: name,
        free_hours: free,
        partial_hours: partial,
        mechanical_hours: mech,
        econ_cooling_kwh_per_kw: econ_kwh,
        baseline_cooling_kwh_per_kw: base_kwh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_climate::presets;

    fn report(p: ClimateParams) -> EconomizerReport {
        simulate_year(p, &EconomizerConfig::default(), 17)
    }

    #[test]
    fn helsinki_is_mostly_free_cooling() {
        let r = report(presets::helsinki_winter_2010());
        assert!(
            r.free_fraction() > 0.8,
            "free fraction {}",
            r.free_fraction()
        );
        assert!(r.savings() > 0.6, "savings {}", r.savings());
    }

    #[test]
    fn climates_rank_by_summer_heat() {
        // Maritime NE England (HP's Wynyard pick: sea-cooled summers) leads,
        // continental Helsinki is a close second (warm July afternoons cost
        // some hours), high-desert New Mexico trails.
        let hel = report(presets::helsinki_winter_2010());
        let ne = report(presets::north_east_england());
        let nm = report(presets::new_mexico());
        assert!(
            ne.free_fraction() >= hel.free_fraction(),
            "ne {} vs hel {}",
            ne.free_fraction(),
            hel.free_fraction()
        );
        assert!(
            hel.free_fraction() > nm.free_fraction(),
            "hel {} vs nm {}",
            hel.free_fraction(),
            nm.free_fraction()
        );
    }

    #[test]
    fn savings_land_in_the_papers_band() {
        // The intro's 40–67 %: every study climate should save at least
        // HP's 40 %, and the band should bracket the desert site.
        let nm = report(presets::new_mexico());
        assert!(
            (0.35..0.85).contains(&nm.savings()),
            "New Mexico savings {}",
            nm.savings()
        );
        let ne = report(presets::north_east_england());
        assert!(ne.savings() > 0.40, "Wynyard-like savings {}", ne.savings());
    }

    #[test]
    fn hours_sum_to_a_year() {
        let r = report(presets::helsinki_winter_2010());
        let total = r.free_hours + r.partial_hours + r.mechanical_hours;
        assert!((total - 8760.0).abs() <= 24.0, "total hours {total}");
    }

    #[test]
    fn effective_pue_beats_mechanical() {
        let r = report(presets::helsinki_winter_2010());
        let pue = r.effective_pue();
        assert!((1.0..1.3).contains(&pue), "economized PUE {pue}");
    }

    #[test]
    fn higher_supply_limit_more_free_cooling() {
        let conservative = simulate_year(
            presets::new_mexico(),
            &EconomizerConfig {
                supply_limit_c: 18.0,
                ..Default::default()
            },
            3,
        );
        let aggressive = simulate_year(
            presets::new_mexico(),
            &EconomizerConfig {
                supply_limit_c: 32.0,
                ..Default::default()
            },
            3,
        );
        assert!(aggressive.free_fraction() > conservative.free_fraction() + 0.1);
        assert!(aggressive.savings() > conservative.savings());
    }
}
