//! # frostlab-energy
//!
//! Facility-scale energy models: the §5 discussion made quantitative.
//!
//! The paper closes with the department's own retrofit: a 75 kW cluster
//! cooled by three new CRAC units (6.9 kW total), a chilled-water HVAC unit
//! (44.7 kW) and a roof liquid cooler (3.8 kW) — "if we could just sum
//! those figures up, the new cluster's PUE rating would be a rather
//! efficient 1.74. Unfortunately … our existing CRACs take care of some of
//! the thermal load", so the honest PUE is worse. And the motivation
//! numbers from the introduction: outside-air cooling can save 40 % (HP) to
//! 67 % (Intel) of cooling energy.
//!
//! * [`plant`] — CRAC/chiller/HVAC units and the department's §5 plant;
//! * [`pue`](mod@pue) — PUE arithmetic, including the legacy-load correction;
//! * [`economizer`] — an air-side economizer model driven by the
//!   `frostlab-climate` generators, reproducing the 40–67 % savings band
//!   across the three study climates (T6);
//! * [`wetside`] — the wet-side (cooling-tower) economizer from Intel's
//!   earlier report \[2\], which the paper's §2 cites as the argued-for
//!   alternative — wet-bulb-limited rather than dry-bulb-limited.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod economizer;
pub mod plant;
pub mod pue;
pub mod wetside;

pub use economizer::{EconomizerConfig, EconomizerReport};
pub use plant::{CoolingPlant, CracUnit};
pub use pue::pue;
