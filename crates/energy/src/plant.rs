//! Cooling-plant components and the department's §5 retrofit.

/// One computer-room air-conditioning unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CracUnit {
    /// Heat it can remove, kW (thermal).
    pub cooling_capacity_kw: f64,
    /// Electrical power it draws while doing so, kW.
    pub power_draw_kw: f64,
}

impl CracUnit {
    /// Coefficient of performance implied by this unit's specs
    /// (fan/controls only: the chilled water comes from elsewhere).
    pub fn cop(&self) -> f64 {
        self.cooling_capacity_kw / self.power_draw_kw
    }
}

/// The whole cooling chain for one machine room.
#[derive(Debug, Clone)]
pub struct CoolingPlant {
    /// Room-side CRAC units.
    pub cracs: Vec<CracUnit>,
    /// The chilled-water HVAC unit's electrical draw, kW.
    pub hvac_unit_kw: f64,
    /// The roof liquid-cooling unit's electrical draw, kW.
    pub roof_cooler_kw: f64,
}

impl CoolingPlant {
    /// The department's retrofit for the new cluster (§5): three new CRACs
    /// drawing 6.9 kW total, a 44.7 kW chilled-water unit, a 3.8 kW roof
    /// cooler, sized for a 75 kW peak IT load.
    pub fn department_retrofit() -> CoolingPlant {
        CoolingPlant {
            cracs: vec![
                CracUnit {
                    cooling_capacity_kw: 25.0,
                    power_draw_kw: 2.3,
                },
                CracUnit {
                    cooling_capacity_kw: 25.0,
                    power_draw_kw: 2.3,
                },
                CracUnit {
                    cooling_capacity_kw: 25.0,
                    power_draw_kw: 2.3,
                },
            ],
            hvac_unit_kw: 44.7,
            roof_cooler_kw: 3.8,
        }
    }

    /// Total electrical overhead of the plant, kW.
    pub fn total_overhead_kw(&self) -> f64 {
        self.cracs.iter().map(|c| c.power_draw_kw).sum::<f64>()
            + self.hvac_unit_kw
            + self.roof_cooler_kw
    }

    /// Total CRAC cooling capacity, kW thermal.
    pub fn cooling_capacity_kw(&self) -> f64 {
        self.cracs.iter().map(|c| c.cooling_capacity_kw).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn department_figures_match_paper() {
        let p = CoolingPlant::department_retrofit();
        let crac_total: f64 = p.cracs.iter().map(|c| c.power_draw_kw).sum();
        assert!((crac_total - 6.9).abs() < 1e-9, "CRACs draw {crac_total}");
        assert!((p.total_overhead_kw() - 55.4).abs() < 1e-9);
        // The CRACs can actually carry the 75 kW design load.
        assert!(p.cooling_capacity_kw() >= 75.0);
    }

    #[test]
    fn crac_cop_reasonable() {
        let p = CoolingPlant::department_retrofit();
        for c in &p.cracs {
            let cop = c.cop();
            assert!((5.0..20.0).contains(&cop), "air-mover COP {cop}");
        }
    }
}
