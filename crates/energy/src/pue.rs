//! Power usage effectiveness.
//!
//! `PUE = total facility power / IT power`. The paper's §5 calculation:
//! 75 kW of IT plus 6.9 + 44.7 + 3.8 kW of cooling would give
//! `130.4 / 75 ≈ 1.74` — *if* the new plant carried the whole thermal load.
//! It does not (legacy CRACs help), so the honest number is worse; we model
//! that with [`pue_with_legacy`].

use crate::plant::CoolingPlant;

/// Classic PUE.
///
/// # Panics
/// Panics if `it_kw` is not strictly positive.
pub fn pue(it_kw: f64, overhead_kw: f64) -> f64 {
    assert!(it_kw > 0.0, "PUE undefined without IT load");
    (it_kw + overhead_kw) / it_kw
}

/// The §5 sum: PUE of `it_kw` served by `plant` — the "if we could just sum
/// those figures up" number.
pub fn naive_plant_pue(it_kw: f64, plant: &CoolingPlant) -> f64 {
    pue(it_kw, plant.total_overhead_kw())
}

/// The correction the authors point out: part of the thermal load is
/// carried by pre-existing CRACs whose draw the naive sum ignores.
/// `legacy_fraction` is the share of the heat the legacy plant removes and
/// `legacy_efficiency_kw_per_kw` its electrical cost per kW of heat moved.
pub fn pue_with_legacy(
    it_kw: f64,
    plant: &CoolingPlant,
    legacy_fraction: f64,
    legacy_kw_per_kw: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&legacy_fraction));
    let legacy_overhead = it_kw * legacy_fraction * legacy_kw_per_kw;
    pue(it_kw, plant.total_overhead_kw() + legacy_overhead)
}

/// Free-air PUE: fans only. Typical air-economized facilities publish
/// 1.07–1.2; we expose the fan fraction as a parameter.
pub fn free_air_pue(fan_fraction: f64) -> f64 {
    1.0 + fan_fraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::CoolingPlant;

    #[test]
    fn paper_pue_174() {
        let p = CoolingPlant::department_retrofit();
        let v = naive_plant_pue(75.0, &p);
        assert!((v - 1.74).abs() < 0.005, "PUE {v}");
    }

    #[test]
    fn legacy_load_makes_it_worse() {
        let p = CoolingPlant::department_retrofit();
        let naive = naive_plant_pue(75.0, &p);
        let honest = pue_with_legacy(75.0, &p, 0.25, 0.5);
        assert!(honest > naive, "naive {naive}, honest {honest}");
        assert!(honest < 2.2);
    }

    #[test]
    fn free_air_is_far_better() {
        let p = CoolingPlant::department_retrofit();
        assert!(free_air_pue(0.1) < naive_plant_pue(75.0, &p) - 0.5);
    }

    #[test]
    fn pue_identity_cases() {
        assert_eq!(pue(100.0, 0.0), 1.0);
        assert_eq!(pue(50.0, 50.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn zero_it_load_rejected() {
        pue(0.0, 10.0);
    }
}
