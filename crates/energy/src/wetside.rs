//! Wet-side economizer model.
//!
//! The paper notes (§2) that Intel's earlier report \[2\] had "argued
//! convincingly *against* air economizers" in favour of **wet-side**
//! economizers: instead of blowing outside air through the room, a cooling
//! tower chills the condenser water whenever the outside **wet-bulb**
//! temperature is low enough, letting the chiller idle while the room keeps
//! its closed, conditioned air loop.
//!
//! Modeling the comparison lets the platform reproduce the debate the paper
//! sits inside: wet-side wins in humid climates with sensitive IT intake
//! requirements; air-side wins where the dry-bulb is cold (Finland) because
//! it also eliminates the water loop. Wet-bulb temperature comes from the
//! psychrometrics substrate (Stull's empirical formula).

use frostlab_climate::math::clamp;
use frostlab_climate::weather::{ClimateParams, WeatherModel};
use frostlab_simkern::time::{SimDuration, SimTime};

/// Wet-bulb temperature (°C) via Stull (2011) — accurate to ~0.3 K for
/// RH 5–99 %, T −20…50 °C. Outside the fit's validity range it can drift
/// above the dry bulb, so the result is clamped to the physical bound
/// T_w ≤ T (in deep cold the depression is tiny anyway: the air holds
/// almost no water).
pub fn wet_bulb_c(t_c: f64, rh_pct: f64) -> f64 {
    let rh = clamp(rh_pct, 5.0, 99.0);
    let wb = t_c * (0.151_977 * (rh + 8.313_659).sqrt()).atan() + (t_c + rh).atan()
        - (rh - 1.676_331).atan()
        + 0.003_918_38 * rh.powf(1.5) * (0.023_101 * rh).atan()
        - 4.686_035;
    wb.min(t_c)
}

/// Wet-side economizer parameters.
#[derive(Debug, Clone)]
pub struct WetSideConfig {
    /// Chilled-water supply setpoint, °C.
    pub chw_setpoint_c: f64,
    /// Cooling-tower approach: the water leaves this many K above the
    /// ambient wet-bulb.
    pub tower_approach_k: f64,
    /// Tower fans + pumps, as a fraction of IT load while economizing.
    pub tower_fraction: f64,
    /// Full mechanical (chiller) cooling power as a fraction of IT load.
    pub mechanical_fraction: f64,
    /// Partial-assist band, K: wet-bulb within this of the threshold runs
    /// tower + partly loaded chiller.
    pub mix_band_k: f64,
}

impl Default for WetSideConfig {
    fn default() -> Self {
        WetSideConfig {
            chw_setpoint_c: 10.0,
            tower_approach_k: 4.0,
            tower_fraction: 0.10,
            mechanical_fraction: 0.45,
            mix_band_k: 4.0,
        }
    }
}

/// One-year wet-side simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct WetSideReport {
    /// Climate name.
    pub climate: &'static str,
    /// Hours of full free (tower-only) cooling.
    pub free_hours: f64,
    /// Hours of partial chiller assist.
    pub partial_hours: f64,
    /// Hours on full mechanical cooling.
    pub mechanical_hours: f64,
    /// Cooling energy, kWh per kW of IT.
    pub cooling_kwh_per_kw: f64,
    /// Always-mechanical baseline, kWh per kW.
    pub baseline_kwh_per_kw: f64,
}

impl WetSideReport {
    /// Cooling-energy savings vs. the mechanical baseline.
    pub fn savings(&self) -> f64 {
        1.0 - self.cooling_kwh_per_kw / self.baseline_kwh_per_kw
    }

    /// Fraction of the year tower-only.
    pub fn free_fraction(&self) -> f64 {
        self.free_hours / (self.free_hours + self.partial_hours + self.mechanical_hours)
    }
}

/// Simulate one year of wet-side economizer operation.
pub fn simulate_year_wetside(
    climate: ClimateParams,
    config: &WetSideConfig,
    seed: u64,
) -> WetSideReport {
    let name = climate.name;
    let mut wx = WeatherModel::new(climate, seed);
    let start = SimTime::from_date(2010, 1, 1);
    let end = SimTime::from_date(2010, 12, 31) + SimDuration::hours(23);
    // Tower can carry the full load when its output water (wet-bulb +
    // approach) is at or below the chilled-water setpoint.
    let threshold = config.chw_setpoint_c - config.tower_approach_k;
    let (mut free, mut partial, mut mech) = (0.0f64, 0.0f64, 0.0f64);
    let (mut kwh, mut base) = (0.0f64, 0.0f64);
    let mut t = start;
    while t <= end {
        let s = wx.sample_at(t);
        let wb = wet_bulb_c(s.temp_c, s.rh_pct);
        base += config.mechanical_fraction;
        if wb <= threshold {
            free += 1.0;
            kwh += config.tower_fraction;
        } else if wb < threshold + config.mix_band_k {
            partial += 1.0;
            let frac = (wb - threshold) / config.mix_band_k;
            kwh += config.tower_fraction + frac * config.mechanical_fraction;
        } else {
            mech += 1.0;
            kwh += config.tower_fraction + config.mechanical_fraction;
        }
        t += SimDuration::hours(1);
    }
    WetSideReport {
        climate: name,
        free_hours: free,
        partial_hours: partial,
        mechanical_hours: mech,
        cooling_kwh_per_kw: kwh,
        baseline_kwh_per_kw: base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_climate::presets;

    #[test]
    fn wet_bulb_reference_points() {
        // Saturated air: wet bulb ≈ dry bulb.
        assert!((wet_bulb_c(20.0, 99.0) - 20.0).abs() < 0.7);
        // Stull's own example: 20 °C, 50 % RH → T_w ≈ 13.7 °C.
        assert!((wet_bulb_c(20.0, 50.0) - 13.7).abs() < 0.5);
        // Dry desert air: large depression.
        let wb = wet_bulb_c(35.0, 15.0);
        assert!(wb < 20.0, "wet bulb {wb}");
        // Wet bulb never exceeds dry bulb.
        for t in [-5.0, 5.0, 25.0, 40.0] {
            for rh in [10.0, 50.0, 95.0] {
                assert!(wet_bulb_c(t, rh) <= t + 0.8, "t={t} rh={rh}");
            }
        }
    }

    #[test]
    fn helsinki_wetside_mostly_free() {
        let r = simulate_year_wetside(
            presets::helsinki_winter_2010(),
            &WetSideConfig::default(),
            5,
        );
        assert!(r.free_fraction() > 0.6, "free {}", r.free_fraction());
        assert!(r.savings() > 0.4, "savings {}", r.savings());
    }

    #[test]
    fn desert_wetside_beats_its_own_airside_gap() {
        // New Mexico: dry air ⇒ big wet-bulb depression ⇒ wet-side gets
        // substantially MORE free hours than a dry-bulb-limited air-side at
        // an equivalent threshold. (This is Intel's [2] argument.)
        let wet = simulate_year_wetside(presets::new_mexico(), &WetSideConfig::default(), 5);
        let air = crate::economizer::simulate_year(
            presets::new_mexico(),
            &crate::economizer::EconomizerConfig {
                // Same effective ceiling: chw 10 − approach 4 = 6 °C supply
                // coil temperature ⇒ comparable dry-bulb limit.
                supply_limit_c: 10.0,
                mix_band_k: 4.0,
                ..Default::default()
            },
            5,
        );
        assert!(
            wet.free_fraction() > air.free_fraction(),
            "wet {} vs air {}",
            wet.free_fraction(),
            air.free_fraction()
        );
    }

    #[test]
    fn hours_sum_to_year() {
        let r = simulate_year_wetside(presets::north_east_england(), &WetSideConfig::default(), 2);
        let total = r.free_hours + r.partial_hours + r.mechanical_hours;
        assert!((total - 8760.0).abs() <= 24.0);
    }
}
