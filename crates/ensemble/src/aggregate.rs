//! Streaming aggregation of [`CampaignSummary`] projections.
//!
//! [`CampaignAggregate`] absorbs one compact summary per campaign and
//! keeps only O(1) state — Welford moments, min/max trackers, and a
//! fixed-bin histogram for percentiles — so a 10 000-run sweep costs the
//! same memory as a 10-run one. [`CampaignAggregate::finish`] freezes it
//! into the serializable [`EnsembleSummary`], the artifact the CI
//! determinism gate diffs across thread counts.

use frostlab_analysis::stats::{Histogram, MinMax, Welford};
use frostlab_core::results::CampaignSummary;

/// Fleet-failure-rate histogram geometry: rates live in [0, 1]; 80 bins
/// of 0.0125 give percentile estimates exact to within 1.25 percentage
/// points (one bin width — see `Histogram::percentile`).
const RATE_BINS: usize = 80;
const RATE_BIN_WIDTH: f64 = 0.0125;

/// O(1)-memory accumulator over campaign summaries.
///
/// `absorb` is order-sensitive only in the last floating-point ulps (its
/// Welford folds are associative up to rounding); the ensemble engine
/// feeds it in seed order so the frozen summary is bit-reproducible for
/// any thread count.
#[derive(Debug, Clone, Default)]
pub struct CampaignAggregate {
    n: u64,
    failed_tent: Welford,
    failed_control: Welford,
    fleet_rate: Welford,
    rate_hist: Option<Histogram>,
    wrong_hashes: Welford,
    wrong_hashes_range: MinMax,
    silent_corruptions: u64,
    stored_archives: u64,
    host_resets: u64,
    availability: Welford,
    availability_range: MinMax,
    energy_kwh: Welford,
    outside_min_c: MinMax,
    tent_temp: MinMax,
    tent_rh_max: MinMax,
    fleet_min_cpu_c: MinMax,
    total_runs: u64,
    total_page_ops: u64,
    like_paper: u64,
    any_tent_failure: u64,
    comparable_with_intel: u64,
}

impl CampaignAggregate {
    /// Empty aggregate.
    pub fn new() -> CampaignAggregate {
        CampaignAggregate::default()
    }

    /// Campaigns absorbed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Fold one campaign's summary into the running state.
    pub fn absorb(&mut self, s: &CampaignSummary) {
        self.n += 1;
        self.failed_tent.push(s.failed_hosts_tent as f64);
        self.failed_control.push(s.failed_hosts_control as f64);
        self.fleet_rate.push(s.fleet_failure_rate);
        self.rate_hist
            .get_or_insert_with(|| Histogram::new(0.0, RATE_BIN_WIDTH, RATE_BINS))
            .push(s.fleet_failure_rate);
        self.wrong_hashes.push(s.wrong_hashes as f64);
        self.wrong_hashes_range.push(s.wrong_hashes as f64);
        self.silent_corruptions += s.silent_corruptions;
        self.stored_archives += s.stored_archives as u64;
        self.host_resets += s.host_resets;
        self.availability.push(s.collection_availability);
        self.availability_range.push(s.collection_availability);
        self.energy_kwh.push(s.tent_energy_kwh);
        self.outside_min_c.push(s.outside_min_c);
        self.tent_temp.push(s.tent_temp_min_c);
        self.tent_temp.push(s.tent_temp_max_c);
        self.tent_rh_max.push(s.tent_rh_max_pct);
        self.fleet_min_cpu_c.push(s.fleet_min_cpu_c);
        self.total_runs += s.total_runs;
        self.total_page_ops += s.total_page_ops;
        if s.failed_hosts_tent <= 1 && s.failed_hosts_control == 0 {
            self.like_paper += 1;
        }
        if s.failed_hosts_tent > 0 {
            self.any_tent_failure += 1;
        }
        if s.comparable_with_intel {
            self.comparable_with_intel += 1;
        }
    }

    /// Merge another aggregate (for tree-shaped folds). Exact for the
    /// counters and min/max; associative up to floating-point rounding
    /// for the Welford moments and exactly order-independent for the
    /// histogram.
    pub fn merge(&mut self, other: &CampaignAggregate) {
        self.n += other.n;
        self.failed_tent.merge(&other.failed_tent);
        self.failed_control.merge(&other.failed_control);
        self.fleet_rate.merge(&other.fleet_rate);
        match (&mut self.rate_hist, &other.rate_hist) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.rate_hist = Some(b.clone()),
            _ => {}
        }
        self.wrong_hashes.merge(&other.wrong_hashes);
        self.wrong_hashes_range.merge(&other.wrong_hashes_range);
        self.silent_corruptions += other.silent_corruptions;
        self.stored_archives += other.stored_archives;
        self.host_resets += other.host_resets;
        self.availability.merge(&other.availability);
        self.availability_range.merge(&other.availability_range);
        self.energy_kwh.merge(&other.energy_kwh);
        self.outside_min_c.merge(&other.outside_min_c);
        self.tent_temp.merge(&other.tent_temp);
        self.tent_rh_max.merge(&other.tent_rh_max);
        self.fleet_min_cpu_c.merge(&other.fleet_min_cpu_c);
        self.total_runs += other.total_runs;
        self.total_page_ops += other.total_page_ops;
        self.like_paper += other.like_paper;
        self.any_tent_failure += other.any_tent_failure;
        self.comparable_with_intel += other.comparable_with_intel;
    }

    /// Freeze into the serializable summary. 0.0 stands in for undefined
    /// moments of an empty/singleton aggregate, except
    /// `fleet_min_cpu_c`: a sweep in which no host ever truthfully
    /// reported has no coldest reading, and 0.0 °C would be a plausible
    /// temperature — NaN (rendered `null` in JSON) keeps "no sample"
    /// distinguishable there.
    pub fn finish(&self, seed_start: u64, threads: usize) -> EnsembleSummary {
        let f = |x: Option<f64>| x.unwrap_or(0.0);
        let hist = self.rate_hist.as_ref();
        EnsembleSummary {
            schema: SCHEMA.to_string(),
            campaigns: self.n,
            seed_start,
            threads_used: threads,
            failed_hosts_tent_mean: f(self.failed_tent.mean()),
            failed_hosts_tent_std: f(self.failed_tent.std_dev()),
            failed_hosts_control_mean: f(self.failed_control.mean()),
            fleet_failure_rate_mean: f(self.fleet_rate.mean()),
            fleet_failure_rate_std: f(self.fleet_rate.std_dev()),
            fleet_failure_rate_p50: f(hist.and_then(|h| h.percentile(50.0))),
            fleet_failure_rate_p90: f(hist.and_then(|h| h.percentile(90.0))),
            wrong_hashes_mean: f(self.wrong_hashes.mean()),
            wrong_hashes_min: f(self.wrong_hashes_range.min()),
            wrong_hashes_max: f(self.wrong_hashes_range.max()),
            silent_corruptions_total: self.silent_corruptions,
            stored_archives_total: self.stored_archives,
            host_resets_total: self.host_resets,
            collection_availability_mean: f(self.availability.mean()),
            collection_availability_min: f(self.availability_range.min()),
            tent_energy_kwh_mean: f(self.energy_kwh.mean()),
            outside_min_c: f(self.outside_min_c.min()),
            tent_temp_min_c: f(self.tent_temp.min()),
            tent_temp_max_c: f(self.tent_temp.max()),
            tent_rh_max_pct: f(self.tent_rh_max.max()),
            fleet_min_cpu_c: self.fleet_min_cpu_c.min().unwrap_or(f64::NAN),
            total_runs: self.total_runs,
            total_page_ops: self.total_page_ops,
            campaigns_like_paper: self.like_paper,
            campaigns_with_tent_failure: self.any_tent_failure,
            campaigns_comparable_with_intel: self.comparable_with_intel,
        }
    }
}

/// Schema tag embedded in every serialized ensemble summary.
pub const SCHEMA: &str = "frostlab-ensemble-summary/v1";

/// Frozen, serializable view of a whole ensemble.
///
/// `threads_used` records how the ensemble was executed but is excluded
/// from [`EnsembleSummary::invariant_json`], the form the determinism
/// gate diffs — everything else must be byte-identical across thread
/// counts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnsembleSummary {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Campaigns aggregated.
    pub campaigns: u64,
    /// First seed of the contiguous seed range.
    pub seed_start: u64,
    /// Worker threads the run actually used (informational).
    pub threads_used: usize,
    /// Mean tent hosts with ≥1 transient failure.
    pub failed_hosts_tent_mean: f64,
    /// Sample std-dev of the tent failure count.
    pub failed_hosts_tent_std: f64,
    /// Mean control hosts with ≥1 transient failure.
    pub failed_hosts_control_mean: f64,
    /// Mean whole-fleet failure rate.
    pub fleet_failure_rate_mean: f64,
    /// Sample std-dev of the fleet failure rate.
    pub fleet_failure_rate_std: f64,
    /// Median fleet failure rate (histogram estimate, ±1 bin = ±1.25 pp).
    pub fleet_failure_rate_p50: f64,
    /// 90th-percentile fleet failure rate (same tolerance).
    pub fleet_failure_rate_p90: f64,
    /// Mean wrong md5sums per campaign.
    pub wrong_hashes_mean: f64,
    /// Fewest wrong hashes any campaign produced.
    pub wrong_hashes_min: f64,
    /// Most wrong hashes any campaign produced.
    pub wrong_hashes_max: f64,
    /// Silent memory corruptions summed over all campaigns.
    pub silent_corruptions_total: u64,
    /// Forensic archives stored, summed.
    pub stored_archives_total: u64,
    /// In-place host resets, summed.
    pub host_resets_total: u64,
    /// Mean collection availability.
    pub collection_availability_mean: f64,
    /// Worst campaign's collection availability.
    pub collection_availability_min: f64,
    /// Mean tent-group energy, kWh.
    pub tent_energy_kwh_mean: f64,
    /// Coldest outside observation across the ensemble, °C.
    pub outside_min_c: f64,
    /// Coldest tent air across the ensemble, °C.
    pub tent_temp_min_c: f64,
    /// Warmest tent air across the ensemble, °C.
    pub tent_temp_max_c: f64,
    /// Highest tent RH across the ensemble, %.
    pub tent_rh_max_pct: f64,
    /// Lowest truthful CPU reading across the ensemble, °C.
    pub fleet_min_cpu_c: f64,
    /// Synthetic-load runs, summed.
    pub total_runs: u64,
    /// Memory page operations, summed (exposure).
    pub total_page_ops: u64,
    /// Campaigns that look like the paper's (≤1 tent failure, clean control).
    pub campaigns_like_paper: u64,
    /// Campaigns with ≥1 tent failure.
    pub campaigns_with_tent_failure: u64,
    /// Campaigns whose Wilson interval covers Intel's 4.46 %.
    pub campaigns_comparable_with_intel: u64,
}

impl EnsembleSummary {
    /// Pretty JSON of the whole summary (includes `threads_used`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Pretty JSON with execution metadata (`threads_used`) masked to 0 —
    /// the byte-comparable form for thread-count-invariance checks.
    pub fn invariant_json(&self) -> Result<String, serde_json::Error> {
        let mut masked = self.clone();
        masked.threads_used = 0;
        serde_json::to_string_pretty(&masked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(seed: u64) -> CampaignSummary {
        CampaignSummary {
            seed,
            start: "2010-02-12 00:00".into(),
            end: "2010-02-14 00:00".into(),
            total_runs: 100 + seed,
            wrong_hashes: (seed % 3) as usize,
            wrong_hashes_tent: (seed % 2) as usize,
            silent_corruptions: seed % 4,
            stored_archives: (seed % 2) as usize,
            failed_hosts_tent: seed % 3,
            failed_hosts_control: u64::from(seed.is_multiple_of(5)),
            host_resets: seed % 2,
            fleet_failure_rate: (seed % 7) as f64 / 18.0,
            comparable_with_intel: seed.is_multiple_of(2),
            outside_min_c: -20.0 - seed as f64,
            tent_temp_min_c: -5.0 + (seed as f64) * 0.1,
            tent_temp_max_c: 25.0 + (seed as f64) * 0.1,
            tent_rh_max_pct: 60.0 + (seed as f64),
            fleet_min_cpu_c: -2.0 - seed as f64 * 0.5,
            collection_availability: 1.0 - (seed as f64) * 0.001,
            tent_energy_kwh: 500.0 + seed as f64,
            lascar_outliers_removed: 0,
            total_page_ops: 1_000 * seed,
        }
    }

    #[test]
    fn absorb_then_finish_is_deterministic() {
        let mut a = CampaignAggregate::new();
        let mut b = CampaignAggregate::new();
        for s in 0..16 {
            a.absorb(&summary(s));
            b.absorb(&summary(s));
        }
        assert_eq!(
            a.finish(0, 1).invariant_json().unwrap(),
            b.finish(0, 8).invariant_json().unwrap()
        );
        assert_eq!(a.count(), 16);
    }

    #[test]
    fn merge_matches_sequential_absorb_closely() {
        let mut whole = CampaignAggregate::new();
        let (mut left, mut right) = (CampaignAggregate::new(), CampaignAggregate::new());
        for s in 0..24 {
            whole.absorb(&summary(s));
            if s < 11 {
                left.absorb(&summary(s));
            } else {
                right.absorb(&summary(s));
            }
        }
        left.merge(&right);
        let (a, b) = (left.finish(0, 1), whole.finish(0, 1));
        assert_eq!(a.campaigns, b.campaigns);
        assert_eq!(a.total_page_ops, b.total_page_ops);
        assert_eq!(a.campaigns_like_paper, b.campaigns_like_paper);
        assert_eq!(a.outside_min_c, b.outside_min_c);
        assert_eq!(a.fleet_failure_rate_p50, b.fleet_failure_rate_p50);
        assert!((a.fleet_failure_rate_mean - b.fleet_failure_rate_mean).abs() < 1e-12);
        assert!((a.fleet_failure_rate_std - b.fleet_failure_rate_std).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_freezes_to_zeros() {
        let s = CampaignAggregate::new().finish(0, 1);
        assert_eq!(s.campaigns, 0);
        assert_eq!(s.fleet_failure_rate_mean, 0.0);
        assert_eq!(s.tent_temp_min_c, 0.0);
        // Still valid JSON.
        assert!(s.to_json().unwrap().contains("\"campaigns\": 0"));
    }

    #[test]
    fn json_roundtrips() {
        let mut agg = CampaignAggregate::new();
        for s in 0..5 {
            agg.absorb(&summary(s));
        }
        let frozen = agg.finish(0, 4);
        let json = frozen.to_json().unwrap();
        let back: EnsembleSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, frozen);
        assert_eq!(back.schema, SCHEMA);
    }
}
