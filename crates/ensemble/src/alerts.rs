//! Per-seed alert timelines folded across an observed sweep.
//!
//! The observability analog of [`crate::metrics`]: every campaign in an
//! observed sweep produces a [`CampaignObs`]
//! whose alert fires/resolves and SLO attainment are pure functions of
//! (config, seed). This module keeps the per-seed view — an operator
//! asking "which winters breached the corruption SLO, and when?" needs
//! the timeline, not a blurred average — while staying O(alerts) in
//! memory because the heavyweight parts of each record (flight dumps,
//! rollup reports) are dropped on the worker before folding.
//!
//! The fold happens in the engine's ordered sink, so the frozen
//! [`EnsembleAlerts`] (and its [`EnsembleAlerts::timeline_jsonl`]
//! rendering) is byte-identical at any thread count — the
//! `obs-determinism` CI job diffs it at 1 vs 4 threads.

use frostlab_obs::{AlertRecord, CampaignObs, SloAttainment};

/// Schema tag embedded in every serialized ensemble alerts report.
pub const ALERTS_SCHEMA: &str = "frostlab-ensemble-alerts/v1";

/// One campaign's alert view: the timeline plus end-of-campaign SLO
/// attainment, tagged with the seed that produced it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeedAlerts {
    /// Root seed of the campaign.
    pub seed: u64,
    /// Every alert fire/resolve, in sim-time order.
    pub alerts: Vec<AlertRecord>,
    /// End-of-campaign attainment per SLO, in spec order.
    pub slos: Vec<SloAttainment>,
}

impl SeedAlerts {
    /// Project a campaign's frozen observability record down to the
    /// alert view (flight dumps and rollup report are dropped — they
    /// stay with the per-campaign artifacts, not the sweep fold).
    pub fn from_obs(seed: u64, obs: &CampaignObs) -> SeedAlerts {
        SeedAlerts {
            seed,
            alerts: obs.alerts.clone(),
            slos: obs.slos.clone(),
        }
    }
}

/// Frozen per-seed alert timelines of a whole observed sweep, in seed
/// order. Contains no execution metadata, so its JSON must be
/// byte-identical across thread counts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnsembleAlerts {
    /// Schema tag ([`ALERTS_SCHEMA`]).
    pub schema: String,
    /// Campaigns observed.
    pub campaigns: u64,
    /// First seed of the contiguous seed range.
    pub seed_start: u64,
    /// Per-seed alert views, in seed order.
    pub per_seed: Vec<SeedAlerts>,
}

impl EnsembleAlerts {
    /// Start an empty report for a sweep beginning at `seed_start`.
    pub fn new(seed_start: u64) -> EnsembleAlerts {
        EnsembleAlerts {
            schema: ALERTS_SCHEMA.to_string(),
            campaigns: 0,
            seed_start,
            per_seed: Vec::new(),
        }
    }

    /// Fold one campaign's alert view in. Callers must push in seed
    /// order (the engine's ordered sink guarantees it).
    pub fn absorb(&mut self, per_seed: SeedAlerts) {
        self.campaigns += 1;
        self.per_seed.push(per_seed);
    }

    /// Total alert records (fires + resolves) across the sweep.
    pub fn total_alerts(&self) -> usize {
        self.per_seed.iter().map(|s| s.alerts.len()).sum()
    }

    /// Seeds whose named SLO was *not* attained at campaign end.
    pub fn breached_seeds(&self, slo: &str) -> Vec<u64> {
        self.per_seed
            .iter()
            .filter(|s| s.slos.iter().any(|a| a.slo == slo && !a.attained))
            .map(|s| s.seed)
            .collect()
    }

    /// The whole sweep's alert timeline as deterministic JSON lines:
    /// one `{"seed":N,"alert":{…}}` object per line, seeds in order,
    /// alerts in sim-time order within each seed. This is the artifact
    /// the 1-vs-4-thread CI byte-diff pins.
    pub fn timeline_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.per_seed {
            for a in &s.alerts {
                out.push_str(&format!(
                    "{{\"seed\":{},\"alert\":{}}}\n",
                    s.seed,
                    serde_json::to_string(a).expect("plain data")
                ));
            }
        }
        out
    }

    /// Pretty JSON of the report.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_with(seed: u64, fires: usize) -> CampaignObs {
        CampaignObs {
            alerts: (0..fires)
                .map(|i| AlertRecord {
                    slo: "dew-point-margin".to_string(),
                    action: if i % 2 == 0 { "fire" } else { "resolve" }.to_string(),
                    at: format!("2010-01-0{} 00:00:00", i + 1),
                    at_s: (i as i64) * 86_400,
                    fast_burn: 0.5 + seed as f64,
                    slow_burn: 0.5,
                })
                .collect(),
            slos: vec![SloAttainment {
                slo: "corruption-rate".to_string(),
                bad: seed,
                total: 100,
                ratio: seed as f64 / 100.0,
                target: 0.01,
                attained: seed == 0,
                fires: 0,
            }],
            rollup: None,
            flights: Vec::new(),
        }
    }

    #[test]
    fn folds_in_seed_order_and_counts() {
        let mut agg = EnsembleAlerts::new(3);
        for seed in 3..6 {
            agg.absorb(SeedAlerts::from_obs(seed, &obs_with(seed, 2)));
        }
        assert_eq!(agg.campaigns, 3);
        assert_eq!(agg.total_alerts(), 6);
        assert_eq!(agg.per_seed[0].seed, 3);
        assert_eq!(agg.breached_seeds("corruption-rate"), vec![3, 4, 5]);
        assert!(agg.breached_seeds("dew-point-margin").is_empty());
    }

    #[test]
    fn timeline_is_one_tagged_object_per_line() {
        let mut agg = EnsembleAlerts::new(0);
        agg.absorb(SeedAlerts::from_obs(0, &obs_with(0, 1)));
        agg.absorb(SeedAlerts::from_obs(1, &obs_with(1, 1)));
        let t = agg.timeline_jsonl();
        assert_eq!(t.lines().count(), 2);
        assert!(t.starts_with("{\"seed\":0,\"alert\":{\"slo\":\"dew-point-margin\""));
        assert!(t.lines().nth(1).unwrap().starts_with("{\"seed\":1,"));
        // Every line is valid JSON on its own.
        for line in t.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid");
            assert!(v.get("alert").is_some());
        }
    }

    #[test]
    fn report_json_roundtrips() {
        let mut agg = EnsembleAlerts::new(0);
        agg.absorb(SeedAlerts::from_obs(0, &obs_with(0, 3)));
        let json = agg.to_json().expect("plain data");
        let back: EnsembleAlerts = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, agg);
        assert_eq!(back.schema, ALERTS_SCHEMA);
    }
}
