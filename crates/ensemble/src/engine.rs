//! The deterministic parallel runner.
//!
//! [`Ensemble::run_map`] is a work-stealing parallel `map` whose fold is
//! **thread-count invariant**: workers pull job indices from a shared
//! atomic counter and finish in whatever order the scheduler likes, but
//! completed items pass through a reorder buffer and the caller's sink is
//! invoked strictly in index order, on the caller's thread. Because every
//! floating-point operation downstream of the sink therefore happens in
//! the same sequence regardless of worker count, a 1-thread and a
//! 16-thread run of the same jobs produce byte-identical output.
//!
//! The reorder buffer holds at most ~`threads` pending items (a worker
//! can only race ahead of the merge frontier by the jobs currently in
//! flight), so memory stays O(threads), not O(jobs).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

use frostlab_core::config::ExperimentConfig;
use frostlab_core::results::ExperimentResults;
use frostlab_core::{Scenario, ScenarioBuilder};

/// Progress callback: `(completed_jobs, total_jobs)`, invoked on the
/// caller's thread each time a job is merged (i.e. in index order).
pub type ProgressFn<'a> = dyn Fn(u64, u64) + 'a;

/// A deterministic parallel ensemble over jobs `0..jobs`.
pub struct Ensemble<'a> {
    jobs: u64,
    threads: usize,
    progress: Option<Box<ProgressFn<'a>>>,
}

impl<'a> Ensemble<'a> {
    /// An ensemble of `jobs` independent jobs (indices `0..jobs`).
    pub fn new(jobs: u64) -> Ensemble<'a> {
        Ensemble {
            jobs,
            threads: 0,
            progress: None,
        }
    }

    /// Worker threads to use. `0` (the default) means
    /// `std::thread::available_parallelism()`. The thread count never
    /// affects results, only wall-clock.
    pub fn threads(mut self, threads: usize) -> Ensemble<'a> {
        self.threads = threads;
        self
    }

    /// Install a progress hook, called as `(done, total)` after each job
    /// is merged, in job order, on the calling thread.
    pub fn on_progress(mut self, f: impl Fn(u64, u64) + 'a) -> Ensemble<'a> {
        self.progress = Some(Box::new(f));
        self
    }

    /// Number of jobs.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Worker threads that will actually run (resolving `0` = auto and
    /// capping at the job count).
    pub fn effective_threads(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let t = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        t.clamp(1, self.jobs.max(1) as usize)
    }

    /// Run `job` for every index in `0..jobs` across the worker pool and
    /// feed each result to `sink` **in index order** on this thread.
    ///
    /// `job` must be a pure function of its index (seeded simulations
    /// qualify); under that contract the sink sees the exact same
    /// sequence of values for any thread count.
    pub fn run_map<R, J, S>(&self, job: J, mut sink: S)
    where
        J: Fn(u64) -> R + Sync,
        R: Send,
        S: FnMut(u64, R),
    {
        let total = self.jobs;
        if total == 0 {
            return;
        }
        let threads = self.effective_threads();
        if threads == 1 {
            // Serial reference path: same fold order by construction.
            for i in 0..total {
                sink(i, job(i));
                if let Some(p) = &self.progress {
                    p(i + 1, total);
                }
            }
            return;
        }

        let next = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<(u64, R)>();
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let job = &job;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        break;
                    }
                    if tx.send((i, job(i))).is_err() {
                        break; // receiver gone: the merge loop bailed
                    }
                });
            }
            drop(tx);

            // Merge frontier: absorb completions in index order no matter
            // the order they arrive in.
            let mut pending: BTreeMap<u64, R> = BTreeMap::new();
            let mut frontier = 0u64;
            for (i, r) in rx {
                pending.insert(i, r);
                while let Some(r) = pending.remove(&frontier) {
                    sink(frontier, r);
                    frontier += 1;
                    if let Some(p) = &self.progress {
                        p(frontier, total);
                    }
                }
            }
            debug_assert_eq!(frontier, total, "all jobs merged");
        })
        .expect("ensemble worker panicked");
    }

    /// Run one [`Scenario`] per index, project each
    /// [`ExperimentResults`] down to `R` *on the worker* (so the full
    /// results are dropped before the next campaign starts), and feed the
    /// projections to `sink` in index order.
    ///
    /// `make_scenario` is called on the worker, so scenario construction
    /// (which builds the whole fleet) is parallelised along with the run.
    pub fn run_scenarios<B, P, R, S>(&self, make_scenario: B, project: P, sink: S)
    where
        B: Fn(u64) -> Scenario + Sync,
        P: Fn(&ExperimentResults) -> R + Sync,
        R: Send,
        S: FnMut(u64, R),
    {
        self.run_map(
            |i| {
                let results = make_scenario(i).run();
                project(&results)
            },
            sink,
        )
    }

    /// Convenience over [`Ensemble::run_scenarios`] for the common case:
    /// one stock paper-pipeline campaign per index, configured by
    /// `make_config`.
    pub fn run_experiments<C, P, R, S>(&self, make_config: C, project: P, sink: S)
    where
        C: Fn(u64) -> ExperimentConfig + Sync,
        P: Fn(&ExperimentResults) -> R + Sync,
        R: Send,
        S: FnMut(u64, R),
    {
        self.run_scenarios(
            |i| ScenarioBuilder::paper(make_config(i)).build(),
            project,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn sink_sees_index_order_at_any_thread_count() {
        for threads in [1usize, 2, 4, 7] {
            let order = RefCell::new(Vec::new());
            Ensemble::new(23).threads(threads).run_map(
                |i| i * i,
                |i, r| {
                    assert_eq!(r, i * i);
                    order.borrow_mut().push(i);
                },
            );
            assert_eq!(
                *order.borrow(),
                (0..23).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn progress_is_monotonic_and_complete() {
        let seen = RefCell::new(Vec::new());
        Ensemble::new(9)
            .threads(3)
            .on_progress(|done, total| seen.borrow_mut().push((done, total)))
            .run_map(|i| i, |_, _| {});
        assert_eq!(*seen.borrow(), (1..=9).map(|d| (d, 9)).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        Ensemble::new(0).run_map(|_| unreachable!("no jobs"), |_, _: ()| {});
    }

    #[test]
    fn effective_threads_caps_at_jobs() {
        assert_eq!(Ensemble::new(3).threads(16).effective_threads(), 3);
        assert_eq!(Ensemble::new(100).threads(2).effective_threads(), 2);
        assert!(Ensemble::new(100).effective_threads() >= 1);
    }
}
