//! # frostlab-ensemble
//!
//! Deterministic parallel ensemble engine with streaming aggregation.
//!
//! The paper ran its winter exactly once; this crate is how the digital
//! twin re-runs it hundreds of times. Three pieces:
//!
//! * [`engine::Ensemble`] — a work-stealing scoped-thread runner whose
//!   merge step is **thread-count invariant**: results are folded in job
//!   (seed) order regardless of completion order, so a 1-thread and a
//!   16-thread sweep of the same seed range produce byte-identical
//!   output. That property is enforced in CI by diffing the summary JSON
//!   across `--threads` values.
//! * [`aggregate::CampaignAggregate`] — streaming Welford / min-max /
//!   histogram aggregation of compact [`CampaignSummary`] projections, so
//!   memory stays O(1) in the number of campaigns instead of
//!   O(N)·sizeof([`ExperimentResults`](frostlab_core::results::ExperimentResults)).
//! * [`report`] — canned ensemble studies (the Monte-Carlo failure sweep)
//!   rendered to strings, shared by `examples/` and the determinism tests.
//!
//! ```no_run
//! use frostlab_ensemble::run_summary_sweep;
//! use frostlab_core::config::ExperimentConfig;
//!
//! // 32 stochastic winters, all cores, O(1) memory:
//! let summary = run_summary_sweep(0, 32, 0, ExperimentConfig::paper_stochastic);
//! println!("{}", summary.to_json().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod alerts;
pub mod engine;
pub mod metrics;
pub mod report;

pub use aggregate::{CampaignAggregate, EnsembleSummary};
pub use alerts::{EnsembleAlerts, SeedAlerts};
pub use engine::Ensemble;
pub use metrics::{EnsembleMetrics, GaugeAggregate, MetricsAggregate};

use frostlab_core::config::ExperimentConfig;
use frostlab_core::results::CampaignSummary;
use frostlab_core::scenario::ScenarioBuilder;
use frostlab_core::spec::{MatrixSpec, SpecError};
use frostlab_obs::ObsConfig;
use frostlab_trace::TraceConfig;

/// Run `campaigns` experiments for the contiguous seed range starting at
/// `seed_start` and stream their [`CampaignSummary`] projections into one
/// [`EnsembleSummary`]. `threads = 0` means all available cores; the
/// thread count never changes the result, only the wall-clock.
pub fn run_summary_sweep<C>(
    seed_start: u64,
    campaigns: u64,
    threads: usize,
    make_config: C,
) -> EnsembleSummary
where
    C: Fn(u64) -> ExperimentConfig + Sync,
{
    let ensemble = Ensemble::new(campaigns).threads(threads);
    let used = ensemble.effective_threads();
    let mut agg = CampaignAggregate::new();
    ensemble.run_experiments(
        |i| make_config(seed_start + i),
        |r| r.summary(),
        |_, s: CampaignSummary| agg.absorb(&s),
    );
    agg.finish(seed_start, used)
}

/// Run every job of a [`MatrixSpec`] — scenario-major, seed-minor, the
/// matrix's canonical expansion order — in one deterministic ensemble and
/// fold the summaries in job order.
///
/// This is the single-process reference a `frostlab-farm` sweep of the
/// same matrix is byte-compared against: the farm's merge folds the same
/// per-job summaries in the same order, so the two
/// [`EnsembleSummary::invariant_json`] renderings must be identical at
/// any thread/worker count and across any number of kill/resume cycles.
pub fn run_matrix_sweep(matrix: &MatrixSpec, threads: usize) -> Result<EnsembleSummary, SpecError> {
    matrix.validate()?;
    let jobs = matrix.expand();
    let ensemble = Ensemble::new(jobs.len() as u64).threads(threads);
    let used = ensemble.effective_threads();
    let mut agg = CampaignAggregate::new();
    ensemble.run_scenarios(
        // validate() proved every scenario buildable; seeds come from the
        // same contiguous range it checked.
        |i| {
            let job = &jobs[i as usize];
            job.scenario
                .build(job.seed)
                .expect("matrix validated before expansion")
        },
        |r| r.summary(),
        |_, s: CampaignSummary| agg.absorb(&s),
    );
    Ok(agg.finish(matrix.seed_start, used))
}

/// Like [`run_summary_sweep`], but every campaign runs with its tracer
/// armed; per-seed metric snapshots are aggregated **in seed order** into
/// an [`EnsembleMetrics`] report alongside the usual summary.
///
/// Each campaign emits into its own buffer on whatever worker thread runs
/// it, and the engine's ordered sink does the folding — so the report
/// (like the summary) is byte-identical for any `threads` value. Event
/// buffers are dropped after each campaign is projected; pass
/// [`TraceConfig::metrics_only`] to skip buffering events entirely on
/// large sweeps.
pub fn run_traced_sweep<C>(
    seed_start: u64,
    campaigns: u64,
    threads: usize,
    trace: TraceConfig,
    make_config: C,
) -> (EnsembleSummary, EnsembleMetrics)
where
    C: Fn(u64) -> ExperimentConfig + Sync,
{
    let ensemble = Ensemble::new(campaigns).threads(threads);
    let used = ensemble.effective_threads();
    let mut agg = CampaignAggregate::new();
    let mut metrics = MetricsAggregate::new();
    ensemble.run_scenarios(
        |i| {
            ScenarioBuilder::paper(make_config(seed_start + i))
                .with_tracing(trace)
                .build()
        },
        |r| (r.summary(), r.trace.as_ref().map(|t| t.metrics.clone())),
        |_, (s, m)| {
            agg.absorb(&s);
            if let Some(m) = m {
                metrics.absorb(&m);
            }
        },
    );
    (agg.finish(seed_start, used), metrics.finish(seed_start))
}

/// Like [`run_traced_sweep`], but every campaign also arms the fleet
/// health observatory: alongside the summary and the (label-aware)
/// metrics report, per-seed alert timelines and SLO attainment fold
/// into an [`EnsembleAlerts`] report **in seed order**.
///
/// Flight dumps and rollup reports stay per-campaign — the worker drops
/// them after projection, so the sweep's memory is O(alerts), not
/// O(campaigns × dumps). All three returned reports are byte-identical
/// for any `threads` value; the `obs-determinism` CI job diffs the
/// alerts report (and the digests derived from it) at 1 vs 4 threads.
pub fn run_observed_sweep<C>(
    seed_start: u64,
    campaigns: u64,
    threads: usize,
    trace: TraceConfig,
    obs: ObsConfig,
    make_config: C,
) -> (EnsembleSummary, EnsembleMetrics, EnsembleAlerts)
where
    C: Fn(u64) -> ExperimentConfig + Sync,
{
    let ensemble = Ensemble::new(campaigns).threads(threads);
    let used = ensemble.effective_threads();
    let mut agg = CampaignAggregate::new();
    let mut metrics = MetricsAggregate::new();
    let mut alerts = EnsembleAlerts::new(seed_start);
    ensemble.run_scenarios(
        |i| {
            ScenarioBuilder::paper(make_config(seed_start + i))
                .with_tracing(trace)
                .with_observability(obs.clone())
                .build()
        },
        |r| {
            let seed_alerts = r
                .obs
                .as_ref()
                .map(|o| alerts::SeedAlerts::from_obs(r.seed, o));
            (
                r.summary(),
                r.trace.as_ref().map(|t| t.metrics.clone()),
                seed_alerts,
            )
        },
        |_, (s, m, a)| {
            agg.absorb(&s);
            if let Some(m) = m {
                metrics.absorb(&m);
            }
            if let Some(a) = a {
                alerts.absorb(a);
            }
        },
    );
    (
        agg.finish(seed_start, used),
        metrics.finish(seed_start),
        alerts,
    )
}
