//! Streaming aggregation of per-campaign metric snapshots.
//!
//! The traced-sweep analog of [`crate::aggregate`]: each campaign's
//! [`MetricsSnapshot`] is absorbed in seed order — counters sum, gauges
//! fold into Welford moments and min/max, histograms merge bin-wise — so
//! an N-campaign sweep keeps O(metrics) state, not O(N) snapshots.
//! Series are keyed by the full [`MetricKey`] (name **and** labels), so
//! an observed sweep's dimensional rollup families (`fleet.cpu_temp_c`
//! per zone/vendor/placement) fold series-wise rather than collapsing
//! into one blurred family. The frozen [`EnsembleMetrics`] is
//! serializable and contains no execution metadata, so its JSON is
//! directly diffable across thread counts.

use std::collections::BTreeMap;

use frostlab_analysis::stats::{Histogram, MinMax, Welford};
use frostlab_trace::{CounterSample, HistogramSample, MetricKey, MetricsSnapshot};

/// Schema tag embedded in every serialized ensemble metrics report.
pub const METRICS_SCHEMA: &str = "frostlab-ensemble-metrics/v1";

#[derive(Debug, Clone)]
struct HistAcc {
    hist: Histogram,
    sum: f64,
    count: u64,
}

/// O(metrics)-memory accumulator over campaign metric snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsAggregate {
    n: u64,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, (Welford, MinMax)>,
    histograms: BTreeMap<MetricKey, HistAcc>,
}

impl MetricsAggregate {
    /// Empty aggregate.
    pub fn new() -> MetricsAggregate {
        MetricsAggregate::default()
    }

    /// Snapshots absorbed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Fold one campaign's final metrics into the running state.
    ///
    /// Histograms merge bin-wise, which requires every campaign to
    /// register the same geometry for a given name — true by construction
    /// when the sweep builds each scenario the same way. A campaign that
    /// never touched a metric simply contributes nothing to it.
    pub fn absorb(&mut self, snapshot: &MetricsSnapshot) {
        self.n += 1;
        let key = |name: &str, labels: &[(String, String)]| MetricKey {
            name: name.to_string(),
            labels: labels.to_vec(),
        };
        for c in &snapshot.counters {
            *self.counters.entry(key(&c.name, &c.labels)).or_insert(0) += c.value;
        }
        for g in &snapshot.gauges {
            let (w, mm) = self.gauges.entry(key(&g.name, &g.labels)).or_default();
            w.push(g.value);
            mm.push(g.value);
        }
        for h in &snapshot.histograms {
            match self.histograms.get_mut(&key(&h.name, &h.labels)) {
                Some(acc) => {
                    acc.hist.merge(&h.to_histogram());
                    acc.sum += h.sum;
                    acc.count += h.count;
                }
                None => {
                    self.histograms.insert(
                        key(&h.name, &h.labels),
                        HistAcc {
                            hist: h.to_histogram(),
                            sum: h.sum,
                            count: h.count,
                        },
                    );
                }
            }
        }
    }

    /// Freeze into the serializable, name-ordered report.
    pub fn finish(&self, seed_start: u64) -> EnsembleMetrics {
        let f = |x: Option<f64>| x.unwrap_or(0.0);
        EnsembleMetrics {
            schema: METRICS_SCHEMA.to_string(),
            campaigns: self.n,
            seed_start,
            counters: self
                .counters
                .iter()
                .map(|(key, &value)| CounterSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(key, (w, mm))| GaugeAggregate {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    mean: f(w.mean()),
                    min: f(mm.min()),
                    max: f(mm.max()),
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(key, acc)| HistogramSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    min: acc.hist.min,
                    width: acc.hist.width,
                    counts: acc.hist.counts.clone(),
                    underflow: acc.hist.underflow,
                    overflow: acc.hist.overflow,
                    sum: acc.sum,
                    count: acc.count,
                })
                .collect(),
        }
    }
}

/// `skip_serializing_if` helper: flat series keep their pre-label JSON.
fn no_labels(labels: &[(String, String)]) -> bool {
    labels.is_empty()
}

/// One gauge folded across an ensemble: mean of the campaigns' final
/// values, plus the range.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeAggregate {
    /// Metric name.
    pub name: String,
    /// Ordered label pairs (empty and unserialized for flat metrics, so
    /// pre-label reports keep their exact JSON bytes).
    #[serde(default, skip_serializing_if = "no_labels")]
    pub labels: Vec<(String, String)>,
    /// Mean of per-campaign final values.
    pub mean: f64,
    /// Smallest per-campaign final value.
    pub min: f64,
    /// Largest per-campaign final value.
    pub max: f64,
}

/// Frozen, serializable metrics view of a whole traced sweep. Contains no
/// execution metadata, so its JSON must be byte-identical across thread
/// counts — the `trace-determinism` CI job diffs it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnsembleMetrics {
    /// Schema tag ([`METRICS_SCHEMA`]).
    pub schema: String,
    /// Campaigns aggregated.
    pub campaigns: u64,
    /// First seed of the contiguous seed range.
    pub seed_start: u64,
    /// Counters summed over all campaigns, by name.
    pub counters: Vec<CounterSample>,
    /// Gauges folded over all campaigns, by name.
    pub gauges: Vec<GaugeAggregate>,
    /// Histograms merged over all campaigns, by name.
    pub histograms: Vec<HistogramSample>,
}

impl EnsembleMetrics {
    /// Pretty JSON of the report.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_trace::MetricsRegistry;

    fn snapshot(seed: u64) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("collector.attempts_total", 10 + seed);
        reg.gauge_set("tent.temp_c", -5.0 - seed as f64);
        reg.register_histogram("tent.temp_c_dist", -40.0, 1.0, 80);
        reg.observe("tent.temp_c_dist", -5.0 - seed as f64);
        reg.snapshot()
    }

    #[test]
    fn counters_sum_gauges_fold_histograms_merge() {
        let mut agg = MetricsAggregate::new();
        for s in 0..4 {
            agg.absorb(&snapshot(s));
        }
        let frozen = agg.finish(0);
        assert_eq!(frozen.campaigns, 4);
        assert_eq!(frozen.counters[0].name, "collector.attempts_total");
        assert_eq!(frozen.counters[0].value, 10 + 11 + 12 + 13);
        let g = &frozen.gauges[0];
        assert_eq!(g.name, "tent.temp_c");
        assert!((g.mean + 6.5).abs() < 1e-12);
        assert_eq!(g.min, -8.0);
        assert_eq!(g.max, -5.0);
        assert_eq!(frozen.histograms[0].count, 4);
        assert_eq!(frozen.histograms[0].counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn report_json_roundtrips_and_is_order_independent_of_nothing() {
        let mut agg = MetricsAggregate::new();
        agg.absorb(&snapshot(7));
        let frozen = agg.finish(7);
        let json = frozen.to_json().expect("plain data");
        let back: EnsembleMetrics = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, frozen);
        assert_eq!(back.schema, METRICS_SCHEMA);
    }

    #[test]
    fn labeled_series_fold_per_series_not_per_family() {
        let mut agg = MetricsAggregate::new();
        for s in 0..3u64 {
            let mut reg = MetricsRegistry::new();
            reg.counter_add_labeled("fleet.resets", &[("zone", "0")], 1);
            reg.counter_add_labeled("fleet.resets", &[("zone", "1")], 10);
            reg.gauge_set_labeled("fleet.cpu_temp_c", &[("zone", "0")], -5.0 - s as f64);
            reg.gauge_set_labeled("fleet.cpu_temp_c", &[("zone", "1")], 30.0);
            agg.absorb(&reg.snapshot());
        }
        let frozen = agg.finish(0);
        // Two distinct counter series, each summed across campaigns.
        assert_eq!(frozen.counters.len(), 2);
        assert_eq!(frozen.counters[0].labels, vec![("zone".into(), "0".into())]);
        assert_eq!(frozen.counters[0].value, 3);
        assert_eq!(frozen.counters[1].value, 30);
        // Per-series gauge folds: zone 0 spans its own range, zone 1 is flat.
        assert_eq!(frozen.gauges[0].min, -7.0);
        assert_eq!(frozen.gauges[0].max, -5.0);
        assert_eq!(frozen.gauges[1].min, 30.0);
        assert_eq!(frozen.gauges[1].max, 30.0);
        let json = frozen.to_json().expect("plain data");
        let back: EnsembleMetrics = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, frozen);
    }

    #[test]
    fn flat_report_json_has_no_labels_key() {
        let mut agg = MetricsAggregate::new();
        agg.absorb(&snapshot(0));
        let json = agg.finish(0).to_json().expect("plain data");
        assert!(
            !json.contains("labels"),
            "flat reports keep their pre-label JSON shape"
        );
    }

    #[test]
    fn empty_aggregate_freezes_to_an_empty_report() {
        let frozen = MetricsAggregate::new().finish(0);
        assert_eq!(frozen.campaigns, 0);
        assert!(frozen.counters.is_empty());
        assert!(frozen.to_json().is_ok());
    }
}
