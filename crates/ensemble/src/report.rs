//! Canned ensemble studies rendered to strings.
//!
//! Examples print these; the determinism tests assert two renders (at
//! different thread counts) are byte-identical — which is exactly the
//! bug the old `examples/monte_carlo_failures.rs` had: workers pushed
//! into one contended `Mutex<Vec<_>>` in completion order, so output
//! ordering depended on the scheduler until a post-hoc sort rescued it.
//! The engine merges in seed order by construction, so nothing here
//! sorts.

use std::fmt::Write as _;

use frostlab_analysis::report::{pct, Table};
use frostlab_analysis::stats::{wilson_interval, Welford};
use frostlab_core::config::ExperimentConfig;

use crate::engine::Ensemble;

/// One campaign of the Monte-Carlo failure study, projected down to the
/// handful of numbers the report needs.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloRow {
    /// Campaign seed.
    pub seed: u64,
    /// Tent hosts with ≥1 transient failure.
    pub tent_failed: u64,
    /// Control hosts with ≥1 transient failure.
    pub control_failed: u64,
    /// Wrong md5sums this campaign produced.
    pub wrong_hashes: u64,
    /// Synthetic-load runs executed.
    pub runs: u64,
}

/// Run the Monte-Carlo failure study — `campaigns` stochastic winters on
/// `threads` workers (0 = all cores) — and render the report. The string
/// is byte-identical for any thread count.
pub fn monte_carlo_report<C>(campaigns: u64, threads: usize, make_config: C) -> String
where
    C: Fn(u64) -> ExperimentConfig + Sync,
{
    const DETAIL_ROWS: usize = 10;
    let mut tent = Welford::new();
    let mut control = Welford::new();
    let mut hashes = Welford::new();
    let mut like_paper = 0u64;
    let mut any_tent_failure = 0u64;
    let mut detail: Vec<MonteCarloRow> = Vec::with_capacity(DETAIL_ROWS);

    Ensemble::new(campaigns).threads(threads).run_experiments(
        make_config,
        |r| {
            let cmp = r.failure_comparison();
            MonteCarloRow {
                seed: r.seed,
                tent_failed: cmp.outside.failed_hosts,
                control_failed: cmp.control.failed_hosts,
                wrong_hashes: r.workload.hash_errors().len() as u64,
                runs: r.workload.total_runs(),
            }
        },
        |_, row: MonteCarloRow| {
            tent.push(row.tent_failed as f64);
            control.push(row.control_failed as f64);
            hashes.push(row.wrong_hashes as f64);
            if row.tent_failed <= 1 && row.control_failed == 0 {
                like_paper += 1;
            }
            if row.tent_failed > 0 {
                any_tent_failure += 1;
            }
            if detail.len() < DETAIL_ROWS {
                detail.push(row);
            }
        },
    );

    let n = campaigns.max(1) as f64;
    let mut t = Table::new("stochastic-winter outcomes", &["metric", "value"]);
    t.row(&["campaigns".into(), campaigns.to_string()]);
    t.row(&[
        "mean failed hosts (tent, of 9)".into(),
        format!("{:.2}", tent.mean().unwrap_or(0.0)),
    ]);
    t.row(&[
        "mean failed hosts (control, of 9)".into(),
        format!("{:.2}", control.mean().unwrap_or(0.0)),
    ]);
    t.row(&[
        "mean wrong hashes per campaign".into(),
        format!("{:.2}", hashes.mean().unwrap_or(0.0)),
    ]);
    t.row(&[
        "campaigns ≤ 1 tent failure, clean control (like the paper)".into(),
        format!("{} ({})", like_paper, pct(like_paper as f64 / n)),
    ]);
    t.row(&[
        "campaigns with ≥ 1 tent failure".into(),
        format!(
            "{} ({})",
            any_tent_failure,
            pct(any_tent_failure as f64 / n)
        ),
    ]);
    let (lo, hi) = wilson_interval(any_tent_failure, campaigns);
    t.row(&[
        "P(tent failure) 95 % Wilson".into(),
        format!("[{}, {}]", pct(lo), pct(hi)),
    ]);

    let mut out = String::new();
    let _ = writeln!(out, "{t}");
    let _ = writeln!(out, "per-campaign detail (first {DETAIL_ROWS}):");
    for row in &detail {
        let _ = writeln!(
            out,
            "  seed {:>3}: tent hosts failed {}, control {}, wrong hashes {}, runs {}",
            row.seed, row.tent_failed, row.control_failed, row.wrong_hashes, row.runs
        );
    }
    out
}
