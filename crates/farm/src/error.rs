//! Typed farm errors.

use std::path::PathBuf;

use frostlab_core::spec::SpecError;

/// Anything that can go wrong operating a farm directory.
#[derive(Debug)]
pub enum FarmError {
    /// Filesystem trouble (WAL, store, manifest).
    Io(std::io::Error),
    /// A JSON artifact failed to serialize or parse.
    Json(serde_json::Error),
    /// A submitted scenario cannot be built.
    Spec(SpecError),
    /// A farm artifact exists but is not what it claims to be (bad WAL
    /// magic, unreadable manifest) — unlike a torn WAL tail, this is not
    /// a crash artifact and is never silently repaired.
    Corrupt(String),
    /// The directory has no submitted matrix yet.
    NotSubmitted(PathBuf),
    /// The directory already holds a submitted matrix.
    AlreadySubmitted(PathBuf),
    /// A job is marked complete but its result is gone from the store and
    /// could not be requeued (internal invariant breach).
    MissingResult(String),
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Io(e) => write!(f, "farm I/O error: {e}"),
            FarmError::Json(e) => write!(f, "farm JSON error: {e}"),
            FarmError::Spec(e) => write!(f, "invalid scenario spec: {e}"),
            FarmError::Corrupt(what) => write!(f, "corrupt farm artifact: {what}"),
            FarmError::NotSubmitted(dir) => {
                write!(
                    f,
                    "no matrix submitted in {} (run `farm submit` first)",
                    dir.display()
                )
            }
            FarmError::AlreadySubmitted(dir) => {
                write!(f, "{} already holds a submitted matrix", dir.display())
            }
            FarmError::MissingResult(key) => {
                write!(f, "completed job {key} has no result in the store")
            }
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Io(e) => Some(e),
            FarmError::Json(e) => Some(e),
            FarmError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FarmError {
    fn from(e: std::io::Error) -> Self {
        FarmError::Io(e)
    }
}

impl From<serde_json::Error> for FarmError {
    fn from(e: serde_json::Error) -> Self {
        FarmError::Json(e)
    }
}

impl From<SpecError> for FarmError {
    fn from(e: SpecError) -> Self {
        FarmError::Spec(e)
    }
}
