//! # frostlab-farm
//!
//! A crash-resumable campaign job farm: the distributed-systems shell
//! around `frostlab-ensemble`'s deterministic core.
//!
//! The paper's experiment ran unattended on a roof for three months and
//! survived switch deaths, host resets and operator absence; a
//! Monte-Carlo reproduction campaign should survive its own operational
//! weather the same way. This crate turns a climate × chaos × seed
//! matrix into a **durable work queue** that can be killed at any
//! instant — including mid-write — and resumed without re-simulating a
//! single completed campaign or perturbing a single output byte:
//!
//! * [`wal`] — the append-only, CRC-32-checksummed write-ahead log every
//!   queue transition passes through. Replay stops at the first torn
//!   frame; [`wal::Wal::open`] truncates the tail and appends past it.
//! * [`state`] — the idempotent fold from WAL history to queue state
//!   (replay-twice == replay-once; terminal states absorb everything).
//! * [`store`] — the content-addressed result store keyed by
//!   [`frostlab_core::JobSpec::key`]; identical jobs are cache-served,
//!   and a crash between store write and WAL append costs one cache hit,
//!   never a re-simulation.
//! * [`supervisor`] — the worker pool: leases, heartbeats, per-job retry
//!   with exponential backoff, poison-job quarantine (with
//!   [`frostlab_core::watchdog::IncidentRecord`]s), orphan-lease requeue
//!   on resume, SIGINT graceful drain, and the deterministic merge whose
//!   output is byte-identical to a single-process
//!   [`frostlab_ensemble::run_matrix_sweep`] of the same matrix.
//! * [`signal`] — the one-flag SIGINT drain plumbing (the crate's only
//!   `unsafe`, a direct `signal(2)` declaration).
//!
//! ## Quickstart
//!
//! ```no_run
//! use frostlab_core::{MatrixSpec, ScenarioSpec};
//! use frostlab_farm::{Farm, RunOptions};
//!
//! let matrix = MatrixSpec {
//!     scenarios: vec![ScenarioSpec::new("helsinki", 3, "helsinki")],
//!     seed_start: 0,
//!     seeds: 8,
//! };
//! let dir = std::path::Path::new("sweep-farm");
//! let mut farm = Farm::submit(dir, &matrix).unwrap();
//! let outcome = farm.run(RunOptions { workers: 4, ..RunOptions::default() }).unwrap();
//! assert!(outcome.settled);
//! // Kill -9 at any point above; then:
//! let mut farm = Farm::open(dir).unwrap();
//! farm.run(RunOptions::default()).unwrap(); // completed jobs are cache hits
//! ```

#![deny(unsafe_code)] // one vetted exception in `signal`
#![warn(missing_docs)]

pub mod error;
pub mod signal;
pub mod state;
pub mod store;
pub mod supervisor;
pub mod wal;

pub use error::FarmError;
pub use state::{FarmState, JobState, JobStatus};
pub use store::ResultStore;
pub use supervisor::{Farm, FarmStatus, RunOptions, RunOutcome};
pub use wal::{ReplayReport, Wal, WalRecord};
