//! Graceful-drain signalling.
//!
//! On Unix the farm installs a SIGINT handler that flips one atomic
//! flag; workers check [`drain_requested`] between jobs and finish the
//! job in hand before exiting, so a Ctrl-C leaves the WAL ending in a
//! clean `drain` record instead of a torn frame. A second SIGINT falls
//! through to the default disposition (process kill) — that path is what
//! the crash-resume machinery exists for.
//!
//! The handler is the only unsafe code in the crate: the container has
//! no signal-handling crate, so we declare `signal(2)` directly. The
//! handler body just stores into an `AtomicBool`, which is
//! async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Ask every worker to finish its current job and stop.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Has a drain been requested (by SIGINT or [`request_drain`])?
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Clear the drain flag (tests, or a fresh `run` after a drained one).
pub fn reset_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::DRAIN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Store only — async-signal-safe. Restore the default disposition
        // so a second Ctrl-C kills the process outright.
        DRAIN.store(true, Ordering::SeqCst);
    }

    /// Route SIGINT to the drain flag.
    pub fn install_sigint_handler() {
        // SAFETY: `signal` is the POSIX signal(2) entry point; the handler
        // only performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(unix)]
pub use unix::install_sigint_handler;

/// No-op on non-Unix targets; Ctrl-C falls back to the default kill,
/// which `farm resume` recovers from.
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_flag_round_trips() {
        reset_drain();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_drain();
        assert!(!drain_requested());
    }
}
