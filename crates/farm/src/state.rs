//! Queue state rebuilt from a WAL replay.
//!
//! [`FarmState::apply`] folds one [`WalRecord`] into the per-job table.
//! The fold is **idempotent and monotone**: terminal states
//! ([`JobStatus::Done`], [`JobStatus::Quarantined`]) absorb everything,
//! failure counts take the max of what's recorded, and lease epochs only
//! move forward. Replaying a WAL prefix twice therefore yields exactly
//! the state of replaying it once — the property the recovery proptests
//! in `tests/wal_recovery.rs` pin down.

use crate::wal::{kind, WalRecord};

/// Where one job sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Pending,
    /// Leased by a worker (possibly a dead one — see
    /// [`FarmState::requeue_orphans`]).
    Leased,
    /// Finished; a result with the job's content key exists in the store.
    Done,
    /// Exhausted its retry budget; removed from the queue permanently.
    Quarantined,
}

/// Rebuilt per-job bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobState {
    /// Current lifecycle position.
    pub status: JobStatus,
    /// Failed attempts recorded so far.
    pub attempts: u64,
    /// Epoch of the most recent lease (0 = never leased).
    pub lease_epoch: u64,
    /// For `Done`: whether the recorded completion was cache-served.
    pub cached: bool,
}

impl JobState {
    fn fresh() -> JobState {
        JobState {
            status: JobStatus::Pending,
            attempts: 0,
            lease_epoch: 0,
            cached: false,
        }
    }

    fn terminal(&self) -> bool {
        matches!(self.status, JobStatus::Done | JobStatus::Quarantined)
    }
}

/// Whole-queue state: one slot per manifest job, plus the epoch counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmState {
    /// Per-job states, indexed by manifest job index.
    pub jobs: Vec<JobState>,
    /// Highest epoch seen in any record (0 = no run has started).
    pub epoch: u64,
}

impl FarmState {
    /// A fresh queue of `len` pending jobs.
    pub fn new(len: usize) -> FarmState {
        FarmState {
            jobs: vec![JobState::fresh(); len],
            epoch: 0,
        }
    }

    /// Rebuild state by folding a replayed record sequence.
    pub fn replay<'a>(len: usize, records: impl IntoIterator<Item = &'a WalRecord>) -> FarmState {
        let mut state = FarmState::new(len);
        for record in records {
            state.apply(record);
        }
        state
    }

    /// Fold one record into the state. Records referencing jobs outside
    /// the manifest (possible only if the manifest and WAL disagree,
    /// which [`crate::supervisor::Farm`] rejects earlier) are ignored
    /// rather than panicking.
    pub fn apply(&mut self, record: &WalRecord) {
        self.epoch = self.epoch.max(record.epoch);
        let Some(job) = self.jobs.get_mut(record.job as usize) else {
            return;
        };
        match record.kind.as_str() {
            kind::LEASE | kind::HEARTBEAT if !job.terminal() => {
                job.status = JobStatus::Leased;
                job.lease_epoch = job.lease_epoch.max(record.epoch);
            }
            kind::COMPLETE if job.status != JobStatus::Quarantined => {
                job.status = JobStatus::Done;
                job.cached = record.cached;
            }
            kind::FAIL if !job.terminal() => {
                job.status = JobStatus::Pending;
                job.attempts = job.attempts.max(record.attempt);
            }
            kind::REQUEUE if !job.terminal() => {
                job.status = JobStatus::Pending;
            }
            kind::QUARANTINE if job.status != JobStatus::Done => {
                job.status = JobStatus::Quarantined;
                job.attempts = job.attempts.max(record.attempt);
            }
            // START and DRAIN only move the epoch watermark; guarded-out
            // records are absorbed by a terminal state.
            _ => {}
        }
    }

    /// Return every job still leased under an epoch older than
    /// `current_epoch` to the queue — the dead-worker sweep a `resume`
    /// performs before handing out new leases. Returns the requeued job
    /// indices in ascending order.
    pub fn requeue_orphans(&mut self, current_epoch: u64) -> Vec<u64> {
        let mut orphans = Vec::new();
        for (idx, job) in self.jobs.iter_mut().enumerate() {
            if job.status == JobStatus::Leased && job.lease_epoch < current_epoch {
                job.status = JobStatus::Pending;
                orphans.push(idx as u64);
            }
        }
        orphans
    }

    /// Count of jobs in `status`.
    pub fn count(&self, status: JobStatus) -> usize {
        self.jobs.iter().filter(|j| j.status == status).count()
    }

    /// True when no job is pending or leased.
    pub fn settled(&self) -> bool {
        self.jobs.iter().all(JobState::terminal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_all_pending() {
        let state = FarmState::new(3);
        assert_eq!(state.count(JobStatus::Pending), 3);
        assert_eq!(state.epoch, 0);
        assert!(!state.settled());
    }

    #[test]
    fn lease_then_complete_is_done() {
        let records = [
            WalRecord::start(1),
            WalRecord::lease(1, 0, 1),
            WalRecord::complete(1, 0, 1, true),
        ];
        let state = FarmState::replay(2, &records);
        assert_eq!(state.jobs[1].status, JobStatus::Done);
        assert!(state.jobs[1].cached);
        assert_eq!(state.jobs[0].status, JobStatus::Pending);
        assert_eq!(state.epoch, 1);
    }

    #[test]
    fn fail_returns_job_to_queue_with_attempt_count() {
        let records = [
            WalRecord::start(1),
            WalRecord::lease(1, 0, 0),
            WalRecord::fail(1, 0, 0, 1, "boom"),
            WalRecord::lease(1, 0, 0),
            WalRecord::fail(1, 0, 0, 2, "boom"),
        ];
        let state = FarmState::replay(1, &records);
        assert_eq!(state.jobs[0].status, JobStatus::Pending);
        assert_eq!(state.jobs[0].attempts, 2);
    }

    #[test]
    fn quarantine_is_terminal_against_later_leases() {
        let records = [
            WalRecord::quarantine(1, 0, 3, "poison"),
            WalRecord::lease(2, 0, 0),
            WalRecord::fail(2, 0, 0, 1, "boom"),
        ];
        let state = FarmState::replay(1, &records);
        assert_eq!(state.jobs[0].status, JobStatus::Quarantined);
        assert_eq!(state.jobs[0].attempts, 3);
    }

    #[test]
    fn done_is_terminal_against_later_records() {
        let records = [
            WalRecord::complete(1, 0, 0, false),
            WalRecord::lease(2, 0, 0),
            WalRecord::requeue(2, 0, "spurious"),
        ];
        let state = FarmState::replay(1, &records);
        assert_eq!(state.jobs[0].status, JobStatus::Done);
    }

    #[test]
    fn replay_twice_equals_replay_once() {
        let records = [
            WalRecord::start(1),
            WalRecord::lease(1, 0, 0),
            WalRecord::fail(1, 0, 0, 1, "x"),
            WalRecord::lease(1, 1, 1),
            WalRecord::complete(1, 1, 1, false),
            WalRecord::start(2),
            WalRecord::requeue(2, 0, "orphan"),
        ];
        let once = FarmState::replay(3, &records);
        let twice = FarmState::replay(3, records.iter().chain(records.iter()));
        assert_eq!(once, twice);
    }

    #[test]
    fn orphan_sweep_requeues_only_stale_epochs() {
        let records = [
            WalRecord::start(1),
            WalRecord::lease(1, 0, 0),
            WalRecord::start(2),
            WalRecord::lease(2, 0, 1),
        ];
        let mut state = FarmState::replay(3, &records);
        let orphans = state.requeue_orphans(2);
        assert_eq!(orphans, vec![0]);
        assert_eq!(state.jobs[0].status, JobStatus::Pending);
        assert_eq!(state.jobs[1].status, JobStatus::Leased);
    }

    #[test]
    fn out_of_range_job_indices_are_ignored() {
        let records = [WalRecord::lease(1, 0, 99)];
        let state = FarmState::replay(2, &records);
        assert_eq!(state.count(JobStatus::Pending), 2);
        assert_eq!(state.epoch, 1);
    }
}
