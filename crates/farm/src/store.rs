//! Content-addressed result store.
//!
//! Results are keyed by [`frostlab_core::JobSpec::key`] — the FNV-1a
//! hash of the job's canonical JSON — so two submissions of the same
//! (scenario, seed) pair share one entry, and a resumed farm serves
//! completed jobs from disk instead of re-simulating them.
//!
//! Writes are crash-atomic: the payload lands in a worker-private temp
//! file first and is `rename(2)`d into place, so a reader (or a replay
//! after a kill) sees either the whole result or nothing. The supervisor
//! writes the store entry **before** appending the WAL `complete`
//! record; a crash between the two leaves an orphaned store entry, which
//! the next run turns into a cache hit rather than a re-simulation.

use std::fs;
use std::path::{Path, PathBuf};

use frostlab_core::results::CampaignSummary;
use frostlab_ensemble::SeedAlerts;

use crate::error::FarmError;

/// A directory of `<key>.json` campaign summaries, with optional
/// `<key>.alerts.json` sidecars holding each observed job's alert
/// timeline and SLO attainment. A worker writes the sidecar **before**
/// the summary, so (with the summary-before-WAL rule) a visible summary
/// for an observed job always has its alerts alongside it.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) the store rooted at `root`.
    pub fn open(root: &Path) -> Result<ResultStore, FarmError> {
        fs::create_dir_all(root)?;
        Ok(ResultStore {
            root: root.to_path_buf(),
        })
    }

    /// Path of the entry for `key`.
    pub fn path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.json"))
    }

    /// Fetch the summary stored under `key`, if an intact one exists.
    /// A half-written or unparsable entry reads as absent — the job just
    /// gets re-run, which is always safe.
    pub fn get(&self, key: &str) -> Option<CampaignSummary> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// True if an intact entry exists for `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Store `summary` under `key` atomically (temp file + rename).
    /// `worker` namespaces the temp file so concurrent workers writing
    /// different keys never collide.
    pub fn put(&self, key: &str, worker: u64, summary: &CampaignSummary) -> Result<(), FarmError> {
        let json = serde_json::to_string(summary)?;
        let tmp = self.root.join(format!(".tmp-{worker}-{key}"));
        fs::write(&tmp, json.as_bytes())?;
        fs::rename(&tmp, self.path(key))?;
        Ok(())
    }

    /// Path of the alerts sidecar for `key`.
    pub fn alerts_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.alerts.json"))
    }

    /// Fetch the alerts sidecar stored under `key`, if an intact one
    /// exists. Same read-as-absent contract as [`ResultStore::get`].
    pub fn get_alerts(&self, key: &str) -> Option<SeedAlerts> {
        let text = fs::read_to_string(self.alerts_path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Store an observed job's alert view under `key` atomically. Called
    /// **before** [`ResultStore::put`] so the summary's presence implies
    /// the sidecar's.
    pub fn put_alerts(&self, key: &str, worker: u64, alerts: &SeedAlerts) -> Result<(), FarmError> {
        let json = serde_json::to_string(alerts)?;
        let tmp = self.root.join(format!(".tmp-{worker}-{key}.alerts"));
        fs::write(&tmp, json.as_bytes())?;
        fs::rename(&tmp, self.alerts_path(key))?;
        Ok(())
    }

    /// Number of intact summary entries in the store (alerts sidecars
    /// are companions of their summary, not entries of their own).
    pub fn len(&self) -> Result<usize, FarmError> {
        let mut n = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".json")
                && !name.ends_with(".alerts.json")
                && !name.starts_with(".tmp-")
            {
                n += 1;
            }
        }
        Ok(n)
    }

    /// True if the store holds no entries.
    pub fn is_empty(&self) -> Result<bool, FarmError> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_core::ScenarioSpec;

    fn tmp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!("frostlab-store-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let store = ResultStore::open(&dir).expect("open");
        (dir, store)
    }

    fn tiny_summary() -> CampaignSummary {
        let spec = ScenarioSpec::new("t", 1, "helsinki");
        spec.build(7).expect("build").run().summary()
    }

    #[test]
    fn put_then_get_round_trips() {
        let (dir, store) = tmp_store("roundtrip");
        let summary = tiny_summary();
        store.put("00ff", 0, &summary).expect("put");
        let back = store.get("00ff").expect("present");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&summary).unwrap()
        );
        assert!(store.contains("00ff"));
        assert_eq!(store.len().unwrap(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_garbage_entries_read_as_absent() {
        let (dir, store) = tmp_store("garbage");
        assert!(store.get("beef").is_none());
        fs::write(store.path("beef"), b"{half a rec").expect("write junk");
        assert!(store.get("beef").is_none());
        assert!(!store.contains("beef"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_files_do_not_count_as_entries() {
        let (dir, store) = tmp_store("tmpcount");
        fs::write(dir.join(".tmp-3-dead"), b"partial").expect("write tmp");
        assert!(store.is_empty().unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alerts_sidecars_round_trip_and_do_not_count_as_entries() {
        let (dir, store) = tmp_store("alerts");
        let alerts = SeedAlerts {
            seed: 7,
            alerts: Vec::new(),
            slos: Vec::new(),
        };
        store.put_alerts("00ff", 0, &alerts).expect("put alerts");
        assert_eq!(store.get_alerts("00ff").expect("present").seed, 7);
        assert!(store.get_alerts("beef").is_none());
        // The sidecar alone is not a summary entry.
        assert!(store.is_empty().unwrap());
        assert!(!store.contains("00ff"));
        store.put("00ff", 0, &tiny_summary()).expect("put");
        assert_eq!(store.len().unwrap(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
