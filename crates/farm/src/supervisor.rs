//! The farm supervisor: directory layout, worker pool, retry/quarantine
//! policy, and the deterministic merge.
//!
//! A farm is a directory:
//!
//! ```text
//! farm-dir/
//! ├── manifest.json    # the submitted MatrixSpec (immutable after submit)
//! ├── wal.log          # append-only, checksummed queue history
//! ├── store/           # content-addressed results: <fnv1a-key>.json
//! │                    #   (+ <key>.alerts.json sidecars for observed jobs)
//! ├── merged.json      # invariant-form EnsembleSummary (once settled)
//! ├── alerts.json      # merged EnsembleAlerts (once settled, observed jobs only)
//! └── incidents.json   # quarantine incident records (if any)
//! ```
//!
//! The crash-safety contract hinges on one ordering rule: a worker
//! writes the result into the store (atomic rename) **before** appending
//! the WAL `complete` record. Kill the process between the two and the
//! next run replays a WAL without the completion, finds the store entry
//! by content key, and serves it as a cache hit — a completed simulation
//! is never re-run, which is what the `jobs_cached` counter certifies in
//! the CI crash-resume gate.
//!
//! Determinism contract: the merge folds per-job
//! [`frostlab_core::results::CampaignSummary`] values in **manifest job
//! order** (scenario-major, seed-minor — the
//! same order [`frostlab_ensemble::run_matrix_sweep`] uses), so
//! `merged.json` is byte-identical to a single-process ensemble run of
//! the same matrix at any worker count and across any number of
//! kill/resume cycles.

use std::collections::VecDeque;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use frostlab_core::watchdog::{IncidentKind, IncidentRecord};
use frostlab_core::{JobSpec, MatrixSpec};
use frostlab_ensemble::{CampaignAggregate, EnsembleAlerts, EnsembleSummary, SeedAlerts};
use frostlab_trace::export::to_prometheus;
use frostlab_trace::MetricsRegistry;

use crate::error::FarmError;
use crate::signal;
use crate::state::{FarmState, JobStatus};
use crate::store::ResultStore;
use crate::wal::{now_unix_ms, ReplayReport, Wal, WalRecord};

/// File name of the submitted matrix inside a farm directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "wal.log";
/// Subdirectory holding the content-addressed result store.
pub const STORE_DIR: &str = "store";
/// File name of the merged, invariant-form ensemble summary.
pub const MERGED_FILE: &str = "merged.json";
/// File name of the merged per-seed alert report (observed jobs only).
pub const ALERTS_FILE: &str = "alerts.json";
/// File name of the quarantine incident log.
pub const INCIDENTS_FILE: &str = "incidents.json";

/// Sentinel for "worker is idle" in the busy-job table.
const IDLE: u64 = u64::MAX;

/// Knobs for one `run`/`resume` invocation.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Worker threads; `0` means all available cores.
    pub workers: usize,
    /// Attempts before a failing job is quarantined.
    pub max_attempts: u64,
    /// Base of the exponential retry backoff (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Interval between heartbeat records for busy workers.
    pub heartbeat_ms: u64,
    /// Install the SIGINT graceful-drain handler (bins want this; tests
    /// and library embedders usually don't).
    pub handle_sigint: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            workers: 0,
            max_attempts: 3,
            backoff_base_ms: 25,
            heartbeat_ms: 1000,
            handle_sigint: false,
        }
    }
}

/// What one `run` invocation did.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Jobs actually simulated this invocation.
    pub jobs_run: u64,
    /// Jobs served from the result store without simulation.
    pub jobs_cached: u64,
    /// Jobs quarantined this invocation.
    pub jobs_quarantined: u64,
    /// Orphaned leases swept back into the queue at start.
    pub orphans_requeued: u64,
    /// Worker threads used.
    pub workers: usize,
    /// True if a drain request (SIGINT) stopped the run early.
    pub drained: bool,
    /// True if every job is now terminal (done or quarantined).
    pub settled: bool,
    /// Prometheus text rendering of the farm counters.
    pub prometheus: String,
}

/// Queue census for `farm status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmStatus {
    /// Jobs in the manifest.
    pub total: usize,
    /// Jobs waiting in the queue.
    pub pending: usize,
    /// Jobs under a (possibly orphaned) lease.
    pub leased: usize,
    /// Jobs completed.
    pub done: usize,
    /// Completed jobs whose recorded completion was cache-served.
    pub cached: usize,
    /// Jobs quarantined.
    pub quarantined: usize,
    /// Highest lease epoch seen.
    pub epoch: u64,
    /// Intact WAL records replayed.
    pub wal_records: usize,
    /// True if the last open had to truncate a torn WAL tail.
    pub torn_tail_recovered: bool,
}

/// Mutable queue shared by the worker pool.
struct SharedQueue {
    queue: VecDeque<u64>,
    attempts: Vec<u64>,
    incidents: Vec<IncidentRecord>,
}

/// An open farm directory.
#[derive(Debug)]
pub struct Farm {
    dir: PathBuf,
    matrix: MatrixSpec,
    jobs: Vec<JobSpec>,
    keys: Vec<String>,
    wal: Mutex<Wal>,
    state: FarmState,
    store: ResultStore,
    replay: ReplayReport,
}

impl Farm {
    /// Submit `matrix` into `dir`, creating the farm layout. Fails if the
    /// directory already holds a manifest.
    pub fn submit(dir: &Path, matrix: &MatrixSpec) -> Result<Farm, FarmError> {
        matrix.validate()?;
        fs::create_dir_all(dir)?;
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            return Err(FarmError::AlreadySubmitted(dir.to_path_buf()));
        }
        fs::write(&manifest, matrix.to_json()?)?;
        let wal = Wal::create(&dir.join(WAL_FILE))?;
        let store = ResultStore::open(&dir.join(STORE_DIR))?;
        let jobs = matrix.expand();
        let keys = job_keys(&jobs)?;
        let state = FarmState::new(jobs.len());
        Ok(Farm {
            dir: dir.to_path_buf(),
            matrix: matrix.clone(),
            jobs,
            keys,
            wal: Mutex::new(wal),
            state,
            store,
            replay: ReplayReport {
                records: 0,
                clean_bytes: 0,
                torn: false,
            },
        })
    }

    /// Open a previously submitted farm: parse the manifest, replay the
    /// WAL (healing any torn tail), and rebuild the queue state.
    pub fn open(dir: &Path) -> Result<Farm, FarmError> {
        let manifest = dir.join(MANIFEST_FILE);
        if !manifest.exists() {
            return Err(FarmError::NotSubmitted(dir.to_path_buf()));
        }
        let matrix = MatrixSpec::from_json(&fs::read_to_string(&manifest)?)?;
        matrix.validate()?;
        let (wal, records, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let store = ResultStore::open(&dir.join(STORE_DIR))?;
        let jobs = matrix.expand();
        let keys = job_keys(&jobs)?;
        let state = FarmState::replay(jobs.len(), &records);
        Ok(Farm {
            dir: dir.to_path_buf(),
            matrix,
            jobs,
            keys,
            wal: Mutex::new(wal),
            state,
            store,
            replay,
        })
    }

    /// The farm directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The submitted matrix.
    pub fn matrix(&self) -> &MatrixSpec {
        &self.matrix
    }

    /// The expanded job list, in manifest (merge) order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Queue census.
    pub fn status(&self) -> FarmStatus {
        FarmStatus {
            total: self.jobs.len(),
            pending: self.state.count(JobStatus::Pending),
            leased: self.state.count(JobStatus::Leased),
            done: self.state.count(JobStatus::Done),
            cached: self
                .state
                .jobs
                .iter()
                .filter(|j| j.status == JobStatus::Done && j.cached)
                .count(),
            quarantined: self.state.count(JobStatus::Quarantined),
            epoch: self.state.epoch,
            wal_records: self.replay.records,
            torn_tail_recovered: self.replay.torn,
        }
    }

    /// Run the worker pool until the queue settles, a drain is requested,
    /// or an unrecoverable error occurs. Safe to call repeatedly; each
    /// call is a new lease epoch.
    pub fn run(&mut self, opts: RunOptions) -> Result<RunOutcome, FarmError> {
        signal::reset_drain();
        if opts.handle_sigint {
            signal::install_sigint_handler();
        }
        let workers = effective_workers(opts.workers);
        let max_attempts = opts.max_attempts.max(1);

        // New epoch: every lease left over from an earlier run is, by
        // construction, held by a process that no longer exists.
        let epoch = self.state.epoch + 1;
        self.append_and_apply(&WalRecord::start(epoch))?;
        let orphans = self.state.requeue_orphans(epoch);
        for &job in &orphans {
            let rec = WalRecord::requeue(epoch, job, "orphan lease from earlier epoch");
            self.wal_append(&rec)?;
        }
        // Self-heal the inverse crash window: a WAL `complete` whose store
        // entry vanished. Should not happen (store lands first), but a
        // deleted store file must re-queue, not wedge the merge. An
        // observed job with its summary intact but its alerts sidecar
        // gone is the same wound: the merged alert report would silently
        // lose a seed, so it re-runs too.
        for idx in 0..self.jobs.len() {
            if self.state.jobs[idx].status != JobStatus::Done {
                continue;
            }
            let reason = if !self.store.contains(&self.keys[idx]) {
                Some("completed result missing from store")
            } else if self.jobs[idx].scenario.observe
                && self.store.get_alerts(&self.keys[idx]).is_none()
            {
                Some("observed job missing its alerts sidecar")
            } else {
                None
            };
            if let Some(reason) = reason {
                self.state.jobs[idx].status = JobStatus::Pending;
                let rec = WalRecord::requeue(epoch, idx as u64, reason);
                self.wal_append(&rec)?;
            }
        }

        let pending: VecDeque<u64> = (0..self.jobs.len() as u64)
            .filter(|&i| self.state.jobs[i as usize].status == JobStatus::Pending)
            .collect();
        let shared = Mutex::new(SharedQueue {
            queue: pending,
            attempts: self.state.jobs.iter().map(|j| j.attempts).collect(),
            incidents: Vec::new(),
        });
        let jobs_run = AtomicU64::new(0);
        let jobs_cached = AtomicU64::new(0);
        let jobs_quarantined = AtomicU64::new(0);
        let in_flight = AtomicU64::new(0);
        let finished_workers = AtomicU64::new(0);
        let fatal = AtomicBool::new(false);
        let first_error: Mutex<Option<FarmError>> = Mutex::new(None);
        let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(IDLE)).collect();

        let jobs = &self.jobs;
        let keys = &self.keys;
        let store = &self.store;
        let wal = &self.wal;

        let fail_fatally = |err: FarmError| {
            let mut slot = lock(&first_error);
            if slot.is_none() {
                *slot = Some(err);
            }
            fatal.store(true, Ordering::SeqCst);
        };

        std::thread::scope(|scope| {
            for w in 0..workers as u64 {
                let shared = &shared;
                let jobs_run = &jobs_run;
                let jobs_cached = &jobs_cached;
                let jobs_quarantined = &jobs_quarantined;
                let in_flight = &in_flight;
                let finished_workers = &finished_workers;
                let fatal = &fatal;
                let fail_fatally = &fail_fatally;
                let busy = &busy;
                scope.spawn(move || {
                    loop {
                        if signal::drain_requested() || fatal.load(Ordering::SeqCst) {
                            break;
                        }
                        let job = {
                            let mut s = lock(shared);
                            let job = s.queue.pop_front();
                            if job.is_some() {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                            }
                            job
                        };
                        let Some(job) = job else {
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        };
                        busy[w as usize].store(job, Ordering::SeqCst);
                        let step = process_job(
                            epoch,
                            w,
                            job,
                            &jobs[job as usize],
                            &keys[job as usize],
                            store,
                            wal,
                            shared,
                            max_attempts,
                            opts.backoff_base_ms,
                        );
                        busy[w as usize].store(IDLE, Ordering::SeqCst);
                        match step {
                            Ok(JobOutcome::Ran) => {
                                jobs_run.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(JobOutcome::Cached) => {
                                jobs_cached.fetch_add(1, Ordering::SeqCst);
                            }
                            Ok(JobOutcome::Requeued) => {}
                            Ok(JobOutcome::Quarantined) => {
                                jobs_quarantined.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(err) => fail_fatally(err),
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    finished_workers.fetch_add(1, Ordering::SeqCst);
                });
            }

            // The calling thread doubles as the heartbeat monitor: every
            // heartbeat interval it records which jobs the live workers
            // hold, so a later `status`/`resume` on a killed farm can see
            // how far activity got.
            let mut last_beat = now_unix_ms();
            while finished_workers.load(Ordering::SeqCst) < workers as u64 {
                std::thread::sleep(Duration::from_millis(10));
                let now = now_unix_ms();
                if now.saturating_sub(last_beat) < opts.heartbeat_ms {
                    continue;
                }
                last_beat = now;
                for (w, slot) in busy.iter().enumerate() {
                    let job = slot.load(Ordering::SeqCst);
                    if job != IDLE {
                        let rec = WalRecord::heartbeat(epoch, w as u64, job);
                        if let Err(err) = lock(wal).append(&rec) {
                            fail_fatally(err);
                        }
                    }
                }
            }
        });

        if let Some(err) = lock(&first_error).take() {
            return Err(err);
        }

        // Rebuild state from the WAL the run just wrote — the same code
        // path a resume takes, so what we report is what a replay sees.
        let bytes = fs::read(self.dir.join(WAL_FILE))?;
        let (records, replay) = crate::wal::replay_bytes(&bytes)?;
        self.state = FarmState::replay(self.jobs.len(), &records);
        self.replay = replay;

        let drained = signal::drain_requested();
        if drained && !self.state.settled() {
            self.wal_append(&WalRecord::drain(epoch))?;
        }

        let incidents = {
            let s = lock(&shared);
            s.incidents.clone()
        };
        if !incidents.is_empty() {
            self.append_incidents(&incidents)?;
        }

        let settled = self.state.settled();
        if settled {
            let merged = self.merge(workers)?;
            // Trailing newline matches `ensemble --matrix --invariant`'s
            // stdout so the CI gate can `diff` the two files directly.
            fs::write(
                self.dir.join(MERGED_FILE),
                format!("{}\n", merged.invariant_json()?),
            )?;
            if let Some(alerts) = self.merge_alerts()? {
                fs::write(
                    self.dir.join(ALERTS_FILE),
                    format!("{}\n", alerts.to_json()?),
                )?;
            }
        }

        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("farm.jobs.run", jobs_run.load(Ordering::SeqCst));
        metrics.counter_add("farm.jobs.cached", jobs_cached.load(Ordering::SeqCst));
        metrics.counter_add(
            "farm.jobs.quarantined",
            jobs_quarantined.load(Ordering::SeqCst),
        );
        metrics.counter_add("farm.orphans.requeued", orphans.len() as u64);
        metrics.counter_add("farm.wal.records", self.replay.records as u64);

        Ok(RunOutcome {
            jobs_run: jobs_run.load(Ordering::SeqCst),
            jobs_cached: jobs_cached.load(Ordering::SeqCst),
            jobs_quarantined: jobs_quarantined.load(Ordering::SeqCst),
            orphans_requeued: orphans.len() as u64,
            workers,
            drained,
            settled,
            prometheus: to_prometheus(&metrics.snapshot()),
        })
    }

    /// Fold every completed job's stored summary, in manifest job order,
    /// into one [`EnsembleSummary`]. Quarantined jobs are excluded (and
    /// leave `campaigns` short of the matrix size — visible in the
    /// output, never silent).
    pub fn merge(&self, workers: usize) -> Result<EnsembleSummary, FarmError> {
        let mut agg = CampaignAggregate::new();
        for (idx, key) in self.keys.iter().enumerate() {
            match self.state.jobs[idx].status {
                JobStatus::Done => {
                    let summary = self
                        .store
                        .get(key)
                        .ok_or_else(|| FarmError::MissingResult(key.clone()))?;
                    agg.absorb(&summary);
                }
                JobStatus::Quarantined => {}
                JobStatus::Pending | JobStatus::Leased => {
                    return Err(FarmError::MissingResult(format!(
                        "job {idx} ({key}) is not terminal; run the farm to completion first"
                    )));
                }
            }
        }
        Ok(agg.finish(self.matrix.seed_start, workers))
    }

    /// Fold every observed job's stored alerts sidecar, in manifest job
    /// order, into one [`EnsembleAlerts`] report — the same per-seed fold
    /// [`frostlab_ensemble::run_observed_sweep`] performs in-process, so
    /// the two are byte-comparable at any worker count. Returns `None`
    /// when no job in the matrix armed observability. Like
    /// [`Farm::merge`], quarantined jobs are excluded and non-terminal
    /// jobs are an error; an observed `Done` job missing its sidecar is
    /// a [`FarmError::MissingResult`] (the run-time self-heal re-queues
    /// that wound before it can get here).
    pub fn merge_alerts(&self) -> Result<Option<EnsembleAlerts>, FarmError> {
        if !self.jobs.iter().any(|j| j.scenario.observe) {
            return Ok(None);
        }
        let mut agg = EnsembleAlerts::new(self.matrix.seed_start);
        for (idx, key) in self.keys.iter().enumerate() {
            if !self.jobs[idx].scenario.observe {
                continue;
            }
            match self.state.jobs[idx].status {
                JobStatus::Done => {
                    let alerts = self
                        .store
                        .get_alerts(key)
                        .ok_or_else(|| FarmError::MissingResult(format!("{key} (alerts)")))?;
                    agg.absorb(alerts);
                }
                JobStatus::Quarantined => {}
                JobStatus::Pending | JobStatus::Leased => {
                    return Err(FarmError::MissingResult(format!(
                        "job {idx} ({key}) is not terminal; run the farm to completion first"
                    )));
                }
            }
        }
        Ok(Some(agg))
    }

    fn wal_append(&self, record: &WalRecord) -> Result<(), FarmError> {
        lock(&self.wal).append(record)
    }

    fn append_and_apply(&mut self, record: &WalRecord) -> Result<(), FarmError> {
        self.wal_append(record)?;
        self.state.apply(record);
        Ok(())
    }

    /// Append quarantine incidents to `incidents.json` (merging with any
    /// records from earlier runs).
    fn append_incidents(&self, fresh: &[IncidentRecord]) -> Result<(), FarmError> {
        let path = self.dir.join(INCIDENTS_FILE);
        let mut all: Vec<IncidentRecord> = match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)?,
            Err(_) => Vec::new(),
        };
        all.extend(fresh.iter().cloned());
        fs::write(&path, serde_json::to_string_pretty(&all)?)?;
        Ok(())
    }
}

/// What processing one job amounted to.
enum JobOutcome {
    Ran,
    Cached,
    Requeued,
    Quarantined,
}

/// Lease, run (or cache-serve), and record one job. Store writes happen
/// strictly before the WAL `complete` append — the crash-safety pivot —
/// and for an observed job the alerts sidecar lands strictly before the
/// summary, so a visible summary always has its alerts alongside it.
#[allow(clippy::too_many_arguments)]
fn process_job(
    epoch: u64,
    worker: u64,
    job: u64,
    spec: &JobSpec,
    key: &str,
    store: &ResultStore,
    wal: &Mutex<Wal>,
    shared: &Mutex<SharedQueue>,
    max_attempts: u64,
    backoff_base_ms: u64,
) -> Result<JobOutcome, FarmError> {
    lock(wal).append(&WalRecord::lease(epoch, worker, job))?;

    let cache_complete =
        store.contains(key) && (!spec.scenario.observe || store.get_alerts(key).is_some());
    if cache_complete {
        lock(wal).append(&WalRecord::complete(epoch, worker, job, true))?;
        return Ok(JobOutcome::Cached);
    }

    let attempt_result = catch_unwind(AssertUnwindSafe(|| {
        spec.scenario.build(spec.seed).map(|scenario| {
            let results = scenario.run();
            let alerts = results
                .obs
                .as_ref()
                .map(|o| SeedAlerts::from_obs(results.seed, o));
            (results.summary(), alerts)
        })
    }));
    let note = match attempt_result {
        Ok(Ok((summary, alerts))) => {
            if let Some(alerts) = &alerts {
                store.put_alerts(key, worker, alerts)?;
            }
            store.put(key, worker, &summary)?;
            lock(wal).append(&WalRecord::complete(epoch, worker, job, false))?;
            return Ok(JobOutcome::Ran);
        }
        Ok(Err(spec_err)) => format!("spec error: {spec_err}"),
        Err(panic) => format!("panic: {}", panic_message(&panic)),
    };

    let attempts = {
        let mut s = lock(shared);
        s.attempts[job as usize] += 1;
        s.attempts[job as usize]
    };
    if attempts >= max_attempts {
        lock(wal).append(&WalRecord::quarantine(epoch, job, attempts, &note))?;
        let mut s = lock(shared);
        s.incidents
            .push(quarantine_incident(spec, key, attempts, &note));
        return Ok(JobOutcome::Quarantined);
    }
    lock(wal).append(&WalRecord::fail(epoch, worker, job, attempts, &note))?;
    // Exponential backoff, capped so a poison job can't stall a drain.
    let backoff = backoff_base_ms
        .saturating_mul(1 << (attempts - 1).min(8))
        .min(2_000);
    std::thread::sleep(Duration::from_millis(backoff));
    lock(shared).queue.push_back(job);
    Ok(JobOutcome::Requeued)
}

/// The serializable incident a quarantine produces — the farm-side
/// sibling of the in-campaign watchdog incident log.
fn quarantine_incident(spec: &JobSpec, key: &str, attempts: u64, note: &str) -> IncidentRecord {
    IncidentRecord {
        kind: IncidentKind::JobQuarantine.name().to_string(),
        subject: format!("job {key} ({} @ seed {})", spec.scenario.name, spec.seed),
        started: format!("unix_ms:{}", now_unix_ms()),
        resolved: Some(format!("unix_ms:{}", now_unix_ms())),
        resolution: Some(format!("quarantined after {attempts} attempts: {note}")),
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn effective_workers(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Content keys for an expanded job list, in manifest order.
fn job_keys(jobs: &[JobSpec]) -> Result<Vec<String>, FarmError> {
    jobs.iter()
        .map(|j| j.key().map_err(FarmError::from))
        .collect()
}

/// Lock a mutex, riding through poisoning: farm state transitions are
/// WAL-journaled, so a panicking worker can't leave the in-memory view
/// in a state the next replay wouldn't reproduce.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
