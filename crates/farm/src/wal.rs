//! The append-only, checksummed write-ahead log.
//!
//! Every queue transition (lease, completion, failure, quarantine,
//! heartbeat, requeue, epoch start) is one framed record:
//!
//! ```text
//! ┌──────────────┬──────────────┬───────────────────┐
//! │ len: u32 LE  │ crc32: u32   │ payload (JSON)    │
//! └──────────────┴──────────────┴───────────────────┘
//! ```
//!
//! preceded once by the 8-byte file magic `FLFARMW1`. The CRC-32 (IEEE,
//! via [`frostlab_compress::crc32`]) covers the payload, so a record cut
//! short by a crash — or half-flushed page cache — fails verification and
//! **replay stops at the last intact frame**. [`Wal::open`] then
//! truncates the torn tail before appending, which is what makes a kill
//! at any instant recoverable: the WAL's committed prefix is always a
//! valid history, and re-applying it is idempotent (see
//! [`crate::state::FarmState`]).
//!
//! Records carry a wall-clock stamp for the operational narrative; the
//! stamp never feeds the simulation, so it cannot perturb determinism.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use frostlab_compress::crc32::crc32;

use crate::error::FarmError;

/// File magic: identifies a farm WAL, version 1.
pub const MAGIC: &[u8; 8] = b"FLFARMW1";

/// Sanity cap on a single record's payload — anything larger is treated
/// as a torn/garbage frame, not a record.
const MAX_RECORD_BYTES: u32 = 1 << 20;

/// Record kinds (the `kind` field of [`WalRecord`]).
pub mod kind {
    /// A `run`/`resume` invocation began; defines a new lease epoch.
    pub const START: &str = "start";
    /// A worker took a job.
    pub const LEASE: &str = "lease";
    /// A worker signalled liveness on its leased job.
    pub const HEARTBEAT: &str = "heartbeat";
    /// A job finished; `cached` says whether the result store served it.
    pub const COMPLETE: &str = "complete";
    /// An attempt failed; the job returns to the queue.
    pub const FAIL: &str = "fail";
    /// A lease was declared orphaned (dead worker / stale epoch) and the
    /// job returned to the queue.
    pub const REQUEUE: &str = "requeue";
    /// A job exhausted its retry budget and left the queue for good.
    pub const QUARANTINE: &str = "quarantine";
    /// The farm drained gracefully (SIGINT) with work still pending.
    pub const DRAIN: &str = "drain";
}

/// One WAL record. A flat struct (rather than a data-carrying enum) so
/// the vendored mini-serde can derive it; unused fields stay at their
/// zero values for kinds that don't need them.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WalRecord {
    /// One of the [`kind`] constants.
    pub kind: String,
    /// Lease epoch the record belongs to (monotonic per `run` invocation).
    pub epoch: u64,
    /// Worker index within its run (0-based).
    pub worker: u64,
    /// Job index into the manifest's expanded job list.
    pub job: u64,
    /// For [`kind::COMPLETE`]: result came from the content-hash cache.
    pub cached: bool,
    /// For [`kind::FAIL`]/[`kind::QUARANTINE`]: attempt count after this
    /// event.
    pub attempt: u64,
    /// Free-form note (panic message, requeue reason).
    pub note: String,
    /// Wall-clock stamp, milliseconds since the Unix epoch. Operational
    /// metadata only — never feeds the simulation.
    pub unix_ms: u64,
}

/// Current wall-clock in milliseconds since the Unix epoch.
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl WalRecord {
    fn base(kind: &str, epoch: u64) -> WalRecord {
        WalRecord {
            kind: kind.to_string(),
            epoch,
            worker: 0,
            job: 0,
            cached: false,
            attempt: 0,
            note: String::new(),
            unix_ms: now_unix_ms(),
        }
    }

    /// A new run/resume epoch begins.
    pub fn start(epoch: u64) -> WalRecord {
        WalRecord::base(kind::START, epoch)
    }

    /// Worker `worker` leased `job`.
    pub fn lease(epoch: u64, worker: u64, job: u64) -> WalRecord {
        WalRecord {
            worker,
            job,
            ..WalRecord::base(kind::LEASE, epoch)
        }
    }

    /// Worker `worker` is alive and still working `job`.
    pub fn heartbeat(epoch: u64, worker: u64, job: u64) -> WalRecord {
        WalRecord {
            worker,
            job,
            ..WalRecord::base(kind::HEARTBEAT, epoch)
        }
    }

    /// `job` finished (`cached` = served from the result store).
    pub fn complete(epoch: u64, worker: u64, job: u64, cached: bool) -> WalRecord {
        WalRecord {
            worker,
            job,
            cached,
            ..WalRecord::base(kind::COMPLETE, epoch)
        }
    }

    /// `job`'s attempt number `attempt` failed with `note`.
    pub fn fail(epoch: u64, worker: u64, job: u64, attempt: u64, note: &str) -> WalRecord {
        WalRecord {
            worker,
            job,
            attempt,
            note: note.to_string(),
            ..WalRecord::base(kind::FAIL, epoch)
        }
    }

    /// `job`'s lease was orphaned and the job returned to the queue.
    pub fn requeue(epoch: u64, job: u64, note: &str) -> WalRecord {
        WalRecord {
            job,
            note: note.to_string(),
            ..WalRecord::base(kind::REQUEUE, epoch)
        }
    }

    /// `job` was quarantined after `attempt` failed attempts.
    pub fn quarantine(epoch: u64, job: u64, attempt: u64, note: &str) -> WalRecord {
        WalRecord {
            job,
            attempt,
            note: note.to_string(),
            ..WalRecord::base(kind::QUARANTINE, epoch)
        }
    }

    /// The farm drained gracefully with work still pending.
    pub fn drain(epoch: u64) -> WalRecord {
        WalRecord::base(kind::DRAIN, epoch)
    }
}

/// What a replay saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Intact records decoded.
    pub records: usize,
    /// Byte offset of the end of the last intact frame (including the
    /// magic). Everything past this is torn tail.
    pub clean_bytes: u64,
    /// True if trailing bytes failed to decode (torn final record —
    /// the signature of a crash mid-append).
    pub torn: bool,
}

/// Decode a WAL image: every intact frame in order, stopping at the
/// first torn/invalid frame. Pure function of the bytes — calling it
/// twice (or concatenating a replayed prefix with itself and rebuilding
/// state; see [`crate::state`]) changes nothing.
pub fn replay_bytes(bytes: &[u8]) -> Result<(Vec<WalRecord>, ReplayReport), FarmError> {
    if bytes.len() < MAGIC.len() {
        // Crash before the magic finished writing: an empty history.
        return Ok((
            Vec::new(),
            ReplayReport {
                records: 0,
                clean_bytes: 0,
                torn: !bytes.is_empty(),
            },
        ));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(FarmError::Corrupt(format!(
            "WAL magic mismatch (got {:02x?})",
            &bytes[..MAGIC.len()]
        )));
    }

    let mut records = Vec::new();
    let mut off = MAGIC.len();
    let torn;
    loop {
        let Some(header) = bytes.get(off..off + 8) else {
            torn = off < bytes.len();
            break;
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len == 0 || len > MAX_RECORD_BYTES {
            torn = true;
            break;
        }
        let Some(payload) = bytes.get(off + 8..off + 8 + len as usize) else {
            torn = true;
            break;
        };
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            torn = true;
            break;
        };
        let Ok(record) = serde_json::from_str::<WalRecord>(text) else {
            torn = true;
            break;
        };
        records.push(record);
        off += 8 + len as usize;
    }
    let report = ReplayReport {
        records: records.len(),
        clean_bytes: off as u64,
        torn,
    };
    Ok((records, report))
}

/// An open WAL, positioned for appending past the last intact record.
#[derive(Debug)]
pub struct Wal {
    file: File,
}

impl Wal {
    /// Create a fresh WAL (truncating any existing file) and write the
    /// magic.
    pub fn create(path: &Path) -> Result<Wal, FarmError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.sync_data()?;
        Ok(Wal { file })
    }

    /// Open an existing WAL (or create one if the file is missing),
    /// replay its intact prefix, truncate any torn tail, and position for
    /// append. Returns the decoded history alongside the handle.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>, ReplayReport), FarmError> {
        if !path.exists() {
            let wal = Wal::create(path)?;
            return Ok((
                wal,
                Vec::new(),
                ReplayReport {
                    records: 0,
                    clean_bytes: MAGIC.len() as u64,
                    torn: false,
                },
            ));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, report) = replay_bytes(&bytes)?;
        if report.clean_bytes < MAGIC.len() as u64 {
            // Crash before the magic landed: restart the file.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
        } else if report.torn {
            // Drop the torn tail so future appends extend a valid prefix
            // (appending after garbage would hide every later record from
            // replay).
            file.set_len(report.clean_bytes)?;
            file.seek(SeekFrom::Start(report.clean_bytes))?;
        } else {
            file.seek(SeekFrom::End(0))?;
        }
        file.sync_data()?;
        Ok((Wal { file }, records, report))
    }

    /// Append one record: frame, flush, and fsync. On return the record
    /// is durable.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), FarmError> {
        let payload = serde_json::to_string(record)?;
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_image(records: &[WalRecord]) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!(
            "frostlab-wal-test-{}-{}",
            std::process::id(),
            now_unix_ms()
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path).expect("create");
        for r in records {
            wal.append(r).expect("append");
        }
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_dir_all(&dir).ok();
        bytes
    }

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::start(1),
            WalRecord::lease(1, 0, 0),
            WalRecord::heartbeat(1, 0, 0),
            WalRecord::complete(1, 0, 0, false),
            WalRecord::lease(1, 1, 1),
            WalRecord::fail(1, 1, 1, 1, "poison phase detonated"),
            WalRecord::requeue(2, 1, "orphan lease from epoch 1"),
            WalRecord::quarantine(2, 1, 3, "poison phase detonated"),
            WalRecord::drain(2),
        ]
    }

    #[test]
    fn round_trips_every_record_kind() {
        let records = sample();
        let (back, report) = replay_bytes(&wal_image(&records)).expect("valid image");
        assert_eq!(back, records);
        assert!(!report.torn);
        assert_eq!(report.records, records.len());
    }

    #[test]
    fn torn_final_record_is_dropped_not_fatal() {
        let records = sample();
        let image = wal_image(&records);
        // Chop the image mid-way through the final frame.
        let truncated = &image[..image.len() - 3];
        let (back, report) = replay_bytes(truncated).expect("torn is recoverable");
        assert_eq!(back, records[..records.len() - 1]);
        assert!(report.torn);
    }

    #[test]
    fn corrupted_payload_fails_crc_and_ends_replay() {
        let records = sample();
        let mut image = wal_image(&records);
        let n = image.len();
        image[n - 4] ^= 0xff; // flip a byte inside the last payload
        let (back, report) = replay_bytes(&image).expect("corruption is a torn tail");
        assert_eq!(back, records[..records.len() - 1]);
        assert!(report.torn);
    }

    #[test]
    fn wrong_magic_is_corrupt_not_torn() {
        let mut image = wal_image(&sample());
        image[0] = b'X';
        assert!(matches!(replay_bytes(&image), Err(FarmError::Corrupt(_))));
    }

    #[test]
    fn empty_and_sub_magic_files_replay_to_nothing() {
        let (r, rep) = replay_bytes(&[]).expect("empty ok");
        assert!(r.is_empty());
        assert!(!rep.torn);
        let (r, rep) = replay_bytes(b"FLF").expect("partial magic ok");
        assert!(r.is_empty());
        assert!(rep.torn);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!(
            "frostlab-wal-open-{}-{}",
            std::process::id(),
            now_unix_ms()
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).expect("create");
            wal.append(&WalRecord::start(1)).expect("append");
            wal.append(&WalRecord::lease(1, 0, 0)).expect("append");
        }
        // Simulate a crash mid-append: add garbage half-frame.
        let mut bytes = std::fs::read(&path).expect("read");
        let clean = bytes.len();
        bytes.extend_from_slice(&[0x55; 7]);
        std::fs::write(&path, &bytes).expect("write torn");

        let (mut wal, records, report) = Wal::open(&path).expect("open heals");
        assert_eq!(records.len(), 2);
        assert!(report.torn);
        assert_eq!(report.clean_bytes as usize, clean);
        wal.append(&WalRecord::complete(1, 0, 0, false))
            .expect("append after heal");
        drop(wal);

        let (records, report) = replay_bytes(&std::fs::read(&path).expect("read")).expect("valid");
        assert_eq!(records.len(), 3, "post-heal append is visible to replay");
        assert!(!report.torn);
        std::fs::remove_dir_all(&dir).ok();
    }
}
