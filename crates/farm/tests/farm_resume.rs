//! End-to-end farm integration tests: determinism across worker counts,
//! crash/resume with zero re-simulation, poison-job quarantine, and the
//! orphan-lease sweep. These are the in-process siblings of the CI
//! crash-resume gate (which kills a real `farm` process with SIGKILL).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use frostlab_core::{MatrixSpec, ScenarioSpec};
use frostlab_ensemble::{run_matrix_sweep, EnsembleAlerts};
use frostlab_farm::supervisor::{ALERTS_FILE, INCIDENTS_FILE, MERGED_FILE, STORE_DIR, WAL_FILE};
use frostlab_farm::wal::MAGIC;
use frostlab_farm::{Farm, FarmError, RunOptions, Wal, WalRecord};

/// Fresh scratch directory per test (unique across parallel test threads).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "frostlab-farm-it-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst),
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small but non-trivial matrix: 2 scenarios × 3 seeds = 6 jobs.
fn small_matrix() -> MatrixSpec {
    let mut chaotic = ScenarioSpec::new("helsinki+chaos", 2, "helsinki");
    chaotic.chaos = true;
    MatrixSpec {
        scenarios: vec![ScenarioSpec::new("helsinki", 2, "helsinki"), chaotic],
        seed_start: 7,
        seeds: 3,
    }
}

fn quiet(workers: usize) -> RunOptions {
    RunOptions {
        workers,
        backoff_base_ms: 1,
        ..RunOptions::default()
    }
}

#[test]
fn merge_is_byte_identical_across_worker_counts() -> Result<(), FarmError> {
    let matrix = small_matrix();
    // The single-process reference the farm must reproduce byte-for-byte
    // (invariant form masks thread count; trailing newline matches the
    // `ensemble --matrix --invariant` stdout the CI gate diffs against).
    let reference = run_matrix_sweep(&matrix, 1)?;
    let expected = format!("{}\n", reference.invariant_json()?);

    for workers in [1usize, 3] {
        let dir = scratch(&format!("workers{workers}"));
        let mut farm = Farm::submit(&dir, &matrix)?;
        let outcome = farm.run(quiet(workers))?;
        assert!(outcome.settled, "workers={workers} must settle");
        assert_eq!(outcome.jobs_run, 6, "workers={workers} runs every job");
        assert_eq!(outcome.jobs_cached, 0);
        let merged = std::fs::read_to_string(dir.join(MERGED_FILE))?;
        assert_eq!(
            merged, expected,
            "workers={workers} merged.json must be byte-identical to the ensemble run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}

#[test]
fn resume_after_wal_loss_is_served_entirely_from_cache() -> Result<(), FarmError> {
    let matrix = small_matrix();
    let dir = scratch("cache");
    let mut farm = Farm::submit(&dir, &matrix)?;
    assert!(farm.run(quiet(2))?.settled);
    let merged_first = std::fs::read(dir.join(MERGED_FILE))?;
    drop(farm);

    // Worst-case crash model: the whole WAL history is lost (rewound to
    // bare magic) but the result store survived. Every job must be a
    // cache hit — the `jobs_cached` counter certifying zero
    // re-simulation is the ISSUE's acceptance criterion.
    std::fs::write(dir.join(WAL_FILE), MAGIC)?;
    let mut farm = Farm::open(&dir)?;
    assert_eq!(farm.status().pending, 6, "lost WAL means all-pending");
    let outcome = farm.run(quiet(2))?;
    assert!(outcome.settled);
    assert_eq!(outcome.jobs_run, 0, "no completed job may re-simulate");
    assert_eq!(outcome.jobs_cached, 6);
    assert_eq!(
        std::fs::read(dir.join(MERGED_FILE))?,
        merged_first,
        "cache-served merge must be byte-identical"
    );
    drop(farm);

    // Partial store loss: one result deleted, WAL rewound again. Exactly
    // that one job re-runs; the rest stay cache hits.
    let victim = farm_first_store_file(&dir);
    std::fs::remove_file(&victim)?;
    std::fs::write(dir.join(WAL_FILE), MAGIC)?;
    let mut farm = Farm::open(&dir)?;
    let outcome = farm.run(quiet(2))?;
    assert!(outcome.settled);
    assert_eq!(outcome.jobs_run, 1, "only the evicted job re-simulates");
    assert_eq!(outcome.jobs_cached, 5);
    assert_eq!(std::fs::read(dir.join(MERGED_FILE))?, merged_first);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn farm_first_store_file(dir: &std::path::Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir.join(STORE_DIR))
        .expect("store dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    entries.into_iter().next().expect("store is non-empty")
}

#[test]
fn poison_jobs_are_quarantined_without_wedging_the_queue() -> Result<(), FarmError> {
    let mut poison = ScenarioSpec::new("poison", 2, "helsinki");
    poison.poison = true;
    let matrix = MatrixSpec {
        scenarios: vec![ScenarioSpec::new("helsinki", 2, "helsinki"), poison],
        seed_start: 0,
        seeds: 2,
    };
    let dir = scratch("poison");
    let mut farm = Farm::submit(&dir, &matrix)?;
    let outcome = farm.run(quiet(2))?;

    assert!(outcome.settled, "poison must not wedge the queue");
    assert_eq!(outcome.jobs_quarantined, 2, "both poison seeds quarantine");
    assert_eq!(outcome.jobs_run, 2, "healthy jobs still complete");
    let status = farm.status();
    assert_eq!(status.quarantined, 2);
    assert_eq!(status.done, 2);

    // Quarantine leaves an incident ledger naming the job and its panic.
    let incidents = std::fs::read_to_string(dir.join(INCIDENTS_FILE))?;
    assert!(incidents.contains("job-quarantine"), "{incidents}");
    assert!(
        incidents.contains("quarantined after 3 attempts"),
        "{incidents}"
    );
    assert!(incidents.contains("poison phase detonated"), "{incidents}");

    // The merge still lands: quarantined jobs are excluded, visibly.
    let merged = std::fs::read_to_string(dir.join(MERGED_FILE))?;
    assert!(merged.contains("\"campaigns\": 2"), "{merged}");

    // A resume is a no-op: quarantine is terminal, nothing re-runs.
    let again = farm.run(quiet(1))?;
    assert_eq!(again.jobs_run, 0);
    assert_eq!(again.jobs_quarantined, 0);
    assert!(again.settled);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

#[test]
fn observed_jobs_write_alert_sidecars_and_a_merged_report() -> Result<(), FarmError> {
    let mut observed = ScenarioSpec::new("helsinki+obs", 2, "helsinki");
    observed.observe = true;
    let matrix = MatrixSpec {
        scenarios: vec![ScenarioSpec::new("helsinki", 2, "helsinki"), observed],
        seed_start: 0,
        seeds: 2,
    };

    let mut merged_alerts: Vec<String> = Vec::new();
    for workers in [1usize, 2] {
        let dir = scratch(&format!("obs{workers}"));
        let mut farm = Farm::submit(&dir, &matrix)?;
        assert!(farm.run(quiet(workers))?.settled);

        // Only the observed scenario's jobs carry sidecars; the merged
        // report folds exactly those, in manifest job (seed) order.
        let sidecars = std::fs::read_dir(dir.join(STORE_DIR))?
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".alerts.json")
            })
            .count();
        assert_eq!(sidecars, 2, "one sidecar per observed job");
        let text = std::fs::read_to_string(dir.join(ALERTS_FILE))?;
        let report: EnsembleAlerts = serde_json::from_str(&text).expect("valid report");
        assert_eq!(report.campaigns, 2);
        let seeds: Vec<u64> = report.per_seed.iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![0, 1]);
        assert!(
            report.per_seed.iter().all(|s| s.slos.len() == 4),
            "every observed seed reports the four paper SLOs"
        );
        merged_alerts.push(text);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        merged_alerts[0], merged_alerts[1],
        "alerts.json must be byte-identical across worker counts"
    );

    // A deleted sidecar is a healed wound, not a silent hole: exactly
    // that job re-runs on resume and the report comes back identical.
    let dir = scratch("obs-heal");
    let mut farm = Farm::submit(&dir, &matrix)?;
    assert!(farm.run(quiet(2))?.settled);
    drop(farm);
    let victim = std::fs::read_dir(dir.join(STORE_DIR))?
        .map(|e| e.expect("entry").path())
        .find(|p| p.to_string_lossy().ends_with(".alerts.json"))
        .expect("a sidecar exists");
    std::fs::remove_file(&victim)?;
    let mut farm = Farm::open(&dir)?;
    let outcome = farm.run(quiet(2))?;
    assert!(outcome.settled);
    assert_eq!(outcome.jobs_run, 1, "only the wounded observed job re-runs");
    assert_eq!(outcome.jobs_cached, 0);
    assert_eq!(
        std::fs::read_to_string(dir.join(ALERTS_FILE))?,
        merged_alerts[0],
        "healed alerts.json must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

#[test]
fn orphaned_leases_are_requeued_on_resume() -> Result<(), FarmError> {
    let matrix = MatrixSpec {
        scenarios: vec![ScenarioSpec::new("helsinki", 2, "helsinki")],
        seed_start: 0,
        seeds: 2,
    };
    let dir = scratch("orphan");
    drop(Farm::submit(&dir, &matrix)?);

    // Forge the WAL a killed worker leaves behind: an epoch started, a
    // job leased (with a heartbeat), and then silence — no completion.
    {
        let (mut wal, _, _) = Wal::open(&dir.join(WAL_FILE))?;
        wal.append(&WalRecord::start(1))?;
        wal.append(&WalRecord::lease(1, 0, 0))?;
        wal.append(&WalRecord::heartbeat(1, 0, 0))?;
    }

    let mut farm = Farm::open(&dir)?;
    let status = farm.status();
    assert_eq!(status.leased, 1, "the dead worker's lease is visible");
    assert_eq!(status.pending, 1);

    let outcome = farm.run(quiet(1))?;
    assert_eq!(outcome.orphans_requeued, 1, "stale-epoch lease is swept");
    assert_eq!(outcome.jobs_run, 2, "the orphaned job actually runs");
    assert!(outcome.settled);
    assert_eq!(farm.status().done, 2);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
