//! Property tests for WAL recovery (ISSUE 6 satellite).
//!
//! Two invariants carry the farm's whole crash-safety story:
//!
//! 1. **Any byte prefix of a valid WAL replays cleanly** — cutting the
//!    image at an arbitrary offset (mid-magic, mid-header, mid-payload,
//!    or exactly on a frame boundary) never errors, yields a *record*
//!    prefix of the full history, and rebuilds the same [`FarmState`]
//!    as folding that record prefix directly.
//! 2. **Replay is idempotent** — folding a history twice produces
//!    exactly the state of folding it once, so a resume that re-reads
//!    an already-applied WAL cannot drift.
//!
//! Images are framed in-memory against the *documented* format (magic,
//! then `[u32 LE len][u32 LE crc32(payload)][JSON payload]`) rather
//! than through [`frostlab_farm::Wal`], so these tests double as a
//! format-compatibility check: an independent writer following
//! `wal.rs`'s module docs must produce replayable logs.

use frostlab_compress::crc32::crc32;
use frostlab_farm::wal::{self, replay_bytes, WalRecord};
use frostlab_farm::FarmState;
use proptest::collection;
use proptest::prelude::*;

/// Number of job slots the generated histories address.
const JOBS: usize = 6;

/// Materialize one record from a generated tuple.
fn record_from(kind_idx: u8, epoch: u64, worker: u64, job: u64, attempt: u64) -> WalRecord {
    match kind_idx % 8 {
        0 => WalRecord::start(epoch),
        1 => WalRecord::lease(epoch, worker, job),
        2 => WalRecord::heartbeat(epoch, worker, job),
        3 => WalRecord::complete(epoch, worker, job, attempt.is_multiple_of(2)),
        4 => WalRecord::fail(epoch, worker, job, attempt, "generated failure"),
        5 => WalRecord::requeue(epoch, job, "generated orphan sweep"),
        6 => WalRecord::quarantine(epoch, job, attempt, "generated poison"),
        _ => WalRecord::drain(epoch),
    }
}

/// Frame a history exactly as `wal.rs` documents, without going through
/// `Wal` (no filesystem, and an independent check of the format).
fn frame(records: &[WalRecord]) -> Vec<u8> {
    let mut image = wal::MAGIC.to_vec();
    for record in records {
        let payload = serde_json::to_string(record).expect("record serializes");
        let payload = payload.as_bytes();
        image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        image.extend_from_slice(&crc32(payload).to_le_bytes());
        image.extend_from_slice(payload);
    }
    image
}

/// The generated-history strategy: up to 24 records over a small job
/// space so leases, completions, failures and quarantines collide often.
fn history() -> impl Strategy<Value = Vec<(u8, u64, u64, u64, u64)>> {
    collection::vec((0..8u8, 1..4u64, 0..3u64, 0..JOBS as u64, 0..4u64), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_prefix_of_a_valid_wal_replays_to_a_consistent_queue(
        raw in history(),
        cut_seed in any::<u64>(),
    ) {
        let records: Vec<WalRecord> = raw
            .iter()
            .map(|&(k, e, w, j, a)| record_from(k, e, w, j, a))
            .collect();
        let image = frame(&records);

        // Cut anywhere from the empty file to the full image, inclusive.
        let cut = (cut_seed % (image.len() as u64 + 1)) as usize;
        let (replayed, report) = match replay_bytes(&image[..cut]) {
            Ok(ok) => ok,
            Err(e) => return Err(TestCaseError::Fail(format!(
                "prefix cut at {cut}/{} must never error: {e}",
                image.len()
            ))),
        };

        // The decoded history is a record prefix of the full history…
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()]);
        // …every byte up to the cut is accounted for (clean or torn)…
        prop_assert!(report.clean_bytes as usize <= cut);
        prop_assert_eq!(report.torn, (report.clean_bytes as usize) < cut);
        // …and a cut exactly on a frame boundary loses nothing.
        if cut == image.len() {
            prop_assert_eq!(replayed.len(), records.len());
            prop_assert!(!report.torn);
        }

        // State rebuilt from the byte prefix == state folded from the
        // record prefix: truncation can only forget a suffix, never
        // invent or reorder transitions.
        let from_bytes = FarmState::replay(JOBS, &replayed);
        let from_records = FarmState::replay(JOBS, &records[..replayed.len()]);
        prop_assert_eq!(from_bytes, from_records);
    }

    #[test]
    fn torn_final_record_drops_exactly_one_record(
        raw in history(),
        bite in 1..16u64,
    ) {
        let mut records: Vec<WalRecord> = raw
            .iter()
            .map(|&(k, e, w, j, a)| record_from(k, e, w, j, a))
            .collect();
        // Ensure there is a final record to tear.
        records.push(WalRecord::complete(1, 0, 0, false));
        let image = frame(&records);

        // Tear strictly inside the final frame: the frame is 8 bytes of
        // header plus a >16-byte JSON payload, so chopping 1..=15 bytes
        // always lands mid-frame.
        let cut = image.len() - bite as usize;
        let (replayed, report) = replay_bytes(&image[..cut])
            .map_err(|e| TestCaseError::Fail(format!("torn tail must not error: {e}")))?;
        prop_assert_eq!(replayed.len(), records.len() - 1);
        prop_assert!(report.torn);
        prop_assert_eq!(&replayed[..], &records[..records.len() - 1]);
    }

    #[test]
    fn replay_is_idempotent(raw in history()) {
        let records: Vec<WalRecord> = raw
            .iter()
            .map(|&(k, e, w, j, a)| record_from(k, e, w, j, a))
            .collect();
        let once = FarmState::replay(JOBS, &records);
        let twice = FarmState::replay(JOBS, records.iter().chain(records.iter()));
        prop_assert_eq!(once, twice);

        // Incremental equivalence: folding the history one record at a
        // time through `apply` matches the batch replay (no hidden
        // cross-record coupling).
        let mut step = FarmState::new(JOBS);
        for r in &records {
            step.apply(r);
        }
        prop_assert_eq!(step, FarmState::replay(JOBS, &records));
    }
}
