//! Deterministic chaos injection for the collection pipeline.
//!
//! §4.2.1 happened to the authors once; this module makes it happen to the
//! simulated pipeline on demand, and reproducibly. A [`ChaosEngine`]
//! pre-generates a schedule of adverse events — link-loss bursts, jitter
//! bursts, switch deaths, host hangs and reboots, sensor freezes — by
//! drawing exponential interarrival times on **per-fault-class RNG streams**
//! derived from the campaign seed. Because each class draws from its own
//! stream ([`frostlab_simkern::rng::Rng::derive`] is draw-count
//! independent), changing the rate of one fault class does not shift the
//! timing of any other: experiments stay comparable across chaos settings.
//!
//! The engine is pure data + RNG; *applying* the events (taking a switch
//! down, hanging a host) is the orchestrator's job. With every rate at zero
//! (the [`ChaosConfig::off`] config) the engine draws nothing and schedules
//! nothing, so a chaos-disabled campaign is bit-identical to one built
//! before this module existed.

use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

/// Mean intervals between injected events, per fault class. A zero interval
/// disables the class entirely (no RNG draws, no events).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Mean time between link-loss bursts on the monitoring fabric.
    pub link_loss_every: SimDuration,
    /// How long a link-loss burst lasts.
    pub link_loss_burst: SimDuration,
    /// Probability a collection attempt fails during a loss burst.
    pub link_loss_prob: f64,
    /// Mean time between jitter bursts (delay inflation on the fabric).
    pub jitter_every: SimDuration,
    /// How long a jitter burst lasts.
    pub jitter_burst: SimDuration,
    /// Extra per-hop delay ceiling during a jitter burst.
    pub jitter_max: SimDuration,
    /// Mean time between switch deaths.
    pub switch_death_every: SimDuration,
    /// Mean time between host hangs (per fleet, not per host).
    pub host_hang_every: SimDuration,
    /// Mean time between spontaneous host reboots.
    pub host_reboot_every: SimDuration,
    /// Mean time between sensor-chip freezes (the −111 °C cold fault).
    pub sensor_freeze_every: SimDuration,
}

impl ChaosConfig {
    /// Everything disabled: generates no events and draws no randomness.
    pub fn off() -> Self {
        ChaosConfig {
            link_loss_every: SimDuration::ZERO,
            link_loss_burst: SimDuration::ZERO,
            link_loss_prob: 0.0,
            jitter_every: SimDuration::ZERO,
            jitter_burst: SimDuration::ZERO,
            jitter_max: SimDuration::ZERO,
            switch_death_every: SimDuration::ZERO,
            host_hang_every: SimDuration::ZERO,
            host_reboot_every: SimDuration::ZERO,
            sensor_freeze_every: SimDuration::ZERO,
        }
    }

    /// A mildly hostile campaign: a few bursts a week, roughly one switch
    /// death a month, occasional host trouble — §4.2.1 levels of adversity.
    pub fn paper_like() -> Self {
        ChaosConfig {
            link_loss_every: SimDuration::days(2),
            link_loss_burst: SimDuration::hours(2),
            link_loss_prob: 0.6,
            jitter_every: SimDuration::days(3),
            jitter_burst: SimDuration::hours(4),
            jitter_max: SimDuration::secs(2),
            switch_death_every: SimDuration::days(30),
            host_hang_every: SimDuration::days(20),
            host_reboot_every: SimDuration::days(25),
            sensor_freeze_every: SimDuration::days(40),
        }
    }
}

/// One injected adverse event.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// The fabric starts dropping collection traffic.
    LinkLossBurst {
        /// Per-attempt failure probability while the burst lasts.
        loss: f64,
        /// Burst length.
        duration: SimDuration,
    },
    /// The fabric starts delaying traffic.
    JitterBurst {
        /// Extra per-hop delay ceiling.
        jitter: SimDuration,
        /// Burst length.
        duration: SimDuration,
    },
    /// A monitoring switch dies (the §4.2.1 failure mode).
    SwitchDeath {
        /// Which switch.
        switch: usize,
    },
    /// A host hangs hard enough to need operator attention.
    HostHang {
        /// Which host.
        host: u32,
    },
    /// A host spontaneously reboots (transient; no operator needed).
    HostReboot {
        /// Which host.
        host: u32,
    },
    /// A host's sensor chip freezes into the −111 °C cold fault.
    SensorFreeze {
        /// Which host.
        host: u32,
    },
}

/// A pre-generated, time-sorted schedule of chaos events.
#[derive(Debug)]
pub struct ChaosEngine {
    schedule: Vec<(SimTime, ChaosEvent)>,
    next: usize,
}

impl ChaosEngine {
    /// Generate the schedule for one campaign window.
    ///
    /// `hosts` are the candidate victims for host-level faults; `switches`
    /// is the fabric size. `rng` is borrowed only to derive per-class
    /// streams — the caller's draw position is unaffected.
    pub fn generate(
        cfg: &ChaosConfig,
        window: (SimTime, SimTime),
        hosts: &[u32],
        switches: usize,
        rng: &Rng,
    ) -> Self {
        let root = rng.derive("chaos");
        let mut schedule: Vec<(SimTime, ChaosEvent)> = Vec::new();

        // One sweep per fault class, each on its own derived stream.
        let sweep = |label: &str,
                     every: SimDuration,
                     schedule: &mut Vec<(SimTime, ChaosEvent)>,
                     make: &mut dyn FnMut(&mut Rng) -> Option<ChaosEvent>| {
            if every <= SimDuration::ZERO {
                return;
            }
            let mut stream = root.derive(label);
            let lambda = 1.0 / every.as_secs() as f64;
            let mut at = window.0;
            loop {
                let dt = stream.exponential(lambda).max(1.0);
                at += SimDuration::secs(dt as i64 + 1);
                if at >= window.1 {
                    break;
                }
                if let Some(ev) = make(&mut stream) {
                    schedule.push((at, ev));
                }
            }
        };

        sweep("link-loss", cfg.link_loss_every, &mut schedule, &mut |_| {
            Some(ChaosEvent::LinkLossBurst {
                loss: cfg.link_loss_prob,
                duration: cfg.link_loss_burst,
            })
        });
        sweep("jitter", cfg.jitter_every, &mut schedule, &mut |_| {
            Some(ChaosEvent::JitterBurst {
                jitter: cfg.jitter_max,
                duration: cfg.jitter_burst,
            })
        });
        sweep(
            "switch-death",
            cfg.switch_death_every,
            &mut schedule,
            &mut |s| {
                if switches == 0 {
                    return None;
                }
                Some(ChaosEvent::SwitchDeath {
                    switch: s.below(switches as u64) as usize,
                })
            },
        );
        sweep("host-hang", cfg.host_hang_every, &mut schedule, &mut |s| {
            if hosts.is_empty() {
                return None;
            }
            Some(ChaosEvent::HostHang {
                host: *s.choose(hosts),
            })
        });
        sweep(
            "host-reboot",
            cfg.host_reboot_every,
            &mut schedule,
            &mut |s| {
                if hosts.is_empty() {
                    return None;
                }
                Some(ChaosEvent::HostReboot {
                    host: *s.choose(hosts),
                })
            },
        );
        sweep(
            "sensor-freeze",
            cfg.sensor_freeze_every,
            &mut schedule,
            &mut |s| {
                if hosts.is_empty() {
                    return None;
                }
                Some(ChaosEvent::SensorFreeze {
                    host: *s.choose(hosts),
                })
            },
        );

        schedule.sort_by_key(|(at, _)| *at);
        ChaosEngine { schedule, next: 0 }
    }

    /// Events due at or before `now`, in time order. Each event is returned
    /// exactly once.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, ChaosEvent)> {
        let start = self.next;
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= now {
            self.next += 1;
        }
        self.schedule[start..self.next].to_vec()
    }

    /// Total events scheduled for the window.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The full schedule (for inspection and tests).
    pub fn schedule(&self) -> &[(SimTime, ChaosEvent)] {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> (SimTime, SimTime) {
        let start = SimTime::from_date(2010, 2, 19);
        (start, start + SimDuration::days(90))
    }

    #[test]
    fn off_config_schedules_nothing() {
        let rng = Rng::new(7);
        let engine = ChaosEngine::generate(&ChaosConfig::off(), window(), &[1, 2, 3], 2, &rng);
        assert!(engine.is_empty());
    }

    #[test]
    fn paper_like_config_populates_every_class() {
        let rng = Rng::new(7);
        let engine = ChaosEngine::generate(
            &ChaosConfig::paper_like(),
            window(),
            &[1, 2, 3, 15],
            2,
            &rng,
        );
        assert!(engine.len() > 10, "90 hostile days should be eventful");
        let has = |f: &dyn Fn(&ChaosEvent) -> bool| engine.schedule().iter().any(|(_, e)| f(e));
        assert!(has(&|e| matches!(e, ChaosEvent::LinkLossBurst { .. })));
        assert!(has(&|e| matches!(e, ChaosEvent::JitterBurst { .. })));
        assert!(has(&|e| matches!(e, ChaosEvent::SwitchDeath { .. })));
        assert!(has(&|e| matches!(e, ChaosEvent::HostHang { .. })));
        assert!(has(&|e| matches!(e, ChaosEvent::SensorFreeze { .. })));
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let make = || {
            let rng = Rng::new(42);
            ChaosEngine::generate(&ChaosConfig::paper_like(), window(), &[1, 2], 2, &rng)
        };
        let a = make();
        let b = make();
        assert_eq!(a.schedule(), b.schedule());
        assert!(a.schedule().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn class_rates_are_independent_streams() {
        // Turning one class off must not move any other class's events.
        let rng = Rng::new(42);
        let full = ChaosEngine::generate(&ChaosConfig::paper_like(), window(), &[1, 2], 2, &rng);
        let mut cfg = ChaosConfig::paper_like();
        cfg.link_loss_every = SimDuration::ZERO;
        let partial = ChaosEngine::generate(&cfg, window(), &[1, 2], 2, &rng);
        let deaths = |e: &ChaosEngine| {
            e.schedule()
                .iter()
                .filter(|(_, ev)| matches!(ev, ChaosEvent::SwitchDeath { .. }))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(deaths(&full), deaths(&partial));
    }

    #[test]
    fn generate_does_not_disturb_the_caller_rng() {
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        let _ = ChaosEngine::generate(&ChaosConfig::paper_like(), window(), &[1], 1, &a);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pop_due_returns_each_event_once_in_order() {
        let rng = Rng::new(7);
        let mut engine =
            ChaosEngine::generate(&ChaosConfig::paper_like(), window(), &[1, 2, 3], 2, &rng);
        let total = engine.len();
        let (start, end) = window();
        let mut seen = 0;
        let mut t = start;
        while t <= end {
            seen += engine.pop_due(t).len();
            t += SimDuration::hours(6);
        }
        assert_eq!(seen, total);
        assert!(engine.pop_due(end).is_empty(), "nothing left");
    }

    #[test]
    fn events_fall_inside_the_window() {
        let rng = Rng::new(11);
        let engine =
            ChaosEngine::generate(&ChaosConfig::paper_like(), window(), &[1, 2, 3], 2, &rng);
        let (start, end) = window();
        for (at, _) in engine.schedule() {
            assert!(*at > start && *at < end);
        }
    }
}
