//! Common-cause failure detection.
//!
//! §3, third research question: *"If the extreme temperature and humidity
//! shifts indeed cause certain components to regularly fail, we should be
//! able to detect this as a common-cause failure on multiple hosts nearly
//! simultaneously."* This module is that detector: it clusters fault events
//! in time and flags clusters touching several distinct hosts, optionally
//! restricted to one component class.

use std::collections::BTreeSet;

use frostlab_hardware::component::ComponentKind;
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::types::FaultEvent;

/// A cluster of failures close enough in time to suggest a common cause.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureCluster {
    /// First event in the cluster.
    pub start: SimTime,
    /// Last event in the cluster.
    pub end: SimTime,
    /// The events, in time order.
    pub events: Vec<FaultEvent>,
    /// Distinct hosts involved.
    pub distinct_hosts: usize,
    /// The single component class involved, if the cluster is homogeneous.
    pub component: Option<ComponentKind>,
}

impl FailureCluster {
    /// A cluster is a common-cause *candidate* when it touches at least
    /// `min_hosts` distinct hosts.
    pub fn is_common_cause_candidate(&self, min_hosts: usize) -> bool {
        self.distinct_hosts >= min_hosts
    }
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Maximum gap between consecutive events within one cluster.
    pub window: SimDuration,
    /// Minimum distinct hosts for a common-cause candidate.
    pub min_hosts: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window: SimDuration::hours(6),
            min_hosts: 2,
        }
    }
}

/// Cluster `events` (any order accepted) by the gap rule: consecutive events
/// separated by more than `config.window` start a new cluster.
pub fn cluster_failures(events: &[FaultEvent], config: &DetectorConfig) -> Vec<FailureCluster> {
    let mut sorted: Vec<FaultEvent> = events.to_vec();
    sorted.sort_by_key(|e| e.at);
    let mut clusters = Vec::new();
    let mut current: Vec<FaultEvent> = Vec::new();
    for e in sorted {
        if let Some(last) = current.last() {
            if e.at - last.at > config.window {
                clusters.push(finish(std::mem::take(&mut current)));
            }
        }
        current.push(e);
    }
    if !current.is_empty() {
        clusters.push(finish(current));
    }
    clusters
}

fn finish(events: Vec<FaultEvent>) -> FailureCluster {
    let hosts: BTreeSet<u32> = events.iter().map(|e| e.host.0).collect();
    let kinds: BTreeSet<_> = events.iter().map(|e| e.kind.component()).collect();
    FailureCluster {
        start: events.first().expect("non-empty cluster").at,
        end: events.last().expect("non-empty cluster").at,
        distinct_hosts: hosts.len(),
        component: if kinds.len() == 1 {
            kinds.into_iter().next()
        } else {
            None
        },
        events,
    }
}

/// Convenience: all common-cause candidates among `events`.
pub fn common_cause_candidates(
    events: &[FaultEvent],
    config: &DetectorConfig,
) -> Vec<FailureCluster> {
    cluster_failures(events, config)
        .into_iter()
        .filter(|c| c.is_common_cause_candidate(config.min_hosts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FaultKind, HostId};

    fn ev(hours: i64, host: u32, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_secs(hours * 3600),
            host: HostId(host),
            kind,
        }
    }

    #[test]
    fn isolated_failures_do_not_cluster_together() {
        let events = vec![
            ev(0, 1, FaultKind::TransientSystemFailure),
            ev(100, 2, FaultKind::TransientSystemFailure),
            ev(500, 3, FaultKind::DiskFailure),
        ];
        let clusters = cluster_failures(&events, &DetectorConfig::default());
        assert_eq!(clusters.len(), 3);
        assert!(common_cause_candidates(&events, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn simultaneous_multi_host_failures_flagged() {
        // A cold snap takes out three sensor chips within two hours.
        let events = vec![
            ev(10, 1, FaultKind::SensorChipErratic),
            ev(11, 6, FaultKind::SensorChipErratic),
            ev(12, 14, FaultKind::SensorChipErratic),
            ev(300, 2, FaultKind::TransientSystemFailure),
        ];
        let cands = common_cause_candidates(&events, &DetectorConfig::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].distinct_hosts, 3);
        assert_eq!(
            cands[0].component,
            Some(frostlab_hardware::component::ComponentKind::Motherboard)
        );
    }

    #[test]
    fn same_host_repeat_failures_are_not_common_cause() {
        // Host #15 failing twice is not a common-cause event.
        let events = vec![
            ev(10, 15, FaultKind::TransientSystemFailure),
            ev(12, 15, FaultKind::TransientSystemFailure),
        ];
        let cands = common_cause_candidates(&events, &DetectorConfig::default());
        assert!(cands.is_empty());
        let clusters = cluster_failures(&events, &DetectorConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].distinct_hosts, 1);
    }

    #[test]
    fn mixed_components_yield_no_single_component() {
        let events = vec![
            ev(1, 1, FaultKind::DiskFailure),
            ev(2, 2, FaultKind::PsuFailure),
        ];
        let clusters = cluster_failures(&events, &DetectorConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].component, None);
        assert!(clusters[0].is_common_cause_candidate(2));
    }

    #[test]
    fn chain_clustering_uses_gaps_not_total_span() {
        // Events every 5 h for 30 h: one cluster despite span > window.
        let events: Vec<FaultEvent> = (0..7)
            .map(|i| ev(i * 5, i as u32, FaultKind::FanDegradation))
            .collect();
        let clusters = cluster_failures(&events, &DetectorConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].distinct_hosts, 7);
    }

    #[test]
    fn unsorted_input_accepted() {
        let events = vec![
            ev(50, 2, FaultKind::DiskFailure),
            ev(1, 1, FaultKind::DiskFailure),
            ev(2, 3, FaultKind::DiskFailure),
        ];
        let clusters = cluster_failures(&events, &DetectorConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].events.len(), 2);
        assert_eq!(clusters[0].start, SimTime::from_secs(3600));
    }

    #[test]
    fn empty_input() {
        assert!(cluster_failures(&[], &DetectorConfig::default()).is_empty());
    }
}
