//! Time-varying hazard-rate models.
//!
//! The experiment's whole point is that nobody knew how failure rates react
//! to −20 °C intake air and 90 % RH. We model the candidate physics from the
//! reliability literature so the stochastic campaigns can explore exactly
//! the hypotheses the authors discuss:
//!
//! * **Arrhenius** temperature acceleration — electronics age faster when
//!   hot, slower when cold: `AF = exp[(Ea/k)·(1/T_ref − 1/T)]`;
//! * **Peck** humidity acceleration — corrosion/electro-migration scale as
//!   `(RH/RH_ref)^n`;
//! * **Coffin–Manson thermal cycling** — what cold *does* break is solder
//!   joints, through temperature swings, not low absolute temperature.
//!   We accumulate fatigue damage proportional to `ΔT^m` per cycle, where
//!   cycles are detected as direction reversals of the component
//!   temperature;
//! * a **defective-series** multiplier for the vendor-B machines.
//!
//! The calibration target: with nine hosts outside for three months, the
//! expected number of transient system failures is ≈ 1 (the paper saw one
//! failing host among eighteen ⇒ 5.6 %, comparable to Intel's 4.46 %).

use frostlab_climate::math::clamp;

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617e-5;

/// Environmentally accelerated hazard model for one failure mode.
#[derive(Debug, Clone)]
pub struct EnvHazard {
    /// Base rate at reference conditions, failures per hour.
    pub base_rate_per_hour: f64,
    /// Arrhenius activation energy, eV (0 disables temperature scaling).
    pub activation_energy_ev: f64,
    /// Peck humidity exponent (0 disables RH scaling).
    pub rh_exponent: f64,
    /// Reference temperature, °C (typical conditioned machine room).
    pub ref_temp_c: f64,
    /// Reference relative humidity, %.
    pub ref_rh_pct: f64,
    /// Extra multiplier for known-defective hardware series.
    pub series_multiplier: f64,
}

impl EnvHazard {
    /// Transient-system-failure hazard calibrated to the study.
    ///
    /// At reference conditions (21 °C / 40 % RH) the base rate corresponds
    /// to roughly one hang per ~7 machine-years — old but functional
    /// workstations. The defective series runs ~8× worse. Note the rate is
    /// evaluated at the *CPU* temperature, which sits 15–30 K above the
    /// enclosure air; the calibration target is the paper's observed fleet:
    /// ≈1–2 hangs per three-month campaign, concentrated on the defective
    /// series.
    /// Hangs are only weakly thermally activated (lockups are mostly
    /// timing/firmware/marginal-component events, not electro-chemical
    /// wear-out), so Ea is small — which is exactly why the tent group's
    /// cool CPUs and the basement's warm CPUs end up with *comparable*
    /// rates, the paper's second research answer.
    pub fn transient_system_failure(defective_series: bool) -> Self {
        EnvHazard {
            base_rate_per_hour: 1.0 / 80_000.0,
            activation_energy_ev: 0.15,
            rh_exponent: 1.5,
            ref_temp_c: 21.0,
            ref_rh_pct: 40.0,
            series_multiplier: if defective_series { 8.0 } else { 1.0 },
        }
    }

    /// Disk media-fault hazard (pending sectors). Disks prefer to be warm
    /// but not hot; we keep a mild Arrhenius slope.
    pub fn disk_media_fault() -> Self {
        EnvHazard {
            base_rate_per_hour: 1.0 / 80_000.0,
            activation_energy_ev: 0.25,
            rh_exponent: 1.0,
            ref_temp_c: 30.0,
            ref_rh_pct: 40.0,
            series_multiplier: 1.0,
        }
    }

    /// PSU failure hazard: electrolytic capacitors follow Arrhenius closely.
    pub fn psu_failure() -> Self {
        EnvHazard {
            base_rate_per_hour: 1.0 / 120_000.0,
            activation_energy_ev: 0.4,
            rh_exponent: 1.2,
            ref_temp_c: 35.0,
            ref_rh_pct: 40.0,
            series_multiplier: 1.0,
        }
    }

    /// Instantaneous rate (per hour) at component temperature `temp_c` and
    /// ambient relative humidity `rh_pct`.
    pub fn rate_per_hour(&self, temp_c: f64, rh_pct: f64) -> f64 {
        let t_k = temp_c + 273.15;
        let t_ref_k = self.ref_temp_c + 273.15;
        let arrhenius = if self.activation_energy_ev > 0.0 {
            ((self.activation_energy_ev / K_B_EV) * (1.0 / t_ref_k - 1.0 / t_k)).exp()
        } else {
            1.0
        };
        let rh = clamp(rh_pct, 1.0, 100.0);
        let peck = if self.rh_exponent > 0.0 {
            (rh / self.ref_rh_pct).powf(self.rh_exponent)
        } else {
            1.0
        };
        self.base_rate_per_hour * arrhenius * peck * self.series_multiplier
    }

    /// Probability of at least one failure over `dt_hours` at constant
    /// conditions: `1 − exp(−λ·dt)`.
    pub fn failure_probability(&self, temp_c: f64, rh_pct: f64, dt_hours: f64) -> f64 {
        let lambda = self.rate_per_hour(temp_c, rh_pct);
        1.0 - (-lambda * dt_hours).exp()
    }
}

/// Coffin–Manson fatigue accumulator: thermal cycling damage.
///
/// Tracks direction reversals of a component temperature trace; each
/// completed swing of amplitude ΔT adds `(ΔT / ref_swing)^m` damage units.
/// `damage()` is the cumulative count in units of reference cycles; the
/// injector converts it into a failure probability.
#[derive(Debug, Clone)]
pub struct CyclingFatigue {
    /// Coffin–Manson exponent (solder joints: ~2).
    pub exponent: f64,
    /// Reference swing amplitude, K.
    pub ref_swing_k: f64,
    /// Swings smaller than this are ignored (measurement noise), K.
    pub min_swing_k: f64,
    last_extreme_c: Option<f64>,
    last_temp_c: Option<f64>,
    rising: Option<bool>,
    damage: f64,
    cycle_count: u64,
}

impl CyclingFatigue {
    /// Solder-joint-typical parameters.
    pub fn solder_joint() -> Self {
        CyclingFatigue {
            exponent: 2.0,
            ref_swing_k: 20.0,
            min_swing_k: 2.0,
            last_extreme_c: None,
            last_temp_c: None,
            rising: None,
            damage: 0.0,
            cycle_count: 0,
        }
    }

    /// Feed the next temperature sample.
    pub fn observe(&mut self, temp_c: f64) {
        match (self.last_temp_c, self.rising) {
            (None, _) => {
                self.last_extreme_c = Some(temp_c);
            }
            (Some(prev), None) => {
                if (temp_c - prev).abs() > 1e-9 {
                    self.rising = Some(temp_c > prev);
                }
            }
            (Some(prev), Some(rising)) => {
                let now_rising = temp_c > prev;
                if now_rising != rising && (temp_c - prev).abs() > 1e-9 {
                    // Direction reversal at `prev`: a half-cycle completed.
                    let swing = (prev - self.last_extreme_c.unwrap_or(prev)).abs();
                    if swing >= self.min_swing_k {
                        self.damage += 0.5 * (swing / self.ref_swing_k).powf(self.exponent);
                        self.cycle_count += 1;
                    }
                    self.last_extreme_c = Some(prev);
                    self.rising = Some(now_rising);
                }
            }
        }
        self.last_temp_c = Some(temp_c);
    }

    /// Accumulated damage in reference-cycle units.
    pub fn damage(&self) -> f64 {
        self.damage
    }

    /// Number of half-cycles counted.
    pub fn half_cycles(&self) -> u64 {
        self.cycle_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrhenius_direction() {
        let h = EnvHazard::transient_system_failure(false);
        let cold = h.rate_per_hour(-10.0, 40.0);
        let refr = h.rate_per_hour(21.0, 40.0);
        let hot = h.rate_per_hour(60.0, 40.0);
        assert!(
            cold < refr,
            "cold should slow Arrhenius aging: {cold} vs {refr}"
        );
        assert!(hot > refr, "heat should accelerate: {hot} vs {refr}");
    }

    #[test]
    fn humidity_acceleration() {
        let h = EnvHazard::transient_system_failure(false);
        let dry = h.rate_per_hour(21.0, 20.0);
        let humid = h.rate_per_hour(21.0, 90.0);
        assert!(
            humid > 2.0 * dry,
            "90 % RH should well exceed 20 %: {humid} vs {dry}"
        );
    }

    #[test]
    fn reference_conditions_give_base_rate() {
        let h = EnvHazard::transient_system_failure(false);
        let r = h.rate_per_hour(21.0, 40.0);
        assert!((r - h.base_rate_per_hour).abs() / h.base_rate_per_hour < 1e-9);
    }

    #[test]
    fn defective_series_multiplier() {
        let good = EnvHazard::transient_system_failure(false);
        let bad = EnvHazard::transient_system_failure(true);
        let ratio = bad.rate_per_hour(0.0, 80.0) / good.rate_per_hour(0.0, 80.0);
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn failure_probability_bounds_and_growth() {
        let h = EnvHazard::transient_system_failure(true);
        let p1 = h.failure_probability(0.0, 85.0, 24.0);
        let p2 = h.failure_probability(0.0, 85.0, 24.0 * 30.0);
        assert!(p1 > 0.0 && p1 < 1.0);
        assert!(p2 > p1 && p2 < 1.0);
    }

    #[test]
    fn calibration_expected_failures_in_band() {
        // The full fleet for ~12 weeks: tent hosts' CPUs run ≈ 15 °C at
        // 55 % ambient RH, basement CPUs ≈ 40 °C at 40 % RH. Expected
        // hangs should be of order 1–3 — not 0.01, not 20.
        let hours = 12.0 * 7.0 * 24.0;
        let mut expected = 0.0;
        // Nine tent hosts (two from the defective series).
        for defective in [false, false, false, false, false, false, false, true, true] {
            let h = EnvHazard::transient_system_failure(defective);
            expected += h.rate_per_hour(15.0, 55.0) * hours;
        }
        // Nine basement twins.
        for defective in [false, false, false, false, false, false, false, true, true] {
            let h = EnvHazard::transient_system_failure(defective);
            expected += h.rate_per_hour(40.0, 40.0) * hours;
        }
        assert!(
            (0.5..5.0).contains(&expected),
            "expected fleet failures {expected}"
        );
    }

    #[test]
    fn fatigue_counts_cycles() {
        let mut f = CyclingFatigue::solder_joint();
        // Two full 20 K cycles: 10 → 30 → 10 → 30 → 10.
        for &t in &[10.0, 30.0, 10.0, 30.0, 10.0] {
            // Walk there in small steps to simulate a real trace.
            f.observe(t);
        }
        assert!(f.half_cycles() >= 3, "half cycles {}", f.half_cycles());
        // Each 20 K half-swing adds 0.5 damage at exponent 2, ref 20.
        assert!(f.damage() > 1.0, "damage {}", f.damage());
    }

    #[test]
    fn fatigue_ignores_noise() {
        let mut f = CyclingFatigue::solder_joint();
        let mut t = 20.0;
        for i in 0..100 {
            t += if i % 2 == 0 { 0.5 } else { -0.5 };
            f.observe(t);
        }
        assert_eq!(f.damage(), 0.0, "sub-threshold wiggles must not damage");
    }

    #[test]
    fn bigger_swings_do_superlinear_damage() {
        let run = |amp: f64| {
            let mut f = CyclingFatigue::solder_joint();
            for i in 0..20 {
                f.observe(if i % 2 == 0 { 0.0 } else { amp });
            }
            f.damage()
        };
        let d10 = run(10.0);
        let d40 = run(40.0);
        assert!(d40 > 10.0 * d10, "Coffin–Manson exponent 2: {d40} vs {d10}");
    }

    #[test]
    fn monotone_rate_in_temperature() {
        let h = EnvHazard::psu_failure();
        let mut prev = 0.0;
        for t in (-30..=80).step_by(5) {
            let r = h.rate_per_hour(f64::from(t), 50.0);
            assert!(r > prev, "rate must grow with temperature at {t}");
            prev = r;
        }
    }
}
