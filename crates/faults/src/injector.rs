//! Stochastic fault injection.
//!
//! Each host owns a [`HostFaults`] sampler: a bundle of hazard models plus a
//! private, label-derived RNG stream, polled once per simulation step with
//! the current environment. The per-host streams mean the draws for host #3
//! never change when host #7 is added to the fleet — scenario edits don't
//! scramble previously observed histories.

use frostlab_simkern::rng::Rng;

use crate::hazard::{CyclingFatigue, EnvHazard};
use crate::types::{FaultKind, HostId};

/// Cold-exposure fault model for the motherboard sensor chip (§4.2.1).
///
/// The chip misbehaved only on the host that saw the deepest cold. Model:
/// while the CPU reads below `threshold_c`, the chip faults at a constant
/// rate — i.e. exposure time in deep cold is what matters.
#[derive(Debug, Clone)]
pub struct SensorColdFault {
    /// CPU temperature below which the chip is at risk, °C.
    pub threshold_c: f64,
    /// Fault rate while below threshold, per hour.
    pub rate_per_hour: f64,
}

impl Default for SensorColdFault {
    fn default() -> Self {
        SensorColdFault {
            threshold_c: -2.0,
            rate_per_hour: 1.0 / 60.0, // ~1 fault per 60 h of deep-cold CPU time
        }
    }
}

/// Conversion from accumulated Coffin–Manson damage to hang probability:
/// each reference-cycle (20 K) unit of fatigue adds this failure
/// probability. Solder-joint N_f at ΔT = 20 K is of order 10⁵–10⁶ cycles,
/// so the per-cycle probability must be ~10⁻⁶ — the workload's 10-minute
/// CPU micro-cycles (≈50 damage units/day) then cost ≈0.5 % per host over
/// a three-month campaign, while sustained deep thermal cycling still
/// registers in long ablations.
const FATIGUE_PROB_PER_UNIT: f64 = 2.0e-6;

/// Per-host fault sampler.
#[derive(Debug, Clone)]
pub struct HostFaults {
    /// Which host this sampler belongs to.
    pub host: HostId,
    rng: Rng,
    transient: EnvHazard,
    disk: EnvHazard,
    psu: EnvHazard,
    sensor_cold: SensorColdFault,
    fatigue: CyclingFatigue,
    fatigue_billed: f64,
    /// Memory bit-flip rate per page operation.
    pub mem_flip_rate_per_page_op: f64,
}

/// Summary of one poll step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// Faults other than memory flips, in occurrence order.
    pub faults: Vec<FaultKind>,
    /// Number of memory bit flips this step.
    pub memory_flips: u32,
}

impl HostFaults {
    /// Poll all stochastic fault processes over `dt_hours`.
    ///
    /// * `cpu_temp_c` — physical CPU temperature (drives Arrhenius, the
    ///   sensor cold fault and fatigue observation);
    /// * `ambient_rh_pct` — RH around the machine (drives Peck);
    /// * `page_ops` — memory page operations performed this step.
    pub fn poll(
        &mut self,
        dt_hours: f64,
        cpu_temp_c: f64,
        ambient_rh_pct: f64,
        page_ops: u64,
    ) -> PollOutcome {
        let mut out = PollOutcome::default();

        // Thermal-cycling fatigue.
        self.fatigue.observe(cpu_temp_c);
        let unbilled = self.fatigue.damage() - self.fatigue_billed;
        let fatigue_p = unbilled * FATIGUE_PROB_PER_UNIT;
        self.fatigue_billed = self.fatigue.damage();

        // Transient system failure: environmental + fatigue.
        let p_env = self
            .transient
            .failure_probability(cpu_temp_c, ambient_rh_pct, dt_hours);
        if self.rng.chance(p_env + fatigue_p) {
            out.faults.push(FaultKind::TransientSystemFailure);
        }

        // Sensor chip cold fault.
        if cpu_temp_c < self.sensor_cold.threshold_c
            && self
                .rng
                .chance(1.0 - (-self.sensor_cold.rate_per_hour * dt_hours).exp())
        {
            out.faults.push(FaultKind::SensorChipErratic);
        }

        // Disk media fault.
        if self.rng.chance(
            self.disk
                .failure_probability(cpu_temp_c, ambient_rh_pct, dt_hours),
        ) {
            out.faults.push(FaultKind::DiskPendingSector);
        }

        // PSU failure.
        if self.rng.chance(
            self.psu
                .failure_probability(cpu_temp_c, ambient_rh_pct, dt_hours),
        ) {
            out.faults.push(FaultKind::PsuFailure);
        }

        // Memory bit flips: Poisson in exposure.
        if page_ops > 0 && self.mem_flip_rate_per_page_op > 0.0 {
            let mean = page_ops as f64 * self.mem_flip_rate_per_page_op;
            out.memory_flips = self.rng.poisson(mean) as u32;
        }

        out
    }

    /// Accumulated thermal-cycling damage (diagnostics).
    pub fn fatigue_damage(&self) -> f64 {
        self.fatigue.damage()
    }
}

/// Factory for per-host samplers, all derived from one experiment seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    root: Rng,
    /// Memory flip rate applied to non-ECC hosts (paper estimate:
    /// ~1 / 570 M page ops).
    pub mem_flip_rate_per_page_op: f64,
}

impl FaultInjector {
    /// Create an injector; `seed_rng` is usually `Rng::new(seed)`.
    pub fn new(seed_rng: &Rng) -> Self {
        FaultInjector {
            root: seed_rng.derive("faults"),
            mem_flip_rate_per_page_op: frostlab_hardware::memory::PAPER_FLIPS_PER_PAGE_OP,
        }
    }

    /// Build the sampler for one host.
    pub fn host(&self, host: HostId, defective_series: bool) -> HostFaults {
        let label = format!("host/{}", host.0);
        HostFaults {
            host,
            rng: self.root.derive(&label),
            transient: EnvHazard::transient_system_failure(defective_series),
            disk: EnvHazard::disk_media_fault(),
            psu: EnvHazard::psu_failure(),
            sensor_cold: SensorColdFault::default(),
            fatigue: CyclingFatigue::solder_joint(),
            fatigue_billed: 0.0,
            mem_flip_rate_per_page_op: self.mem_flip_rate_per_page_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(seed: u64) -> FaultInjector {
        FaultInjector::new(&Rng::new(seed))
    }

    #[test]
    fn deterministic_per_host_streams() {
        let inj = injector(5);
        let mut a1 = inj.host(HostId(3), false);
        let mut a2 = inj.host(HostId(3), false);
        for _ in 0..200 {
            assert_eq!(
                a1.poll(1.0, 5.0, 70.0, 1_000_000),
                a2.poll(1.0, 5.0, 70.0, 1_000_000)
            );
        }
    }

    #[test]
    fn hosts_are_independent_streams() {
        let inj = injector(6);
        let mut h3 = inj.host(HostId(3), false);
        let mut h7 = inj.host(HostId(7), false);
        let mut diff = false;
        for _ in 0..500 {
            // Large memory exposure makes the Poisson draws informative.
            let a = h3.poll(2.0, 30.0, 80.0, 2_000_000_000);
            let b = h7.poll(2.0, 30.0, 80.0, 2_000_000_000);
            if a != b {
                diff = true;
            }
        }
        assert!(
            diff,
            "independent hosts should not produce identical fault trains"
        );
    }

    #[test]
    fn memory_flip_rate_matches_paper_estimate() {
        let inj = injector(7);
        let mut h = inj.host(HostId(1), false);
        // 10^10 page ops in chunks → expect ≈ 17.5 flips at 1/570e6.
        let mut flips = 0u64;
        for _ in 0..10_000 {
            let o = h.poll(0.2, 21.0, 40.0, 1_000_000);
            flips += u64::from(o.memory_flips);
        }
        // Total exposure 10^10 ops; mean 17.5, sd ~4.2.
        assert!((4..=40).contains(&flips), "flips {flips}");
    }

    #[test]
    fn deep_cold_exposure_triggers_sensor_faults() {
        let inj = injector(8);
        let mut h = inj.host(HostId(1), false);
        let mut sensor_faults = 0;
        // 600 hours of CPU below −4 °C: expect ~10 cold faults at 1/60 h.
        for _ in 0..600 {
            let o = h.poll(1.0, -4.5, 85.0, 0);
            sensor_faults += o
                .faults
                .iter()
                .filter(|f| **f == FaultKind::SensorChipErratic)
                .count();
        }
        assert!(sensor_faults >= 2, "got {sensor_faults}");
        // And none when warm.
        let mut h2 = inj.host(HostId(2), false);
        let mut warm_faults = 0;
        for _ in 0..600 {
            let o = h2.poll(1.0, 10.0, 85.0, 0);
            warm_faults += o
                .faults
                .iter()
                .filter(|f| **f == FaultKind::SensorChipErratic)
                .count();
        }
        assert_eq!(warm_faults, 0);
    }

    #[test]
    fn defective_series_hangs_more() {
        // Count hangs across many host-campaigns for both series.
        let inj = injector(9);
        let count_hangs = |defective: bool, id_base: u32| {
            let mut hangs = 0;
            for i in 0..60 {
                let mut h = inj.host(HostId(id_base + i), defective);
                for _ in 0..(12 * 7 * 24 / 4) {
                    // 12 weeks in 4-hour steps
                    let o = h.poll(4.0, 2.0, 70.0, 0);
                    hangs += o
                        .faults
                        .iter()
                        .filter(|f| **f == FaultKind::TransientSystemFailure)
                        .count();
                }
            }
            hangs
        };
        let good = count_hangs(false, 1000);
        let bad = count_hangs(true, 2000);
        assert!(
            bad > 3 * good.max(1),
            "defective series should hang much more: {bad} vs {good}"
        );
    }

    #[test]
    fn fatigue_contributes_after_big_swings() {
        let inj = injector(10);
        let mut h = inj.host(HostId(1), false);
        for i in 0..2_000 {
            let t = if i % 2 == 0 { -10.0 } else { 40.0 };
            h.poll(1.0, t, 50.0, 0);
        }
        assert!(h.fatigue_damage() > 100.0, "damage {}", h.fatigue_damage());
    }

    #[test]
    fn zero_exposure_zero_flips() {
        let inj = injector(11);
        let mut h = inj.host(HostId(1), false);
        for _ in 0..100 {
            assert_eq!(h.poll(1.0, 21.0, 40.0, 0).memory_flips, 0);
        }
    }
}
