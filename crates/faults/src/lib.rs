//! # frostlab-faults
//!
//! Reliability substrate: hazard models, fault injection, repair policy and
//! common-cause analysis.
//!
//! The paper's research questions (§3) are reliability questions:
//!
//! 1. is unconditioned outside air feasible at all?
//! 2. does it raise the equipment failure rate (compare: Intel's economizer
//!    PoC saw 4.46 %, this experiment 1/18 ≈ 5.6 %)?
//! 3. do specific components fail first — detectable as *common-cause*
//!    failures hitting multiple hosts nearly simultaneously?
//! 4. does the cold help the known-bad vendor-B series?
//!
//! The crate provides:
//!
//! * [`hazard`] — time-varying failure-rate models: a base exponential rate
//!   accelerated by temperature (Arrhenius), humidity (Peck) and thermal
//!   cycling (Coffin–Manson fatigue accumulation);
//! * [`injector`] — turns hazard rates into concrete fault events on a
//!   deterministic RNG stream, plus a scripted mode replaying the paper's
//!   documented faults;
//! * [`repair`] — the operators' observed repair policy (inspect on the next
//!   visit, reset once, take indoors after a repeat failure, replace);
//! * [`common_cause`] — clustering detector for near-simultaneous failures
//!   across hosts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod common_cause;
pub mod hazard;
pub mod injector;
pub mod repair;
pub mod types;

pub use hazard::EnvHazard;
pub use injector::FaultInjector;
pub use types::{FaultEvent, FaultKind};
