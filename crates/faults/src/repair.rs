//! The operators' repair policy, as practiced in the paper.
//!
//! §4.2.1 documents the policy implicitly through host #15's saga:
//!
//! * a failure on Saturday 04:40 was **inspected and reset the following
//!   Monday** — visits happen on the next working day, not immediately;
//! * the first failure was "marked as transient" and the host resumed in
//!   the tent;
//! * after the **second** failure the host was reset in place, failed to
//!   resume, was taken indoors, failed a Memtest86+ run, and was left to
//!   run indoors — and a replacement machine (#19) took its slot.
//!
//! [`RepairPolicy`] encodes that escalation ladder, and [`HostRecord`]
//! tracks one host's trip through it.

use frostlab_simkern::time::{SimDuration, SimTime};

use crate::types::HostId;

/// Where a machine currently lives, from the repair workflow's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// In its assigned slot, running the workload.
    InService,
    /// Failed, waiting for the next staff visit.
    AwaitingInspection,
    /// Taken indoors for diagnosis after repeat failures.
    TakenIndoors,
    /// Permanently replaced by a spare machine.
    Replaced,
}

/// The escalation policy parameters.
#[derive(Debug, Clone)]
pub struct RepairPolicy {
    /// How many in-place resets are tried before escalating (paper: 1 —
    /// the second failure escalates).
    pub max_inplace_resets: u32,
    /// Probability that a reset in outside conditions succeeds on an
    /// escalated (repeat-failure) host. Host #15 "could not resume normal
    /// operations" — genuinely sick hardware often can't.
    pub escalated_reset_success: f64,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_inplace_resets: 1,
            escalated_reset_success: 0.25,
        }
    }
}

/// Action the staff takes at an inspection visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Reset in place; host resumes in its slot.
    ResetInPlace,
    /// Take the host indoors and run diagnostics (Memtest86+).
    TakeIndoors,
}

/// One host's repair history.
#[derive(Debug, Clone)]
pub struct HostRecord {
    /// Which host.
    pub host: HostId,
    disposition: Disposition,
    failures: Vec<SimTime>,
    resets: u32,
}

impl HostRecord {
    /// Fresh record for an in-service host.
    pub fn new(host: HostId) -> Self {
        HostRecord {
            host,
            disposition: Disposition::InService,
            failures: Vec::new(),
            resets: 0,
        }
    }

    /// Current disposition.
    pub fn disposition(&self) -> Disposition {
        self.disposition
    }

    /// All failure timestamps.
    pub fn failures(&self) -> &[SimTime] {
        &self.failures
    }

    /// Record a system failure at `at`. The host waits for inspection.
    pub fn record_failure(&mut self, at: SimTime) {
        self.failures.push(at);
        if self.disposition == Disposition::InService {
            self.disposition = Disposition::AwaitingInspection;
        }
    }

    /// When will staff next visit after a failure at `at`? The paper's
    /// cadence: next working day (Mon–Fri), mid-morning.
    pub fn next_inspection(at: SimTime) -> SimTime {
        let mut date = at.date();
        loop {
            date = date.succ();
            // weekday_index: 0 = Mon … 6 = Sun.
            if date.weekday_index() < 5 {
                return date.to_sim_time() + SimDuration::hours(10);
            }
        }
    }

    /// Decide the action at the inspection visit, per policy.
    pub fn inspect(&mut self, policy: &RepairPolicy) -> RepairAction {
        assert_eq!(
            self.disposition,
            Disposition::AwaitingInspection,
            "inspecting a host that did not fail"
        );
        if self.resets < policy.max_inplace_resets {
            self.resets += 1;
            self.disposition = Disposition::InService;
            RepairAction::ResetInPlace
        } else {
            self.disposition = Disposition::TakenIndoors;
            RepairAction::TakeIndoors
        }
    }

    /// Mark the host as permanently replaced (a spare takes its slot).
    pub fn replace(&mut self) {
        self.disposition = Disposition::Replaced;
    }

    /// Number of in-place resets performed.
    pub fn reset_count(&self) -> u32 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimTime;

    #[test]
    fn host15_saga() {
        // First failure: Sunday Mar 7 04:40 (the paper says Saturday; the
        // 2010 calendar says Sunday — see EXPERIMENTS.md).
        let policy = RepairPolicy::default();
        let mut rec = HostRecord::new(HostId(15));

        let f1 = SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0);
        rec.record_failure(f1);
        assert_eq!(rec.disposition(), Disposition::AwaitingInspection);

        // Inspection lands on Monday Mar 8.
        let visit = HostRecord::next_inspection(f1);
        assert_eq!(
            visit.date(),
            frostlab_simkern::time::Date::new(2010, 3, 8).unwrap()
        );
        assert_eq!(visit.date().weekday(), "Mon");

        // First visit: reset in place, marked transient.
        assert_eq!(rec.inspect(&policy), RepairAction::ResetInPlace);
        assert_eq!(rec.disposition(), Disposition::InService);

        // Second failure: Wednesday Mar 17 12:20.
        let f2 = SimTime::from_ymd_hms(2010, 3, 17, 12, 20, 0);
        rec.record_failure(f2);
        assert_eq!(rec.inspect(&policy), RepairAction::TakeIndoors);
        assert_eq!(rec.disposition(), Disposition::TakenIndoors);

        rec.replace();
        assert_eq!(rec.disposition(), Disposition::Replaced);
        assert_eq!(rec.failures().len(), 2);
        assert_eq!(rec.reset_count(), 1);
    }

    #[test]
    fn weekday_failure_inspected_next_day() {
        // Fail on a Tuesday → inspected Wednesday.
        let f = SimTime::from_ymd_hms(2010, 3, 2, 23, 0, 0);
        let visit = HostRecord::next_inspection(f);
        assert_eq!(visit.date().weekday(), "Wed");
    }

    #[test]
    fn friday_failure_waits_for_monday() {
        let f = SimTime::from_ymd_hms(2010, 3, 5, 15, 0, 0); // Friday
        let visit = HostRecord::next_inspection(f);
        assert_eq!(visit.date().weekday(), "Mon");
        assert!(visit - f > SimDuration::days(2));
    }

    #[test]
    #[should_panic(expected = "did not fail")]
    fn inspecting_healthy_host_is_a_bug() {
        let mut rec = HostRecord::new(HostId(1));
        rec.inspect(&RepairPolicy::default());
    }

    #[test]
    fn custom_policy_allows_more_resets() {
        let policy = RepairPolicy {
            max_inplace_resets: 3,
            ..Default::default()
        };
        let mut rec = HostRecord::new(HostId(2));
        for i in 0..3 {
            rec.record_failure(SimTime::from_secs(i * 86_400));
            assert_eq!(rec.inspect(&policy), RepairAction::ResetInPlace);
        }
        rec.record_failure(SimTime::from_secs(10 * 86_400));
        assert_eq!(rec.inspect(&policy), RepairAction::TakeIndoors);
    }
}
