//! Fault vocabulary shared across the platform.

use frostlab_hardware::component::ComponentKind;
use frostlab_simkern::time::SimTime;

/// Identifier of a host in the fleet (the paper numbers them 1–19; the
/// replacement machine is #19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{:02}", self.0)
    }
}

/// The kinds of faults the study observed or looked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Whole-system hang requiring a reset (§4.2.1, host #15).
    TransientSystemFailure,
    /// Sensor chip goes erratic after deep-cold exposure (§4.2.1).
    SensorChipErratic,
    /// A single memory bit flip (§4.2.2, the wrong-hash cause).
    MemoryBitFlip,
    /// A drive develops an unreadable sector.
    DiskPendingSector,
    /// A drive fails outright.
    DiskFailure,
    /// A fan stalls or wears out.
    FanDegradation,
    /// A PSU dies.
    PsuFailure,
    /// A network switch dies (the whiny units' inherent defect).
    SwitchFailure,
}

impl FaultKind {
    /// The component class this fault belongs to (for the "which component
    /// fails first" analysis).
    pub fn component(self) -> ComponentKind {
        match self {
            FaultKind::TransientSystemFailure => ComponentKind::Motherboard,
            FaultKind::SensorChipErratic => ComponentKind::Motherboard,
            FaultKind::MemoryBitFlip => ComponentKind::Memory,
            FaultKind::DiskPendingSector | FaultKind::DiskFailure => ComponentKind::Disk,
            FaultKind::FanDegradation => ComponentKind::Fan,
            FaultKind::PsuFailure => ComponentKind::Psu,
            FaultKind::SwitchFailure => ComponentKind::Switch,
        }
    }

    /// Does this fault stop the host's workload?
    pub fn is_outage(self) -> bool {
        matches!(
            self,
            FaultKind::TransientSystemFailure | FaultKind::PsuFailure
        )
    }
}

/// One concrete fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which host (switches use the pseudo-ids 101/102/103).
    pub host: HostId,
    /// What happened.
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_mapping() {
        assert_eq!(FaultKind::MemoryBitFlip.component(), ComponentKind::Memory);
        assert_eq!(FaultKind::SwitchFailure.component(), ComponentKind::Switch);
        assert_eq!(
            FaultKind::TransientSystemFailure.component(),
            ComponentKind::Motherboard
        );
    }

    #[test]
    fn outage_classification() {
        assert!(FaultKind::TransientSystemFailure.is_outage());
        assert!(FaultKind::PsuFailure.is_outage());
        assert!(!FaultKind::MemoryBitFlip.is_outage());
        assert!(!FaultKind::SensorChipErratic.is_outage());
    }

    #[test]
    fn host_display() {
        assert_eq!(HostId(15).to_string(), "#15");
        assert_eq!(HostId(3).to_string(), "#03");
    }
}
