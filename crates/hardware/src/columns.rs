//! Struct-of-arrays host hardware for fleet-scale campaigns.
//!
//! [`HostBank`] flattens the campaign-relevant state of [`Server`](crate::Server) — power
//! state, the linear power model, PSU, motherboard sensor chip, memory
//! exposure counters, and per-drive S.M.A.R.T. state — into parallel flat
//! arrays indexed by a dense host index. Each method is a column kernel
//! with **exactly** the semantics of the corresponding object-model method
//! (same guards, same float-operation order), so a campaign stepped
//! through the bank produces byte-identical results.
//!
//! Deliberately *not* carried over: the in-memory disk block stores. A
//! campaign only ticks S.M.A.R.T., injects pending sectors, and runs long
//! self-tests — it never reads or writes blocks — and at 10,000 hosts the
//! block arrays alone would cost gigabytes. The block-level model stays in
//! [`crate::disk::Disk`] for component tests and the prototype rig.
//!
//! Column ownership: the bank owns everything whose per-tick update is a
//! pure function of (own row, scalar inputs). State machines with
//! cross-host coupling (job runners, schedules, fault samplers, repair
//! records, monitored file stores) stay as per-host objects in the fleet
//! layer.

use crate::memory::FlipOutcome;
use crate::sensors::{SensorState, ERRATIC_READING_C};
use crate::server::{PowerState, ServerSpec};

/// Dense-index struct-of-arrays state for every host's hardware.
#[derive(Debug, Clone, Default)]
pub struct HostBank {
    // --- server run state ---
    power_state: Vec<PowerState>,
    uptime_hours: Vec<f64>,
    reset_count: Vec<u32>,
    // --- linear power model constants ---
    dc_idle_w: Vec<f64>,
    dc_load_w: Vec<f64>,
    cpu_idle_w: Vec<f64>,
    cpu_load_w: Vec<f64>,
    // --- PSU ---
    psu_rated_w: Vec<f64>,
    psu_efficiency: Vec<f64>,
    psu_failed: Vec<bool>,
    // --- motherboard sensor chip ---
    sensor_state: Vec<SensorState>,
    sensor_min_seen_c: Vec<f64>,
    sensor_erratic_count: Vec<u64>,
    // --- memory exposure counters ---
    ecc: Vec<bool>,
    page_ops: Vec<u64>,
    silent_corruptions: Vec<u64>,
    corrected_errors: Vec<u64>,
    // --- per-drive S.M.A.R.T. columns, flat in `for_each_disk_mut` order ---
    disk_range: Vec<(u32, u32)>,
    disk_power_on_hours: Vec<f64>,
    disk_temperature_c: Vec<f64>,
    disk_min_temperature_c: Vec<f64>,
    disk_max_temperature_c: Vec<f64>,
    disk_pending_sectors: Vec<u32>,
    disk_sector0_bad: Vec<bool>,
    disk_failed: Vec<bool>,
}

impl HostBank {
    /// An empty bank.
    pub fn new() -> Self {
        HostBank::default()
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.power_state.len()
    }

    /// Whether the bank holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.power_state.is_empty()
    }

    /// Add one host assembled from `spec`, returning its dense index.
    /// Mirrors `Server::new`: running, zero uptime, pristine sensors and
    /// counters, drives at 20 °C with no history.
    pub fn push_host(&mut self, spec: &ServerSpec) -> usize {
        let idx = self.power_state.len();
        self.power_state.push(PowerState::Running);
        self.uptime_hours.push(0.0);
        self.reset_count.push(0);
        self.dc_idle_w.push(spec.idle_power_w);
        self.dc_load_w.push(spec.load_power_w);
        self.cpu_idle_w.push(spec.cpu_idle_w);
        self.cpu_load_w.push(spec.cpu_load_w);
        self.psu_rated_w.push(spec.psu_rated_w);
        self.psu_efficiency.push(spec.psu_efficiency);
        self.psu_failed.push(false);
        self.sensor_state.push(SensorState::Ok);
        self.sensor_min_seen_c.push(f64::INFINITY);
        self.sensor_erratic_count.push(0);
        self.ecc.push(spec.ecc);
        self.page_ops.push(0);
        self.silent_corruptions.push(0);
        self.corrected_errors.push(0);
        // Drive layout per vendor, in `Storage::for_each_disk_mut` order:
        // mirror members first, then parity stripe members.
        let drives = match spec.vendor {
            crate::server::Vendor::A => 2,
            crate::server::Vendor::B => 1,
            crate::server::Vendor::C => 5,
        };
        let start = self.disk_power_on_hours.len() as u32;
        self.disk_range.push((start, drives));
        for _ in 0..drives {
            self.disk_power_on_hours.push(0.0);
            self.disk_temperature_c.push(20.0);
            self.disk_min_temperature_c.push(20.0);
            self.disk_max_temperature_c.push(20.0);
            self.disk_pending_sectors.push(0);
            self.disk_sector0_bad.push(false);
            self.disk_failed.push(false);
        }
        idx
    }

    // --- run state (Server) ---

    /// Current power state of host `i`.
    pub fn power_state(&self, i: usize) -> PowerState {
        self.power_state[i]
    }

    /// True if host `i` is executing its workload.
    pub fn is_running(&self, i: usize) -> bool {
        self.power_state[i] == PowerState::Running
    }

    /// Hang host `i` (transient system failure); only a running machine
    /// can hang.
    pub fn hang(&mut self, i: usize) {
        if self.power_state[i] == PowerState::Running {
            self.power_state[i] = PowerState::Hung;
        }
    }

    /// Reset host `i`: resume running, warm-reboot the sensor chip,
    /// restart the uptime clock (semantics of `Server::reset`).
    pub fn reset(&mut self, i: usize) {
        self.power_state[i] = PowerState::Running;
        self.sensor_warm_reboot(i);
        self.uptime_hours[i] = 0.0;
        self.reset_count[i] += 1;
    }

    /// Power host `i` down (taken indoors / decommissioned).
    pub fn power_off(&mut self, i: usize) {
        self.power_state[i] = PowerState::Off;
    }

    /// Number of resets host `i` has needed.
    pub fn reset_count(&self, i: usize) -> u32 {
        self.reset_count[i]
    }

    /// Continuous uptime of host `i` since its last reset, hours.
    pub fn uptime_hours(&self, i: usize) -> f64 {
        self.uptime_hours[i]
    }

    /// Advance operating time for host `i` and feed S.M.A.R.T. with the
    /// drive temperature (semantics of `Server::tick`: off machines are
    /// frozen, hung machines age their drives but not their uptime).
    pub fn tick(&mut self, i: usize, dt_hours: f64, hdd_temp_c: f64) {
        if self.power_state[i] == PowerState::Off {
            return;
        }
        if self.power_state[i] == PowerState::Running {
            self.uptime_hours[i] += dt_hours;
        }
        let (start, len) = self.disk_range[i];
        for d in start as usize..(start + len) as usize {
            self.disk_power_on_hours[d] += dt_hours;
            self.disk_temperature_c[d] = hdd_temp_c;
            self.disk_min_temperature_c[d] = self.disk_min_temperature_c[d].min(hdd_temp_c);
            self.disk_max_temperature_c[d] = self.disk_max_temperature_c[d].max(hdd_temp_c);
        }
    }

    // --- power model (ServerSpec + Psu) ---

    /// DC power draw of host `i` at `utilization` (0 = idle, 1 = full).
    pub fn dc_power_w(&self, i: usize, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.dc_idle_w[i] + u * (self.dc_load_w[i] - self.dc_idle_w[i])
    }

    /// CPU package power of host `i` at `utilization`.
    pub fn cpu_power_w(&self, i: usize, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.cpu_idle_w[i] + u * (self.cpu_load_w[i] - self.cpu_idle_w[i])
    }

    /// Wall power of host `i` at `utilization` (0 when off; hung idles;
    /// a failed PSU draws nothing) — semantics of `Server::wall_power_w`
    /// over `Psu::wall_power_w`.
    pub fn wall_power_w(&self, i: usize, utilization: f64) -> f64 {
        let dc = match self.power_state[i] {
            PowerState::Off => return 0.0,
            PowerState::Hung => self.dc_idle_w[i],
            PowerState::Running => self.dc_power_w(i, utilization),
        };
        if self.psu_failed[i] {
            0.0
        } else {
            dc.min(self.psu_rated_w[i]) / self.psu_efficiency[i]
        }
    }

    /// Fail the PSU of host `i`.
    pub fn psu_fail(&mut self, i: usize) {
        self.psu_failed[i] = true;
    }

    // --- sensor chip ---

    /// Read the CPU temperature through host `i`'s sensor chip: the true
    /// value while OK (tracking the campaign minimum), the erratic marker
    /// while faulted, nothing once undetected.
    pub fn sensor_read_cpu_temp(&mut self, i: usize, actual_c: f64) -> Option<f64> {
        match self.sensor_state[i] {
            SensorState::Ok => {
                self.sensor_min_seen_c[i] = self.sensor_min_seen_c[i].min(actual_c);
                Some(actual_c)
            }
            SensorState::Erratic => {
                self.sensor_erratic_count[i] += 1;
                Some(ERRATIC_READING_C)
            }
            SensorState::Undetected => None,
        }
    }

    /// Cold-fault host `i`'s sensor chip (only an OK chip goes erratic).
    pub fn sensor_inject_cold_fault(&mut self, i: usize) {
        if self.sensor_state[i] == SensorState::Ok {
            self.sensor_state[i] = SensorState::Erratic;
        }
    }

    /// Driver re-detect attempt: an erratic chip drops off the bus.
    pub fn sensor_attempt_redetect(&mut self, i: usize) {
        if self.sensor_state[i] == SensorState::Erratic {
            self.sensor_state[i] = SensorState::Undetected;
        }
    }

    /// Warm reboot recovers the chip unconditionally.
    pub fn sensor_warm_reboot(&mut self, i: usize) {
        self.sensor_state[i] = SensorState::Ok;
    }

    /// Minimum CPU temperature host `i`'s chip has truthfully reported.
    pub fn sensor_min_seen_c(&self, i: usize) -> f64 {
        self.sensor_min_seen_c[i]
    }

    /// Number of erratic (−111 °C) readings host `i` produced.
    pub fn sensor_erratic_count(&self, i: usize) -> u64 {
        self.sensor_erratic_count[i]
    }

    // --- memory exposure ---

    /// Record `n` page operations against host `i`.
    pub fn memory_record_page_ops(&mut self, i: usize, n: u64) {
        self.page_ops[i] = self.page_ops[i].saturating_add(n);
    }

    /// Apply one bit flip to host `i`: ECC corrects it, otherwise it is a
    /// silent corruption (semantics of `MemoryBank::apply_bit_flip`).
    pub fn memory_apply_bit_flip(&mut self, i: usize) -> FlipOutcome {
        if self.ecc[i] {
            self.corrected_errors[i] += 1;
            FlipOutcome::CorrectedByEcc
        } else {
            self.silent_corruptions[i] += 1;
            FlipOutcome::SilentCorruption
        }
    }

    /// Lifetime page operations of host `i`.
    pub fn memory_page_ops(&self, i: usize) -> u64 {
        self.page_ops[i]
    }

    /// Silent corruptions accumulated by host `i`.
    pub fn memory_silent_corruptions(&self, i: usize) -> u64 {
        self.silent_corruptions[i]
    }

    /// ECC-corrected errors accumulated by host `i`.
    pub fn memory_corrected_errors(&self, i: usize) -> u64 {
        self.corrected_errors[i]
    }

    // --- disks ---

    /// Number of physical drives in host `i`.
    pub fn drive_count(&self, i: usize) -> usize {
        self.disk_range[i].1 as usize
    }

    /// Inject a pending sector at block 0 of every drive in host `i`
    /// (idempotent per drive), matching the campaign's
    /// `for_each_disk_mut(|d| d.inject_pending_sector(0))`.
    pub fn disks_inject_pending_sector0(&mut self, i: usize) {
        let (start, len) = self.disk_range[i];
        for d in start as usize..(start + len) as usize {
            if !self.disk_sector0_bad[d] {
                self.disk_sector0_bad[d] = true;
                self.disk_pending_sectors[d] += 1;
            }
        }
    }

    /// All of host `i`'s drives pass their long self-tests? A drive fails
    /// when its media failed or any block is pending.
    pub fn disks_all_long_tests_pass(&self, i: usize) -> bool {
        let (start, len) = self.disk_range[i];
        (start as usize..(start + len) as usize)
            .all(|d| !self.disk_failed[d] && !self.disk_sector0_bad[d])
    }

    /// Current S.M.A.R.T. temperature of drive `d` (flat index) — test aid.
    #[doc(hidden)]
    pub fn disk_temperature_c(&self, i: usize, drive: usize) -> f64 {
        let (start, _) = self.disk_range[i];
        self.disk_temperature_c[start as usize + drive]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    fn specs() -> [ServerSpec; 3] {
        [
            ServerSpec::vendor_a(),
            ServerSpec::vendor_b(true),
            ServerSpec::vendor_c(),
        ]
    }

    #[test]
    fn layout_matches_vendor_storage() {
        let mut bank = HostBank::new();
        for spec in specs() {
            bank.push_host(&spec);
        }
        assert_eq!(bank.drive_count(0), 2);
        assert_eq!(bank.drive_count(1), 1);
        assert_eq!(bank.drive_count(2), 5);
        assert_eq!(bank.len(), 3);
    }

    /// Drive both models through the same campaign-shaped op sequence and
    /// compare every observable at every step.
    #[test]
    fn bank_matches_server_objects() {
        let mut bank = HostBank::new();
        let mut objs: Vec<Server> = Vec::new();
        for spec in specs() {
            bank.push_host(&spec);
            objs.push(Server::new(spec));
        }
        for step in 0..600 {
            for (i, obj) in objs.iter_mut().enumerate() {
                let temp = -10.0 + ((step + i) % 47) as f64;
                let util = if step % 3 == 0 { 1.0 } else { 0.0 };
                // Scripted op mix exercising every transition.
                match step % 101 {
                    13 => {
                        obj.hang();
                        bank.hang(i);
                    }
                    29 => {
                        obj.reset();
                        bank.reset(i);
                    }
                    43 => {
                        obj.sensors.inject_cold_fault();
                        bank.sensor_inject_cold_fault(i);
                    }
                    59 => {
                        obj.sensors.attempt_redetect();
                        bank.sensor_attempt_redetect(i);
                    }
                    71 => {
                        obj.storage.for_each_disk_mut(|d| {
                            d.inject_pending_sector(0);
                        });
                        bank.disks_inject_pending_sector0(i);
                    }
                    83 if i == 2 => {
                        obj.psu.fail();
                        bank.psu_fail(i);
                    }
                    _ => {}
                }
                obj.tick(1.0 / 60.0, temp);
                bank.tick(i, 1.0 / 60.0, temp);
                assert_eq!(obj.memory.apply_bit_flip(), bank.memory_apply_bit_flip(i));
                obj.memory.record_page_ops(1000);
                bank.memory_record_page_ops(i, 1000);
                assert_eq!(
                    obj.sensors.read_cpu_temp(temp),
                    bank.sensor_read_cpu_temp(i, temp)
                );
                assert_eq!(obj.is_running(), bank.is_running(i), "step {step} host {i}");
                assert_eq!(
                    obj.wall_power_w(util).to_bits(),
                    bank.wall_power_w(i, util).to_bits()
                );
                assert_eq!(obj.uptime_hours().to_bits(), bank.uptime_hours(i).to_bits());
                assert_eq!(obj.reset_count(), bank.reset_count(i));
            }
        }
        for (i, obj) in objs.iter_mut().enumerate() {
            assert_eq!(
                obj.storage.all_long_tests_pass(),
                bank.disks_all_long_tests_pass(i)
            );
            assert_eq!(obj.sensors.min_seen_c(), bank.sensor_min_seen_c(i));
            assert_eq!(obj.sensors.erratic_count(), bank.sensor_erratic_count(i));
            assert_eq!(obj.memory.page_ops(), bank.memory_page_ops(i));
            assert_eq!(
                obj.memory.silent_corruptions(),
                bank.memory_silent_corruptions(i)
            );
            assert_eq!(
                obj.memory.corrected_errors(),
                bank.memory_corrected_errors(i)
            );
        }
    }

    #[test]
    fn off_hosts_are_frozen() {
        let mut bank = HostBank::new();
        bank.push_host(&ServerSpec::vendor_a());
        bank.power_off(0);
        bank.tick(0, 5.0, 30.0);
        assert_eq!(bank.uptime_hours(0), 0.0);
        assert_eq!(bank.disk_temperature_c(0, 0), 20.0);
        assert_eq!(bank.wall_power_w(0, 1.0), 0.0);
        assert_eq!(bank.power_state(0), PowerState::Off);
    }

    #[test]
    fn hung_hosts_idle_but_age_their_drives() {
        let mut bank = HostBank::new();
        bank.push_host(&ServerSpec::vendor_c());
        bank.hang(0);
        bank.tick(0, 2.0, 35.0);
        assert_eq!(bank.uptime_hours(0), 0.0);
        assert_eq!(bank.disk_temperature_c(0, 0), 35.0);
        let mut obj = Server::new(ServerSpec::vendor_c());
        obj.hang();
        assert_eq!(
            bank.wall_power_w(0, 1.0).to_bits(),
            obj.wall_power_w(1.0).to_bits()
        );
    }

    #[test]
    fn pending_sector_injection_is_idempotent_per_drive() {
        let mut bank = HostBank::new();
        bank.push_host(&ServerSpec::vendor_b(false));
        assert!(bank.disks_all_long_tests_pass(0));
        bank.disks_inject_pending_sector0(0);
        bank.disks_inject_pending_sector0(0);
        assert!(!bank.disks_all_long_tests_pass(0));
        assert_eq!(bank.disk_pending_sectors[0], 1, "second injection a no-op");
    }

    #[test]
    fn ecc_split_matches_vendor_specs() {
        let mut bank = HostBank::new();
        for spec in specs() {
            bank.push_host(&spec);
        }
        assert_eq!(bank.memory_apply_bit_flip(0), FlipOutcome::SilentCorruption);
        assert_eq!(bank.memory_apply_bit_flip(1), FlipOutcome::SilentCorruption);
        assert_eq!(bank.memory_apply_bit_flip(2), FlipOutcome::CorrectedByEcc);
        assert_eq!(bank.memory_silent_corruptions(0), 1);
        assert_eq!(bank.memory_corrected_errors(2), 1);
    }
}
