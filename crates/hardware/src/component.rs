//! Common component vocabulary.

use std::fmt;

/// Health of a hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentHealth {
    /// Operating normally.
    Healthy,
    /// Operating but showing anomalies (e.g. erratic sensor readings,
    /// audible whine, reallocated sectors accumulating).
    Degraded,
    /// Not functioning.
    Failed,
}

impl ComponentHealth {
    /// True unless the component has failed outright.
    pub fn is_operational(self) -> bool {
        self != ComponentHealth::Failed
    }
}

impl fmt::Display for ComponentHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentHealth::Healthy => "healthy",
            ComponentHealth::Degraded => "degraded",
            ComponentHealth::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// The component classes the study tracks — used by the fault layer to test
/// the "which components fail first" research question (§3, third question).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// Central processor.
    Cpu,
    /// Motherboard (including its sensor chip).
    Motherboard,
    /// A DIMM.
    Memory,
    /// A hard drive.
    Disk,
    /// Power supply unit.
    Psu,
    /// A cooling fan.
    Fan,
    /// A network switch.
    Switch,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Cpu => "CPU",
            ComponentKind::Motherboard => "motherboard",
            ComponentKind::Memory => "memory",
            ComponentKind::Disk => "disk",
            ComponentKind::Psu => "PSU",
            ComponentKind::Fan => "fan",
            ComponentKind::Switch => "switch",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_logic() {
        assert!(ComponentHealth::Healthy.is_operational());
        assert!(ComponentHealth::Degraded.is_operational());
        assert!(!ComponentHealth::Failed.is_operational());
    }

    #[test]
    fn display_strings() {
        assert_eq!(ComponentHealth::Degraded.to_string(), "degraded");
        assert_eq!(ComponentKind::Motherboard.to_string(), "motherboard");
    }
}
