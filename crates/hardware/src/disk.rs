//! Hard drives with S.M.A.R.T. state and block storage.
//!
//! The experiment monitored "hard drive S.M.A.R.T. readings" from the first
//! prototype onwards, and after the wrong-hash incidents the drives "passed
//! their S.M.A.R.T. long test runs" — evidence pointing the blame at memory
//! rather than storage. [`Disk`] models the attributes the study actually
//! consulted (temperature, power-on hours, reallocated/pending sectors, long
//! self-test) on top of a simple block device used by the RAID layer.

use crate::component::ComponentHealth;

/// Logical block size, bytes.
pub const BLOCK_SIZE: usize = 4096;

/// Result of a S.M.A.R.T. long self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfTestResult {
    /// Completed without error.
    Passed,
    /// Read errors encountered (pending sectors present or disk failed).
    Failed,
}

/// The S.M.A.R.T. attributes the study tracked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartData {
    /// Attribute 194: current temperature, °C.
    pub temperature_c: f64,
    /// Attribute 9: power-on hours.
    pub power_on_hours: f64,
    /// Attribute 5: reallocated sector count.
    pub reallocated_sectors: u32,
    /// Attribute 197: current pending sectors.
    pub pending_sectors: u32,
    /// Lifetime minimum temperature seen, °C (vendor-specific attribute).
    pub min_temperature_c: f64,
    /// Lifetime maximum temperature seen, °C.
    pub max_temperature_c: f64,
}

/// Errors from block I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// Block index out of range.
    OutOfRange,
    /// The disk has failed outright.
    DiskFailed,
    /// Unreadable sector (pending sector hit).
    ReadError,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::OutOfRange => write!(f, "block index out of range"),
            DiskError::DiskFailed => write!(f, "disk failed"),
            DiskError::ReadError => write!(f, "unreadable sector"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A hard drive: block storage plus S.M.A.R.T. bookkeeping.
#[derive(Debug, Clone)]
pub struct Disk {
    blocks: Vec<[u8; BLOCK_SIZE]>,
    /// Blocks currently unreadable (pending sectors).
    bad_blocks: Vec<bool>,
    health: ComponentHealth,
    smart: SmartData,
}

impl Disk {
    /// Create a zero-filled disk with `num_blocks` blocks.
    pub fn new(num_blocks: usize) -> Self {
        Disk {
            blocks: vec![[0u8; BLOCK_SIZE]; num_blocks],
            bad_blocks: vec![false; num_blocks],
            health: ComponentHealth::Healthy,
            smart: SmartData {
                temperature_c: 20.0,
                power_on_hours: 0.0,
                reallocated_sectors: 0,
                pending_sectors: 0,
                min_temperature_c: 20.0,
                max_temperature_c: 20.0,
            },
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Current health.
    pub fn health(&self) -> ComponentHealth {
        self.health
    }

    /// Current S.M.A.R.T. snapshot.
    pub fn smart(&self) -> SmartData {
        self.smart
    }

    /// Advance operating time and record the current drive temperature.
    pub fn tick(&mut self, dt_hours: f64, temperature_c: f64) {
        self.smart.power_on_hours += dt_hours;
        self.smart.temperature_c = temperature_c;
        self.smart.min_temperature_c = self.smart.min_temperature_c.min(temperature_c);
        self.smart.max_temperature_c = self.smart.max_temperature_c.max(temperature_c);
    }

    /// Read a block.
    pub fn read_block(&self, index: usize) -> Result<&[u8; BLOCK_SIZE], DiskError> {
        if self.health == ComponentHealth::Failed {
            return Err(DiskError::DiskFailed);
        }
        if index >= self.blocks.len() {
            return Err(DiskError::OutOfRange);
        }
        if self.bad_blocks[index] {
            return Err(DiskError::ReadError);
        }
        Ok(&self.blocks[index])
    }

    /// Write a block. Writing to a pending sector reallocates it (the drive
    /// remaps the sector; attribute 5 increments, 197 decrements) — real
    /// drive behaviour.
    pub fn write_block(&mut self, index: usize, data: &[u8; BLOCK_SIZE]) -> Result<(), DiskError> {
        if self.health == ComponentHealth::Failed {
            return Err(DiskError::DiskFailed);
        }
        if index >= self.blocks.len() {
            return Err(DiskError::OutOfRange);
        }
        if self.bad_blocks[index] {
            self.bad_blocks[index] = false;
            self.smart.pending_sectors = self.smart.pending_sectors.saturating_sub(1);
            self.smart.reallocated_sectors += 1;
            if self.health == ComponentHealth::Healthy {
                self.health = ComponentHealth::Degraded;
            }
        }
        self.blocks[index] = *data;
        Ok(())
    }

    /// Mark a block unreadable (media fault injection).
    pub fn inject_pending_sector(&mut self, index: usize) {
        if index < self.bad_blocks.len() && !self.bad_blocks[index] {
            self.bad_blocks[index] = true;
            self.smart.pending_sectors += 1;
        }
    }

    /// Fail the whole drive.
    pub fn fail(&mut self) {
        self.health = ComponentHealth::Failed;
    }

    /// Run a S.M.A.R.T. long self-test: scans every sector.
    pub fn long_self_test(&self) -> SelfTestResult {
        if self.health == ComponentHealth::Failed || self.bad_blocks.iter().any(|&b| b) {
            SelfTestResult::Failed
        } else {
            SelfTestResult::Passed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(byte: u8) -> [u8; BLOCK_SIZE] {
        [byte; BLOCK_SIZE]
    }

    #[test]
    fn read_write_roundtrip() -> Result<(), DiskError> {
        let mut d = Disk::new(8);
        d.write_block(3, &block_of(0xAB))?;
        assert_eq!(d.read_block(3)?[0], 0xAB);
        assert_eq!(d.read_block(0)?[0], 0);
        Ok(())
    }

    #[test]
    fn out_of_range() {
        let mut d = Disk::new(4);
        assert_eq!(d.read_block(4), Err(DiskError::OutOfRange));
        assert_eq!(d.write_block(9, &block_of(1)), Err(DiskError::OutOfRange));
    }

    #[test]
    fn pending_sector_lifecycle() -> Result<(), DiskError> {
        let mut d = Disk::new(4);
        d.inject_pending_sector(2);
        assert_eq!(d.smart().pending_sectors, 1);
        assert_eq!(d.read_block(2), Err(DiskError::ReadError));
        assert_eq!(d.long_self_test(), SelfTestResult::Failed);
        // A write remaps the sector.
        d.write_block(2, &block_of(7))?;
        assert_eq!(d.smart().pending_sectors, 0);
        assert_eq!(d.smart().reallocated_sectors, 1);
        assert_eq!(d.health(), ComponentHealth::Degraded);
        assert_eq!(d.read_block(2)?[0], 7);
        assert_eq!(d.long_self_test(), SelfTestResult::Passed);
        Ok(())
    }

    #[test]
    fn failed_disk_rejects_io() {
        let mut d = Disk::new(4);
        d.fail();
        assert_eq!(d.read_block(0), Err(DiskError::DiskFailed));
        assert_eq!(d.write_block(0, &block_of(1)), Err(DiskError::DiskFailed));
        assert_eq!(d.long_self_test(), SelfTestResult::Failed);
    }

    #[test]
    fn smart_temperature_extremes() {
        let mut d = Disk::new(1);
        d.tick(1.0, -15.0);
        d.tick(1.0, 35.0);
        d.tick(1.0, 10.0);
        let s = d.smart();
        assert_eq!(s.min_temperature_c, -15.0);
        assert_eq!(s.max_temperature_c, 35.0);
        assert_eq!(s.temperature_c, 10.0);
        assert!((s.power_on_hours - 3.0).abs() < 1e-12);
    }

    #[test]
    fn healthy_disk_passes_long_test() -> Result<(), DiskError> {
        // The paper: drives passed their long tests even after months outside.
        let mut d = Disk::new(16);
        for i in 0..16 {
            d.write_block(i, &block_of(i as u8))?;
        }
        d.tick(2000.0, -5.0);
        assert_eq!(d.long_self_test(), SelfTestResult::Passed);
        Ok(())
    }
}
