//! Case/CPU fans.
//!
//! Fans are moving parts with bearings — the other tribal-knowledge cold
//! victim (grease stiffens in deep cold). The model: a thermostatic RPM
//! curve, a bearing-wear state that manifests as RPM droop, and a stall
//! state. Stall detection (RPM = 0 while demanded > 0) is what a
//! motherboard's fan alarm would report to `lm-sensors`.

use crate::component::ComponentHealth;

/// A thermostatically controlled fan.
#[derive(Debug, Clone)]
pub struct Fan {
    /// RPM at the bottom of the control band.
    pub min_rpm: f64,
    /// RPM at (and above) the top of the control band.
    pub max_rpm: f64,
    /// Control band: temperature where ramping starts, °C.
    pub ramp_start_c: f64,
    /// Control band: temperature of full speed, °C.
    pub ramp_full_c: f64,
    /// Bearing wear factor, 1.0 = new; droops RPM as it falls.
    wear: f64,
    health: ComponentHealth,
}

impl Fan {
    /// A typical 92 mm case fan: 900–2800 RPM across 25–60 °C.
    pub fn typical_case_fan() -> Self {
        Fan {
            min_rpm: 900.0,
            max_rpm: 2800.0,
            ramp_start_c: 25.0,
            ramp_full_c: 60.0,
            wear: 1.0,
            health: ComponentHealth::Healthy,
        }
    }

    /// RPM produced for a measured component temperature.
    pub fn rpm(&self, temp_c: f64) -> f64 {
        if self.health == ComponentHealth::Failed {
            return 0.0;
        }
        let span = self.ramp_full_c - self.ramp_start_c;
        let frac = ((temp_c - self.ramp_start_c) / span).clamp(0.0, 1.0);
        (self.min_rpm + frac * (self.max_rpm - self.min_rpm)) * self.wear
    }

    /// Apply bearing wear (fault layer; fraction of remaining margin).
    pub fn apply_wear(&mut self, amount: f64) {
        self.wear = (self.wear - amount).max(0.0);
        if self.wear < 0.5 {
            self.health = ComponentHealth::Degraded;
        }
        if self.wear == 0.0 {
            self.health = ComponentHealth::Failed;
        }
    }

    /// Stall the fan outright.
    pub fn stall(&mut self) {
        self.health = ComponentHealth::Failed;
    }

    /// Current health.
    pub fn health(&self) -> ComponentHealth {
        self.health
    }

    /// True if the motherboard would raise a fan alarm at this temperature.
    pub fn alarm(&self, temp_c: f64) -> bool {
        self.rpm(temp_c) < self.min_rpm * 0.5 && temp_c > self.ramp_start_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpm_curve_shape() {
        let fan = Fan::typical_case_fan();
        assert_eq!(fan.rpm(0.0), 900.0);
        assert_eq!(fan.rpm(25.0), 900.0);
        assert_eq!(fan.rpm(60.0), 2800.0);
        assert_eq!(fan.rpm(90.0), 2800.0);
        let mid = fan.rpm(42.5);
        assert!((mid - 1850.0).abs() < 1.0, "{mid}");
    }

    #[test]
    fn wear_droops_rpm_then_fails() {
        let mut fan = Fan::typical_case_fan();
        fan.apply_wear(0.3);
        assert!((fan.rpm(60.0) - 0.7 * 2800.0).abs() < 1.0);
        assert_eq!(fan.health(), ComponentHealth::Healthy);
        fan.apply_wear(0.3);
        assert_eq!(fan.health(), ComponentHealth::Degraded);
        fan.apply_wear(1.0);
        assert_eq!(fan.health(), ComponentHealth::Failed);
        assert_eq!(fan.rpm(60.0), 0.0);
    }

    #[test]
    fn stall_raises_alarm_when_hot() {
        let mut fan = Fan::typical_case_fan();
        assert!(!fan.alarm(50.0));
        fan.stall();
        assert!(fan.alarm(50.0));
        // No alarm when it's cold: nothing demands airflow.
        assert!(!fan.alarm(10.0));
    }
}
