//! # frostlab-hardware
//!
//! Component-level models of the 19 machines (and 3 switches) the study ran.
//!
//! The paper's §3.4 describes three form factors:
//!
//! * **Vendor A** — small-shop "cloned" desktops in medium towers, two hard
//!   drives in a Linux `md` software mirror (RAID1);
//! * **Vendor B** — mass-manufactured small-form-factor workstations, single
//!   drive, from a series *known to be unreliable* (bad airflow);
//! * **Vendor C** — 2U rack servers, five drives: a hardware mirror (2) plus
//!   a three-drive stripe set with parity (RAID5).
//!
//! What the experiment observes is component *phenomenology* — an lm-sensors
//! chip that reads −111 °C after deep cold and vanishes on re-detection
//! (§4.2.1), non-ECC DIMMs that flip a bit every ~570 million page
//! operations (§4.2.2), disks that keep passing their S.M.A.R.T. long tests,
//! switches with a cosmetic whine that die identically whether or not they
//! ever saw the tent. Each of those behaviours is a state machine here:
//!
//! * [`sensors`] — the motherboard sensor chip and its cold-fault saga;
//! * [`memory`] — DIMMs with/without ECC and bit-flip accounting;
//! * [`disk`] + [`raid`] — block devices with S.M.A.R.T. state, and real
//!   block-level RAID1/RAID5 with reconstruction;
//! * [`memtest`] — a Memtest86+-style tester with injectable DRAM defects
//!   (the indoor diagnosis that condemned host #15);
//! * [`psu`], [`fan`] — supporting components with health states;
//! * [`switch`] — the whiny 8-port switches;
//! * [`server`] — vendor specs and the assembled machine;
//! * [`columns`] — the same campaign-relevant state as flat
//!   struct-of-arrays columns ([`columns::HostBank`]) for fleet-scale
//!   bulk stepping, behavior-identical to the object model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod component;
pub mod disk;
pub mod fan;
pub mod memory;
pub mod memtest;
pub mod psu;
pub mod raid;
pub mod sensors;
pub mod server;
pub mod switch;

pub use component::ComponentHealth;
pub use server::{Server, ServerSpec, Vendor};
