//! Memory modules and the bit-flip accounting behind §4.2.2.
//!
//! The paper's conjecture for the five wrong md5sums is a memory error: all
//! three affected hosts had DIMMs "without error-correcting parities", and
//! the estimated exposure was ≈ 3.2 billion page operations across the
//! campaign, giving a failure ratio around **one in 570 million page
//! operations**. [`MemoryBank`] tracks exactly that exposure and applies bit
//! flips: on a non-ECC bank a flip becomes a *silent corruption* the
//! workload will later observe as a wrong hash; on an ECC bank it is
//! corrected and only counted.

/// The paper's estimated fault rate: one flip per ~570 million page ops.
pub const PAPER_FLIPS_PER_PAGE_OP: f64 = 1.0 / 570.0e6;

/// Outcome of a bit-flip event applied to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipOutcome {
    /// Non-ECC: the flip silently corrupts data in flight.
    SilentCorruption,
    /// ECC corrected the single-bit error.
    CorrectedByEcc,
}

/// A host's memory subsystem.
#[derive(Debug, Clone)]
pub struct MemoryBank {
    /// Total capacity, MiB (affects nothing but reporting; kept for specs).
    pub capacity_mib: u32,
    /// Whether the DIMMs have ECC.
    pub ecc: bool,
    page_ops: u64,
    silent_corruptions: u64,
    corrected_errors: u64,
}

impl MemoryBank {
    /// New bank of the given capacity.
    pub fn new(capacity_mib: u32, ecc: bool) -> Self {
        MemoryBank {
            capacity_mib,
            ecc,
            page_ops: 0,
            silent_corruptions: 0,
            corrected_errors: 0,
        }
    }

    /// Record `n` page read/write operations (exposure accounting).
    pub fn record_page_ops(&mut self, n: u64) {
        self.page_ops = self.page_ops.saturating_add(n);
    }

    /// Total page operations recorded.
    pub fn page_ops(&self) -> u64 {
        self.page_ops
    }

    /// Apply a bit-flip event (scheduled by the fault layer).
    pub fn apply_bit_flip(&mut self) -> FlipOutcome {
        if self.ecc {
            self.corrected_errors += 1;
            FlipOutcome::CorrectedByEcc
        } else {
            self.silent_corruptions += 1;
            FlipOutcome::SilentCorruption
        }
    }

    /// Number of silent corruptions suffered so far.
    pub fn silent_corruptions(&self) -> u64 {
        self.silent_corruptions
    }

    /// Number of ECC-corrected errors so far.
    pub fn corrected_errors(&self) -> u64 {
        self.corrected_errors
    }

    /// Empirical fault ratio (silent corruptions per page op), if any
    /// exposure has been recorded.
    pub fn empirical_fault_ratio(&self) -> Option<f64> {
        if self.page_ops == 0 {
            None
        } else {
            Some(self.silent_corruptions as f64 / self.page_ops as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_ecc_flip_corrupts() {
        let mut bank = MemoryBank::new(2048, false);
        assert_eq!(bank.apply_bit_flip(), FlipOutcome::SilentCorruption);
        assert_eq!(bank.silent_corruptions(), 1);
        assert_eq!(bank.corrected_errors(), 0);
    }

    #[test]
    fn ecc_flip_corrected() {
        let mut bank = MemoryBank::new(4096, true);
        assert_eq!(bank.apply_bit_flip(), FlipOutcome::CorrectedByEcc);
        assert_eq!(bank.silent_corruptions(), 0);
        assert_eq!(bank.corrected_errors(), 1);
    }

    #[test]
    fn exposure_accounting() {
        let mut bank = MemoryBank::new(1024, false);
        assert_eq!(bank.empirical_fault_ratio(), None);
        bank.record_page_ops(570_000_000);
        bank.apply_bit_flip();
        // One flip over the paper's per-flip page-op count reproduces its
        // empirical ratio (and proves the ratio is defined at all).
        assert!(
            bank.empirical_fault_ratio()
                .is_some_and(|ratio| (ratio - PAPER_FLIPS_PER_PAGE_OP).abs()
                    / PAPER_FLIPS_PER_PAGE_OP
                    < 1e-9),
            "empirical ratio should match the paper's flips-per-page-op"
        );
    }

    #[test]
    fn saturating_ops() {
        let mut bank = MemoryBank::new(1024, false);
        bank.record_page_ops(u64::MAX);
        bank.record_page_ops(10);
        assert_eq!(bank.page_ops(), u64::MAX);
    }
}
