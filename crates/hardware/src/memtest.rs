//! A Memtest86+-style memory tester.
//!
//! §4.2.1: after host #15's second failure it was taken indoors and "a
//! standard Memtest86+ run caused another system failure within a few
//! hours" — the diagnosis that condemned the machine. This module
//! implements the classic test patterns over a simulated DRAM array with
//! injectable defects, so the repair workflow's indoor diagnosis is a real
//! computation rather than a coin flip.
//!
//! Defect models:
//! * **stuck-at** bits (a cell that always reads 0 or 1);
//! * **coupling** faults (writing one cell flips a victim cell) — the
//!   classic pattern-sensitive failure that only some patterns catch;
//! * **intermittent** cells that fail only every Nth access, which is why
//!   Memtest runs take "a few hours" to condemn marginal DIMMs.

use frostlab_simkern::rng::Rng;

/// A simulated DRAM array with injectable defects.
#[derive(Debug, Clone)]
pub struct DramArray {
    words: Vec<u64>,
    /// Stuck-at faults: `(word, mask, stuck_value_bits)`.
    stuck: Vec<(usize, u64, u64)>,
    /// Coupling faults: writing `aggressor` flips `victim`'s `mask` bits.
    coupling: Vec<(usize, usize, u64)>,
    /// Intermittent faults: `(word, mask, period, counter)` — the fault
    /// manifests on every `period`-th read of the word.
    intermittent: Vec<(usize, u64, u32, u32)>,
}

impl DramArray {
    /// A healthy array of `words` 64-bit words.
    pub fn new(words: usize) -> Self {
        DramArray {
            words: vec![0; words],
            stuck: Vec::new(),
            coupling: Vec::new(),
            intermittent: Vec::new(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the array has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Inject a stuck-at fault: `mask` bits of `word` always read as the
    /// corresponding bits of `value`.
    pub fn inject_stuck_at(&mut self, word: usize, mask: u64, value: u64) {
        assert!(word < self.words.len());
        self.stuck.push((word, mask, value & mask));
    }

    /// Inject a coupling fault: each write to `aggressor` XOR-flips
    /// `mask` bits of `victim`.
    pub fn inject_coupling(&mut self, aggressor: usize, victim: usize, mask: u64) {
        assert!(aggressor < self.words.len() && victim < self.words.len());
        self.coupling.push((aggressor, victim, mask));
    }

    /// Inject an intermittent fault: every `period`-th read of `word`
    /// returns `mask` bits flipped.
    pub fn inject_intermittent(&mut self, word: usize, mask: u64, period: u32) {
        assert!(word < self.words.len() && period > 0);
        self.intermittent.push((word, mask, period, 0));
    }

    /// Write a word.
    pub fn write(&mut self, index: usize, value: u64) {
        self.words[index] = value;
        for &(agg, victim, mask) in &self.coupling {
            if agg == index {
                self.words[victim] ^= mask;
            }
        }
    }

    /// Read a word (through the fault layers).
    pub fn read(&mut self, index: usize) -> u64 {
        let mut v = self.words[index];
        for &(w, mask, value) in &self.stuck {
            if w == index {
                v = (v & !mask) | value;
            }
        }
        for (w, mask, period, counter) in &mut self.intermittent {
            if *w == index {
                *counter += 1;
                if *counter % *period == 0 {
                    v ^= *mask;
                }
            }
        }
        v
    }
}

/// One detected miscompare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// Word index.
    pub word: usize,
    /// Expected value.
    pub expected: u64,
    /// Value read back.
    pub actual: u64,
    /// Which test pattern caught it.
    pub pass: TestPass,
}

/// The classic Memtest pattern families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestPass {
    /// All zeros / all ones solid fills.
    SolidBits,
    /// Alternating 0x55/0xAA checkerboard.
    Checkerboard,
    /// A single 1 bit walking across each word.
    WalkingOnes,
    /// March-style up/down with inverted rewrites (catches coupling).
    MarchC,
    /// Pseudo-random data, multiple rounds (catches intermittents).
    RandomData,
}

/// All passes, in execution order.
pub const ALL_PASSES: [TestPass; 5] = [
    TestPass::SolidBits,
    TestPass::Checkerboard,
    TestPass::WalkingOnes,
    TestPass::MarchC,
    TestPass::RandomData,
];

/// Result of a full run.
#[derive(Debug, Clone)]
pub struct MemtestReport {
    /// Every miscompare found (bounded at 256 to mimic the real screen).
    pub errors: Vec<MemError>,
    /// Passes completed.
    pub passes_run: usize,
}

impl MemtestReport {
    /// Verdict: did the DIMM pass?
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

fn fill_verify(
    mem: &mut DramArray,
    pattern: impl Fn(usize) -> u64,
    pass: TestPass,
    errors: &mut Vec<MemError>,
) {
    for i in 0..mem.len() {
        mem.write(i, pattern(i));
    }
    for i in 0..mem.len() {
        let expected = pattern(i);
        let actual = mem.read(i);
        if actual != expected && errors.len() < 256 {
            errors.push(MemError {
                word: i,
                expected,
                actual,
                pass,
            });
        }
    }
}

/// Run the full suite; `rounds` controls the random-data repetitions (the
/// real tool loops for hours — more rounds catch rarer intermittents).
pub fn run_memtest(mem: &mut DramArray, rounds: u32, seed: u64) -> MemtestReport {
    let mut errors = Vec::new();
    let mut passes = 0usize;

    // Solid bits.
    fill_verify(mem, |_| 0, TestPass::SolidBits, &mut errors);
    fill_verify(mem, |_| !0u64, TestPass::SolidBits, &mut errors);
    passes += 1;

    // Checkerboard, both phases.
    fill_verify(
        mem,
        |i| {
            if i % 2 == 0 {
                0x5555_5555_5555_5555
            } else {
                0xAAAA_AAAA_AAAA_AAAA
            }
        },
        TestPass::Checkerboard,
        &mut errors,
    );
    fill_verify(
        mem,
        |i| {
            if i % 2 == 0 {
                0xAAAA_AAAA_AAAA_AAAA
            } else {
                0x5555_5555_5555_5555
            }
        },
        TestPass::Checkerboard,
        &mut errors,
    );
    passes += 1;

    // Walking ones.
    for bit in 0..64u32 {
        let value = 1u64 << bit;
        fill_verify(mem, |_| value, TestPass::WalkingOnes, &mut errors);
    }
    passes += 1;

    // March C−: up-write 0, up read-0/write-1, up read-1/write-0,
    // down read-0/write-1, down read-1, catches coupling faults.
    for i in 0..mem.len() {
        mem.write(i, 0);
    }
    for i in 0..mem.len() {
        let v = mem.read(i);
        if v != 0 && errors.len() < 256 {
            errors.push(MemError {
                word: i,
                expected: 0,
                actual: v,
                pass: TestPass::MarchC,
            });
        }
        mem.write(i, !0);
    }
    for i in (0..mem.len()).rev() {
        let v = mem.read(i);
        if v != !0 && errors.len() < 256 {
            errors.push(MemError {
                word: i,
                expected: !0,
                actual: v,
                pass: TestPass::MarchC,
            });
        }
        mem.write(i, 0);
    }
    for i in (0..mem.len()).rev() {
        let v = mem.read(i);
        if v != 0 && errors.len() < 256 {
            errors.push(MemError {
                word: i,
                expected: 0,
                actual: v,
                pass: TestPass::MarchC,
            });
        }
    }
    passes += 1;

    // Random data, several rounds.
    for round in 0..rounds {
        let mut rng = Rng::new(seed ^ u64::from(round));
        let values: Vec<u64> = (0..mem.len()).map(|_| rng.next_u64()).collect();
        for (i, &v) in values.iter().enumerate() {
            mem.write(i, v);
        }
        for (i, &expected) in values.iter().enumerate() {
            let actual = mem.read(i);
            if actual != expected && errors.len() < 256 {
                errors.push(MemError {
                    word: i,
                    expected,
                    actual,
                    pass: TestPass::RandomData,
                });
            }
        }
    }
    passes += 1;

    MemtestReport {
        errors,
        passes_run: passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_memory_passes() {
        let mut mem = DramArray::new(512);
        let report = run_memtest(&mut mem, 2, 1);
        assert!(
            report.passed(),
            "errors: {:?}",
            &report.errors[..report.errors.len().min(3)]
        );
        assert_eq!(report.passes_run, 5);
    }

    #[test]
    fn stuck_at_caught_by_solid_bits() {
        let mut mem = DramArray::new(256);
        mem.inject_stuck_at(17, 1 << 5, 0); // bit 5 of word 17 stuck at 0
        let report = run_memtest(&mut mem, 1, 2);
        assert!(!report.passed());
        assert!(report.errors.iter().any(|e| e.word == 17));
        // The all-ones fill must catch a stuck-at-0.
        assert!(report
            .errors
            .iter()
            .any(|e| e.pass == TestPass::SolidBits && e.expected & (1 << 5) != 0));
    }

    #[test]
    fn stuck_at_one_caught() {
        let mut mem = DramArray::new(64);
        mem.inject_stuck_at(3, 1 << 60, 1 << 60);
        let report = run_memtest(&mut mem, 1, 3);
        assert!(!report.passed());
        assert!(report
            .errors
            .iter()
            .any(|e| e.word == 3 && e.actual & (1 << 60) != 0));
    }

    #[test]
    fn coupling_fault_caught_by_march() {
        let mut mem = DramArray::new(128);
        mem.inject_coupling(40, 41, 0xFF);
        let report = run_memtest(&mut mem, 0, 4);
        assert!(!report.passed());
        assert!(
            report.errors.iter().any(|e| e.word == 41),
            "victim cell must miscompare: {:?}",
            &report.errors[..report.errors.len().min(4)]
        );
    }

    #[test]
    fn rare_intermittent_needs_more_rounds() {
        // Fault fires every 23rd read: one round may miss it, many rounds
        // won't. (23 is chosen to dodge the deterministic pass counts.)
        let fresh = || {
            let mut mem = DramArray::new(64);
            mem.inject_intermittent(10, 1 << 8, 23);
            mem
        };
        let mut caught_with_many = false;
        let mut mem = fresh();
        let long = run_memtest(&mut mem, 12, 5);
        if !long.passed() {
            caught_with_many = true;
        }
        assert!(
            caught_with_many,
            "12 random rounds must trip a 1-in-23 fault"
        );
    }

    #[test]
    fn host15_diagnosis_scenario() {
        // The §4.2.1 story: the defective vendor-B host fails its indoor
        // Memtest "within a few hours" — modeled as a marginal DIMM with an
        // intermittent cell plus a weak coupling fault.
        let mut mem = DramArray::new(1024);
        mem.inject_intermittent(700, 1 << 3, 17);
        mem.inject_coupling(511, 512, 1 << 40);
        let report = run_memtest(&mut mem, 6, 15);
        assert!(!report.passed(), "host #15's DIMM must be condemned");
        assert!(report.errors.len() >= 2);
    }

    #[test]
    fn error_reporting_is_bounded() {
        let mut mem = DramArray::new(512);
        for w in 0..512 {
            mem.inject_stuck_at(w, 1, 0);
        }
        let report = run_memtest(&mut mem, 1, 6);
        assert!(report.errors.len() <= 256);
    }

    #[test]
    fn reads_and_writes_roundtrip_when_healthy() {
        let mut mem = DramArray::new(16);
        for i in 0..16 {
            mem.write(i, (i as u64) * 0x0101_0101_0101_0101);
        }
        for i in 0..16 {
            assert_eq!(mem.read(i), (i as u64) * 0x0101_0101_0101_0101);
        }
    }
}
