//! Power supply units.
//!
//! PSUs are the component that industry tribal knowledge most often blames
//! for cold/humidity deaths (§3, third research question). The model tracks
//! conversion efficiency (wall draw = DC load / η) so the Technoline meter
//! in the telemetry layer sees realistic wall power, and exposes a failure
//! state for the fault layer.

use crate::component::ComponentHealth;

/// A switching power supply.
#[derive(Debug, Clone)]
pub struct Psu {
    /// Rated output, W.
    pub rated_w: f64,
    /// Conversion efficiency at typical load (0–1).
    pub efficiency: f64,
    health: ComponentHealth,
}

impl Psu {
    /// Create a PSU with the given rating and efficiency.
    ///
    /// # Panics
    /// Panics unless `0 < efficiency <= 1`.
    pub fn new(rated_w: f64, efficiency: f64) -> Self {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
        Psu {
            rated_w,
            efficiency,
            health: ComponentHealth::Healthy,
        }
    }

    /// Wall (AC) power drawn to deliver `dc_load_w` to the board.
    /// A failed PSU delivers nothing and draws nothing.
    pub fn wall_power_w(&self, dc_load_w: f64) -> f64 {
        if self.health == ComponentHealth::Failed {
            0.0
        } else {
            dc_load_w.min(self.rated_w) / self.efficiency
        }
    }

    /// Current health.
    pub fn health(&self) -> ComponentHealth {
        self.health
    }

    /// Fail the unit.
    pub fn fail(&mut self) {
        self.health = ComponentHealth::Failed;
    }

    /// Repair/replace the unit.
    pub fn replace(&mut self) {
        self.health = ComponentHealth::Healthy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_power_includes_losses() {
        let psu = Psu::new(300.0, 0.8);
        assert!((psu.wall_power_w(80.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn output_capped_at_rating() {
        let psu = Psu::new(200.0, 0.8);
        assert!((psu.wall_power_w(500.0) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn failed_psu_draws_nothing() {
        let mut psu = Psu::new(300.0, 0.85);
        psu.fail();
        assert_eq!(psu.wall_power_w(100.0), 0.0);
        assert!(!psu.health().is_operational());
        psu.replace();
        assert!(psu.health().is_operational());
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        Psu::new(300.0, 0.0);
    }
}
