//! Block-level RAID: the mirror and parity sets from §3.4.
//!
//! Vendor A machines run "a Linux multiple devices software mirror" (RAID1
//! over two drives); vendor C servers have "five hard drives … two of which
//! compose a hardware mirror, and the remaining three a stripe set with
//! parity" (RAID5). Both are implemented for real at block level, including
//! degraded reads, parity reconstruction and rebuild — so the disk-fault
//! experiments exercise genuine redundancy logic, not a flag.

use crate::disk::{Disk, DiskError, BLOCK_SIZE};

/// Errors from array operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidError {
    /// Logical block out of range.
    OutOfRange,
    /// More member failures than the redundancy can absorb.
    ArrayFailed,
    /// A member disk reported an error that could not be worked around.
    Unrecoverable,
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::OutOfRange => write!(f, "logical block out of range"),
            RaidError::ArrayFailed => write!(f, "array has failed"),
            RaidError::Unrecoverable => write!(f, "unrecoverable member error"),
        }
    }
}

impl std::error::Error for RaidError {}

/// A two-disk mirror (RAID1).
#[derive(Debug, Clone)]
pub struct Raid1 {
    members: [Disk; 2],
}

impl Raid1 {
    /// Build a mirror over two equal-sized disks.
    ///
    /// # Panics
    /// Panics if the members differ in size.
    pub fn new(a: Disk, b: Disk) -> Self {
        assert_eq!(a.num_blocks(), b.num_blocks(), "mirror members must match");
        Raid1 { members: [a, b] }
    }

    /// Logical capacity in blocks.
    pub fn num_blocks(&self) -> usize {
        self.members[0].num_blocks()
    }

    /// Access a member (for fault injection / S.M.A.R.T.).
    pub fn member_mut(&mut self, i: usize) -> &mut Disk {
        &mut self.members[i]
    }

    /// Member reference.
    pub fn member(&self, i: usize) -> &Disk {
        &self.members[i]
    }

    /// Number of members still operational.
    pub fn healthy_members(&self) -> usize {
        self.members
            .iter()
            .filter(|d| d.health().is_operational())
            .count()
    }

    /// Write-through to every live member.
    pub fn write_block(&mut self, index: usize, data: &[u8; BLOCK_SIZE]) -> Result<(), RaidError> {
        if index >= self.num_blocks() {
            return Err(RaidError::OutOfRange);
        }
        let mut ok = 0;
        for m in &mut self.members {
            match m.write_block(index, data) {
                Ok(()) => ok += 1,
                Err(DiskError::DiskFailed) => {}
                Err(_) => {}
            }
        }
        if ok == 0 {
            Err(RaidError::ArrayFailed)
        } else {
            Ok(())
        }
    }

    /// Read from the first member that can serve the block.
    pub fn read_block(&self, index: usize) -> Result<[u8; BLOCK_SIZE], RaidError> {
        if index >= self.num_blocks() {
            return Err(RaidError::OutOfRange);
        }
        for m in &self.members {
            if let Ok(b) = m.read_block(index) {
                return Ok(*b);
            }
        }
        Err(RaidError::ArrayFailed)
    }

    /// Rebuild a replaced member from its peer. `target` is the member index
    /// to rebuild into (its `Disk` should be fresh).
    pub fn rebuild(&mut self, target: usize) -> Result<(), RaidError> {
        let source = 1 - target;
        for i in 0..self.num_blocks() {
            let data = *self.members[source]
                .read_block(i)
                .map_err(|_| RaidError::Unrecoverable)?;
            self.members[target]
                .write_block(i, &data)
                .map_err(|_| RaidError::Unrecoverable)?;
        }
        Ok(())
    }
}

/// A three-disk (or wider) left-symmetric-less, simple rotating-parity RAID5.
#[derive(Debug, Clone)]
pub struct Raid5 {
    members: Vec<Disk>,
}

impl Raid5 {
    /// Build a parity set over `disks` (≥ 3, equal sizes).
    ///
    /// # Panics
    /// Panics if fewer than 3 members or mismatched sizes.
    pub fn new(disks: Vec<Disk>) -> Self {
        assert!(disks.len() >= 3, "RAID5 needs at least three members");
        let n = disks[0].num_blocks();
        assert!(
            disks.iter().all(|d| d.num_blocks() == n),
            "RAID5 members must match in size"
        );
        Raid5 { members: disks }
    }

    /// Number of members.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Logical capacity in blocks: (width − 1) data blocks per stripe.
    pub fn num_blocks(&self) -> usize {
        self.members[0].num_blocks() * (self.width() - 1)
    }

    /// Access a member for fault injection.
    pub fn member_mut(&mut self, i: usize) -> &mut Disk {
        &mut self.members[i]
    }

    /// Member reference.
    pub fn member(&self, i: usize) -> &Disk {
        &self.members[i]
    }

    /// Number of members still operational.
    pub fn healthy_members(&self) -> usize {
        self.members
            .iter()
            .filter(|d| d.health().is_operational())
            .count()
    }

    /// Map a logical block to `(stripe_row, member_index)`. Parity of row r
    /// lives on member `r % width` (right-rotating parity).
    fn map(&self, index: usize) -> (usize, usize) {
        let w = self.width();
        let row = index / (w - 1);
        let k = index % (w - 1);
        let parity = row % w;
        // Data members are the non-parity members, in order.
        let member = if k < parity { k } else { k + 1 };
        (row, member)
    }

    fn parity_member(&self, row: usize) -> usize {
        row % self.width()
    }

    /// Compute the XOR of all members' blocks in `row` except `skip`.
    fn xor_row_except(&self, row: usize, skip: usize) -> Result<[u8; BLOCK_SIZE], RaidError> {
        let mut acc = [0u8; BLOCK_SIZE];
        for (mi, m) in self.members.iter().enumerate() {
            if mi == skip {
                continue;
            }
            let b = m.read_block(row).map_err(|_| RaidError::ArrayFailed)?;
            for (a, &x) in acc.iter_mut().zip(b.iter()) {
                *a ^= x;
            }
        }
        Ok(acc)
    }

    /// Write a logical block, updating parity.
    pub fn write_block(&mut self, index: usize, data: &[u8; BLOCK_SIZE]) -> Result<(), RaidError> {
        if index >= self.num_blocks() {
            return Err(RaidError::OutOfRange);
        }
        let (row, member) = self.map(index);
        let pm = self.parity_member(row);

        // Reconstruct-write: read all other data blocks in the row (through
        // reconstruction if needed), compute fresh parity.
        let w = self.width();
        let mut datas: Vec<[u8; BLOCK_SIZE]> = Vec::with_capacity(w - 1);
        for mi in 0..w {
            if mi == pm {
                continue;
            }
            if mi == member {
                datas.push(*data);
            } else {
                datas.push(self.read_member_block(row, mi)?);
            }
        }
        let mut parity = [0u8; BLOCK_SIZE];
        for d in &datas {
            for (p, &x) in parity.iter_mut().zip(d.iter()) {
                *p ^= x;
            }
        }
        // Write data and parity to whatever members are alive.
        let mut alive_writes = 0;
        if self.members[member].write_block(row, data).is_ok() {
            alive_writes += 1;
        }
        if self.members[pm].write_block(row, &parity).is_ok() {
            alive_writes += 1;
        }
        if alive_writes == 0 && self.healthy_members() < w - 1 {
            return Err(RaidError::ArrayFailed);
        }
        Ok(())
    }

    /// Read member `mi`'s block in `row`, reconstructing from parity when
    /// the member cannot serve it.
    fn read_member_block(&self, row: usize, mi: usize) -> Result<[u8; BLOCK_SIZE], RaidError> {
        match self.members[mi].read_block(row) {
            Ok(b) => Ok(*b),
            Err(_) => {
                // Reconstruct: XOR of everything else in the row.
                if self
                    .members
                    .iter()
                    .enumerate()
                    .filter(|(i, d)| *i != mi && !d.health().is_operational())
                    .count()
                    > 0
                {
                    return Err(RaidError::ArrayFailed);
                }
                self.xor_row_except(row, mi)
            }
        }
    }

    /// Read a logical block (degraded-mode capable).
    pub fn read_block(&self, index: usize) -> Result<[u8; BLOCK_SIZE], RaidError> {
        if index >= self.num_blocks() {
            return Err(RaidError::OutOfRange);
        }
        let (row, member) = self.map(index);
        self.read_member_block(row, member)
    }

    /// Rebuild member `target` (fresh disk) from the surviving members.
    pub fn rebuild(&mut self, target: usize) -> Result<(), RaidError> {
        let rows = self.members[0].num_blocks();
        for row in 0..rows {
            let data = self.xor_row_except(row, target)?;
            self.members[target]
                .write_block(row, &data)
                .map_err(|_| RaidError::Unrecoverable)?;
        }
        Ok(())
    }

    /// Verify parity across all rows (scrub). Returns rows with bad parity.
    pub fn scrub(&self) -> Result<Vec<usize>, RaidError> {
        let rows = self.members[0].num_blocks();
        let mut bad = Vec::new();
        for row in 0..rows {
            let mut acc = [0u8; BLOCK_SIZE];
            for m in &self.members {
                let b = m.read_block(row).map_err(|_| RaidError::ArrayFailed)?;
                for (a, &x) in acc.iter_mut().zip(b.iter()) {
                    *a ^= x;
                }
            }
            if acc.iter().any(|&x| x != 0) {
                bad.push(row);
            }
        }
        Ok(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_block(seed: usize) -> [u8; BLOCK_SIZE] {
        let mut b = [0u8; BLOCK_SIZE];
        for (i, x) in b.iter_mut().enumerate() {
            *x = ((seed * 31 + i * 7) % 251) as u8;
        }
        b
    }

    #[test]
    fn raid1_roundtrip_and_degraded_read() -> Result<(), RaidError> {
        let mut arr = Raid1::new(Disk::new(16), Disk::new(16));
        for i in 0..16 {
            arr.write_block(i, &pattern_block(i))?;
        }
        arr.member_mut(0).fail();
        assert_eq!(arr.healthy_members(), 1);
        for i in 0..16 {
            assert_eq!(arr.read_block(i)?, pattern_block(i), "block {i}");
        }
        Ok(())
    }

    #[test]
    fn raid1_rebuild() -> Result<(), RaidError> {
        let mut arr = Raid1::new(Disk::new(8), Disk::new(8));
        for i in 0..8 {
            arr.write_block(i, &pattern_block(i + 100))?;
        }
        // Replace member 1 with a blank disk and rebuild.
        *arr.member_mut(1) = Disk::new(8);
        arr.rebuild(1)?;
        arr.member_mut(0).fail();
        for i in 0..8 {
            assert_eq!(arr.read_block(i)?, pattern_block(i + 100));
        }
        Ok(())
    }

    #[test]
    fn raid1_double_failure_is_fatal() -> Result<(), RaidError> {
        let mut arr = Raid1::new(Disk::new(4), Disk::new(4));
        arr.write_block(0, &pattern_block(0))?;
        arr.member_mut(0).fail();
        arr.member_mut(1).fail();
        assert_eq!(arr.read_block(0), Err(RaidError::ArrayFailed));
        assert_eq!(
            arr.write_block(0, &pattern_block(1)),
            Err(RaidError::ArrayFailed)
        );
        Ok(())
    }

    #[test]
    fn raid5_roundtrip() -> Result<(), RaidError> {
        let mut arr = Raid5::new(vec![Disk::new(12), Disk::new(12), Disk::new(12)]);
        assert_eq!(arr.num_blocks(), 24);
        for i in 0..24 {
            arr.write_block(i, &pattern_block(i))?;
        }
        for i in 0..24 {
            assert_eq!(arr.read_block(i)?, pattern_block(i), "block {i}");
        }
        assert!(arr.scrub()?.is_empty());
        Ok(())
    }

    #[test]
    fn raid5_survives_any_single_member_loss() -> Result<(), RaidError> {
        for victim in 0..3 {
            let mut arr = Raid5::new(vec![Disk::new(10), Disk::new(10), Disk::new(10)]);
            for i in 0..arr.num_blocks() {
                arr.write_block(i, &pattern_block(i * 3 + 1))?;
            }
            arr.member_mut(victim).fail();
            for i in 0..arr.num_blocks() {
                assert_eq!(
                    arr.read_block(i)?,
                    pattern_block(i * 3 + 1),
                    "victim {victim} block {i}"
                );
            }
        }
        Ok(())
    }

    #[test]
    fn raid5_rebuild_after_replacement() -> Result<(), RaidError> {
        let mut arr = Raid5::new(vec![Disk::new(10), Disk::new(10), Disk::new(10)]);
        for i in 0..arr.num_blocks() {
            arr.write_block(i, &pattern_block(i + 9))?;
        }
        *arr.member_mut(2) = Disk::new(10);
        arr.rebuild(2)?;
        assert!(arr.scrub()?.is_empty());
        // Now lose a different member and verify everything still reads.
        arr.member_mut(0).fail();
        for i in 0..arr.num_blocks() {
            assert_eq!(arr.read_block(i)?, pattern_block(i + 9));
        }
        Ok(())
    }

    #[test]
    fn raid5_double_failure_is_fatal() -> Result<(), RaidError> {
        let mut arr = Raid5::new(vec![Disk::new(6), Disk::new(6), Disk::new(6)]);
        for i in 0..arr.num_blocks() {
            arr.write_block(i, &pattern_block(i))?;
        }
        arr.member_mut(0).fail();
        arr.member_mut(1).fail();
        assert!(arr.read_block(0).is_err() || arr.read_block(5).is_err());
        Ok(())
    }

    #[test]
    fn raid5_pending_sector_reconstruction() -> Result<(), RaidError> {
        // A single unreadable sector (not a whole-disk failure) must be
        // served via parity.
        let mut arr = Raid5::new(vec![Disk::new(8), Disk::new(8), Disk::new(8)]);
        for i in 0..arr.num_blocks() {
            arr.write_block(i, &pattern_block(i + 2))?;
        }
        // Find the member holding logical block 5 and break that sector.
        let (row, member) = arr.map(5);
        arr.member_mut(member).inject_pending_sector(row);
        assert_eq!(arr.read_block(5)?, pattern_block(7));
        Ok(())
    }

    #[test]
    fn raid5_wider_arrays() -> Result<(), RaidError> {
        let mut arr = Raid5::new(vec![
            Disk::new(6),
            Disk::new(6),
            Disk::new(6),
            Disk::new(6),
            Disk::new(6),
        ]);
        assert_eq!(arr.num_blocks(), 24);
        for i in 0..24 {
            arr.write_block(i, &pattern_block(i * 11))?;
        }
        arr.member_mut(3).fail();
        for i in 0..24 {
            assert_eq!(arr.read_block(i)?, pattern_block(i * 11));
        }
        Ok(())
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn raid5_too_narrow_rejected() {
        Raid5::new(vec![Disk::new(4), Disk::new(4)]);
    }

    #[test]
    fn parity_rotates_across_members() {
        let arr = Raid5::new(vec![Disk::new(9), Disk::new(9), Disk::new(9)]);
        let parities: Vec<usize> = (0..6).map(|r| arr.parity_member(r)).collect();
        assert_eq!(parities, vec![0, 1, 2, 0, 1, 2]);
    }
}
