//! The motherboard sensor chip (the `lm-sensors` view of the world).
//!
//! §4.2.1 documents a remarkable failure chain on the longest-running host
//! after it saw −22 °C outside air:
//!
//! 1. the chip reported CPU temperatures below −4 °C, then **clearly
//!    erroneous readings of −111 °C**;
//! 2. an attempted re-detection of the chip made things *worse* — the chip
//!    ceased to be detected at all;
//! 3. after a week, a **warm reboot** brought it back, and it behaved
//!    normally ever after.
//!
//! [`SensorChip`] is that state machine. The fault layer triggers the
//! erratic transition (deep-cold exposure); the repair layer drives
//! re-detection attempts and reboots.

use crate::component::ComponentHealth;

/// The erroneous reading the paper quotes.
pub const ERRATIC_READING_C: f64 = -111.0;

/// Operating states of the sensor chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorState {
    /// Reporting real temperatures.
    Ok,
    /// Cold-faulted: reports the −111 °C garbage value.
    Erratic,
    /// Not detected on the bus at all (no readings).
    Undetected,
}

/// A motherboard hardware-monitoring chip.
#[derive(Debug, Clone)]
pub struct SensorChip {
    state: SensorState,
    /// Minimum CPU temperature ever passed through this chip (diagnostics).
    min_seen_c: f64,
    /// Number of erratic readings produced.
    erratic_count: u64,
}

impl SensorChip {
    /// A fresh, working chip.
    pub fn new() -> Self {
        SensorChip {
            state: SensorState::Ok,
            min_seen_c: f64::INFINITY,
            erratic_count: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SensorState {
        self.state
    }

    /// Health mapping for fleet reports.
    pub fn health(&self) -> ComponentHealth {
        match self.state {
            SensorState::Ok => ComponentHealth::Healthy,
            SensorState::Erratic => ComponentHealth::Degraded,
            SensorState::Undetected => ComponentHealth::Failed,
        }
    }

    /// Read the CPU temperature through the chip. `actual_c` is the physical
    /// die temperature from the thermal model. Returns `None` when the chip
    /// is not detected.
    pub fn read_cpu_temp(&mut self, actual_c: f64) -> Option<f64> {
        match self.state {
            SensorState::Ok => {
                self.min_seen_c = self.min_seen_c.min(actual_c);
                Some(actual_c)
            }
            SensorState::Erratic => {
                self.erratic_count += 1;
                Some(ERRATIC_READING_C)
            }
            SensorState::Undetected => None,
        }
    }

    /// Inject the deep-cold fault: the chip starts reporting garbage.
    /// No-op if the chip is currently undetected.
    pub fn inject_cold_fault(&mut self) {
        if self.state == SensorState::Ok {
            self.state = SensorState::Erratic;
        }
    }

    /// Attempt to re-detect the chip (the authors' first repair idea).
    /// Mirrors the paper: instead of resetting it, the chip disappears.
    pub fn attempt_redetect(&mut self) {
        if self.state == SensorState::Erratic {
            self.state = SensorState::Undetected;
        }
    }

    /// A warm system reboot — this is what actually fixed the chip.
    pub fn warm_reboot(&mut self) {
        self.state = SensorState::Ok;
    }

    /// Lowest CPU temperature this chip has truthfully reported, °C.
    pub fn min_seen_c(&self) -> f64 {
        self.min_seen_c
    }

    /// How many −111 °C readings were produced.
    pub fn erratic_count(&self) -> u64 {
        self.erratic_count
    }
}

impl Default for SensorChip {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fault_chain() {
        let mut chip = SensorChip::new();
        // Normal cold operation: truthful readings down to −4 °C.
        assert_eq!(chip.read_cpu_temp(-4.0), Some(-4.0));
        assert_eq!(chip.min_seen_c(), -4.0);

        // Deep-cold fault: erroneous −111 °C readings.
        chip.inject_cold_fault();
        assert_eq!(chip.read_cpu_temp(-2.0), Some(ERRATIC_READING_C));
        assert_eq!(chip.state(), SensorState::Erratic);
        assert_eq!(chip.health(), ComponentHealth::Degraded);

        // Re-detection makes it worse: chip vanishes.
        chip.attempt_redetect();
        assert_eq!(chip.read_cpu_temp(0.0), None);
        assert_eq!(chip.state(), SensorState::Undetected);
        assert_eq!(chip.health(), ComponentHealth::Failed);

        // A warm reboot restores it; no further problems.
        chip.warm_reboot();
        assert_eq!(chip.read_cpu_temp(3.5), Some(3.5));
        assert_eq!(chip.health(), ComponentHealth::Healthy);
    }

    #[test]
    fn redetect_on_healthy_chip_is_harmless() {
        let mut chip = SensorChip::new();
        chip.attempt_redetect();
        assert_eq!(chip.state(), SensorState::Ok);
        assert_eq!(chip.read_cpu_temp(10.0), Some(10.0));
    }

    #[test]
    fn erratic_count_accumulates() {
        let mut chip = SensorChip::new();
        chip.inject_cold_fault();
        for _ in 0..5 {
            chip.read_cpu_temp(1.0);
        }
        assert_eq!(chip.erratic_count(), 5);
    }

    #[test]
    fn min_seen_only_tracks_truthful_readings() {
        let mut chip = SensorChip::new();
        chip.read_cpu_temp(5.0);
        chip.inject_cold_fault();
        chip.read_cpu_temp(-50.0); // erratic, must not pollute min
        assert_eq!(chip.min_seen_c(), 5.0);
    }

    #[test]
    fn cold_fault_on_undetected_chip_is_noop() {
        let mut chip = SensorChip::new();
        chip.inject_cold_fault();
        chip.attempt_redetect();
        chip.inject_cold_fault();
        assert_eq!(chip.state(), SensorState::Undetected);
    }
}
