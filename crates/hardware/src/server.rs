//! Vendor specs and assembled machines.
//!
//! §3.4: ten hosts from vendor A, four from B (the known-unreliable series)
//! and four from C were split pairwise between tent and basement (nine
//! each); a nineteenth machine later replaced host #15. [`ServerSpec`]
//! captures per-vendor hardware (power envelope, memory, storage layout)
//! and [`Server`] assembles the live components.

use crate::component::ComponentHealth;
use crate::disk::Disk;
use crate::memory::MemoryBank;
use crate::psu::Psu;
use crate::raid::{Raid1, Raid5};
use crate::sensors::SensorChip;

/// The three vendors of §3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Small vendor building "cloned" desktops from COTS parts.
    A,
    /// Large vendor's mass-manufactured small-form-factor workstations.
    B,
    /// Large vendor's 2U rack servers.
    C,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::A => write!(f, "A"),
            Vendor::B => write!(f, "B"),
            Vendor::C => write!(f, "C"),
        }
    }
}

/// Storage layout per vendor.
#[derive(Debug, Clone)]
pub enum Storage {
    /// Vendor B: a single drive.
    Single(Disk),
    /// Vendor A: two drives in a Linux `md` software mirror.
    SoftwareMirror(Raid1),
    /// Vendor C: hardware mirror + 3-drive parity stripe set.
    MirrorPlusParity {
        /// The two-drive hardware mirror (system volume).
        mirror: Raid1,
        /// The three-drive RAID5 (data volume).
        parity: Raid5,
    },
}

impl Storage {
    /// Number of physical drives.
    pub fn drive_count(&self) -> usize {
        match self {
            Storage::Single(_) => 1,
            Storage::SoftwareMirror(_) => 2,
            Storage::MirrorPlusParity { .. } => 5,
        }
    }

    /// Iterate over the drives mutably (S.M.A.R.T. ticks, fault injection).
    pub fn for_each_disk_mut(&mut self, mut f: impl FnMut(&mut Disk)) {
        match self {
            Storage::Single(d) => f(d),
            Storage::SoftwareMirror(r) => {
                f(r.member_mut(0));
                f(r.member_mut(1));
            }
            Storage::MirrorPlusParity { mirror, parity } => {
                f(mirror.member_mut(0));
                f(mirror.member_mut(1));
                for i in 0..parity.width() {
                    f(parity.member_mut(i));
                }
            }
        }
    }

    /// All drives pass their long self-tests?
    pub fn all_long_tests_pass(&mut self) -> bool {
        let mut ok = true;
        self.for_each_disk_mut(|d| {
            if d.long_self_test() != crate::disk::SelfTestResult::Passed {
                ok = false;
            }
        });
        ok
    }
}

/// Static description of one machine model.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Which vendor.
    pub vendor: Vendor,
    /// Marketing-style form factor name.
    pub form_factor: &'static str,
    /// DC power draw at idle, W.
    pub idle_power_w: f64,
    /// DC power draw at full synthetic load, W.
    pub load_power_w: f64,
    /// CPU package power at idle, W.
    pub cpu_idle_w: f64,
    /// CPU package power at full load, W.
    pub cpu_load_w: f64,
    /// Installed memory, MiB.
    pub memory_mib: u32,
    /// Whether the DIMMs are ECC.
    pub ecc: bool,
    /// PSU rating, W.
    pub psu_rated_w: f64,
    /// PSU efficiency.
    pub psu_efficiency: f64,
    /// Whether this unit belongs to the known-defective series (§3: the
    /// unreliable vendor-B workstations with bad airflow).
    pub defective_series: bool,
    /// Disk size used for the in-memory block stores, in 4-KiB blocks.
    pub disk_blocks: usize,
}

impl ServerSpec {
    /// Vendor A clone desktop.
    pub fn vendor_a() -> Self {
        ServerSpec {
            vendor: Vendor::A,
            form_factor: "medium tower",
            idle_power_w: 70.0,
            load_power_w: 125.0,
            cpu_idle_w: 15.0,
            cpu_load_w: 65.0,
            memory_mib: 2048,
            ecc: false,
            psu_rated_w: 300.0,
            psu_efficiency: 0.78,
            defective_series: false,
            disk_blocks: 64,
        }
    }

    /// Vendor B small-form-factor workstation (optionally from the
    /// known-defective series).
    pub fn vendor_b(defective_series: bool) -> Self {
        ServerSpec {
            vendor: Vendor::B,
            form_factor: "small form factor",
            idle_power_w: 45.0,
            load_power_w: 85.0,
            cpu_idle_w: 12.0,
            cpu_load_w: 48.0,
            memory_mib: 1024,
            ecc: false,
            psu_rated_w: 220.0,
            psu_efficiency: 0.75,
            defective_series,
            disk_blocks: 64,
        }
    }

    /// Vendor C 2U rack server.
    pub fn vendor_c() -> Self {
        ServerSpec {
            vendor: Vendor::C,
            form_factor: "2U rack",
            idle_power_w: 150.0,
            load_power_w: 260.0,
            cpu_idle_w: 40.0,
            cpu_load_w: 140.0,
            memory_mib: 4096,
            ecc: true,
            psu_rated_w: 650.0,
            psu_efficiency: 0.82,
            defective_series: false,
            disk_blocks: 64,
        }
    }

    /// DC power draw at a given utilization (0 = idle, 1 = full load).
    pub fn dc_power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_power_w + u * (self.load_power_w - self.idle_power_w)
    }

    /// CPU package power at a given utilization.
    pub fn cpu_power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.cpu_idle_w + u * (self.cpu_load_w - self.cpu_idle_w)
    }
}

/// Run state of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Executing the workload.
    Running,
    /// Hung: powered but not executing (a "transient system failure" —
    /// needs a reset).
    Hung,
    /// Powered off / removed.
    Off,
}

/// An assembled machine.
#[derive(Debug, Clone)]
pub struct Server {
    /// Static spec.
    pub spec: ServerSpec,
    /// Motherboard sensor chip.
    pub sensors: SensorChip,
    /// Memory subsystem.
    pub memory: MemoryBank,
    /// Storage subsystem.
    pub storage: Storage,
    /// Power supply.
    pub psu: Psu,
    state: PowerState,
    uptime_hours: f64,
    reset_count: u32,
}

impl Server {
    /// Assemble a machine from its spec.
    pub fn new(spec: ServerSpec) -> Self {
        let storage = match spec.vendor {
            Vendor::A => Storage::SoftwareMirror(Raid1::new(
                Disk::new(spec.disk_blocks),
                Disk::new(spec.disk_blocks),
            )),
            Vendor::B => Storage::Single(Disk::new(spec.disk_blocks)),
            Vendor::C => Storage::MirrorPlusParity {
                mirror: Raid1::new(Disk::new(spec.disk_blocks), Disk::new(spec.disk_blocks)),
                parity: Raid5::new(vec![
                    Disk::new(spec.disk_blocks),
                    Disk::new(spec.disk_blocks),
                    Disk::new(spec.disk_blocks),
                ]),
            },
        };
        Server {
            sensors: SensorChip::new(),
            memory: MemoryBank::new(spec.memory_mib, spec.ecc),
            psu: Psu::new(spec.psu_rated_w, spec.psu_efficiency),
            storage,
            spec,
            state: PowerState::Running,
            uptime_hours: 0.0,
            reset_count: 0,
        }
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// True if the machine is executing its workload.
    pub fn is_running(&self) -> bool {
        self.state == PowerState::Running
    }

    /// Hang the machine (transient system failure).
    pub fn hang(&mut self) {
        if self.state == PowerState::Running {
            self.state = PowerState::Hung;
        }
    }

    /// Reset / reboot: resumes operation (warm reboot also recovers the
    /// sensor chip, per §4.2.1) and restarts the uptime clock.
    pub fn reset(&mut self) {
        self.state = PowerState::Running;
        self.sensors.warm_reboot();
        self.uptime_hours = 0.0;
        self.reset_count += 1;
    }

    /// Power the machine down (taken indoors / decommissioned).
    pub fn power_off(&mut self) {
        self.state = PowerState::Off;
    }

    /// Advance operating time; feeds S.M.A.R.T. with the drive temperature.
    pub fn tick(&mut self, dt_hours: f64, hdd_temp_c: f64) {
        if self.state == PowerState::Off {
            return;
        }
        if self.state == PowerState::Running {
            self.uptime_hours += dt_hours;
        }
        self.storage
            .for_each_disk_mut(|d| d.tick(dt_hours, hdd_temp_c));
    }

    /// Wall power currently drawn at utilization `u` (0 when off; a hung
    /// machine idles).
    pub fn wall_power_w(&self, utilization: f64) -> f64 {
        match self.state {
            PowerState::Off => 0.0,
            PowerState::Hung => self.psu.wall_power_w(self.spec.idle_power_w),
            PowerState::Running => self.psu.wall_power_w(self.spec.dc_power_w(utilization)),
        }
    }

    /// Continuous uptime since the last reset, hours.
    pub fn uptime_hours(&self) -> f64 {
        self.uptime_hours
    }

    /// Number of resets this machine has needed.
    pub fn reset_count(&self) -> u32 {
        self.reset_count
    }

    /// Summary health: failed if hung/off or a vital component failed.
    pub fn health(&self) -> ComponentHealth {
        if self.state != PowerState::Running || !self.psu.health().is_operational() {
            return ComponentHealth::Failed;
        }
        if self.sensors.health() == ComponentHealth::Healthy {
            ComponentHealth::Healthy
        } else {
            ComponentHealth::Degraded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_storage_layouts() {
        assert_eq!(Server::new(ServerSpec::vendor_a()).storage.drive_count(), 2);
        assert_eq!(
            Server::new(ServerSpec::vendor_b(true))
                .storage
                .drive_count(),
            1
        );
        assert_eq!(Server::new(ServerSpec::vendor_c()).storage.drive_count(), 5);
    }

    #[test]
    fn power_model_interpolates() {
        let spec = ServerSpec::vendor_a();
        assert_eq!(spec.dc_power_w(0.0), 70.0);
        assert_eq!(spec.dc_power_w(1.0), 125.0);
        assert!((spec.dc_power_w(0.5) - 97.5).abs() < 1e-9);
        assert!(spec.cpu_power_w(1.0) > spec.cpu_power_w(0.0));
        // Clamping.
        assert_eq!(spec.dc_power_w(2.0), 125.0);
        assert_eq!(spec.dc_power_w(-1.0), 70.0);
    }

    #[test]
    fn wall_power_by_state() {
        let mut s = Server::new(ServerSpec::vendor_b(false));
        let running = s.wall_power_w(1.0);
        assert!(running > 85.0); // includes PSU losses
        s.hang();
        let hung = s.wall_power_w(1.0);
        assert!(hung < running && hung > 0.0);
        s.power_off();
        assert_eq!(s.wall_power_w(1.0), 0.0);
    }

    #[test]
    fn hang_and_reset_cycle() {
        let mut s = Server::new(ServerSpec::vendor_b(true));
        s.tick(100.0, 25.0);
        assert!((s.uptime_hours() - 100.0).abs() < 1e-9);
        s.hang();
        assert!(!s.is_running());
        assert_eq!(s.health(), ComponentHealth::Failed);
        s.tick(10.0, 25.0); // hung time does not count as uptime
        assert!((s.uptime_hours() - 100.0).abs() < 1e-9);
        s.reset();
        assert!(s.is_running());
        assert_eq!(s.reset_count(), 1);
        assert_eq!(s.uptime_hours(), 0.0);
    }

    #[test]
    fn reset_recovers_sensor_chip() {
        let mut s = Server::new(ServerSpec::vendor_a());
        s.sensors.inject_cold_fault();
        s.sensors.attempt_redetect();
        assert!(s.sensors.read_cpu_temp(0.0).is_none());
        s.reset();
        assert_eq!(s.sensors.read_cpu_temp(1.0), Some(1.0));
    }

    #[test]
    fn smart_ticks_reach_all_drives() {
        let mut s = Server::new(ServerSpec::vendor_c());
        s.tick(5.0, -3.0);
        let mut count = 0;
        s.storage.for_each_disk_mut(|d| {
            assert_eq!(d.smart().temperature_c, -3.0);
            assert!((d.smart().power_on_hours - 5.0).abs() < 1e-9);
            count += 1;
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn ecc_by_vendor() {
        assert!(!Server::new(ServerSpec::vendor_a()).memory.ecc);
        assert!(!Server::new(ServerSpec::vendor_b(false)).memory.ecc);
        assert!(Server::new(ServerSpec::vendor_c()).memory.ecc);
    }

    #[test]
    fn long_tests_pass_on_fresh_hardware() {
        let mut s = Server::new(ServerSpec::vendor_c());
        assert!(s.storage.all_long_tests_pass());
    }
}
