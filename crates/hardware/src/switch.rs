//! The 8-port network switches (§4.2.1, last paragraph).
//!
//! The authors shared connectivity through two 8-port switches "known to
//! contain cosmetic errors, i.e., an annoying whining sound during normal
//! operation". Both failed after about a week in the tent — but so did the
//! spare that never left the building, so the defect was inherent to those
//! individual units, not caused by the conditions. [`SwitchUnit`] models
//! that: a latent defect with an operating-hours-based failure, independent
//! of environment.

use crate::component::ComponentHealth;

/// One 8-port Ethernet switch.
#[derive(Debug, Clone)]
pub struct SwitchUnit {
    /// Identifier for reports.
    pub label: &'static str,
    /// The audible whine: present on the defective series.
    pub whines: bool,
    /// Latent defect: fails after roughly this many powered hours,
    /// regardless of where it operates. `None` = sound unit.
    defect_lifetime_h: Option<f64>,
    powered_hours: f64,
    health: ComponentHealth,
}

impl SwitchUnit {
    /// A unit from the whiny, defective batch.
    pub fn defective(label: &'static str, lifetime_h: f64) -> Self {
        SwitchUnit {
            label,
            whines: true,
            defect_lifetime_h: Some(lifetime_h),
            powered_hours: 0.0,
            health: ComponentHealth::Degraded, // the whine is an anomaly
        }
    }

    /// A sound unit.
    pub fn sound(label: &'static str) -> Self {
        SwitchUnit {
            label,
            whines: false,
            defect_lifetime_h: None,
            powered_hours: 0.0,
            health: ComponentHealth::Healthy,
        }
    }

    /// Accumulate powered-on time; the latent defect matures with hours,
    /// not with temperature.
    pub fn tick(&mut self, dt_hours: f64) {
        if self.health == ComponentHealth::Failed {
            return;
        }
        self.powered_hours += dt_hours;
        if let Some(limit) = self.defect_lifetime_h {
            if self.powered_hours >= limit {
                self.health = ComponentHealth::Failed;
            }
        }
    }

    /// Is the unit forwarding frames?
    pub fn is_forwarding(&self) -> bool {
        self.health.is_operational()
    }

    /// Current health.
    pub fn health(&self) -> ComponentHealth {
        self.health
    }

    /// Powered-on hours so far.
    pub fn powered_hours(&self) -> f64 {
        self.powered_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defective_unit_fails_by_hours_not_location() {
        // Two identical defective units, one "in the tent", one "indoors":
        // both fail at the same powered-hours point.
        let mut tent_unit = SwitchUnit::defective("sw-1", 170.0);
        let mut indoor_unit = SwitchUnit::defective("sw-3 (spare)", 170.0);
        for _ in 0..169 {
            tent_unit.tick(1.0);
            indoor_unit.tick(1.0);
        }
        assert!(tent_unit.is_forwarding());
        assert!(indoor_unit.is_forwarding());
        tent_unit.tick(1.0);
        indoor_unit.tick(1.0);
        assert!(!tent_unit.is_forwarding());
        assert!(!indoor_unit.is_forwarding());
    }

    #[test]
    fn sound_unit_never_fails_from_hours() {
        let mut sw = SwitchUnit::sound("good");
        sw.tick(100_000.0);
        assert!(sw.is_forwarding());
        assert_eq!(sw.health(), ComponentHealth::Healthy);
    }

    #[test]
    fn whine_is_degraded_but_operational() {
        let sw = SwitchUnit::defective("whiny", 1000.0);
        assert!(sw.whines);
        assert_eq!(sw.health(), ComponentHealth::Degraded);
        assert!(sw.is_forwarding());
    }

    #[test]
    fn failed_unit_stops_accumulating() {
        let mut sw = SwitchUnit::defective("sw", 10.0);
        sw.tick(20.0);
        assert!(!sw.is_forwarding());
        let h = sw.powered_hours();
        sw.tick(5.0);
        assert_eq!(sw.powered_hours(), h);
    }
}
