//! Toy public-key session handshake.
//!
//! The collection tunnel "is done using public-key authentication through
//! an OpenSSH tunnel" (§3.5). We model the *protocol flow* — key exchange,
//! challenge, proof, verification — with a Diffie–Hellman-shaped exchange
//! over a 61-bit Mersenne-prime field and MD5 as the proof MAC.
//!
//! **This is NOT cryptography.** The field is laughably small and MD5 is
//! broken; the module exists so the simulated collector performs the same
//! message round-trips (and failure modes: wrong key → rejected session) as
//! the real pipeline, with deterministic, dependency-free arithmetic.

use frostlab_compress::md5::md5;
use frostlab_simkern::rng::Rng;

/// The field prime: 2⁶¹ − 1 (Mersenne).
pub const P: u64 = (1 << 61) - 1;
/// Generator.
pub const G: u64 = 5;

/// Modular multiplication via 128-bit intermediate.
fn mul_mod(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(P)) as u64
}

/// Modular exponentiation.
pub fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= P;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// A host's identity keypair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// Secret exponent.
    secret: u64,
    /// Public value `g^secret mod p`.
    pub public: u64,
}

impl KeyPair {
    /// Generate a keypair from a host's RNG stream.
    pub fn generate(rng: &mut Rng) -> KeyPair {
        let secret = rng.next_u64() % (P - 2) + 1;
        KeyPair {
            secret,
            public: pow_mod(G, secret),
        }
    }

    /// Shared secret with a peer's public value.
    pub fn shared_secret(&self, peer_public: u64) -> u64 {
        pow_mod(peer_public, self.secret)
    }
}

/// The proof a client sends for a server challenge.
pub fn proof(shared_secret: u64, nonce: u64) -> [u8; 16] {
    let mut msg = [0u8; 16];
    msg[..8].copy_from_slice(&shared_secret.to_be_bytes());
    msg[8..].copy_from_slice(&nonce.to_be_bytes());
    md5(&msg)
}

/// Server-side session acceptor: knows the set of authorized public keys.
#[derive(Debug, Clone)]
pub struct Acceptor {
    authorized: Vec<u64>,
    keys: KeyPair,
    rng: Rng,
}

/// Outcome of a handshake attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeResult {
    /// Session established.
    Accepted,
    /// The presented public key is not in `authorized_keys`.
    UnknownKey,
    /// The proof did not verify (wrong secret).
    BadProof,
}

impl Acceptor {
    /// New acceptor with its own identity and an authorized-keys list.
    pub fn new(rng: &mut Rng, authorized: Vec<u64>) -> Self {
        Acceptor {
            authorized,
            keys: KeyPair::generate(rng),
            rng: rng.derive("acceptor"),
        }
    }

    /// The server's public key (sent in its hello).
    pub fn public(&self) -> u64 {
        self.keys.public
    }

    /// Issue a fresh challenge nonce.
    pub fn challenge(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Verify a client's handshake.
    pub fn verify(
        &self,
        client_public: u64,
        nonce: u64,
        client_proof: [u8; 16],
    ) -> HandshakeResult {
        if !self.authorized.contains(&client_public) {
            return HandshakeResult::UnknownKey;
        }
        let shared = self.keys.shared_secret(client_public);
        if proof(shared, nonce) == client_proof {
            HandshakeResult::Accepted
        } else {
            HandshakeResult::BadProof
        }
    }
}

/// Run the whole four-message handshake between a client keypair and an
/// acceptor, as the collector does before each transfer.
pub fn handshake(client: &KeyPair, server: &mut Acceptor) -> HandshakeResult {
    // 1. client hello: client's public key. 2. server hello + challenge.
    let nonce = server.challenge();
    // 3. client proof over the shared secret.
    let shared = client.shared_secret(server.public());
    let p = proof(shared, nonce);
    // 4. server verdict.
    server.verify(client.public, nonce, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_shared_secret_agrees() {
        let mut rng = Rng::new(11);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_eq!(a.shared_secret(b.public), b.shared_secret(a.public));
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn authorized_client_accepted() {
        let mut rng = Rng::new(12);
        let client = KeyPair::generate(&mut rng);
        let mut server = Acceptor::new(&mut rng, vec![client.public]);
        assert_eq!(handshake(&client, &mut server), HandshakeResult::Accepted);
    }

    #[test]
    fn unknown_key_rejected() {
        let mut rng = Rng::new(13);
        let client = KeyPair::generate(&mut rng);
        let stranger = KeyPair::generate(&mut rng);
        let mut server = Acceptor::new(&mut rng, vec![client.public]);
        assert_eq!(
            handshake(&stranger, &mut server),
            HandshakeResult::UnknownKey
        );
    }

    #[test]
    fn wrong_secret_rejected() {
        let mut rng = Rng::new(14);
        let client = KeyPair::generate(&mut rng);
        let imposter = KeyPair {
            secret: client.secret ^ 0xDEAD,
            public: client.public, // claims the same identity
        };
        let mut server = Acceptor::new(&mut rng, vec![client.public]);
        assert_eq!(handshake(&imposter, &mut server), HandshakeResult::BadProof);
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(G, 0), 1);
        assert_eq!(pow_mod(G, 1), G);
        assert_eq!(pow_mod(2, 61) % P, pow_mod(2, 61)); // stays reduced
                                                        // Fermat: g^(p-1) ≡ 1.
        assert_eq!(pow_mod(G, P - 1), 1);
    }

    #[test]
    fn challenges_vary() {
        let mut rng = Rng::new(15);
        let mut server = Acceptor::new(&mut rng, vec![]);
        let a = server.challenge();
        let b = server.challenge();
        assert_ne!(a, b);
    }
}
