//! Typed errors for the network substrate.
//!
//! The seed code panicked on topology misuse (attaching to a taken port,
//! sending from an unregistered NIC) and on malformed wire data. A fault
//! platform must degrade gracefully instead of aborting the simulation, so
//! these conditions are now ordinary values the orchestrator can observe.

use crate::frame::MacAddr;
use crate::net::SwitchId;

/// Everything that can go wrong while building or driving the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A MAC address that was never registered with [`crate::net::Network::add_host`].
    UnknownHost(MacAddr),
    /// A switch id that does not exist in this network.
    UnknownSwitch(SwitchId),
    /// Port index beyond the switch's port count.
    PortOutOfRange {
        /// The switch addressed.
        switch: SwitchId,
        /// The offending port index.
        port: u8,
    },
    /// The port already has an attachment.
    PortInUse {
        /// The switch addressed.
        switch: SwitchId,
        /// The occupied port.
        port: u8,
    },
    /// A transport segment too short or inconsistent to parse.
    MalformedSegment {
        /// Observed payload length.
        len: usize,
    },
    /// The peer exceeded the retransmission budget and was declared dead.
    PeerDead,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownHost(mac) => write!(f, "unknown host {mac}"),
            NetError::UnknownSwitch(sw) => write!(f, "unknown switch {}", sw.0),
            NetError::PortOutOfRange { switch, port } => {
                write!(f, "port {port} out of range on switch {}", switch.0)
            }
            NetError::PortInUse { switch, port } => {
                write!(f, "port {port} on switch {} already in use", switch.0)
            }
            NetError::MalformedSegment { len } => {
                write!(f, "malformed transport segment ({len} bytes)")
            }
            NetError::PeerDead => write!(f, "peer declared dead after retry budget exhausted"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = NetError::PortInUse {
            switch: SwitchId(1),
            port: 3,
        };
        assert!(e.to_string().contains("port 3"));
        assert!(NetError::PeerDead.to_string().contains("dead"));
        assert!(NetError::MalformedSegment { len: 2 }
            .to_string()
            .contains("2 bytes"));
    }
}
