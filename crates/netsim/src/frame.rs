//! Ethernet-style frames.

use bytes::Bytes;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Locally administered address derived from a small integer id —
    /// convenient for fleet numbering (host #15 → `02:fb:00:00:00:0f`).
    pub fn from_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0xFB, b[0], b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType used by the frostlab transport.
pub const ETHERTYPE_FROST: u16 = 0xF057;

/// An Ethernet-ish frame. Payload is reference-counted (`Bytes`), so
/// flooding a frame out of several switch ports does not copy it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC.
    pub dst: MacAddr,
    /// EtherType.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// Build a transport frame.
    pub fn new(src: MacAddr, dst: MacAddr, payload: Bytes) -> Frame {
        Frame {
            src,
            dst,
            ethertype: ETHERTYPE_FROST,
            payload,
        }
    }

    /// Total on-wire size (header 14 + payload + FCS 4), bytes.
    pub fn wire_len(&self) -> usize {
        14 + self.payload.len() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_id_unique_and_local() {
        let a = MacAddr::from_id(1);
        let b = MacAddr::from_id(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0] & 0x02, 0x02, "locally administered bit set");
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn display_format() {
        assert_eq!(MacAddr::from_id(15).to_string(), "02:fb:00:00:00:0f");
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }

    #[test]
    fn wire_len() {
        let f = Frame::new(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Bytes::from_static(b"hello"),
        );
        assert_eq!(f.wire_len(), 14 + 5 + 4);
    }
}
