//! # frostlab-netsim
//!
//! The monitoring network, simulated at frame level.
//!
//! §3.5: a monitoring host recovers all md5sums and sensor data every 20
//! minutes over an OpenSSH tunnel with public-key authentication, new files
//! transferred by rsync; §4.2.1: connectivity ran through two 8-port
//! switches from a whiny, defective batch, both of which died mid-campaign.
//! To reproduce the collection pipeline and its failure behaviour, this
//! crate implements the stack from the wire up — event-driven and
//! allocation-conscious in the smoltcp tradition:
//!
//! * [`frame`] — Ethernet-style frames and MAC addresses (`bytes` payloads);
//! * [`net`] — links with latency and loss, learning switches (8 ports,
//!   MAC tables, flooding), host NICs with inboxes, deterministic delivery
//!   through a time-ordered queue;
//! * [`transport`] — a miniature reliable, in-order message transport
//!   (sliding window, cumulative ACKs, retransmission timers) — enough TCP
//!   to carry rsync traffic over a lossy link;
//! * [`rsyncp`] — the actual rsync algorithm: rolling weak checksum + MD5
//!   strong checksum signatures, delta computation and application;
//! * [`auth`] — a toy Diffie–Hellman-flavoured handshake modelling the
//!   OpenSSH public-key session setup (NOT cryptography; a protocol-flow
//!   model, clearly labelled);
//! * [`collector`] — the 20-minute collection round: authenticate, exchange
//!   signatures, ship deltas, mirror the fleet's logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod collector;
pub mod error;
pub mod frame;
pub mod net;
pub mod rsyncp;
pub mod transport;

pub use error::NetError;
pub use frame::{Frame, MacAddr};
pub use net::{Network, SwitchId};
pub use transport::Endpoint;
