//! Topology and frame delivery: links, learning switches, host NICs.
//!
//! The model is deliberately simple and deterministic:
//!
//! * every attachment (host↔switch or switch↔switch) is a full-duplex link
//!   with a fixed latency and an optional loss probability;
//! * switches are transparent learning bridges: they learn the source MAC →
//!   ingress port mapping, forward to the learned port, and flood unknown
//!   destinations and broadcasts — the standard algorithm;
//! * a failed switch (the paper lost two) silently eats every frame;
//! * delivery order is governed by a [`EventQueue`], so two frames in
//!   flight never race nondeterministically.
//!
//! Loop-free topologies only (no spanning tree — the study's network was a
//! daisy chain of two 8-port switches).

use std::collections::{BTreeMap, VecDeque};

use frostlab_simkern::event::EventQueue;
use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::error::NetError;
use crate::frame::{Frame, MacAddr};

/// Identifier of a switch in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub usize);

/// Number of ports on the study's switches.
pub const SWITCH_PORTS: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attachment {
    Host(MacAddr),
    Switch(SwitchId, u8),
}

#[derive(Debug)]
struct SwitchState {
    ports: [Option<Attachment>; SWITCH_PORTS],
    mac_table: BTreeMap<MacAddr, u8>,
    up: bool,
}

#[derive(Debug)]
struct HostState {
    attached: Option<(SwitchId, u8)>,
    inbox: VecDeque<Frame>,
}

#[derive(Debug)]
enum NetEvent {
    AtSwitch {
        sw: SwitchId,
        in_port: u8,
        frame: Frame,
    },
    AtHost {
        mac: MacAddr,
        frame: Frame,
    },
}

/// Delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to host inboxes.
    pub delivered: u64,
    /// Payload + header bytes handed to host inboxes.
    pub delivered_bytes: u64,
    /// Frames dropped by dead switches.
    pub dropped_switch_down: u64,
    /// Frames dropped by link loss.
    pub dropped_loss: u64,
    /// Frames dropped because a port exceeded its per-second capacity.
    pub dropped_congestion: u64,
    /// Frames flooded (unknown destination or broadcast).
    pub flooded: u64,
    /// Frames sent from a NIC the network has never heard of.
    pub dropped_unknown_src: u64,
    /// Extra frame copies injected by the duplication fault knob.
    pub duplicated: u64,
}

/// The switched network.
pub struct Network {
    switches: Vec<SwitchState>,
    hosts: BTreeMap<MacAddr, HostState>,
    queue: EventQueue<NetEvent>,
    /// Per-hop latency.
    pub latency: SimDuration,
    /// Per-hop frame-loss probability.
    pub loss_prob: f64,
    /// Maximum extra per-hop delay (uniform in `0..=jitter_max`); models
    /// the bursty queueing the chaos engine injects. Zero (the default)
    /// draws no randomness, preserving byte-identical RNG streams.
    pub jitter_max: SimDuration,
    /// Per-hop frame duplication probability (faulty NIC/switch behaviour).
    /// Zero (the default) draws no randomness.
    pub dup_prob: f64,
    /// Per-port egress capacity, bytes per second (`None` = unlimited).
    /// 100BASE-TX, the era's desktop standard, is 12 500 000 B/s; tail-drop
    /// applies when a port's 1-second egress budget is exhausted.
    pub port_capacity_bps: Option<u64>,
    /// Egress accounting: (switch, port) → (second, bytes sent that second).
    egress: BTreeMap<(usize, u8), (i64, u64)>,
    rng: Rng,
    stats: NetStats,
}

impl Network {
    /// Create an empty network. Default per-hop latency 1 ms is modeled as
    /// 0 s in integer-second simulation time; we use 1 s hops, which is far
    /// below the 20-minute collection cadence and keeps event ordering
    /// meaningful.
    pub fn new(seed_rng: &Rng) -> Self {
        Network {
            switches: Vec::new(),
            hosts: BTreeMap::new(),
            queue: EventQueue::new(),
            latency: SimDuration::secs(1),
            loss_prob: 0.0,
            jitter_max: SimDuration::ZERO,
            dup_prob: 0.0,
            port_capacity_bps: None,
            egress: BTreeMap::new(),
            rng: seed_rng.derive("network"),
            stats: NetStats::default(),
        }
    }

    /// Add an 8-port switch.
    pub fn add_switch(&mut self) -> SwitchId {
        self.switches.push(SwitchState {
            ports: [None; SWITCH_PORTS],
            mac_table: BTreeMap::new(),
            up: true,
        });
        SwitchId(self.switches.len() - 1)
    }

    /// Register a host NIC (unattached).
    pub fn add_host(&mut self, mac: MacAddr) {
        self.hosts.insert(
            mac,
            HostState {
                attached: None,
                inbox: VecDeque::new(),
            },
        );
    }

    fn check_port(&self, sw: SwitchId, port: u8) -> Result<(), NetError> {
        if sw.0 >= self.switches.len() {
            return Err(NetError::UnknownSwitch(sw));
        }
        if (port as usize) >= SWITCH_PORTS {
            return Err(NetError::PortOutOfRange { switch: sw, port });
        }
        if self.switches[sw.0].ports[port as usize].is_some() {
            return Err(NetError::PortInUse { switch: sw, port });
        }
        Ok(())
    }

    /// Attach a host to a switch port.
    pub fn attach_host(&mut self, mac: MacAddr, sw: SwitchId, port: u8) -> Result<(), NetError> {
        self.check_port(sw, port)?;
        let host = self.hosts.get_mut(&mac).ok_or(NetError::UnknownHost(mac))?;
        host.attached = Some((sw, port));
        self.switches[sw.0].ports[port as usize] = Some(Attachment::Host(mac));
        Ok(())
    }

    /// Connect two switches with an inter-switch link.
    pub fn link_switches(
        &mut self,
        a: SwitchId,
        port_a: u8,
        b: SwitchId,
        port_b: u8,
    ) -> Result<(), NetError> {
        self.check_port(a, port_a)?;
        self.check_port(b, port_b)?;
        self.switches[a.0].ports[port_a as usize] = Some(Attachment::Switch(b, port_b));
        self.switches[b.0].ports[port_b as usize] = Some(Attachment::Switch(a, port_a));
        Ok(())
    }

    /// Detach whatever occupies a switch port (spare-switch swaps re-cable
    /// hosts; see `frostlab-core`'s failover policy). Unknown switch or
    /// empty port is a no-op.
    pub fn detach_port(&mut self, sw: SwitchId, port: u8) {
        if let Some(s) = self.switches.get_mut(sw.0) {
            if let Some(Some(Attachment::Host(mac))) =
                s.ports.get_mut(port as usize).map(std::mem::take)
            {
                if let Some(h) = self.hosts.get_mut(&mac) {
                    h.attached = None;
                }
            }
        }
    }

    /// Bring a switch up or down. A downed switch loses its MAC table (it
    /// reboots cold if it ever returns). Unknown switches are a no-op.
    pub fn set_switch_up(&mut self, sw: SwitchId, up: bool) {
        if let Some(s) = self.switches.get_mut(sw.0) {
            s.up = up;
            if !up {
                s.mac_table.clear();
            }
        }
    }

    /// Is the switch forwarding? Unknown switches are not.
    pub fn switch_up(&self, sw: SwitchId) -> bool {
        self.switches.get(sw.0).is_some_and(|s| s.up)
    }

    /// Transmit a frame from `frame.src`'s NIC at time `at`.
    ///
    /// Frames from NICs the network has never registered are dropped and
    /// counted in [`NetStats::dropped_unknown_src`]; an attached-but-known
    /// host with no cable loses the frame silently (cable unplugged).
    pub fn send(&mut self, frame: Frame, at: SimTime) {
        let Some(host) = self.hosts.get(&frame.src) else {
            self.stats.dropped_unknown_src += 1;
            return;
        };
        if let Some((sw, port)) = host.attached {
            let ev = NetEvent::AtSwitch {
                sw,
                in_port: port,
                frame,
            };
            self.queue.schedule(at + self.latency, ev);
        }
    }

    /// Process all deliveries up to and including `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        while let Some((now, ev)) = self.queue.pop_until(t) {
            match ev {
                NetEvent::AtSwitch { sw, in_port, frame } => {
                    self.handle_switch(sw, in_port, frame, now);
                }
                NetEvent::AtHost { mac, frame } => {
                    if let Some(h) = self.hosts.get_mut(&mac) {
                        if frame.dst == mac || frame.dst.is_broadcast() {
                            self.stats.delivered += 1;
                            self.stats.delivered_bytes += frame.wire_len() as u64;
                            h.inbox.push_back(frame);
                        }
                    }
                }
            }
        }
    }

    fn lossy(&mut self) -> bool {
        self.loss_prob > 0.0 && self.rng.chance(self.loss_prob)
    }

    fn handle_switch(&mut self, sw: SwitchId, in_port: u8, frame: Frame, now: SimTime) {
        if !self.switches[sw.0].up {
            self.stats.dropped_switch_down += 1;
            return;
        }
        // Learn.
        self.switches[sw.0].mac_table.insert(frame.src, in_port);
        // Forward.
        let out_port = if frame.dst.is_broadcast() {
            None
        } else {
            self.switches[sw.0].mac_table.get(&frame.dst).copied()
        };
        match out_port {
            Some(p) if p != in_port => self.emit(sw, p, frame, now),
            Some(_) => { /* destination is behind the ingress port: filter */ }
            None => {
                // Flood all ports except ingress.
                self.stats.flooded += 1;
                for p in 0..SWITCH_PORTS as u8 {
                    if p != in_port && self.switches[sw.0].ports[p as usize].is_some() {
                        self.emit(sw, p, frame.clone(), now);
                    }
                }
            }
        }
    }

    /// Per-hop delay: fixed latency plus an optional jitter draw. The RNG
    /// is consulted only when jitter is enabled, so default configurations
    /// keep their historical random streams bit-for-bit.
    fn hop_delay(&mut self) -> SimDuration {
        let jitter = self.jitter_max.as_secs();
        if jitter > 0 {
            self.latency + SimDuration::secs(self.rng.below(jitter as u64 + 1) as i64)
        } else {
            self.latency
        }
    }

    fn emit(&mut self, sw: SwitchId, port: u8, frame: Frame, now: SimTime) {
        if self.lossy() {
            self.stats.dropped_loss += 1;
            return;
        }
        // Tail-drop when the egress port's per-second byte budget runs out.
        if let Some(cap) = self.port_capacity_bps {
            let slot = self
                .egress
                .entry((sw.0, port))
                .or_insert((now.as_secs(), 0));
            if slot.0 != now.as_secs() {
                *slot = (now.as_secs(), 0);
            }
            let len = frame.wire_len() as u64;
            if slot.1 + len > cap {
                self.stats.dropped_congestion += 1;
                return;
            }
            slot.1 += len;
        }
        let copies = if self.dup_prob > 0.0 && self.rng.chance(self.dup_prob) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let attachment = self.switches[sw.0].ports[port as usize];
        for copy in 0..copies {
            // A duplicated frame trails its original by one tick so the
            // receiver observes it as a distinct arrival.
            let delay = self.hop_delay() + SimDuration::secs(copy);
            match attachment {
                Some(Attachment::Host(mac)) => {
                    self.queue.schedule(
                        now + delay,
                        NetEvent::AtHost {
                            mac,
                            frame: frame.clone(),
                        },
                    );
                }
                Some(Attachment::Switch(other, other_port)) => {
                    self.queue.schedule(
                        now + delay,
                        NetEvent::AtSwitch {
                            sw: other,
                            in_port: other_port,
                            frame: frame.clone(),
                        },
                    );
                }
                None => {}
            }
        }
    }

    /// Drain a host's inbox.
    pub fn take_inbox(&mut self, mac: MacAddr) -> Vec<Frame> {
        match self.hosts.get_mut(&mac) {
            Some(h) => h.inbox.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(src: u32, dst: u32, tag: &'static [u8]) -> Frame {
        Frame::new(
            MacAddr::from_id(src),
            MacAddr::from_id(dst),
            Bytes::from_static(tag),
        )
    }

    /// Two hosts on one switch.
    fn small_net() -> Network {
        let mut net = Network::new(&Rng::new(1));
        let sw = net.add_switch();
        net.add_host(MacAddr::from_id(1));
        net.add_host(MacAddr::from_id(2));
        net.attach_host(MacAddr::from_id(1), sw, 0)
            .expect("free port");
        net.attach_host(MacAddr::from_id(2), sw, 1)
            .expect("free port");
        net
    }

    #[test]
    fn unicast_delivery_via_flooding_then_learning() {
        let mut net = small_net();
        let t0 = SimTime::from_secs(0);
        net.send(frame(1, 2, b"first"), t0);
        net.advance_to(SimTime::from_secs(10));
        let rx = net.take_inbox(MacAddr::from_id(2));
        assert_eq!(rx.len(), 1);
        assert_eq!(&rx[0].payload[..], b"first");
        // The first frame flooded (dst unknown); reply is directed.
        assert_eq!(net.stats().flooded, 1);
        net.send(frame(2, 1, b"reply"), SimTime::from_secs(10));
        net.advance_to(SimTime::from_secs(20));
        assert_eq!(net.take_inbox(MacAddr::from_id(1)).len(), 1);
        assert_eq!(net.stats().flooded, 1, "reply must use the learned entry");
    }

    #[test]
    fn frames_not_delivered_to_wrong_host() {
        let mut net = small_net();
        net.add_host(MacAddr::from_id(3));
        // host 3 unattached; 1→2 flood must not reach host 1 itself.
        net.send(frame(1, 2, b"x"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(10));
        assert!(net.take_inbox(MacAddr::from_id(1)).is_empty());
        assert!(net.take_inbox(MacAddr::from_id(3)).is_empty());
    }

    #[test]
    fn broadcast_reaches_everyone_attached() {
        let mut net = Network::new(&Rng::new(2));
        let sw = net.add_switch();
        for id in 1..=4 {
            net.add_host(MacAddr::from_id(id));
            net.attach_host(MacAddr::from_id(id), sw, (id - 1) as u8)
                .expect("free port");
        }
        net.send(
            Frame::new(
                MacAddr::from_id(1),
                MacAddr::BROADCAST,
                Bytes::from_static(b"hello"),
            ),
            SimTime::from_secs(0),
        );
        net.advance_to(SimTime::from_secs(5));
        for id in 2..=4 {
            assert_eq!(net.take_inbox(MacAddr::from_id(id)).len(), 1, "host {id}");
        }
        assert!(
            net.take_inbox(MacAddr::from_id(1)).is_empty(),
            "no self-delivery"
        );
    }

    #[test]
    fn two_switch_daisy_chain() {
        // The study's topology: two 8-port switches linked together.
        let mut net = Network::new(&Rng::new(3));
        let sw1 = net.add_switch();
        let sw2 = net.add_switch();
        net.link_switches(sw1, 7, sw2, 7).expect("free ports");
        net.add_host(MacAddr::from_id(1));
        net.add_host(MacAddr::from_id(9));
        net.attach_host(MacAddr::from_id(1), sw1, 0)
            .expect("free port");
        net.attach_host(MacAddr::from_id(9), sw2, 0)
            .expect("free port");
        net.send(frame(1, 9, b"cross"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(10));
        let rx = net.take_inbox(MacAddr::from_id(9));
        assert_eq!(rx.len(), 1);
        assert_eq!(&rx[0].payload[..], b"cross");
    }

    #[test]
    fn dead_switch_eats_frames() {
        let mut net = small_net();
        net.set_switch_up(SwitchId(0), false);
        net.send(frame(1, 2, b"lost"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(10));
        assert!(net.take_inbox(MacAddr::from_id(2)).is_empty());
        assert_eq!(net.stats().dropped_switch_down, 1);
    }

    #[test]
    fn switch_recovery_forgets_mac_table() {
        let mut net = small_net();
        net.send(frame(1, 2, b"a"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(5));
        net.set_switch_up(SwitchId(0), false);
        net.set_switch_up(SwitchId(0), true);
        // After reboot the table is empty: next unicast floods again.
        let flooded_before = net.stats().flooded;
        net.send(frame(1, 2, b"b"), SimTime::from_secs(5));
        net.advance_to(SimTime::from_secs(10));
        assert_eq!(net.stats().flooded, flooded_before + 1);
        assert_eq!(net.take_inbox(MacAddr::from_id(2)).len(), 2);
    }

    #[test]
    fn lossy_link_drops_some_frames() {
        let mut net = small_net();
        net.loss_prob = 0.5;
        for i in 0..200 {
            net.send(frame(1, 2, b"p"), SimTime::from_secs(i));
        }
        net.advance_to(SimTime::from_secs(300));
        let got = net.take_inbox(MacAddr::from_id(2)).len();
        assert!(got > 50 && got < 150, "got {got} of 200 at 50 % loss");
        assert!(net.stats().dropped_loss > 0);
    }

    #[test]
    fn deterministic_delivery() {
        let run = || {
            let mut net = small_net();
            net.loss_prob = 0.3;
            for i in 0..100 {
                net.send(frame(1, 2, b"d"), SimTime::from_secs(i));
            }
            net.advance_to(SimTime::from_secs(200));
            net.take_inbox(MacAddr::from_id(2)).len()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn port_capacity_tail_drops() {
        let mut net = small_net();
        // Tiny budget: two ~25-byte frames per second per port.
        net.port_capacity_bps = Some(60);
        for _ in 0..5 {
            net.send(frame(1, 2, b"burst"), SimTime::from_secs(0));
        }
        net.advance_to(SimTime::from_secs(10));
        let got = net.take_inbox(MacAddr::from_id(2)).len();
        assert!(got <= 2, "budget admits at most two frames, got {got}");
        assert!(net.stats().dropped_congestion >= 3);
        // The budget refills next second.
        net.send(frame(1, 2, b"later"), SimTime::from_secs(10));
        net.advance_to(SimTime::from_secs(20));
        assert_eq!(net.take_inbox(MacAddr::from_id(2)).len(), 1);
    }

    #[test]
    fn byte_accounting() {
        let mut net = small_net();
        net.send(frame(1, 2, b"12345"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(5));
        net.take_inbox(MacAddr::from_id(2));
        assert_eq!(net.stats().delivered_bytes, 14 + 5 + 4);
    }

    #[test]
    fn unattached_host_send_is_noop() {
        let mut net = Network::new(&Rng::new(4));
        net.add_host(MacAddr::from_id(1));
        net.send(frame(1, 2, b"void"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(10));
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn topology_errors_are_typed() {
        let mut net = Network::new(&Rng::new(5));
        let sw = net.add_switch();
        net.add_host(MacAddr::from_id(1));
        assert_eq!(
            net.attach_host(MacAddr::from_id(1), sw, 99),
            Err(NetError::PortOutOfRange {
                switch: sw,
                port: 99
            })
        );
        assert_eq!(
            net.attach_host(MacAddr::from_id(7), sw, 0),
            Err(NetError::UnknownHost(MacAddr::from_id(7)))
        );
        net.attach_host(MacAddr::from_id(1), sw, 0)
            .expect("free port");
        net.add_host(MacAddr::from_id(2));
        assert_eq!(
            net.attach_host(MacAddr::from_id(2), sw, 0),
            Err(NetError::PortInUse {
                switch: sw,
                port: 0
            })
        );
        assert_eq!(
            net.link_switches(sw, 1, SwitchId(9), 1),
            Err(NetError::UnknownSwitch(SwitchId(9)))
        );
        // A failed attach must not half-commit: host 2 stays unattached.
        net.send(frame(2, 1, b"x"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(5));
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn unknown_sender_is_counted_not_fatal() {
        let mut net = small_net();
        net.send(frame(77, 1, b"ghost"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(5));
        assert_eq!(net.stats().dropped_unknown_src, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn detach_port_unplugs_the_host() {
        let mut net = small_net();
        net.detach_port(SwitchId(0), 1);
        net.send(frame(1, 2, b"to-nowhere"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(5));
        assert!(net.take_inbox(MacAddr::from_id(2)).is_empty());
        // Host 2's own sends vanish too (its cable is out).
        net.send(frame(2, 1, b"from-nowhere"), SimTime::from_secs(5));
        net.advance_to(SimTime::from_secs(10));
        assert!(net.take_inbox(MacAddr::from_id(1)).is_empty());
        // And the port is free again.
        net.add_host(MacAddr::from_id(3));
        net.attach_host(MacAddr::from_id(3), SwitchId(0), 1)
            .expect("port freed");
    }

    #[test]
    fn jitter_delays_but_delivers() {
        let mut net = small_net();
        net.jitter_max = SimDuration::secs(5);
        for i in 0..20 {
            net.send(frame(1, 2, b"j"), SimTime::from_secs(i));
        }
        net.advance_to(SimTime::from_secs(100));
        assert_eq!(
            net.take_inbox(MacAddr::from_id(2)).len(),
            20,
            "jitter never loses frames"
        );
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let mut net = small_net();
        net.dup_prob = 1.0;
        net.send(frame(1, 2, b"twin"), SimTime::from_secs(0));
        net.advance_to(SimTime::from_secs(10));
        let got = net.take_inbox(MacAddr::from_id(2)).len();
        assert_eq!(got, 2, "dup_prob=1 doubles every hop");
        assert!(net.stats().duplicated >= 1);
    }

    #[test]
    fn default_knobs_draw_no_randomness() {
        // With jitter and duplication off, the RNG stream must match the
        // historical behaviour exactly (same count as the loss-only path).
        let run = |jitter: i64| {
            let mut net = small_net();
            net.loss_prob = 0.3;
            net.jitter_max = SimDuration::secs(jitter);
            for i in 0..100 {
                net.send(frame(1, 2, b"d"), SimTime::from_secs(i));
            }
            net.advance_to(SimTime::from_secs(300));
            net.take_inbox(MacAddr::from_id(2)).len()
        };
        // Deterministic across repeat runs with identical knobs.
        assert_eq!(run(0), run(0));
    }
}
