//! The rsync algorithm: signatures, deltas, patching.
//!
//! §3.5: "new files are transferred by the rsync program". rsync's trick is
//! the two-level checksum: the receiver sends per-block signatures (a cheap
//! *rolling* weak checksum plus a strong hash); the sender slides a window
//! over the new file, matching weak sums first and confirming with the
//! strong hash, emitting `Copy` references for matched blocks and literal
//! bytes for everything else. We implement the real thing — weak checksum
//! in the Adler-32 style rsync uses, MD5 (from `frostlab-compress`) as the
//! strong hash.

use std::collections::HashMap;

use frostlab_compress::md5::md5;

/// The rolling weak checksum (rsync's a/b split, mod 2¹⁶).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rolling {
    a: u32,
    b: u32,
    len: usize,
}

impl Rolling {
    /// Compute over an initial window.
    pub fn new(window: &[u8]) -> Self {
        let mut a = 0u32;
        let mut b = 0u32;
        let n = window.len() as u32;
        for (i, &x) in window.iter().enumerate() {
            a = (a + u32::from(x)) & 0xFFFF;
            b = (b + (n - i as u32) * u32::from(x)) & 0xFFFF;
        }
        Rolling {
            a,
            b,
            len: window.len(),
        }
    }

    /// Slide the window one byte: drop `out`, take in `inn`.
    pub fn roll(&mut self, out: u8, inn: u8) {
        let n = self.len as u32;
        self.a = (self
            .a
            .wrapping_sub(u32::from(out))
            .wrapping_add(u32::from(inn)))
            & 0xFFFF;
        self.b = (self.b.wrapping_sub(n * u32::from(out)).wrapping_add(self.a)) & 0xFFFF;
    }

    /// The 32-bit digest.
    pub fn digest(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// Per-block signature of the receiver's current copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Block size used.
    pub block_size: usize,
    /// `(weak, strong)` per block, in order.
    pub blocks: Vec<(u32, [u8; 16])>,
    /// Total length of the signed data.
    pub total_len: usize,
}

/// Compute the signature of `data` with the given block size.
///
/// # Panics
/// Panics if `block_size == 0`.
pub fn signature(data: &[u8], block_size: usize) -> Signature {
    assert!(block_size > 0, "block size must be positive");
    let blocks = data
        .chunks(block_size)
        .map(|c| (Rolling::new(c).digest(), md5(c)))
        .collect();
    Signature {
        block_size,
        blocks,
        total_len: data.len(),
    }
}

/// One instruction in a delta.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Copy block `index` of the old file.
    Copy {
        /// Index into the signature's block list.
        index: u32,
    },
    /// Insert literal bytes.
    Literal(Vec<u8>),
}

/// A delta transforming the signed old file into the new file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Delta {
    /// The instructions, in output order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Bytes of literal data carried (what actually crosses the wire,
    /// besides tiny copy tokens).
    pub fn literal_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal(v) => v.len(),
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Number of copy instructions.
    pub fn copy_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::Copy { .. }))
            .count()
    }
}

/// Weak checksum → candidate block indices (collisions kept in a list).
/// Only full blocks are matchable by the rolling window; the final short
/// block (if any) is matched separately at the tail.
fn weak_index(sig: &Signature) -> HashMap<u32, Vec<u32>> {
    let bs = sig.block_size;
    let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
    for (i, (weak, _)) in sig.blocks.iter().enumerate() {
        if (i + 1) * bs <= sig.total_len {
            index.entry(*weak).or_default().push(i as u32);
        }
    }
    index
}

/// Compute the delta producing `new_data` given the receiver's `sig`.
pub fn delta(sig: &Signature, new_data: &[u8]) -> Delta {
    let index = weak_index(sig);
    let mut ops = Vec::new();
    scan(sig, &index, new_data, 0, &mut ops);
    Delta { ops }
}

/// The sender's sliding-window scan from `pos` to the end of `new_data`,
/// appending ops. Factored out so [`CachedSync`]'s verified-prefix fast
/// path can resume the scan mid-file with identical semantics — at every
/// block boundary the scan state is (empty literal, no window), so
/// resuming at a boundary is indistinguishable from having scanned the
/// prefix.
fn scan(
    sig: &Signature,
    index: &HashMap<u32, Vec<u32>>,
    new_data: &[u8],
    mut pos: usize,
    ops: &mut Vec<DeltaOp>,
) {
    let bs = sig.block_size;
    let mut literal = Vec::new();
    let mut roll: Option<Rolling> = None;

    while pos + bs <= new_data.len() {
        let r = roll.get_or_insert_with(|| Rolling::new(&new_data[pos..pos + bs]));
        let digest = r.digest();
        let matched = index.get(&digest).and_then(|candidates| {
            let strong = md5(&new_data[pos..pos + bs]);
            candidates
                .iter()
                .find(|&&i| sig.blocks[i as usize].1 == strong)
                .copied()
        });
        if let Some(block_idx) = matched {
            if !literal.is_empty() {
                ops.push(DeltaOp::Literal(std::mem::take(&mut literal)));
            }
            ops.push(DeltaOp::Copy { index: block_idx });
            pos += bs;
            roll = None;
        } else {
            literal.push(new_data[pos]);
            let out = new_data[pos];
            pos += 1;
            if pos + bs <= new_data.len() {
                r.roll(out, new_data[pos + bs - 1]);
            } else {
                roll = None;
            }
        }
    }
    // Tail: try to match the final short block, else literal.
    let tail = &new_data[pos..];
    if !tail.is_empty() {
        let last_idx = sig.blocks.len().wrapping_sub(1);
        let tail_matches = !sig.total_len.is_multiple_of(bs)
            && !sig.blocks.is_empty()
            && sig.total_len % bs == tail.len()
            && sig.blocks[last_idx].1 == md5(tail);
        if tail_matches {
            if !literal.is_empty() {
                ops.push(DeltaOp::Literal(std::mem::take(&mut literal)));
            }
            ops.push(DeltaOp::Copy {
                index: last_idx as u32,
            });
        } else {
            literal.extend_from_slice(tail);
        }
    }
    if !literal.is_empty() {
        ops.push(DeltaOp::Literal(literal));
    }
}

/// Errors from [`apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// A copy op referenced a block the old file does not have.
    BadBlockIndex,
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta references a nonexistent block")
    }
}

impl std::error::Error for ApplyError {}

/// Apply a delta to the old data, producing the new file.
pub fn apply(old_data: &[u8], block_size: usize, d: &Delta) -> Result<Vec<u8>, ApplyError> {
    let mut out = Vec::new();
    for op in &d.ops {
        match op {
            DeltaOp::Copy { index } => {
                let start = *index as usize * block_size;
                if start >= old_data.len() {
                    return Err(ApplyError::BadBlockIndex);
                }
                let end = (start + block_size).min(old_data.len());
                out.extend_from_slice(&old_data[start..end]);
            }
            DeltaOp::Literal(bytes) => out.extend_from_slice(bytes),
        }
    }
    Ok(out)
}

/// Convenience: one-shot sync. Returns `(new_copy, delta)` so callers can
/// account transferred bytes.
pub fn sync(old_data: &[u8], new_data: &[u8], block_size: usize) -> (Vec<u8>, Delta) {
    let sig = signature(old_data, block_size);
    let d = delta(&sig, new_data);
    // A delta built against this very signature can only reference blocks
    // the old file has, so `apply` is total here; the fallback keeps the
    // result correct regardless (the rebuilt file IS the new file).
    let rebuilt = apply(old_data, block_size, &d).unwrap_or_else(|_| new_data.to_vec());
    debug_assert_eq!(rebuilt, new_data);
    (rebuilt, d)
}

/// A receiver-side mirror with its signature kept warm between rounds.
///
/// [`sync`] recomputes the old file's signature — a strong hash per block
/// — on every call, then scans the entire new file. For the collector's
/// append-only logs that is O(file) work per round to discover that one
/// line was added. `CachedSync` holds the mirror *and* its signature:
/// each round re-signs only the bytes past the last full block, and when
/// the new content verifiably extends the mirror (a byte-compare of the
/// prefix — far cheaper than hashing it) the sender's scan resumes at the
/// first unsynced block boundary instead of at zero.
///
/// The produced delta is equivalent to [`sync`]'s: the verified prefix
/// matches block-for-block (each full block's own signature is present,
/// so the stock scan would emit one copy per block and arrive at the
/// boundary with an empty literal run), and the remainder goes through
/// the identical `scan`. Literal bytes, copy counts and the rebuilt
/// mirror are byte-for-byte what the uncached path yields.
#[derive(Debug)]
pub struct CachedSync {
    data: Vec<u8>,
    sig: Signature,
}

impl CachedSync {
    /// Empty mirror with the given block size.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn new(block_size: usize) -> CachedSync {
        assert!(block_size > 0, "block size must be positive");
        CachedSync {
            data: Vec::new(),
            sig: Signature {
                block_size,
                blocks: Vec::new(),
                total_len: 0,
            },
        }
    }

    /// The mirrored bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bring the mirror up to `new_data`, returning the delta that rsync
    /// would have shipped.
    pub fn sync_from(&mut self, new_data: &[u8]) -> Delta {
        let bs = self.sig.block_size;
        let old_len = self.data.len();
        let full = old_len / bs;
        if full > 0 && new_data.len() > old_len && new_data[..old_len] == self.data[..] {
            // Append fast path: the mirror is a verified prefix of the new
            // content. Full blocks match themselves; resume the scan at
            // the first unsynced boundary.
            let boundary = full * bs;
            let mut ops: Vec<DeltaOp> = (0..full as u32)
                .map(|i| DeltaOp::Copy { index: i })
                .collect();
            let index = weak_index(&self.sig);
            scan(&self.sig, &index, new_data, boundary, &mut ops);
            self.data.extend_from_slice(&new_data[old_len..]);
            self.sig.blocks.truncate(full);
            self.sig.blocks.extend(
                self.data[boundary..]
                    .chunks(bs)
                    .map(|c| (Rolling::new(c).digest(), md5(c))),
            );
            self.sig.total_len = self.data.len();
            return Delta { ops };
        }
        // General path (first contact, truncation, rewrite): stock delta
        // against the cached signature, then full rebuild and re-sign.
        let d = delta(&self.sig, new_data);
        self.data = apply(&self.data, bs, &d).unwrap_or_else(|_| new_data.to_vec());
        debug_assert_eq!(self.data, new_data);
        self.sig = signature(&self.data, bs);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_fresh_computation() {
        let data: Vec<u8> = (0..200u8).collect();
        let w = 16;
        let mut r = Rolling::new(&data[0..w]);
        for pos in 1..(data.len() - w) {
            r.roll(data[pos - 1], data[pos + w - 1]);
            let fresh = Rolling::new(&data[pos..pos + w]);
            assert_eq!(r.digest(), fresh.digest(), "at pos {pos}");
        }
    }

    #[test]
    fn identical_files_are_all_copies() {
        let data = b"the monitoring host recovers all calculated md5sums".repeat(20);
        let (rebuilt, d) = sync(&data, &data, 64);
        assert_eq!(rebuilt, data);
        assert_eq!(
            d.literal_bytes(),
            0,
            "identical file must ship zero literals"
        );
        assert_eq!(d.copy_count(), data.len().div_ceil(64));
    }

    #[test]
    fn appended_log_ships_only_the_tail() {
        // The collector's common case: a log file that grew.
        let old = b"line-one\nline-two\nline-three\n".repeat(40);
        let mut new = old.clone();
        new.extend_from_slice(b"line-new 2010-03-07 04:40 host15 wrong-hash\n");
        let (rebuilt, d) = sync(&old, &new, 64);
        assert_eq!(rebuilt, new);
        assert!(
            d.literal_bytes() < 64 + 64,
            "append case should ship ≲ 2 blocks of literals, got {}",
            d.literal_bytes()
        );
    }

    #[test]
    fn middle_edit_localized() {
        let old: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut new = old.clone();
        new[2000] ^= 0xFF;
        let (rebuilt, d) = sync(&old, &new, 128);
        assert_eq!(rebuilt, new);
        assert!(
            d.literal_bytes() <= 256,
            "single-byte edit should cost ≈ one block: {}",
            d.literal_bytes()
        );
    }

    #[test]
    fn completely_different_files() {
        let old = vec![0xAAu8; 2000];
        let new: Vec<u8> = (0..2000u32).map(|i| (i * 17 % 256) as u8).collect();
        let (rebuilt, d) = sync(&old, &new, 128);
        assert_eq!(rebuilt, new);
        assert_eq!(d.literal_bytes(), 2000);
        assert_eq!(d.copy_count(), 0);
    }

    #[test]
    fn empty_edge_cases() {
        let (r1, _) = sync(b"", b"", 64);
        assert!(r1.is_empty());
        let (r2, d2) = sync(b"", b"fresh content", 64);
        assert_eq!(r2, b"fresh content");
        assert_eq!(d2.literal_bytes(), 13);
        let (r3, _) = sync(b"old content", b"", 64);
        assert!(r3.is_empty());
    }

    #[test]
    fn short_tail_block_matched() {
        // Old file not a multiple of block size; unchanged tail reused.
        let old = b"0123456789".repeat(13); // 130 bytes, bs 64 → tail 2
        let new = old.clone();
        let (rebuilt, d) = sync(&old, &new, 64);
        assert_eq!(rebuilt, new);
        assert_eq!(d.literal_bytes(), 0);
    }

    #[test]
    fn prepended_content() {
        let old = b"BBBBCCCCDDDD".repeat(32);
        let mut new = b"AAAA-prefix-".to_vec();
        new.extend_from_slice(&old);
        let (rebuilt, d) = sync(&old, &new, 48);
        assert_eq!(rebuilt, new);
        // Rolling matching must re-anchor after the prefix.
        assert!(
            d.literal_bytes() < 48 + 16,
            "prefix insert should stay local: {}",
            d.literal_bytes()
        );
    }

    #[test]
    fn cached_sync_matches_stock_sync_across_append_histories() {
        // Drive the cached mirror and the stock per-round sync through the
        // same file history; deltas and mirrors must agree byte-for-byte.
        // Growth sizes cross block boundaries, land exactly on them, and
        // include a same-size round (which the collector normally skips,
        // but equivalence must hold regardless).
        let bs = 64;
        let mut cached = CachedSync::new(bs);
        let mut plain: Vec<u8> = Vec::new();
        let mut file: Vec<u8> = Vec::new();
        let growths = [10usize, 54, 64, 1, 500, 0, 63, 128, 7];
        for (round, g) in growths.iter().enumerate() {
            let line: Vec<u8> = (0..*g).map(|i| ((round * 37 + i) % 251) as u8).collect();
            file.extend_from_slice(&line);
            let (rebuilt, d_plain) = sync(&plain, &file, bs);
            let d_cached = cached.sync_from(&file);
            assert_eq!(
                d_cached.literal_bytes(),
                d_plain.literal_bytes(),
                "round {round}: literal bytes diverge"
            );
            assert_eq!(
                d_cached.copy_count(),
                d_plain.copy_count(),
                "round {round}: copy counts diverge"
            );
            assert_eq!(cached.data(), &file[..], "round {round}: mirror diverges");
            plain = rebuilt;
        }
    }

    #[test]
    fn cached_sync_handles_rewrites_and_truncation() {
        let bs = 64;
        let mut cached = CachedSync::new(bs);
        let first = b"the first day's log content\n".repeat(20);
        cached.sync_from(&first);
        assert_eq!(cached.data(), &first[..]);
        // A rewrite (different content, shorter) takes the general path.
        let rewritten = b"fresh start\n".repeat(5);
        let (_, d_plain) = sync(&first, &rewritten, bs);
        let d_cached = cached.sync_from(&rewritten);
        assert_eq!(d_cached.literal_bytes(), d_plain.literal_bytes());
        assert_eq!(cached.data(), &rewritten[..]);
        // And appends after the rewrite use the fast path again.
        let mut grown = rewritten.clone();
        grown.extend_from_slice(b"appended line\n");
        let (_, d_plain) = sync(&rewritten, &grown, bs);
        let d_cached = cached.sync_from(&grown);
        assert_eq!(d_cached.literal_bytes(), d_plain.literal_bytes());
        assert_eq!(cached.data(), &grown[..]);
    }

    #[test]
    fn cached_sync_append_ships_only_the_tail() {
        let bs = 512;
        let mut cached = CachedSync::new(bs);
        let old = b"line-one\nline-two\nline-three\n".repeat(60);
        cached.sync_from(&old);
        let mut new = old.clone();
        new.extend_from_slice(b"2010-03-07 04:40 host15 wrong-hash\n");
        let d = cached.sync_from(&new);
        assert!(
            d.literal_bytes() < 2 * bs,
            "append should ship ≲ 2 blocks, got {}",
            d.literal_bytes()
        );
        assert_eq!(cached.data(), &new[..]);
    }

    #[test]
    fn bad_delta_rejected() {
        let d = Delta {
            ops: vec![DeltaOp::Copy { index: 99 }],
        };
        assert_eq!(apply(b"short", 64, &d), Err(ApplyError::BadBlockIndex));
    }

    #[test]
    fn weak_collision_resolved_by_strong_hash() {
        // Construct two different blocks with the same weak checksum:
        // swapping two equal-sum byte pairs preserves `a`; craft data where
        // the rolling sum collides but content differs.
        let a_block = [1u8, 3, 2, 0];
        let b_block = [3u8, 1, 0, 2]; // same multiset sums differently in b-term
                                      // Even if weak sums collide or not, correctness must hold:
        let old: Vec<u8> = a_block.repeat(8);
        let new: Vec<u8> = b_block.repeat(8);
        let (rebuilt, _) = sync(&old, &new, 4);
        assert_eq!(rebuilt, new);
    }
}
